//! The paper's abstract-level claims, checked end to end against the
//! reproduction at reduced scale:
//!
//! 1. Rate-based clocking improves HTTP response time over high
//!    bandwidth-delay-product paths by up to ~89 %.
//! 2. Soft timers support rate-based clocking at high aggregate
//!    bandwidth for 2-6 % overhead where hardware timers cost 26-38 %.
//! 3. Soft-timer network polling improves web-server throughput by up
//!    to ~25 %.
//! 4. The facility schedules events down to tens of microseconds with a
//!    hard 1 ms delay bound.

use soft_timers::experiments::{table3, table67, table8, Scale};

#[test]
fn claim_response_time_reduction_up_to_89_percent() {
    let t = table67::run(Scale::Quick, 1);
    let best = t
        .table6
        .rows
        .iter()
        .chain(t.table7.rows.iter())
        .map(|r| r.reduction_pct())
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        (80.0..95.0).contains(&best),
        "best response-time reduction {best}%, paper: up to 89%"
    );
}

#[test]
fn claim_rate_based_clocking_overhead_ratio() {
    let t = table3::run(Scale::Quick, 2);
    for c in &t.columns {
        assert!(
            c.soft_overhead() < 0.10,
            "soft overhead {} (paper: 2-6%)",
            c.soft_overhead()
        );
        assert!(
            c.hw_overhead() > 0.20,
            "hw overhead {} (paper: 26-38%)",
            c.hw_overhead()
        );
    }
}

#[test]
fn claim_polling_improves_throughput() {
    let t = table8::run(Scale::Quick, 3);
    let best = t
        .rows
        .iter()
        .flat_map(|r| r.soft_poll.iter().map(move |&(_, tput)| tput / r.interrupt))
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        (1.10..1.40).contains(&best),
        "best polling speedup {best} (paper: up to 1.25)"
    );
}
