//! Cross-crate determinism: identical seeds produce identical results in
//! every simulation layer.

use soft_timers::http::model::{HttpMode, ServerKind, ServerModel};
use soft_timers::http::saturation::{SaturationConfig, SaturationSim};
use soft_timers::kernel::CostModel;
use soft_timers::sim::SimDuration;
use soft_timers::tcp::transfer::{TransferConfig, TransferSim};
use soft_timers::workloads::{TriggerStream, WorkloadId};

#[test]
fn workload_streams_are_deterministic() {
    for id in WorkloadId::ALL {
        let mut a = TriggerStream::new(id.spec(), 123);
        let mut b = TriggerStream::new(id.spec(), 123);
        for _ in 0..10_000 {
            assert_eq!(a.next_gap(), b.next_gap(), "{} diverged", id.label());
        }
    }
}

#[test]
fn saturation_sim_is_deterministic() {
    let machine = CostModel::pentium_ii_300();
    let server = ServerModel::calibrated(ServerKind::Apache, HttpMode::Http, &machine, 774.0);
    let cfg = |seed| {
        let mut c = SaturationConfig::baseline(machine, server.clone(), seed);
        c.duration = SimDuration::from_millis(500);
        c
    };
    let a = SaturationSim::run(cfg(7));
    let b = SaturationSim::run(cfg(7));
    assert_eq!(a.requests, b.requests);
    assert_eq!(a.soft_fires, b.soft_fires);
    assert_eq!(a.trigger_mean_us, b.trigger_mean_us);

    // And a different seed actually changes the run.
    let c = SaturationSim::run(cfg(8));
    assert!(
        a.trigger_mean_us != c.trigger_mean_us || a.requests != c.requests,
        "different seeds should perturb the run"
    );
}

#[test]
fn wan_transfer_is_deterministic() {
    let mk = || TransferSim::run(TransferConfig::table6(200, true));
    let a = mk();
    let b = mk();
    assert_eq!(a.response_time, b.response_time);
    assert_eq!(a.segments, b.segments);
    assert_eq!(a.acks, b.acks);
}

#[test]
fn experiment_reports_are_deterministic() {
    use soft_timers::experiments::{table45, Scale};
    let a = table45::run(Scale::Quick, 5);
    let b = table45::run(Scale::Quick, 5);
    for (ra, rb) in a.table4.rows.iter().zip(b.table4.rows.iter()) {
        assert_eq!(ra.avg_interval, rb.avg_interval);
        assert_eq!(ra.std_dev, rb.std_dev);
    }
    assert_eq!(a.table4.hw_avg, b.table4.hw_avg);
}
