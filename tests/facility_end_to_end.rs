//! End-to-end facility behaviour over realistic trigger streams: the
//! paper's headline delay statistics and bounds, across every workload
//! and every timer-store implementation.

use soft_timers::core::facility::{Config, Expired, SoftTimerCore};
use soft_timers::stats::Samples;
use soft_timers::wheel::{HeapQueue, HierarchicalWheel, SimpleWheel, TimerQueue};
use soft_timers::workloads::{TriggerStream, WorkloadId};

/// Drives a facility with a workload's trigger stream plus the 1 kHz
/// backup, repeatedly scheduling one event `delta` ticks out, and returns
/// the observed delays past each deadline.
fn measure_delays<Q: TimerQueue<()>>(
    queue: Q,
    id: WorkloadId,
    delta: u64,
    events: usize,
    seed: u64,
) -> Samples {
    let mut core = SoftTimerCore::with_queue(Config::default(), queue);
    let mut stream = TriggerStream::new(id.spec(), seed);
    let mut now = 0u64;
    let mut next_backup = 1000u64;
    let mut out: Vec<Expired<()>> = Vec::new();
    let mut delays = Samples::with_capacity(events);
    core.schedule(0, delta, ());
    while delays.len() < events {
        now += stream.next_gap().0.round().max(1.0) as u64;
        while next_backup < now {
            core.interrupt_sweep(next_backup, &mut out);
            next_backup += 1000;
        }
        core.poll(now, &mut out);
        for ev in out.drain(..) {
            delays.record(ev.delay() as f64);
            core.schedule(now, delta, ());
        }
    }
    delays
}

#[test]
fn st_apache_delays_match_paper_headline() {
    // Section 3: "the worst case distribution of d results in a mean
    // delay of 31.6 µs ... (median is 18 µs)".
    let mut d = measure_delays(
        soft_timers::wheel::HashedWheel::new(),
        WorkloadId::StApache,
        40,
        30_000,
        1,
    );
    let mean = d.mean().unwrap();
    let median = d.median().unwrap();
    assert!((27.0..37.0).contains(&mean), "mean delay {mean}");
    assert!((14.0..23.0).contains(&median), "median delay {median}");
}

#[test]
fn delays_are_bounded_by_backup_interrupt() {
    for id in [WorkloadId::StApache, WorkloadId::StKernelBuild] {
        let mut d = measure_delays(soft_timers::wheel::HashedWheel::new(), id, 40, 20_000, 2);
        let max = d.max().unwrap();
        // X = 1000 ticks; a backup sweep may itself be up to one backup
        // period after the due tick.
        assert!(max <= 2000.0, "{}: max delay {max}", id.label());
    }
}

#[test]
fn idle_like_workloads_give_microsecond_delays() {
    // ST-nfs reaches trigger states every ~2 µs: event delays collapse.
    let d = measure_delays(
        soft_timers::wheel::HashedWheel::new(),
        WorkloadId::StNfs,
        40,
        20_000,
        3,
    );
    assert!(d.mean().unwrap() < 5.0, "mean {}", d.mean().unwrap());
}

#[test]
fn every_timer_store_gives_identical_fires() {
    // The facility is store-agnostic: same trigger stream, same delays.
    let a = measure_delays(HeapQueue::new(), WorkloadId::StFlash, 60, 5_000, 4);
    let b = measure_delays(SimpleWheel::new(4096), WorkloadId::StFlash, 60, 5_000, 4);
    let c = measure_delays(HierarchicalWheel::new(), WorkloadId::StFlash, 60, 5_000, 4);
    let d = measure_delays(
        soft_timers::wheel::HashedWheel::new(),
        WorkloadId::StFlash,
        60,
        5_000,
        4,
    );
    assert_eq!(a.values(), b.values());
    assert_eq!(b.values(), c.values());
    assert_eq!(c.values(), d.values());
}

#[test]
fn faster_cpu_reduces_delay() {
    // Table 1's Xeon row: trigger granularity scales with clock speed, so
    // the same event sees less delay on the faster machine.
    let slow = measure_delays(
        soft_timers::wheel::HashedWheel::new(),
        WorkloadId::StApache,
        40,
        20_000,
        5,
    );
    let fast = measure_delays(
        soft_timers::wheel::HashedWheel::new(),
        WorkloadId::StApacheXeon,
        40,
        20_000,
        5,
    );
    assert!(
        fast.mean().unwrap() < slow.mean().unwrap() * 0.75,
        "xeon {} vs p2 {}",
        fast.mean().unwrap(),
        slow.mean().unwrap()
    );
}
