//! Acceptance tests for the fault-injection subsystem: every fault class
//! runs from a fixed seed, replays byte-identically, and the paper's
//! firing bound (or its documented relaxation when the backup interrupt
//! itself is suppressed) holds on every fired event.

use st_core::api::SoftTimers;
use st_core::clock::ManualClock;
use st_experiments::{fault_matrix, Scale};
use st_fault::{FaultPlan, Scenario};

const DURATION: u64 = 200_000;
const SEED: u64 = 0xdead_beef;

/// All five fault classes (plus control and the combined plan) run from
/// one fixed seed and replay byte-for-byte: the whole report — counters
/// and the fired-event fingerprint — compares equal.
#[test]
fn fault_matrix_replays_byte_identically() {
    let plans = [
        FaultPlan::none(),
        FaultPlan::clock_anomalies(),
        FaultPlan::starvation(),
        FaultPlan::backup_loss(),
        FaultPlan::nic_storm(),
        FaultPlan::hostile_callbacks(),
        FaultPlan::everything(),
    ];
    for (i, plan) in plans.iter().enumerate() {
        let a = Scenario::new(*plan, SEED, DURATION).run();
        let b = Scenario::new(*plan, SEED, DURATION).run();
        assert_eq!(a, b, "plan {i} diverged between identical runs");
        assert_eq!(a.bound_violations, 0, "plan {i} broke its bound");
    }
}

/// Where the plan leaves the backup grid and clock intact, the paper's
/// `(S+T, S+T+X+1)` bound holds unrelaxed: no event is ever more than
/// one backup period late.
#[test]
fn paper_delay_bound_holds_without_backup_faults() {
    for plan in [
        FaultPlan::none(),
        FaultPlan::starvation(),
        FaultPlan::nic_storm(),
    ] {
        let r = Scenario::new(plan, SEED, DURATION).run();
        assert!(r.max_delay <= 1_000, "delay {} > X = 1000", r.max_delay);
        assert_eq!(r.bound_violations, 0);
    }
}

/// With backup interrupts dropped, events can fire later than X — but
/// never early, and always at the first check the faults allowed (the
/// relaxed bound the harness asserts internally on every fire).
#[test]
fn suppressed_backups_relax_but_never_break_the_bound() {
    let r = Scenario::new(FaultPlan::backup_loss(), SEED, DURATION).run();
    assert!(r.backups_dropped > 0, "plan must actually drop sweeps");
    assert_eq!(r.bound_violations, 0);
}

/// The experiment wrapper reports every class clean.
#[test]
fn fault_matrix_experiment_is_clean() {
    let m = fault_matrix::run(Scale::Quick, SEED);
    assert!(m.all_clean(), "\n{}", m.render());
}

/// The hardened facility survives a panicking callback: the backup
/// machinery keeps running, the wheel is not poisoned, and later events
/// fire normally (satellite acceptance criterion, deterministic
/// ManualClock embedding).
#[test]
fn panicking_callback_does_not_disable_the_facility() {
    let mut st = SoftTimers::new(ManualClock::new(1_000_000), 1_000);
    st.schedule_soft_event(10, |_| panic!("hostile"));
    let fired = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
    let f = fired.clone();
    st.schedule_soft_event(20, move |at| {
        f.store(at, std::sync::atomic::Ordering::SeqCst);
    });

    st.clock().set(1_000);
    assert_eq!(st.backup_interrupt(), 2, "both events sweep");
    assert_eq!(
        fired.load(std::sync::atomic::Ordering::SeqCst),
        1_000,
        "the handler after the panicking one still ran"
    );
    assert_eq!(st.stats().handler_panics, 1);

    // Subsequent events are unaffected.
    let f = fired.clone();
    st.schedule_soft_event(5, move |at| {
        f.store(at, std::sync::atomic::Ordering::SeqCst);
    });
    st.clock().set(2_000);
    assert_eq!(st.trigger_state(), 1);
    assert_eq!(fired.load(std::sync::atomic::Ordering::SeqCst), 2_000);
}
