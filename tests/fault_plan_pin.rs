//! Pins the fault-injection draw streams against frozen seed output.
//!
//! `tests/data/fault_matrix_seed42_quick.json` is the byte-exact output
//! of `repro fault_matrix --quick --seed 42 --json -` captured before
//! the host fault class existed. The harness forks one `SimRng` per
//! fault class under stable labels, and appending a class must append a
//! fork label — never shift the draws of existing classes. If this test
//! fails, a change reordered or consumed another class's stream and
//! every historical `(plan, seed)` replay is silently invalidated.

use st_experiments::{fault_matrix, Scale};
use st_trace::json::ObjectBuilder;

/// Rebuilds the exact JSON line `repro --json` emits for one experiment.
fn repro_json_line(name: &str, seed: u64, scale: &str, metrics: &[(String, f64)]) -> String {
    let mut m = ObjectBuilder::new();
    for (k, v) in metrics {
        m = m.f64(k, *v);
    }
    ObjectBuilder::new()
        .str("experiment", name)
        .u64("seed", seed)
        .str("scale", scale)
        .raw("metrics", &m.build())
        .build()
}

#[test]
fn fault_matrix_seed42_matches_frozen_output() {
    // The hostile-callback rows inject panics the harness catches; keep
    // the default hook from spraying backtraces over the test output.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let matrix = fault_matrix::run(Scale::Quick, 42);
    std::panic::set_hook(hook);

    let line = repro_json_line("fault_matrix", 42, "quick", &matrix.key_metrics());
    let frozen = include_str!("data/fault_matrix_seed42_quick.json");
    assert_eq!(
        line,
        frozen.trim_end(),
        "fault_matrix seed-42 output drifted from the frozen pin: \
         an existing fault class's draw stream changed"
    );
}
