//! Round-robin process scheduler with FreeBSD's 10 ms time slice.
//!
//! Used by the multi-process Apache model (frequent context switches,
//! poor locality) and by the ST-Apache-compute workload where a
//! compute-bound background process shares the CPU with the server
//! (section 5.3). The scheduler is passive: the machine simulation asks
//! it what to run and informs it of elapsed time and blocking events.

use std::collections::VecDeque;

use st_sim::SimDuration;

/// A process identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcId(pub u32);

/// Outcome of a scheduling decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Keep running the current process.
    Keep(ProcId),
    /// Switch to another process (a context switch must be charged).
    Switch {
        /// The process leaving the CPU, if any.
        from: Option<ProcId>,
        /// The process taking the CPU.
        to: ProcId,
    },
    /// Nothing runnable: the CPU idles.
    Idle,
}

/// Round-robin scheduler.
///
/// # Examples
///
/// ```
/// use st_kernel::sched::{Decision, ProcId, Scheduler};
/// use st_sim::SimDuration;
///
/// let mut s = Scheduler::new(SimDuration::from_millis(10));
/// s.spawn(ProcId(1));
/// s.spawn(ProcId(2));
/// assert!(matches!(s.pick(), Decision::Switch { to: ProcId(1), .. }));
/// // Process 1 exhausts its slice: round-robin to process 2.
/// s.consume(SimDuration::from_millis(10));
/// assert!(matches!(s.pick(), Decision::Switch { to: ProcId(2), .. }));
/// ```
#[derive(Debug)]
pub struct Scheduler {
    slice: SimDuration,
    run_queue: VecDeque<ProcId>,
    current: Option<ProcId>,
    remaining: SimDuration,
    switches: u64,
}

impl Scheduler {
    /// Creates a scheduler with the given time slice.
    ///
    /// # Panics
    ///
    /// Panics on a zero slice.
    pub fn new(slice: SimDuration) -> Self {
        assert!(slice > SimDuration::ZERO, "slice must be positive");
        Scheduler {
            slice,
            run_queue: VecDeque::new(),
            current: None,
            remaining: SimDuration::ZERO,
            switches: 0,
        }
    }

    /// FreeBSD's default: a 10 ms time slice (section 5.4 calls 10 ms
    /// "a timeslice in the FreeBSD system").
    pub fn freebsd_default() -> Self {
        Scheduler::new(SimDuration::from_millis(10))
    }

    /// The configured time slice.
    pub fn slice(&self) -> SimDuration {
        self.slice
    }

    /// Makes a process runnable for the first time.
    pub fn spawn(&mut self, pid: ProcId) {
        self.run_queue.push_back(pid);
    }

    /// Currently running process.
    pub fn current(&self) -> Option<ProcId> {
        self.current
    }

    /// Remaining slice of the current process.
    pub fn remaining_slice(&self) -> SimDuration {
        self.remaining
    }

    /// Total context switches performed.
    pub fn context_switches(&self) -> u64 {
        self.switches
    }

    /// Number of runnable (queued, not current) processes.
    pub fn runnable(&self) -> usize {
        self.run_queue.len()
    }

    /// Picks what to run. Call after any state change (spawn, wake,
    /// block, slice expiry).
    pub fn pick(&mut self) -> Decision {
        match self.current {
            Some(cur) if self.remaining > SimDuration::ZERO => Decision::Keep(cur),
            cur => match self.run_queue.pop_front() {
                Some(next) => {
                    // Requeue a current process whose slice expired.
                    if let Some(prev) = cur {
                        if prev != next {
                            self.run_queue.push_back(prev);
                        }
                    }
                    self.current = Some(next);
                    self.remaining = self.slice;
                    if cur != Some(next) {
                        self.switches += 1;
                        Decision::Switch {
                            from: cur,
                            to: next,
                        }
                    } else {
                        Decision::Keep(next)
                    }
                }
                None => match cur {
                    // Slice expired but nobody else runnable: renew.
                    Some(prev) => {
                        self.remaining = self.slice;
                        Decision::Keep(prev)
                    }
                    None => Decision::Idle,
                },
            },
        }
    }

    /// Consumes CPU time from the current slice.
    pub fn consume(&mut self, d: SimDuration) {
        self.remaining = self.remaining.saturating_sub(d);
    }

    /// The current process blocks (I/O wait); it leaves the CPU.
    ///
    /// # Panics
    ///
    /// Panics when no process is running.
    pub fn block_current(&mut self) -> ProcId {
        // st-lint: allow(no-panicking-arith) -- documented precondition:
        // only a running process can block
        let cur = self.current.take().expect("no current process to block");
        self.remaining = SimDuration::ZERO;
        cur
    }

    /// A blocked process becomes runnable again.
    pub fn wake(&mut self, pid: ProcId) {
        self.run_queue.push_back(pid);
    }

    /// The current process exits.
    ///
    /// # Panics
    ///
    /// Panics when no process is running.
    pub fn exit_current(&mut self) -> ProcId {
        // st-lint: allow(no-panicking-arith) -- documented precondition:
        // only a running process can exit
        let cur = self.current.take().expect("no current process to exit");
        self.remaining = SimDuration::ZERO;
        cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    #[test]
    fn round_robin_cycles() {
        let mut s = Scheduler::new(ms(10));
        s.spawn(ProcId(1));
        s.spawn(ProcId(2));
        s.spawn(ProcId(3));
        let mut order = Vec::new();
        for _ in 0..6 {
            match s.pick() {
                Decision::Switch { to, .. } | Decision::Keep(to) => order.push(to.0),
                Decision::Idle => panic!("unexpected idle"),
            }
            s.consume(ms(10));
        }
        assert_eq!(order, vec![1, 2, 3, 1, 2, 3]);
        assert_eq!(s.context_switches(), 6);
    }

    #[test]
    fn keep_within_slice() {
        let mut s = Scheduler::new(ms(10));
        s.spawn(ProcId(1));
        s.spawn(ProcId(2));
        assert!(matches!(s.pick(), Decision::Switch { to: ProcId(1), .. }));
        s.consume(ms(4));
        assert_eq!(s.pick(), Decision::Keep(ProcId(1)));
        assert_eq!(s.remaining_slice(), ms(6));
    }

    #[test]
    fn sole_process_renews_slice_without_switch() {
        let mut s = Scheduler::new(ms(10));
        s.spawn(ProcId(7));
        s.pick();
        let switches = s.context_switches();
        s.consume(ms(10));
        assert_eq!(s.pick(), Decision::Keep(ProcId(7)));
        assert_eq!(s.context_switches(), switches, "no self-switch");
    }

    #[test]
    fn block_and_wake() {
        let mut s = Scheduler::new(ms(10));
        s.spawn(ProcId(1));
        s.spawn(ProcId(2));
        s.pick();
        let blocked = s.block_current();
        assert_eq!(blocked, ProcId(1));
        assert!(matches!(s.pick(), Decision::Switch { to: ProcId(2), .. }));
        s.wake(ProcId(1));
        s.consume(ms(10));
        assert!(matches!(s.pick(), Decision::Switch { to: ProcId(1), .. }));
    }

    #[test]
    fn idle_when_empty() {
        let mut s = Scheduler::new(ms(10));
        assert_eq!(s.pick(), Decision::Idle);
        s.spawn(ProcId(1));
        s.pick();
        s.exit_current();
        assert_eq!(s.pick(), Decision::Idle);
    }

    #[test]
    fn runnable_count() {
        let mut s = Scheduler::new(ms(1));
        s.spawn(ProcId(1));
        s.spawn(ProcId(2));
        assert_eq!(s.runnable(), 2);
        s.pick();
        assert_eq!(s.runnable(), 1);
    }
}
