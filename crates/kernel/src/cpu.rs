//! CPU time accounting by category.
//!
//! The saturation experiments (Figures 2-3, Tables 3 and 8) all reduce to
//! "who ate the CPU": a saturated server's throughput is the fraction of
//! CPU left for request processing divided by the per-request cost. The
//! accountant tracks simulated busy time per category so experiments can
//! report both throughput and a cost breakdown.

use st_sim::{SimDuration, SimTime};

/// What a slice of CPU time was spent on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpuCategory {
    /// User-mode application work.
    User,
    /// Kernel work on behalf of the application (syscalls, TCP/IP).
    Kernel,
    /// Hardware interrupt handling (entry/exit + handler + pollution).
    Interrupt,
    /// Soft-timer trigger checks and event handler dispatch.
    SoftTimer,
    /// Process context switches.
    ContextSwitch,
    /// NIC polling (status register reads, aggregated packet work is
    /// charged to `Kernel`).
    Polling,
}

const CATEGORIES: usize = 6;

fn cat_index(c: CpuCategory) -> usize {
    match c {
        CpuCategory::User => 0,
        CpuCategory::Kernel => 1,
        CpuCategory::Interrupt => 2,
        CpuCategory::SoftTimer => 3,
        CpuCategory::ContextSwitch => 4,
        CpuCategory::Polling => 5,
    }
}

/// Accumulates busy time per category over a simulation run.
///
/// # Examples
///
/// ```
/// use st_kernel::cpu::{CpuAccountant, CpuCategory};
/// use st_sim::{SimDuration, SimTime};
///
/// let mut cpu = CpuAccountant::new();
/// cpu.charge(CpuCategory::User, SimDuration::from_micros(300));
/// cpu.charge(CpuCategory::Interrupt, SimDuration::from_micros(100));
/// let u = cpu.utilization(SimTime::from_micros(1000));
/// assert!((u - 0.4).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct CpuAccountant {
    busy: [SimDuration; CATEGORIES],
    charges: [u64; CATEGORIES],
}

impl CpuAccountant {
    /// Creates a zeroed accountant.
    pub fn new() -> Self {
        CpuAccountant {
            busy: [SimDuration::ZERO; CATEGORIES],
            charges: [0; CATEGORIES],
        }
    }

    /// Charges `d` of CPU time to `category`.
    pub fn charge(&mut self, category: CpuCategory, d: SimDuration) {
        let i = cat_index(category);
        self.busy[i] += d;
        self.charges[i] += 1;
    }

    /// Total busy time across categories.
    pub fn total_busy(&self) -> SimDuration {
        self.busy.iter().fold(SimDuration::ZERO, |acc, &d| acc + d)
    }

    /// Busy time in one category.
    pub fn busy(&self, category: CpuCategory) -> SimDuration {
        self.busy[cat_index(category)]
    }

    /// Number of charges made to one category.
    pub fn count(&self, category: CpuCategory) -> u64 {
        self.charges[cat_index(category)]
    }

    /// Fraction of `elapsed` wall time spent busy (any category).
    pub fn utilization(&self, elapsed: SimTime) -> f64 {
        let e = elapsed.as_nanos();
        if e == 0 {
            0.0
        } else {
            self.total_busy().as_nanos() as f64 / e as f64
        }
    }

    /// Fraction of `elapsed` spent in one category.
    pub fn fraction(&self, category: CpuCategory, elapsed: SimTime) -> f64 {
        let e = elapsed.as_nanos();
        if e == 0 {
            0.0
        } else {
            self.busy(category).as_nanos() as f64 / e as f64
        }
    }

    /// Idle time over `elapsed` (saturates at zero if over-committed,
    /// which indicates a modeling bug the caller should assert on).
    pub fn idle(&self, elapsed: SimTime) -> SimDuration {
        SimDuration::from_nanos(
            elapsed
                .as_nanos()
                .saturating_sub(self.total_busy().as_nanos()),
        )
    }
}

impl Default for CpuAccountant {
    fn default() -> Self {
        CpuAccountant::new()
    }
}

/// Analytic capacity helper: saturated throughput given per-request cost
/// and a fixed per-second overhead.
///
/// `throughput = (1 - overhead_fraction) / per_request`, in requests per
/// second. This closed form is used to cross-check the event-driven
/// simulations (they must agree within a few percent) and by quick
/// what-if sweeps.
pub fn saturated_throughput(per_request: SimDuration, overhead_fraction: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&overhead_fraction),
        "overhead fraction out of range"
    );
    let per_req_s = per_request.as_nanos() as f64 / 1e9;
    if per_req_s == 0.0 {
        return f64::INFINITY;
    }
    (1.0 - overhead_fraction) / per_req_s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_by_category() {
        let mut cpu = CpuAccountant::new();
        cpu.charge(CpuCategory::User, SimDuration::from_micros(10));
        cpu.charge(CpuCategory::User, SimDuration::from_micros(5));
        cpu.charge(CpuCategory::Interrupt, SimDuration::from_micros(3));
        assert_eq!(cpu.busy(CpuCategory::User), SimDuration::from_micros(15));
        assert_eq!(cpu.count(CpuCategory::User), 2);
        assert_eq!(cpu.total_busy(), SimDuration::from_micros(18));
    }

    #[test]
    fn utilization_and_idle() {
        let mut cpu = CpuAccountant::new();
        cpu.charge(CpuCategory::Kernel, SimDuration::from_micros(250));
        let t = SimTime::from_micros(1000);
        assert!((cpu.utilization(t) - 0.25).abs() < 1e-12);
        assert_eq!(cpu.idle(t), SimDuration::from_micros(750));
        assert!((cpu.fraction(CpuCategory::Kernel, t) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn idle_saturates_on_overcommit() {
        let mut cpu = CpuAccountant::new();
        cpu.charge(CpuCategory::User, SimDuration::from_micros(100));
        assert_eq!(cpu.idle(SimTime::from_micros(50)), SimDuration::ZERO);
    }

    #[test]
    fn analytic_capacity_matches_fig2_shape() {
        // Base Apache ~855 conn/s implies ~1.17 ms of CPU per request;
        // a 100 kHz null-handler timer eats 44.5 %, leaving ~475 conn/s —
        // the right end of Figure 2.
        let per_req = SimDuration::from_nanos(1_170_000);
        let base = saturated_throughput(per_req, 0.0);
        let loaded = saturated_throughput(per_req, 0.445);
        assert!((base - 855.0).abs() < 5.0, "base {base}");
        assert!((loaded - 474.0).abs() < 5.0, "loaded {loaded}");
    }

    #[test]
    #[should_panic(expected = "overhead fraction")]
    fn capacity_rejects_bad_fraction() {
        let _ = saturated_throughput(SimDuration::from_micros(1), 1.5);
    }
}
