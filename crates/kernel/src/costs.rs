//! The calibrated cost model.
//!
//! Every constant here is taken from a measurement reported in the paper
//! (see DESIGN.md section 4 for the full provenance table). The simulation
//! charges these costs to the [`crate::cpu::CpuAccountant`]; the
//! experiments' headline ratios (interrupt overhead vs. frequency,
//! soft-timer overhead, polling speedups) all derive from them.

use st_sim::SimDuration;

/// Which measured machine the cost model reproduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MachineKind {
    /// 300 MHz Pentium II running FreeBSD-2.2.6 — the paper's main testbed.
    PentiumII300,
    /// 333 MHz Pentium II — the Table 8 polling server.
    PentiumII333,
    /// 500 MHz Pentium III (Xeon) running FreeBSD-3.3 (section 5.1/5.3).
    PentiumIII500,
    /// 500 MHz Alpha 21164 (AlphaStation 500au) running FreeBSD-4.0-beta.
    Alpha21164_500,
    /// Constants fitted from st-rt microbenchmarks on the machine the
    /// reproduction itself runs on (`repro rt_calibration`), rather than
    /// transcribed from the paper.
    CalibratedHost,
}

/// CPU cost constants for one machine.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Which machine these constants model.
    pub kind: MachineKind,
    /// Total cost of one hardware timer interrupt with a null handler on a
    /// busy system, including state save/restore and the cache/TLB
    /// pollution it causes (section 5.1: 4.45 µs on the PII-300).
    pub hw_interrupt: SimDuration,
    /// *Additional* cache pollution charged when a hardware-interrupt
    /// handler does real work (Table 3 shows rate-based clocking from a
    /// hardware timer costs 4-8 % beyond the null-handler base; the
    /// per-interrupt surcharge depends on the victim's locality, so it is
    /// a parameter of the *workload*, scaled by this machine baseline).
    pub hw_handler_pollution: SimDuration,
    /// Cost of the trigger-state check when no event is due: a clock read
    /// plus one comparison (section 3: "no noticeable impact").
    pub soft_check: SimDuration,
    /// Cost of invoking a due soft-timer event handler: a procedure call
    /// plus residual cache effects (section 5.2 measures "no observable
    /// difference" in server throughput at one event per 31.5 µs, which
    /// bounds this below ~0.3 µs).
    pub soft_dispatch: SimDuration,
    /// Cost of one *profiling sample* taken from a trigger state: read
    /// the interrupted context (already in registers at a trigger state),
    /// bump one counter bucket, rearm. Derived, not directly measured:
    /// the paper's §5.2 bound caps full event dispatch below ~0.3 µs, and
    /// a sample handler does strictly less work than a general handler
    /// (no payload, no cache-cold callback), so it sits between
    /// `soft_check` and `soft_dispatch`.
    pub prof_sample: SimDuration,
    /// Cost of one *telemetry sample* taken from a periodic soft-timer
    /// event (st-scope): read a handful of registry counters, push ring
    /// points, snapshot a windowed histogram's quantiles. More work than
    /// a profiler sample (`prof_sample` touches one bucket; this walks a
    /// small counter set) but still strictly less than a general handler
    /// payload, so it sits between `prof_sample` and `soft_dispatch`.
    pub scope_sample: SimDuration,
    /// Cost of the per-request admission fast path: one inflight-counter
    /// compare plus an increment (PR 6, st-admit). All adaptive work is
    /// deferred to the periodic limit update, so this sits just above
    /// `soft_check` — the same "one compare on the hot path" economics
    /// as the trigger-state check itself.
    pub admit_check: SimDuration,
    /// Cost of one periodic limit-update event body (st-admit): fold
    /// the latency EWMA, run one integer limiter step per class, rearm.
    /// Strictly less work than a general soft-timer callback payload,
    /// so it sits below `soft_dispatch` when dispatched from a trigger
    /// state; the dispatch cost itself (`soft_dispatch` or a hardware
    /// interrupt) is charged separately by the caller.
    pub admit_update: SimDuration,
    /// A process context switch (save/restore + locality shift).
    pub context_switch: SimDuration,
    /// Kernel entry/exit for a system call (trap in, trap out).
    pub syscall_entry_exit: SimDuration,
    /// Network packet receive processing (device interrupt + IP/TCP input;
    /// section A.3: "can take more than 100 µs" total on the PII-300 —
    /// this constant is the interrupt-and-driver part).
    pub nic_interrupt: SimDuration,
    /// Polling one NIC's status registers and finding nothing.
    pub nic_poll_empty: SimDuration,
    /// Per-packet processing cost *savings* factor when packets are
    /// processed in an aggregated batch (locality gain of polling,
    /// section 4.2). Expressed as a fraction of per-packet protocol cost
    /// saved for every packet after the first in a batch. Backed out of
    /// Table 8's quota sweep (Apache 1.07 -> 1.11 over quotas 1..15
    /// implies batching saves most of the per-frame protocol cost).
    pub aggregation_saving: f64,
    /// Irreducible part of a NIC interrupt (vectoring and dispatch) that
    /// never benefits from cache residency.
    pub nic_intr_floor: SimDuration,
    /// Time constant (µs) of interrupt-handler cache residency: an
    /// interrupt arriving within ~this much of the previous one finds the
    /// handler's code and data still cached and pays proportionally less
    /// pollution. Explains why the fastest server (Flash P-HTTP, Table 8)
    /// sees the *smallest* per-interrupt cost.
    pub intr_cache_residency_us: f64,
}

impl CostModel {
    /// The paper's main testbed: 300 MHz Pentium II, FreeBSD-2.2.6.
    pub fn pentium_ii_300() -> Self {
        CostModel {
            kind: MachineKind::PentiumII300,
            hw_interrupt: SimDuration::from_nanos(4_450),
            hw_handler_pollution: SimDuration::from_nanos(1_200),
            soft_check: SimDuration::from_nanos(20),
            soft_dispatch: SimDuration::from_nanos(250),
            prof_sample: SimDuration::from_nanos(80),
            scope_sample: SimDuration::from_nanos(120),
            admit_check: SimDuration::from_nanos(60),
            admit_update: SimDuration::from_nanos(180),
            context_switch: SimDuration::from_nanos(6_000),
            syscall_entry_exit: SimDuration::from_nanos(2_000),
            nic_interrupt: SimDuration::from_nanos(7_000),
            nic_poll_empty: SimDuration::from_nanos(500),
            aggregation_saving: 0.6,
            nic_intr_floor: SimDuration::from_nanos(1_500),
            intr_cache_residency_us: 50.0,
        }
    }

    /// The Table 8 polling server: 333 MHz Pentium II. Slightly faster
    /// than the 300 MHz part; interrupt cost is dominated by memory
    /// behaviour and barely moves.
    pub fn pentium_ii_333() -> Self {
        let base = Self::pentium_ii_300();
        CostModel {
            kind: MachineKind::PentiumII333,
            hw_interrupt: SimDuration::from_nanos(4_400),
            context_switch: SimDuration::from_nanos(5_400),
            syscall_entry_exit: SimDuration::from_nanos(1_800),
            nic_interrupt: SimDuration::from_nanos(6_300),
            ..base
        }
    }

    /// 500 MHz Pentium III (Xeon): compute costs scale with clock, the
    /// interrupt cost does not (section 5.1 measures 4.36 µs — nearly
    /// unchanged), which is the paper's core scaling observation.
    pub fn pentium_iii_500() -> Self {
        CostModel {
            kind: MachineKind::PentiumIII500,
            hw_interrupt: SimDuration::from_nanos(4_360),
            hw_handler_pollution: SimDuration::from_nanos(1_100),
            soft_check: SimDuration::from_nanos(12),
            soft_dispatch: SimDuration::from_nanos(150),
            prof_sample: SimDuration::from_nanos(50),
            scope_sample: SimDuration::from_nanos(70),
            admit_check: SimDuration::from_nanos(36),
            admit_update: SimDuration::from_nanos(110),
            context_switch: SimDuration::from_nanos(3_600),
            syscall_entry_exit: SimDuration::from_nanos(1_200),
            nic_interrupt: SimDuration::from_nanos(5_500),
            nic_poll_empty: SimDuration::from_nanos(300),
            aggregation_saving: 0.6,
            nic_intr_floor: SimDuration::from_nanos(1_500),
            intr_cache_residency_us: 50.0,
        }
    }

    /// 500 MHz Alpha 21164: the paper measures an even higher interrupt
    /// cost (8.64 µs), showing the overhead is not an x86 artifact.
    pub fn alpha_21164_500() -> Self {
        CostModel {
            kind: MachineKind::Alpha21164_500,
            hw_interrupt: SimDuration::from_nanos(8_640),
            hw_handler_pollution: SimDuration::from_nanos(2_000),
            soft_check: SimDuration::from_nanos(12),
            soft_dispatch: SimDuration::from_nanos(180),
            prof_sample: SimDuration::from_nanos(60),
            scope_sample: SimDuration::from_nanos(80),
            admit_check: SimDuration::from_nanos(40),
            admit_update: SimDuration::from_nanos(130),
            context_switch: SimDuration::from_nanos(4_000),
            syscall_entry_exit: SimDuration::from_nanos(1_400),
            nic_interrupt: SimDuration::from_nanos(6_000),
            nic_poll_empty: SimDuration::from_nanos(350),
            aggregation_saving: 0.6,
            nic_intr_floor: SimDuration::from_nanos(1_500),
            intr_cache_residency_us: 50.0,
        }
    }

    /// Cost model fitted from host measurements (`repro rt_calibration`,
    /// via st-rt's probes) instead of the paper's tables.
    ///
    /// Only the two constants the soft-timer facility itself exercises —
    /// the empty trigger-state check and the event dispatch — are directly
    /// measurable from userspace. The derived handler-body costs
    /// (`prof_sample`, `scope_sample`, `admit_check`, `admit_update`) are
    /// placed by *log-interpolating* between the measured check and
    /// dispatch at the same relative positions they occupy on the PII-300
    /// (e.g. `prof_sample` sits 55 % of the log-distance from check to
    /// dispatch), which preserves every ordering invariant the simulator's
    /// tests pin (`check < prof < scope < dispatch`,
    /// `check <= admit_check < dispatch`, `admit_update <= dispatch`)
    /// for any sane measured pair. Kernel-side constants that userspace
    /// cannot observe (hardware interrupt cost, NIC costs, context
    /// switches) keep the paper's PII-300 values and must be read as
    /// provenance-labelled estimates, not measurements.
    ///
    /// A degenerate measurement (`dispatch` less than `4 x check`, which
    /// leaves no integer room for the strictly-ordered derived constants)
    /// is repaired by widening dispatch to `12.5 x check` (the PII-300
    /// ratio) so the interpolation stays well-defined.
    pub fn calibrated_host(soft_check: SimDuration, soft_dispatch: SimDuration) -> Self {
        let base = Self::pentium_ii_300();
        let check = soft_check.as_nanos().max(1);
        let mut dispatch = soft_dispatch.as_nanos();
        if dispatch < check * 4 {
            dispatch = check * base.soft_dispatch.as_nanos() / base.soft_check.as_nanos();
        }
        // Log-position of a PII-300 constant between its check & dispatch.
        let position = |value: SimDuration| -> f64 {
            let lo = base.soft_check.as_nanos() as f64;
            let hi = base.soft_dispatch.as_nanos() as f64;
            (value.as_nanos() as f64 / lo).ln() / (hi / lo).ln()
        };
        let interpolate = |t: f64| -> SimDuration {
            let lo = check as f64;
            let hi = dispatch as f64;
            SimDuration::from_nanos((lo * (hi / lo).powf(t)).round() as u64)
        };
        CostModel {
            kind: MachineKind::CalibratedHost,
            soft_check: SimDuration::from_nanos(check),
            soft_dispatch: SimDuration::from_nanos(dispatch),
            prof_sample: interpolate(position(base.prof_sample)),
            scope_sample: interpolate(position(base.scope_sample)),
            admit_check: interpolate(position(base.admit_check)),
            admit_update: interpolate(position(base.admit_update)),
            ..base
        }
    }

    /// Rough CPU clock ratio of this machine relative to the PII-300;
    /// used to scale *compute* (not interrupt) costs of workloads, as in
    /// the paper's Xeon comparison (Table 1 last row: the trigger interval
    /// mean scales with clock speed).
    pub fn compute_speedup(&self) -> f64 {
        match self.kind {
            MachineKind::PentiumII300 => 1.0,
            MachineKind::PentiumII333 => 333.0 / 300.0,
            MachineKind::PentiumIII500 => 500.0 / 300.0,
            MachineKind::Alpha21164_500 => 500.0 / 300.0,
            // Workload compute costs are expressed in the host's own
            // measured terms, so no cross-machine scaling applies.
            MachineKind::CalibratedHost => 1.0,
        }
    }

    /// Scales a PII-300 compute cost to this machine.
    pub fn scale_compute(&self, base: SimDuration) -> SimDuration {
        SimDuration::from_nanos((base.as_nanos() as f64 / self.compute_speedup()).round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_interrupt_costs() {
        assert_eq!(CostModel::pentium_ii_300().hw_interrupt.as_nanos(), 4_450);
        assert_eq!(CostModel::pentium_iii_500().hw_interrupt.as_nanos(), 4_360);
        assert_eq!(CostModel::alpha_21164_500().hw_interrupt.as_nanos(), 8_640);
    }

    #[test]
    fn interrupt_cost_does_not_scale_with_clock() {
        let p2 = CostModel::pentium_ii_300();
        let p3 = CostModel::pentium_iii_500();
        let ratio = p2.hw_interrupt.as_nanos() as f64 / p3.hw_interrupt.as_nanos() as f64;
        assert!(
            (ratio - 1.0).abs() < 0.05,
            "interrupt cost should be ~flat across CPU generations"
        );
    }

    #[test]
    fn compute_costs_do_scale_with_clock() {
        let p3 = CostModel::pentium_iii_500();
        let base = SimDuration::from_micros(30);
        let scaled = p3.scale_compute(base);
        let ratio = base.as_nanos() as f64 / scaled.as_nanos() as f64;
        assert!((ratio - 500.0 / 300.0).abs() < 0.01);
    }

    #[test]
    fn aggregation_saving_is_a_fraction() {
        for m in [
            CostModel::pentium_ii_300(),
            CostModel::pentium_iii_500(),
            CostModel::alpha_21164_500(),
        ] {
            assert!((0.0..1.0).contains(&m.aggregation_saving));
        }
    }

    #[test]
    fn soft_check_is_orders_cheaper_than_interrupt() {
        let m = CostModel::pentium_ii_300();
        assert!(m.hw_interrupt.as_nanos() > 100 * m.soft_check.as_nanos());
        assert!(m.hw_interrupt.as_nanos() > 10 * m.soft_dispatch.as_nanos());
    }

    #[test]
    fn prof_sample_sits_between_check_and_dispatch() {
        for m in [
            CostModel::pentium_ii_300(),
            CostModel::pentium_ii_333(),
            CostModel::pentium_iii_500(),
            CostModel::alpha_21164_500(),
        ] {
            assert!(m.prof_sample.as_nanos() > m.soft_check.as_nanos());
            assert!(m.prof_sample.as_nanos() < m.soft_dispatch.as_nanos());
            // The acceptance contrast requires soft sampling to stay below
            // 1 % of the CPU at 100 kHz: 100k * prof_sample < 0.01 s.
            assert!(100_000 * m.prof_sample.as_nanos() < 10_000_000);
        }
    }

    #[test]
    fn scope_sample_sits_between_prof_sample_and_dispatch() {
        for m in [
            CostModel::pentium_ii_300(),
            CostModel::pentium_ii_333(),
            CostModel::pentium_iii_500(),
            CostModel::alpha_21164_500(),
        ] {
            assert!(m.scope_sample.as_nanos() > m.prof_sample.as_nanos());
            assert!(m.scope_sample.as_nanos() < m.soft_dispatch.as_nanos());
            // The PR 7 acceptance bound: 1 kHz telemetry sampling
            // dispatched from trigger states (dispatch + sample body)
            // stays well under 0.1 % CPU.
            let per_sec = 1_000 * (m.soft_dispatch.as_nanos() + m.scope_sample.as_nanos());
            assert!(per_sec < 1_000_000, "1 kHz sampling costs {per_sec} ns/s");
        }
    }

    #[test]
    fn admit_costs_follow_the_trigger_state_economics() {
        for m in [
            CostModel::pentium_ii_300(),
            CostModel::pentium_ii_333(),
            CostModel::pentium_iii_500(),
            CostModel::alpha_21164_500(),
        ] {
            // Fast path barely heavier than the trigger-state check,
            // update body lighter than a general callback dispatch.
            assert!(m.admit_check.as_nanos() >= m.soft_check.as_nanos());
            assert!(m.admit_check.as_nanos() < m.soft_dispatch.as_nanos());
            assert!(m.admit_update.as_nanos() <= m.soft_dispatch.as_nanos());
            // The PR 6 acceptance bound: 1 kHz limit updates dispatched
            // from trigger states (dispatch + body) stay under 1 % CPU.
            let per_sec = 1_000 * (m.soft_dispatch.as_nanos() + m.admit_update.as_nanos());
            assert!(per_sec < 10_000_000, "1 kHz updates cost {per_sec} ns/s");
        }
    }

    #[test]
    fn calibrated_host_preserves_ordering_invariants() {
        for (check, dispatch) in [(20, 250), (8, 90), (150, 3_000), (1, 2)] {
            let m = CostModel::calibrated_host(
                SimDuration::from_nanos(check),
                SimDuration::from_nanos(dispatch),
            );
            assert_eq!(m.kind, MachineKind::CalibratedHost);
            assert_eq!(m.soft_check.as_nanos(), check);
            assert!(m.prof_sample.as_nanos() > m.soft_check.as_nanos());
            assert!(m.prof_sample.as_nanos() < m.scope_sample.as_nanos());
            assert!(m.scope_sample.as_nanos() < m.soft_dispatch.as_nanos());
            assert!(m.admit_check.as_nanos() >= m.soft_check.as_nanos());
            assert!(m.admit_check.as_nanos() < m.soft_dispatch.as_nanos());
            assert!(m.admit_update.as_nanos() <= m.soft_dispatch.as_nanos());
            assert_eq!(m.compute_speedup(), 1.0);
        }
    }

    #[test]
    fn calibrated_host_repairs_degenerate_measurements() {
        // dispatch <= check: impossible physically, but a loaded machine
        // can produce it; the constructor must stay well-defined.
        let m =
            CostModel::calibrated_host(SimDuration::from_nanos(100), SimDuration::from_nanos(40));
        assert!(m.soft_dispatch.as_nanos() > m.soft_check.as_nanos());
        assert!(m.prof_sample.as_nanos() > m.soft_check.as_nanos());
        assert!(m.prof_sample.as_nanos() < m.soft_dispatch.as_nanos());
        // Zero check is clamped to 1 ns, not a division by zero.
        let z = CostModel::calibrated_host(SimDuration::from_nanos(0), SimDuration::from_nanos(0));
        assert!(z.soft_check.as_nanos() >= 1);
        assert!(z.soft_dispatch.as_nanos() > z.soft_check.as_nanos());
    }

    #[test]
    fn calibrated_host_matching_pii300_reproduces_pii300_derived_costs() {
        let base = CostModel::pentium_ii_300();
        let m = CostModel::calibrated_host(base.soft_check, base.soft_dispatch);
        // Interpolating at the PII-300's own positions is the identity
        // (up to rounding).
        for (got, want) in [
            (m.prof_sample, base.prof_sample),
            (m.scope_sample, base.scope_sample),
            (m.admit_check, base.admit_check),
            (m.admit_update, base.admit_update),
        ] {
            let diff = got.as_nanos().abs_diff(want.as_nanos());
            assert!(diff <= 1, "{got:?} vs {want:?}");
        }
    }

    #[test]
    fn fig3_overhead_at_100khz_is_about_45_percent() {
        // Sanity: 100k interrupts/s at 4.45 us each consumes ~44.5 % of a
        // second — the paper's Figure 3 end point.
        let m = CostModel::pentium_ii_300();
        let frac = 100_000.0 * m.hw_interrupt.as_nanos() as f64 / 1e9;
        assert!((frac - 0.445).abs() < 0.001);
    }
}
