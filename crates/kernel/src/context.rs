//! Execution-context tracking: what the simulated machine is running,
//! as a stack of labeled frames with exact per-stack time accounting.
//!
//! This is the ground-truth side of the statistical profiler (`st-prof`,
//! DESIGN.md section 10). Simulations push a frame whenever the machine
//! changes what it executes — an experiment phase, user-mode work, a
//! kernel subsystem, an interrupt handler, the idle loop — and the stack
//! accrues *exact* simulated time to each distinct folded stack (the
//! `outer;inner;leaf` rendering used by flame-graph tools). A sampling
//! profiler driven from soft-timer events reads [`ContextStack::folded`]
//! at each sample; comparing its sample shares against
//! [`ContextTruth`]'s exact shares is what validates the profiler.
//!
//! The stack is deliberately lightweight: frames are static labels, the
//! folded rendering is cached so sampling is a borrow (no allocation),
//! and accounting only touches a `BTreeMap` when the stack actually
//! changes — not per sample, not per trigger.

use std::collections::BTreeMap;

use st_sim::SimTime;

/// What kind of code a context frame represents.
///
/// Kinds mirror the CPU accounting categories ([`crate::cpu::CpuCategory`])
/// plus [`ContextKind::Phase`] for experiment-level grouping frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ContextKind {
    /// An experiment phase (outermost grouping frame).
    Phase,
    /// User-mode application code.
    User,
    /// Kernel code on behalf of the application (syscalls, TCP/IP).
    Kernel,
    /// A hardware interrupt handler.
    Interrupt,
    /// Soft-timer checks and event handlers.
    SoftTimer,
    /// The idle loop.
    Idle,
}

impl ContextKind {
    /// Every kind, in presentation order.
    pub const ALL: [ContextKind; 6] = [
        ContextKind::Phase,
        ContextKind::User,
        ContextKind::Kernel,
        ContextKind::Interrupt,
        ContextKind::SoftTimer,
        ContextKind::Idle,
    ];

    /// Short lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            ContextKind::Phase => "phase",
            ContextKind::User => "user",
            ContextKind::Kernel => "kernel",
            ContextKind::Interrupt => "interrupt",
            ContextKind::SoftTimer => "softtimer",
            ContextKind::Idle => "idle",
        }
    }
}

/// One frame of the context stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContextFrame {
    /// The frame's kind.
    pub kind: ContextKind,
    /// The frame's label, as it appears in folded stacks.
    pub label: &'static str,
}

/// Exact time-per-folded-stack accounting — the profiler's ground truth.
#[derive(Debug, Clone, Default)]
pub struct ContextTruth {
    /// Nanoseconds accrued per folded stack.
    pub ns: BTreeMap<String, u64>,
    /// Total attributed nanoseconds (sum of `ns` values).
    pub total_ns: u64,
}

impl ContextTruth {
    /// Exact share of attributed time spent in `folded`, in `[0, 1]`.
    pub fn share(&self, folded: &str) -> f64 {
        if self.total_ns == 0 {
            0.0
        } else {
            self.ns.get(folded).copied().unwrap_or(0) as f64 / self.total_ns as f64
        }
    }

    /// `(folded, share)` pairs in lexicographic folded order.
    pub fn shares(&self) -> Vec<(String, f64)> {
        self.ns.keys().map(|k| (k.clone(), self.share(k))).collect()
    }
}

/// A stack of execution-context frames with exact time accounting.
///
/// Time accrues to the folded stack that is active between two stack
/// mutations; time while the stack is *empty* is unattributed (keep a
/// base [`ContextKind::Phase`] frame pushed for gap-free accounting).
#[derive(Debug)]
pub struct ContextStack {
    frames: Vec<ContextFrame>,
    /// Cached `a;b;c` rendering of `frames` (empty when no frames).
    folded: String,
    /// When the current folded stack became active.
    since: SimTime,
    truth: ContextTruth,
}

impl ContextStack {
    /// Creates an empty stack; accounting starts at `start`.
    pub fn new(start: SimTime) -> Self {
        ContextStack {
            frames: Vec::new(),
            folded: String::new(),
            since: start,
            truth: ContextTruth::default(),
        }
    }

    /// The current folded stack (`outer;inner;leaf`), or `""` when empty.
    ///
    /// This is the profiler's sampling hook: a borrow of a cached string,
    /// no allocation, no map lookup.
    pub fn folded(&self) -> &str {
        &self.folded
    }

    /// The innermost frame, if any.
    pub fn leaf(&self) -> Option<ContextFrame> {
        self.frames.last().copied()
    }

    /// Current stack depth.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Accrues elapsed time to the active folded stack.
    fn accrue(&mut self, now: SimTime) {
        if !self.frames.is_empty() {
            let ns = now.since(self.since).as_nanos();
            if ns > 0 {
                *self.truth.ns.entry(self.folded.clone()).or_insert(0) += ns;
                self.truth.total_ns += ns;
            }
        }
        self.since = now;
    }

    /// Pushes a frame at `now`; time before the push accrues to the
    /// previous stack.
    pub fn enter(&mut self, now: SimTime, kind: ContextKind, label: &'static str) {
        self.accrue(now);
        self.frames.push(ContextFrame { kind, label });
        if !self.folded.is_empty() {
            self.folded.push(';');
        }
        self.folded.push_str(label);
    }

    /// Pops the innermost frame at `now`, returning it (or `None` when
    /// the stack was already empty).
    pub fn exit(&mut self, now: SimTime) -> Option<ContextFrame> {
        self.accrue(now);
        let popped = self.frames.pop();
        if popped.is_some() {
            self.folded.truncate(self.folded.rfind(';').unwrap_or(0));
        }
        popped
    }

    /// Replaces the innermost frame in one step (the common "context
    /// switch at the same depth" case), at `now`.
    pub fn switch(&mut self, now: SimTime, kind: ContextKind, label: &'static str) {
        self.exit(now);
        self.enter(now, kind, label);
    }

    /// Closes accounting at `now` and returns the exact ground truth.
    ///
    /// The stack remains usable; calling `finish` again later extends the
    /// accounting (the returned truth is a snapshot by clone).
    pub fn finish(&mut self, now: SimTime) -> ContextTruth {
        self.accrue(now);
        self.truth.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimTime {
        SimTime::from_micros(n)
    }

    #[test]
    fn exact_accounting_by_folded_stack() {
        let mut cs = ContextStack::new(us(0));
        cs.enter(us(0), ContextKind::Phase, "steady");
        cs.enter(us(0), ContextKind::User, "user");
        cs.enter(us(30), ContextKind::Kernel, "kernel");
        cs.exit(us(50)); // back to steady;user
        cs.exit(us(70)); // back to steady
        let truth = cs.finish(us(100));
        assert_eq!(truth.ns.get("steady;user").copied(), Some(50_000));
        assert_eq!(truth.ns.get("steady;user;kernel").copied(), Some(20_000));
        assert_eq!(truth.ns.get("steady").copied(), Some(30_000));
        assert_eq!(truth.total_ns, 100_000);
        assert!((truth.share("steady;user") - 0.5).abs() < 1e-12);
    }

    #[test]
    fn folded_cache_matches_frames() {
        let mut cs = ContextStack::new(us(0));
        assert_eq!(cs.folded(), "");
        cs.enter(us(0), ContextKind::Phase, "p");
        cs.enter(us(1), ContextKind::User, "u");
        assert_eq!(cs.folded(), "p;u");
        cs.switch(us(2), ContextKind::Idle, "idle");
        assert_eq!(cs.folded(), "p;idle");
        assert_eq!(cs.leaf().map(|f| f.kind), Some(ContextKind::Idle));
        cs.exit(us(3));
        assert_eq!(cs.folded(), "p");
        cs.exit(us(4));
        assert_eq!(cs.folded(), "");
        assert_eq!(cs.exit(us(5)), None);
        assert_eq!(cs.depth(), 0);
    }

    #[test]
    fn empty_stack_time_is_unattributed() {
        let mut cs = ContextStack::new(us(0));
        // 10 us with nothing pushed.
        cs.enter(us(10), ContextKind::Phase, "p");
        let truth = cs.finish(us(20));
        assert_eq!(truth.total_ns, 10_000);
        assert_eq!(truth.ns.len(), 1);
    }

    #[test]
    fn shares_sum_to_one() {
        let mut cs = ContextStack::new(us(0));
        cs.enter(us(0), ContextKind::Phase, "a");
        cs.switch(us(13), ContextKind::Phase, "b");
        cs.switch(us(40), ContextKind::Phase, "c");
        let truth = cs.finish(us(100));
        let sum: f64 = truth.shares().iter().map(|(_, s)| s).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((truth.share("a") - 0.13).abs() < 1e-12);
    }

    #[test]
    fn finish_is_a_resumable_snapshot() {
        let mut cs = ContextStack::new(us(0));
        cs.enter(us(0), ContextKind::User, "u");
        let t1 = cs.finish(us(10));
        let t2 = cs.finish(us(30));
        assert_eq!(t1.total_ns, 10_000);
        assert_eq!(t2.total_ns, 30_000);
    }
}
