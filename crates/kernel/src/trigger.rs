//! Trigger-state sources and the interval recorder.
//!
//! Section 3 lists the trigger states (syscall return, exception return,
//! interrupt return, idle loop) plus the strategic kernel loops added in
//! section 5.2 (the TCP/IP output loop and the TCP timer loop). Section
//! 5.5 accounts trigger states by source (Table 2) and Figure 6 shows the
//! interval CDF with each source removed — both need per-source tagging,
//! which [`TriggerRecorder`] provides.

use st_sim::{SimDuration, SimTime};
use st_stats::{Histogram, Summary};

/// Where a trigger state came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TriggerSource {
    /// Return path of a system call.
    Syscall,
    /// Return path of an exception/trap (page fault, arithmetic, ...).
    Trap,
    /// The IP output path — one trigger per transmitted IP packet
    /// (the "ip-output" source of Table 2).
    IpOutput,
    /// Return path of a network interface interrupt ("ip-intr").
    IpIntr,
    /// Other network-subsystem loops: TCP timer processing etc.
    /// ("tcpip-others").
    TcpipOther,
    /// An iteration of the idle loop.
    Idle,
    /// Return path of a non-network device interrupt (disk, backup timer).
    OtherIntr,
}

impl TriggerSource {
    /// All sources, in Table 2's presentation order (idle and other
    /// interrupts last; the paper folds them into the five shown).
    pub const ALL: [TriggerSource; 7] = [
        TriggerSource::Syscall,
        TriggerSource::IpOutput,
        TriggerSource::IpIntr,
        TriggerSource::TcpipOther,
        TriggerSource::Trap,
        TriggerSource::Idle,
        TriggerSource::OtherIntr,
    ];

    /// Table-2-style label.
    pub fn label(self) -> &'static str {
        match self {
            TriggerSource::Syscall => "syscalls",
            TriggerSource::Trap => "traps",
            TriggerSource::IpOutput => "ip-output",
            TriggerSource::IpIntr => "ip-intr",
            TriggerSource::TcpipOther => "tcpip-others",
            TriggerSource::Idle => "idle",
            TriggerSource::OtherIntr => "other-intr",
        }
    }

    /// Metric key used by the trace registry for per-source counts.
    pub fn counter_key(self) -> &'static str {
        match self {
            TriggerSource::Syscall => "kernel.trigger.syscalls",
            TriggerSource::Trap => "kernel.trigger.traps",
            TriggerSource::IpOutput => "kernel.trigger.ip-output",
            TriggerSource::IpIntr => "kernel.trigger.ip-intr",
            TriggerSource::TcpipOther => "kernel.trigger.tcpip-others",
            TriggerSource::Idle => "kernel.trigger.idle",
            TriggerSource::OtherIntr => "kernel.trigger.other-intr",
        }
    }

    /// Index into dense per-source arrays.
    pub fn index(self) -> usize {
        match self {
            TriggerSource::Syscall => 0,
            TriggerSource::IpOutput => 1,
            TriggerSource::IpIntr => 2,
            TriggerSource::TcpipOther => 3,
            TriggerSource::Trap => 4,
            TriggerSource::Idle => 5,
            TriggerSource::OtherIntr => 6,
        }
    }
}

/// Records trigger-state times and inter-trigger intervals, per source.
///
/// Intervals are measured between *successive trigger states of any
/// source* (that is what bounds soft-timer event delay); each interval is
/// attributed to the source of the trigger that *ended* it, matching the
/// paper's per-source accounting.
///
/// Optionally keeps the raw tagged sequence (time, source) so Figure 6's
/// "remove one source" analysis can be replayed offline.
#[derive(Debug)]
pub struct TriggerRecorder {
    last: Option<SimTime>,
    /// Interval stats over all sources, in microseconds.
    pub all: Summary,
    /// 1 µs-bucket histogram to 1 ms (the paper's CDF range and the max
    /// the backup interrupt allows).
    pub hist: Histogram,
    /// Per-source trigger counts.
    counts: [u64; 7],
    /// Triggers counted independently of the per-source split, so
    /// [`TriggerRecorder::total`] can cross-check the parts in debug
    /// builds.
    total: u64,
    /// Per-source interval summaries.
    per_source: [Summary; 7],
    /// Raw tagged sequence, if enabled.
    raw: Option<Vec<(SimTime, TriggerSource)>>,
    /// Largest interval seen, in µs.
    max_us: f64,
}

impl TriggerRecorder {
    /// Creates a recorder; `keep_raw` retains the full tagged sequence
    /// (needed for Figure 5's windowed medians and Figure 6's source
    /// knock-out analysis).
    pub fn new(keep_raw: bool) -> Self {
        TriggerRecorder {
            last: None,
            all: Summary::new(),
            hist: Histogram::new(1.0, 1_001),
            counts: [0; 7],
            total: 0,
            per_source: Default::default(),
            raw: if keep_raw { Some(Vec::new()) } else { None },
            max_us: 0.0,
        }
    }

    /// Records a trigger state at `now` from `source`.
    pub fn record(&mut self, now: SimTime, source: TriggerSource) {
        let tracing = st_trace::active();
        if let Some(last) = self.last {
            let interval = now.since(last).as_micros_f64();
            self.all.record(interval);
            self.hist.record(interval);
            self.per_source[source.index()].record(interval);
            if interval > self.max_us {
                self.max_us = interval;
            }
            if tracing {
                st_trace::observe("kernel.trigger.interval_us", interval);
            }
        }
        if tracing {
            st_trace::count(source.counter_key(), 1);
            st_trace::emit(
                st_trace::Category::Kernel,
                source.label(),
                now.as_micros(),
                source.index() as u64,
                0,
            );
        }
        self.counts[source.index()] += 1;
        self.total += 1;
        self.last = Some(now);
        if let Some(raw) = &mut self.raw {
            raw.push((now, source));
        }
    }

    /// Number of triggers recorded for `source`.
    pub fn count(&self, source: TriggerSource) -> u64 {
        self.counts[source.index()]
    }

    /// Total triggers recorded.
    ///
    /// In debug builds this checks the independently maintained total
    /// against the sum of the per-source counts, so a new
    /// [`TriggerSource`] that misses its slot in the split cannot leak
    /// out of the accounting silently.
    pub fn total(&self) -> u64 {
        debug_assert_eq!(
            self.total,
            self.counts.iter().sum::<u64>(),
            "per-source trigger counts disagree with the total"
        );
        self.total
    }

    /// Fraction of all triggers contributed by `source` (Table 2).
    pub fn fraction(&self, source: TriggerSource) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.counts[source.index()] as f64 / total as f64
        }
    }

    /// Interval summary for intervals ended by `source`.
    pub fn source_summary(&self, source: TriggerSource) -> &Summary {
        &self.per_source[source.index()]
    }

    /// Largest inter-trigger interval observed, µs.
    pub fn max_interval_us(&self) -> f64 {
        self.max_us
    }

    /// Median interval in µs (1 µs-bucket interpolation).
    pub fn median_us(&self) -> f64 {
        self.hist.median().unwrap_or(0.0)
    }

    /// Fraction of intervals above `threshold` µs (Table 1's `> 100 µs`
    /// and `> 150 µs` columns).
    pub fn fraction_above_us(&self, threshold: f64) -> f64 {
        self.hist.fraction_above(threshold)
    }

    /// The raw tagged sequence, when enabled.
    pub fn raw(&self) -> Option<&[(SimTime, TriggerSource)]> {
        self.raw.as_deref()
    }

    /// Replays the raw sequence with `excluded` sources removed, returning
    /// the interval histogram of the remaining trigger stream (Figure 6).
    ///
    /// Returns `None` when the recorder was built without `keep_raw`.
    pub fn without_sources(&self, excluded: &[TriggerSource]) -> Option<Histogram> {
        let raw = self.raw.as_ref()?;
        let mut hist = Histogram::new(1.0, 1_001);
        let mut last: Option<SimTime> = None;
        for &(t, src) in raw {
            if excluded.contains(&src) {
                continue;
            }
            if let Some(prev) = last {
                hist.record(t.since(prev).as_micros_f64());
            }
            last = Some(t);
        }
        Some(hist)
    }

    /// Per-window medians of the trigger interval over the raw sequence
    /// (Figure 5). `window` is the aggregation interval (1 ms / 10 ms in
    /// the paper). Returns `(window_start_seconds, median_us)` pairs, or
    /// `None` without raw data.
    pub fn windowed_medians(&self, window: SimDuration) -> Option<Vec<(f64, f64)>> {
        let raw = self.raw.as_ref()?;
        let mut wm = st_stats::WindowedMedian::new(window.as_secs_f64());
        let mut last: Option<SimTime> = None;
        for &(t, _) in raw {
            if let Some(prev) = last {
                wm.record(t.as_secs_f64(), t.since(prev).as_micros_f64());
            }
            last = Some(t);
        }
        Some(wm.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimTime {
        SimTime::from_micros(n)
    }

    #[test]
    fn intervals_attributed_to_ending_source() {
        let mut r = TriggerRecorder::new(false);
        r.record(us(0), TriggerSource::Syscall);
        r.record(us(10), TriggerSource::IpOutput);
        r.record(us(40), TriggerSource::Syscall);
        assert_eq!(r.total(), 3);
        assert_eq!(r.count(TriggerSource::Syscall), 2);
        assert_eq!(r.all.count(), 2, "first trigger starts no interval");
        assert_eq!(r.source_summary(TriggerSource::IpOutput).mean(), 10.0);
        assert_eq!(r.source_summary(TriggerSource::Syscall).mean(), 30.0);
        assert_eq!(r.max_interval_us(), 30.0);
    }

    #[test]
    fn total_matches_sum_of_per_source_counts() {
        let mut r = TriggerRecorder::new(false);
        for i in 0..50u64 {
            let src = TriggerSource::ALL[(i % TriggerSource::ALL.len() as u64) as usize];
            r.record(us(i * 7), src);
        }
        // total() itself debug-asserts the invariant; recompute it here
        // so release builds exercise the check too.
        let parts: u64 = TriggerSource::ALL.iter().map(|&s| r.count(s)).sum();
        assert_eq!(r.total(), parts);
        assert_eq!(r.total(), 50);
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut r = TriggerRecorder::new(false);
        for i in 0..100u64 {
            let src = if i % 2 == 0 {
                TriggerSource::Syscall
            } else {
                TriggerSource::Trap
            };
            r.record(us(i), src);
        }
        let total: f64 = TriggerSource::ALL.iter().map(|&s| r.fraction(s)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((r.fraction(TriggerSource::Syscall) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn knockout_removes_source() {
        let mut r = TriggerRecorder::new(true);
        // Syscalls every 10 µs; traps halfway between.
        for i in 0..50u64 {
            r.record(us(i * 10), TriggerSource::Syscall);
            r.record(us(i * 10 + 5), TriggerSource::Trap);
        }
        let with_all = r.hist.median().unwrap();
        assert!(with_all <= 6.0, "median with traps ~5 µs, got {with_all}");
        let without = r.without_sources(&[TriggerSource::Trap]).unwrap();
        let median = without.median().unwrap();
        assert!(
            (9.0..=11.0).contains(&median),
            "without traps the stream is 10 µs-periodic, got {median}"
        );
    }

    #[test]
    fn knockout_requires_raw() {
        let r = TriggerRecorder::new(false);
        assert!(r.without_sources(&[TriggerSource::Trap]).is_none());
        assert!(r.windowed_medians(SimDuration::from_millis(1)).is_none());
    }

    #[test]
    fn windowed_medians_split_phases() {
        let mut r = TriggerRecorder::new(true);
        // Phase 1 (first second): 10 µs intervals. Phase 2: 50 µs.
        let mut t = 0u64;
        while t < 1_000_000 {
            r.record(SimTime::from_micros(t), TriggerSource::Syscall);
            t += 10;
        }
        while t < 2_000_000 {
            r.record(SimTime::from_micros(t), TriggerSource::Syscall);
            t += 50;
        }
        let w = r.windowed_medians(SimDuration::from_millis(100)).unwrap();
        let first = w.iter().find(|&&(s, _)| s < 0.9).unwrap().1;
        let late = w.iter().rev().find(|&&(s, _)| s > 1.1).unwrap().1;
        assert!((first - 10.0).abs() < 1.0, "phase 1 median {first}");
        assert!((late - 50.0).abs() < 1.0, "phase 2 median {late}");
    }

    #[test]
    fn fraction_above_thresholds() {
        let mut r = TriggerRecorder::new(false);
        r.record(us(0), TriggerSource::Syscall);
        r.record(us(50), TriggerSource::Syscall); // 50
        r.record(us(200), TriggerSource::Syscall); // 150
        r.record(us(500), TriggerSource::Syscall); // 300
        r.record(us(520), TriggerSource::Syscall); // 20
        assert!((r.fraction_above_us(100.0) - 0.5).abs() < 1e-12);
        assert!((r.fraction_above_us(150.0) - 0.25).abs() < 1e-12);
    }
}
