//! The soft-timer facility wired to simulated time.
//!
//! [`SoftClock`] owns a [`SoftTimerCore`] whose ticks are the simulated
//! measurement clock (1 MHz by default, i.e. one tick per microsecond of
//! [`SimTime`]) and a [`TriggerRecorder`]. Machine simulations call
//! [`SoftClock::trigger`] at every trigger state and
//! [`SoftClock::backup_tick`] from the periodic hardware timer.

use st_core::facility::{Config, Expired, SoftTimerCore};
use st_sim::SimTime;
use st_wheel::TimerHandle;

use crate::trigger::{TriggerRecorder, TriggerSource};

/// Simulated-kernel soft-timer clock.
#[derive(Debug)]
pub struct SoftClock<P> {
    core: SoftTimerCore<P>,
    recorder: TriggerRecorder,
    measure_hz: u64,
}

impl<P> SoftClock<P> {
    /// Creates a soft clock with the paper's typical resolutions (1 MHz
    /// measurement, 1 kHz backup interrupt).
    ///
    /// `keep_raw` retains the tagged trigger sequence for the Figure 5/6
    /// analyses (costs memory: one entry per trigger).
    pub fn new(keep_raw: bool) -> Self {
        SoftClock::with_config(Config::default(), keep_raw)
    }

    /// Creates a soft clock with an explicit facility configuration.
    pub fn with_config(config: Config, keep_raw: bool) -> Self {
        SoftClock {
            measure_hz: config.measure_hz,
            core: SoftTimerCore::new(config),
            recorder: TriggerRecorder::new(keep_raw),
        }
    }

    /// Converts simulated time to measurement-clock ticks.
    pub fn ticks(&self, t: SimTime) -> u64 {
        t.ticks(self.measure_hz)
    }

    /// The trigger recorder (Figure 4-6 / Table 1-2 data).
    pub fn recorder(&self) -> &TriggerRecorder {
        &self.recorder
    }

    /// The underlying facility.
    pub fn core(&self) -> &SoftTimerCore<P> {
        &self.core
    }

    /// Mutable access to the underlying facility.
    pub fn core_mut(&mut self) -> &mut SoftTimerCore<P> {
        &mut self.core
    }

    /// Schedules an event at least `delta_ticks` measurement ticks after
    /// `now`.
    pub fn schedule(&mut self, now: SimTime, delta_ticks: u64, payload: P) -> TimerHandle {
        let t = self.ticks(now);
        self.core.schedule(t, delta_ticks, payload)
    }

    /// Cancels a pending event.
    pub fn cancel(&mut self, handle: TimerHandle) -> Option<P> {
        self.core.cancel(handle)
    }

    /// A trigger state at `now` from `source`: records the interval and
    /// polls the facility. Due events are appended to `out`.
    // st-lint: hot-path
    pub fn trigger(
        &mut self,
        now: SimTime,
        source: TriggerSource,
        out: &mut Vec<Expired<P>>,
    ) -> usize {
        self.recorder.record(now, source);
        let t = self.ticks(now);
        self.core.poll(t, out)
    }

    /// Records a trigger state without polling (used when measuring the
    /// trigger distribution alone, with no events scheduled).
    pub fn trigger_no_poll(&mut self, now: SimTime, source: TriggerSource) {
        self.recorder.record(now, source);
    }

    /// The backup hardware-timer sweep at `now`. Note the sweep itself is
    /// also an interrupt return, i.e. a trigger state — callers should
    /// *additionally* call [`SoftClock::trigger`] with
    /// [`TriggerSource::OtherIntr`] if they want the interval recorded;
    /// this method only sweeps overdue events.
    pub fn backup_tick(&mut self, now: SimTime, out: &mut Vec<Expired<P>>) -> usize {
        let t = self.ticks(now);
        if st_trace::active() {
            st_trace::count("kernel.backup_ticks", 1);
            st_trace::emit(
                st_trace::Category::Kernel,
                "kernel.backup_tick",
                now.as_micros(),
                self.core.pending() as u64,
                0,
            );
        }
        self.core.interrupt_sweep(t, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_and_fire_through_trigger() {
        let mut sc: SoftClock<&str> = SoftClock::new(false);
        sc.schedule(SimTime::from_micros(0), 40, "ev");
        let mut out = Vec::new();
        // Trigger at 35 µs: not due.
        assert_eq!(
            sc.trigger(SimTime::from_micros(35), TriggerSource::Syscall, &mut out),
            0
        );
        // Trigger at 52 µs: due (> 41 ticks).
        assert_eq!(
            sc.trigger(SimTime::from_micros(52), TriggerSource::Syscall, &mut out),
            1
        );
        assert_eq!(out[0].payload, "ev");
        assert_eq!(out[0].fired_at, 52);
    }

    #[test]
    fn triggers_feed_the_recorder() {
        let mut sc: SoftClock<()> = SoftClock::new(false);
        let mut out = Vec::new();
        sc.trigger(SimTime::from_micros(10), TriggerSource::Syscall, &mut out);
        sc.trigger(SimTime::from_micros(30), TriggerSource::IpOutput, &mut out);
        assert_eq!(sc.recorder().total(), 2);
        assert_eq!(sc.recorder().all.mean(), 20.0);
    }

    #[test]
    fn backup_tick_sweeps_overdue() {
        let mut sc: SoftClock<u32> = SoftClock::new(false);
        sc.schedule(SimTime::ZERO, 40, 7);
        let mut out = Vec::new();
        sc.backup_tick(SimTime::from_millis(1), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(
            out[0].origin,
            st_core::facility::FireOrigin::BackupInterrupt
        );
        // Worst-case delay is bounded by the 1 ms backup period.
        assert!(out[0].delay() <= 1000);
    }

    #[test]
    fn tick_conversion_is_micros_at_default_resolution() {
        let sc: SoftClock<()> = SoftClock::new(false);
        assert_eq!(sc.ticks(SimTime::from_micros(123)), 123);
        assert_eq!(sc.ticks(SimTime::from_nanos(1_999)), 1);
    }
}
