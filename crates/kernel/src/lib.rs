//! Simulated operating-system kernel substrate.
//!
//! The paper modifies FreeBSD-2.2.6 on Pentium-II hardware; this crate is
//! the substitute (DESIGN.md section 2): passive, composable components
//! that machine-level simulations (in `st-http`, `st-tcp`,
//! `st-workloads`) assemble and drive from a discrete-event engine.
//!
//! - [`costs`] — the calibrated cost model: every constant is a number the
//!   paper *measured* (4.45 µs per hardware interrupt on a busy PII-300,
//!   etc.).
//! - [`trigger`] — trigger-state sources and the interval recorder behind
//!   Figures 4-6 and Tables 1-2.
//! - [`softclock`] — the soft-timer facility wired to simulated time and
//!   the trigger recorder.
//! - [`hwtimer`] — the periodic hardware interval timer (the "8253"),
//!   including interrupt masking and lost ticks.
//! - [`interrupts`] — interrupt controller: masking, pending latch,
//!   per-source counts.
//! - [`cpu`] — CPU time accounting by category; utilization and capacity
//!   queries used by the saturation experiments.
//! - [`sched`] — a round-robin process scheduler with FreeBSD's 10 ms time
//!   slice and context-switch costs.
//! - [`machine`] — a mechanistic single-CPU machine (scheduler +
//!   interrupts + trigger recorder) deriving the §5.3/§5.4 claims from
//!   first principles.
//! - [`context`] — the execution-context stack with exact per-stack time
//!   accounting: the ground truth the `st-prof` statistical profiler is
//!   validated against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod costs;
pub mod cpu;
pub mod hwtimer;
pub mod interrupts;
pub mod machine;
pub mod sched;
pub mod softclock;
pub mod trigger;

pub use context::{ContextFrame, ContextKind, ContextStack, ContextTruth};
pub use costs::{CostModel, MachineKind};
pub use cpu::{CpuAccountant, CpuCategory};
pub use hwtimer::HardwareTimer;
pub use interrupts::{InterruptController, IrqLine};
pub use machine::{run_machine, MachineConfig, MachineRun, ProcessBehavior};
pub use sched::{ProcId, Scheduler};
pub use softclock::SoftClock;
pub use trigger::{TriggerRecorder, TriggerSource};
