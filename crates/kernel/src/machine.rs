//! A mechanistic single-CPU machine: scheduler + interrupt controller +
//! soft clock, driven by per-process behaviour models.
//!
//! The calibrated workload generators in `st-workloads` reproduce the
//! *published* Table 1 distributions directly. This module derives the
//! paper's key qualitative claims from first principles instead: processes
//! with their own syscall/trap behaviour share the CPU under round-robin
//! time slices, device interrupts arrive regardless of what runs, and
//! every kernel exit is a trigger state. In particular it demonstrates
//! §5.3's observation that a compute-bound background process does *not*
//! degrade soft-timer granularity — interrupts and the server's own
//! activity keep providing trigger states during the compute process's
//! slices — and §5.4's time-slice-scale variability (Figure 5).
//!
//! The machine is intentionally small: processes are renewal processes
//! over kernel-event gaps, not full applications. What matters for soft
//! timers is *when kernel boundaries occur*, and that is what this models.

use st_sim::{Ctx, Engine, Exp, LogNormal, SampleDist, SimDuration, SimRng, SimTime, World};

use crate::costs::CostModel;
use crate::sched::{Decision, ProcId, Scheduler};
use crate::trigger::{TriggerRecorder, TriggerSource};

/// How a process behaves between kernel entries.
#[derive(Debug, Clone, Copy)]
pub enum ProcessBehavior {
    /// A server-like process: frequent syscalls (log-normal gaps with the
    /// given median/sigma in µs) and occasional traps.
    Server {
        /// Median user-mode run between syscalls, µs.
        syscall_gap_median: f64,
        /// Log-normal shape of the gap.
        sigma: f64,
        /// Fraction of kernel entries that are traps rather than
        /// syscalls.
        trap_fraction: f64,
    },
    /// A compute-bound process: runs flat out, making a syscall only
    /// every `syscall_gap_us` µs on average (exponential) — the paper's
    /// "tight loop without performing system calls" background job.
    Compute {
        /// Mean gap between (rare) syscalls, µs.
        syscall_gap_us: f64,
    },
}

/// Machine configuration.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Cost model (context-switch charge and the like).
    pub machine: CostModel,
    /// One behaviour per process.
    pub processes: Vec<ProcessBehavior>,
    /// Mean gap between network interrupts, µs (Poisson; 0 disables).
    pub nic_interrupt_gap_us: f64,
    /// Probability that a received packet causes follow-on protocol work
    /// (softintr processing, a reply transmission) with its own trigger
    /// states a few µs later. This is §5.3's mechanism: "frequent network
    /// interrupts ... yield frequent trigger states even during periods
    /// where the background process is executing" — one packet is several
    /// kernel boundaries, not one.
    pub nic_followup_prob: f64,
    /// Mean gap between disk interrupts, µs (Poisson; 0 disables).
    pub disk_interrupt_gap_us: f64,
    /// Scheduler time slice.
    pub time_slice: SimDuration,
    /// Simulated duration.
    pub duration: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl MachineConfig {
    /// A saturated-server machine like the ST-Apache testbed: one busy
    /// server process, dense network interrupts.
    pub fn busy_server(seed: u64) -> Self {
        MachineConfig {
            machine: CostModel::pentium_ii_300(),
            processes: vec![ProcessBehavior::Server {
                syscall_gap_median: 55.0,
                sigma: 0.7,
                trap_fraction: 0.05,
            }],
            nic_interrupt_gap_us: 100.0,
            nic_followup_prob: 0.8,
            disk_interrupt_gap_us: 0.0,
            time_slice: SimDuration::from_millis(10),
            duration: SimDuration::from_secs(5),
            seed,
        }
    }

    /// The same machine plus a compute-bound background process
    /// (ST-Apache-compute).
    pub fn busy_server_with_compute(seed: u64) -> Self {
        let mut c = MachineConfig::busy_server(seed);
        c.processes.push(ProcessBehavior::Compute {
            syscall_gap_us: 50_000.0,
        });
        c
    }
}

/// Mechanistic run results.
#[derive(Debug)]
pub struct MachineRun {
    /// The trigger recorder (interval distribution, per-source counts).
    pub recorder: TriggerRecorder,
    /// Context switches performed.
    pub context_switches: u64,
    /// Simulated time covered.
    pub elapsed: SimTime,
}

#[derive(Debug)]
enum Ev {
    /// The running process reaches its next kernel entry (syscall/trap).
    KernelEntry { gen: u64 },
    /// The time slice of the running process expires.
    SliceExpiry { gen: u64 },
    /// A NIC interrupt arrives.
    NicIntr,
    /// Follow-on protocol work from a received packet completes.
    NicFollowup,
    /// A disk interrupt arrives.
    DiskIntr,
}

struct MachineWorld {
    config: MachineConfig,
    rng: SimRng,
    sched: Scheduler,
    recorder: TriggerRecorder,
    /// Generation guard for the running process's pending events.
    gen: u64,
    /// When the current process started its remaining slice.
    running_since: SimTime,
    deadline: SimTime,
}

impl MachineWorld {
    /// Draws the next kernel-entry gap and source for `pid`.
    fn next_kernel_entry(&mut self, pid: ProcId) -> (SimDuration, TriggerSource) {
        let behaviour = self.config.processes[pid.0 as usize % self.config.processes.len()];
        match behaviour {
            ProcessBehavior::Server {
                syscall_gap_median,
                sigma,
                trap_fraction,
            } => {
                let gap = LogNormal::with_median(syscall_gap_median, sigma)
                    .sample(&mut self.rng)
                    .max(0.5);
                let source = if self.rng.chance(trap_fraction) {
                    TriggerSource::Trap
                } else {
                    TriggerSource::Syscall
                };
                (SimDuration::from_micros_f64(gap), source)
            }
            ProcessBehavior::Compute { syscall_gap_us } => {
                let gap = Exp::with_mean(syscall_gap_us)
                    .sample(&mut self.rng)
                    .max(1.0);
                (SimDuration::from_micros_f64(gap), TriggerSource::Syscall)
            }
        }
    }

    /// Dispatches (or keeps) a process and schedules its next events.
    fn dispatch(&mut self, now: SimTime, ctx: &mut Ctx<'_, Ev>) {
        if now >= self.deadline {
            return;
        }
        let decision = self.sched.pick();
        let pid = match decision {
            Decision::Keep(p) => p,
            Decision::Switch { to, .. } => {
                // The switch itself delays the process; its cost is small
                // relative to the 10 ms slice and charged as time.
                to
            }
            Decision::Idle => return,
        };
        self.gen += 1;
        self.running_since = now;
        let (gap, _) = self.next_kernel_entry(pid);
        let remaining = self.sched.remaining_slice();
        if gap < remaining {
            ctx.schedule_at(now + gap, Ev::KernelEntry { gen: self.gen });
        } else {
            ctx.schedule_at(now + remaining, Ev::SliceExpiry { gen: self.gen });
        }
    }
}

impl World for MachineWorld {
    type Event = Ev;

    fn handle(&mut self, ev: Ev, ctx: &mut Ctx<'_, Ev>) {
        let now = ctx.now();
        match ev {
            Ev::KernelEntry { gen } => {
                if gen != self.gen {
                    return; // Preempted meanwhile.
                }
                self.sched.consume(now.since(self.running_since));
                // A kernel entry's *return* is the trigger state; the
                // entry/exit cost is far below our µs resolution of
                // interest here.
                let (_, source) = {
                    // st-lint: allow(no-panicking-arith) -- the generation
                    // check above proved this kernel entry belongs to the
                    // still-running process
                    let pid = self.sched.current().expect("a process was running");
                    let b = self.config.processes[pid.0 as usize % self.config.processes.len()];
                    match b {
                        ProcessBehavior::Server { trap_fraction, .. } => {
                            if self.rng.chance(trap_fraction) {
                                (0, TriggerSource::Trap)
                            } else {
                                (0, TriggerSource::Syscall)
                            }
                        }
                        ProcessBehavior::Compute { .. } => (0, TriggerSource::Syscall),
                    }
                };
                self.recorder.record(now, source);
                self.dispatch(now, ctx);
            }
            Ev::SliceExpiry { gen } => {
                if gen != self.gen {
                    return;
                }
                self.sched.consume(self.sched.remaining_slice());
                // The scheduler runs from the clock interrupt: its return
                // path is a trigger state too.
                self.recorder.record(now, TriggerSource::OtherIntr);
                self.dispatch(now, ctx);
            }
            Ev::NicIntr => {
                if now < self.deadline {
                    let gap = Exp::with_mean(self.config.nic_interrupt_gap_us)
                        .sample(&mut self.rng)
                        .max(0.5);
                    ctx.schedule_in(SimDuration::from_micros_f64(gap), Ev::NicIntr);
                }
                // Interrupts fire regardless of the running process; their
                // return is a trigger state. The handler delays the
                // current process slightly; at µs scale we fold that into
                // the next gap.
                self.recorder.record(now, TriggerSource::IpIntr);
                if self.rng.chance(self.config.nic_followup_prob) {
                    let d = Exp::with_mean(8.0).sample(&mut self.rng).max(1.0);
                    ctx.schedule_in(SimDuration::from_micros_f64(d), Ev::NicFollowup);
                }
            }
            Ev::NicFollowup => {
                // Softintr protocol processing / the reply's ip-output
                // path: more kernel boundaries from the same packet.
                let source = if self.rng.chance(0.7) {
                    TriggerSource::IpOutput
                } else {
                    TriggerSource::TcpipOther
                };
                self.recorder.record(now, source);
            }
            Ev::DiskIntr => {
                if now < self.deadline {
                    let gap = Exp::with_mean(self.config.disk_interrupt_gap_us)
                        .sample(&mut self.rng)
                        .max(1.0);
                    ctx.schedule_in(SimDuration::from_micros_f64(gap), Ev::DiskIntr);
                }
                self.recorder.record(now, TriggerSource::OtherIntr);
            }
        }
    }
}

/// Runs the mechanistic machine.
pub fn run_machine(config: MachineConfig) -> MachineRun {
    let duration = config.duration;
    let mut world = MachineWorld {
        rng: SimRng::seed(config.seed),
        sched: Scheduler::new(config.time_slice),
        recorder: TriggerRecorder::new(true),
        gen: 0,
        running_since: SimTime::ZERO,
        deadline: SimTime::ZERO + duration,
        config,
    };
    for i in 0..world.config.processes.len() {
        world.sched.spawn(ProcId(i as u32));
    }
    let mut engine = Engine::new(world);
    // Boot interrupt sources.
    if engine.world().config.nic_interrupt_gap_us > 0.0 {
        engine.schedule_at(SimTime::from_micros(7), Ev::NicIntr);
    }
    if engine.world().config.disk_interrupt_gap_us > 0.0 {
        engine.schedule_at(SimTime::from_micros(13), Ev::DiskIntr);
    }
    // Boot the first process via a zero-gen slice event path: dispatch
    // directly through a primer kernel entry.
    engine.schedule_at(SimTime::ZERO, Ev::SliceExpiry { gen: 0 });
    engine.run_until(SimTime::ZERO + duration);
    let elapsed = engine.now();
    let world = engine.into_world();
    MachineRun {
        recorder: world.recorder,
        context_switches: world.sched.context_switches(),
        elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_server_reaches_trigger_states_every_tens_of_us() {
        let run = run_machine(MachineConfig::busy_server(1));
        let mean = run.recorder.all.mean();
        // Table 1's ST-Apache mean is 31.5 µs; the mechanistic machine
        // should land in the same regime.
        assert!(
            (22.0..42.0).contains(&mean),
            "mechanistic busy-server mean {mean} us"
        );
        assert!(run.recorder.total() > 50_000);
    }

    #[test]
    fn compute_background_does_not_degrade_triggers() {
        // §5.3: "the presence of background processes has no tangible
        // impact" — mechanistically, because interrupts and the server's
        // own slices keep supplying trigger states.
        let alone = run_machine(MachineConfig::busy_server(2));
        let shared = run_machine(MachineConfig::busy_server_with_compute(2));
        let m1 = alone.recorder.all.mean();
        let m2 = shared.recorder.all.mean();
        assert!(
            (m2 - m1).abs() / m1 < 0.35,
            "background compute changed the mean too much: {m1} -> {m2}"
        );
        // During the compute process's slices, interrupts are the only
        // triggers (~60 us apart) — the distribution widens slightly but
        // stays bounded far below the 1 ms backup.
        assert!(
            run_stat_over(&shared, 500.0) < 0.01,
            "long trigger gaps should stay rare"
        );
        // The compute process actually ran: slices alternated.
        assert!(shared.context_switches > 400, "{}", shared.context_switches);
    }

    fn run_stat_over(run: &MachineRun, us: f64) -> f64 {
        run.recorder.fraction_above_us(us)
    }

    #[test]
    fn timeslice_structure_shows_in_windowed_medians() {
        // §5.4 / Figure 5: medians over 1 ms windows vary (within vs
        // outside the compute process's slices); 10 ms windows (one full
        // slice rotation) are much tighter.
        let run = run_machine(MachineConfig::busy_server_with_compute(3));
        let w1 = run
            .recorder
            .windowed_medians(SimDuration::from_millis(1))
            .expect("raw kept");
        let w10 = run
            .recorder
            .windowed_medians(SimDuration::from_millis(10))
            .expect("raw kept");
        let spread = |pts: &[(f64, f64)]| {
            let mut s = st_stats::Summary::new();
            for &(_, m) in pts {
                s.record(m);
            }
            s.population_stddev()
        };
        assert!(
            spread(&w10) < spread(&w1),
            "10 ms windows must be tighter: {} vs {}",
            spread(&w10),
            spread(&w1)
        );
    }

    #[test]
    fn interrupts_supply_triggers_during_compute_slices() {
        // Disable the server process entirely: a pure compute machine
        // still reaches trigger states at the NIC interrupt rate.
        let cfg = MachineConfig {
            processes: vec![ProcessBehavior::Compute {
                syscall_gap_us: 100_000.0,
            }],
            ..MachineConfig::busy_server(4)
        };
        let run = run_machine(cfg);
        let mean = run.recorder.all.mean();
        // One packet yields ~1.8 kernel boundaries: mean gap ~= 100 / 1.8.
        assert!(
            (35.0..80.0).contains(&mean),
            "interrupt-only trigger mean {mean}"
        );
        let net = run.recorder.fraction(TriggerSource::IpIntr)
            + run.recorder.fraction(TriggerSource::IpOutput)
            + run.recorder.fraction(TriggerSource::TcpipOther);
        assert!(net > 0.9, "network sources dominate: {net}");
    }

    #[test]
    fn no_interrupts_no_syscalls_means_rare_triggers() {
        // The paper's "most pessimistic scenario" (§5.3): compute-bound,
        // no I/O — trigger states become rare and only the backup
        // interrupt (not modeled here) would bound delays.
        let cfg = MachineConfig {
            processes: vec![ProcessBehavior::Compute {
                syscall_gap_us: 10_000.0,
            }],
            nic_interrupt_gap_us: 0.0,
            ..MachineConfig::busy_server(5)
        };
        let run = run_machine(cfg);
        assert!(
            run.recorder.all.mean() > 1_000.0,
            "triggers should be ms-scale: {}",
            run.recorder.all.mean()
        );
    }
}
