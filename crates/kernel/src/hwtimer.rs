//! The periodic hardware interval timer (the paper's Intel 8253).
//!
//! Conventional fine-grained event scheduling programs this device at the
//! desired event rate and eats one interrupt per event (section 3). The
//! model includes the detail that matters for Tables 4-5: the device has a
//! single pending latch, so ticks that elapse while interrupts are masked
//! are *lost*, not queued — "some timer interrupts are lost during periods
//! when interrupts are disabled in FreeBSD" (section 5.7), which is why
//! hardware-timer pacing undershoots its target rate.

use st_sim::{SimDuration, SimTime};

/// Result of delivering a hardware timer interrupt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerFire {
    /// Periods that elapsed since the last delivery (>= 1).
    pub elapsed_periods: u64,
    /// Periods lost to the single pending latch (`elapsed_periods - 1`).
    pub lost: u64,
}

/// A free-running periodic interval timer.
///
/// # Examples
///
/// ```
/// use st_kernel::hwtimer::HardwareTimer;
/// use st_sim::{SimDuration, SimTime};
///
/// let mut t = HardwareTimer::new(SimDuration::from_micros(20), SimTime::ZERO);
/// assert_eq!(t.next_due(), SimTime::from_micros(20));
/// // Delivered on time: nothing lost.
/// let f = t.fire_at(SimTime::from_micros(20));
/// assert_eq!(f.lost, 0);
/// // Interrupts were masked until t = 120 µs: the ticks at 40, 60, 80,
/// // 100 and 120 collapse into one delivery; four are lost.
/// let f = t.fire_at(SimTime::from_micros(120));
/// assert_eq!(f.elapsed_periods, 5);
/// assert_eq!(f.lost, 4);
/// ```
#[derive(Debug, Clone)]
pub struct HardwareTimer {
    period: SimDuration,
    next_due: SimTime,
    delivered: u64,
    lost: u64,
}

impl HardwareTimer {
    /// Creates a timer whose first interrupt is one period after `start`.
    ///
    /// # Panics
    ///
    /// Panics on a zero period.
    pub fn new(period: SimDuration, start: SimTime) -> Self {
        assert!(period > SimDuration::ZERO, "period must be positive");
        HardwareTimer {
            period,
            next_due: start + period,
            delivered: 0,
            lost: 0,
        }
    }

    /// Creates a timer from a frequency in Hz.
    pub fn with_hz(hz: u64, start: SimTime) -> Self {
        HardwareTimer::new(SimDuration::from_hz(hz), start)
    }

    /// The programmed period.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// When the next interrupt is due.
    pub fn next_due(&self) -> SimTime {
        self.next_due
    }

    /// Reprograms the period; the next interrupt is one new period after
    /// `now`. (The paper notes reprogramming is expensive on real devices;
    /// the *cost* is charged by the caller via the cost model.)
    pub fn reprogram(&mut self, period: SimDuration, now: SimTime) {
        assert!(period > SimDuration::ZERO, "period must be positive");
        self.period = period;
        self.next_due = now + period;
    }

    /// Delivers the interrupt at `now`, which must be at or after
    /// [`HardwareTimer::next_due`]. Periods that fully elapsed before
    /// delivery are counted as lost (single pending latch).
    ///
    /// # Panics
    ///
    /// Panics if called before the timer is due.
    pub fn fire_at(&mut self, now: SimTime) -> TimerFire {
        assert!(
            now >= self.next_due,
            "timer not due until {} (now {})",
            self.next_due,
            now
        );
        let late = now.since(self.next_due);
        let elapsed = 1 + late / self.period;
        self.next_due += self.period * elapsed;
        self.delivered += 1;
        self.lost += elapsed - 1;
        TimerFire {
            elapsed_periods: elapsed,
            lost: elapsed - 1,
        }
    }

    /// Interrupts delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Ticks lost to masking so far.
    pub fn lost(&self) -> u64 {
        self.lost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimTime {
        SimTime::from_micros(n)
    }

    #[test]
    fn periodic_delivery() {
        let mut t = HardwareTimer::with_hz(50_000, SimTime::ZERO); // 20 µs
        assert_eq!(t.period(), SimDuration::from_micros(20));
        for i in 1..=10 {
            assert_eq!(t.next_due(), us(20 * i));
            let f = t.fire_at(t.next_due());
            assert_eq!(f.lost, 0);
        }
        assert_eq!(t.delivered(), 10);
        assert_eq!(t.lost(), 0);
    }

    #[test]
    fn late_delivery_loses_latched_ticks() {
        let mut t = HardwareTimer::new(SimDuration::from_micros(40), SimTime::ZERO);
        let f = t.fire_at(us(40 + 3 * 40 + 7)); // 3 extra periods + 7 µs late
        assert_eq!(f.elapsed_periods, 4);
        assert_eq!(f.lost, 3);
        // Next due remains on the device's own grid.
        assert_eq!(t.next_due(), us(200));
    }

    #[test]
    fn slightly_late_delivery_loses_nothing() {
        let mut t = HardwareTimer::new(SimDuration::from_micros(40), SimTime::ZERO);
        let f = t.fire_at(us(55));
        assert_eq!(f.lost, 0);
        assert_eq!(t.next_due(), us(80));
    }

    #[test]
    fn reprogram_restarts_grid() {
        let mut t = HardwareTimer::new(SimDuration::from_micros(40), SimTime::ZERO);
        t.fire_at(us(40));
        t.reprogram(SimDuration::from_micros(100), us(50));
        assert_eq!(t.next_due(), us(150));
    }

    #[test]
    #[should_panic(expected = "timer not due")]
    fn early_fire_panics() {
        let mut t = HardwareTimer::new(SimDuration::from_micros(40), SimTime::ZERO);
        t.fire_at(us(39));
    }
}
