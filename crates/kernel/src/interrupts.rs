//! Interrupt controller: lines, masking, pending latch, accounting.

use st_sim::SimTime;

/// An interrupt line. Lower numeric priority value = served first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IrqLine {
    /// The periodic hardware timer (highest priority here, as on the PC).
    Timer,
    /// A network interface (the paper's receive/transmit completions).
    Nic(u8),
    /// Disk controller.
    Disk,
}

impl IrqLine {
    fn priority(self) -> u8 {
        match self {
            IrqLine::Timer => 0,
            IrqLine::Nic(n) => 1 + n,
            IrqLine::Disk => 16,
        }
    }

    fn index(self) -> usize {
        match self {
            IrqLine::Timer => 0,
            IrqLine::Nic(n) => 1 + (n as usize).min(7),
            IrqLine::Disk => 9,
        }
    }
}

const LINES: usize = 10;

/// A single-CPU interrupt controller with a global enable flag (the
/// `cli`/`sti` pair) and per-line enable bits plus single-slot pending
/// latches.
///
/// Machine simulations raise lines as device events happen and call
/// [`InterruptController::take`] whenever the CPU is able to accept an
/// interrupt; delivery order follows line priority.
///
/// # Examples
///
/// ```
/// use st_kernel::interrupts::{InterruptController, IrqLine};
/// use st_sim::SimTime;
///
/// let mut ic = InterruptController::new();
/// ic.raise(IrqLine::Nic(0), SimTime::ZERO);
/// assert_eq!(ic.take(), Some(IrqLine::Nic(0)));
/// assert_eq!(ic.take(), None);
/// ```
#[derive(Debug)]
pub struct InterruptController {
    enabled: bool,
    line_enabled: [bool; LINES],
    pending: [bool; LINES],
    pending_since: [Option<SimTime>; LINES],
    raised: [u64; LINES],
    delivered: [u64; LINES],
    coalesced: [u64; LINES],
}

impl InterruptController {
    /// Creates a controller with interrupts enabled and all lines
    /// unmasked.
    pub fn new() -> Self {
        InterruptController {
            enabled: true,
            line_enabled: [true; LINES],
            pending: [false; LINES],
            pending_since: [None; LINES],
            raised: [0; LINES],
            delivered: [0; LINES],
            coalesced: [0; LINES],
        }
    }

    /// Globally disables interrupt delivery (`cli`). Raises still latch.
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Globally enables interrupt delivery (`sti`).
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Whether delivery is globally enabled.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Masks one line (e.g. NIC interrupts while polling is active).
    pub fn mask_line(&mut self, line: IrqLine) {
        self.line_enabled[line.index()] = false;
    }

    /// Unmasks one line.
    pub fn unmask_line(&mut self, line: IrqLine) {
        self.line_enabled[line.index()] = true;
    }

    /// Whether a line is unmasked.
    pub fn line_enabled(&self, line: IrqLine) -> bool {
        self.line_enabled[line.index()]
    }

    /// A device asserts its line at `now`. If the line is already pending
    /// the assertion coalesces into the existing latch (one delivery will
    /// cover both, as on real edge-latched controllers).
    pub fn raise(&mut self, line: IrqLine, now: SimTime) {
        let i = line.index();
        self.raised[i] += 1;
        if self.pending[i] {
            self.coalesced[i] += 1;
        } else {
            self.pending[i] = true;
            self.pending_since[i] = Some(now);
        }
    }

    /// Whether any deliverable interrupt is pending.
    pub fn has_deliverable(&self) -> bool {
        self.enabled
            && self
                .pending
                .iter()
                .zip(self.line_enabled.iter())
                .any(|(&p, &e)| p && e)
    }

    /// Takes the highest-priority deliverable interrupt, clearing its
    /// latch. `None` when nothing is deliverable (masked or idle).
    pub fn take(&mut self) -> Option<IrqLine> {
        if !self.enabled {
            return None;
        }
        let candidates = [
            IrqLine::Timer,
            IrqLine::Nic(0),
            IrqLine::Nic(1),
            IrqLine::Nic(2),
            IrqLine::Nic(3),
            IrqLine::Nic(4),
            IrqLine::Nic(5),
            IrqLine::Nic(6),
            IrqLine::Nic(7),
            IrqLine::Disk,
        ];
        let mut best: Option<IrqLine> = None;
        for line in candidates {
            let i = line.index();
            if self.pending[i] && self.line_enabled[i] {
                match best {
                    Some(b) if b.priority() <= line.priority() => {}
                    _ => best = Some(line),
                }
            }
        }
        if let Some(line) = best {
            let i = line.index();
            self.pending[i] = false;
            self.pending_since[i] = None;
            self.delivered[i] += 1;
        }
        best
    }

    /// When the given line became pending, if it is.
    pub fn pending_since(&self, line: IrqLine) -> Option<SimTime> {
        self.pending_since[line.index()]
    }

    /// Raise count for a line.
    pub fn raised(&self, line: IrqLine) -> u64 {
        self.raised[line.index()]
    }

    /// Delivery count for a line.
    pub fn delivered(&self, line: IrqLine) -> u64 {
        self.delivered[line.index()]
    }

    /// Assertions that coalesced into an already-pending latch.
    pub fn coalesced(&self, line: IrqLine) -> u64 {
        self.coalesced[line.index()]
    }
}

impl Default for InterruptController {
    fn default() -> Self {
        InterruptController::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_order() {
        let mut ic = InterruptController::new();
        ic.raise(IrqLine::Disk, SimTime::ZERO);
        ic.raise(IrqLine::Nic(1), SimTime::ZERO);
        ic.raise(IrqLine::Timer, SimTime::ZERO);
        assert_eq!(ic.take(), Some(IrqLine::Timer));
        assert_eq!(ic.take(), Some(IrqLine::Nic(1)));
        assert_eq!(ic.take(), Some(IrqLine::Disk));
        assert_eq!(ic.take(), None);
    }

    #[test]
    fn global_disable_latches_but_defers() {
        let mut ic = InterruptController::new();
        ic.disable();
        ic.raise(IrqLine::Nic(0), SimTime::from_micros(5));
        assert!(!ic.has_deliverable());
        assert_eq!(ic.take(), None);
        ic.enable();
        assert!(ic.has_deliverable());
        assert_eq!(
            ic.pending_since(IrqLine::Nic(0)),
            Some(SimTime::from_micros(5))
        );
        assert_eq!(ic.take(), Some(IrqLine::Nic(0)));
    }

    #[test]
    fn line_mask_defers_only_that_line() {
        let mut ic = InterruptController::new();
        ic.mask_line(IrqLine::Nic(0));
        assert!(!ic.line_enabled(IrqLine::Nic(0)));
        ic.raise(IrqLine::Nic(0), SimTime::ZERO);
        ic.raise(IrqLine::Disk, SimTime::ZERO);
        assert_eq!(ic.take(), Some(IrqLine::Disk));
        assert_eq!(ic.take(), None);
        ic.unmask_line(IrqLine::Nic(0));
        assert_eq!(ic.take(), Some(IrqLine::Nic(0)));
    }

    #[test]
    fn coalescing_counts() {
        let mut ic = InterruptController::new();
        ic.disable();
        for _ in 0..5 {
            ic.raise(IrqLine::Nic(2), SimTime::ZERO);
        }
        ic.enable();
        assert_eq!(ic.take(), Some(IrqLine::Nic(2)));
        assert_eq!(ic.take(), None, "five raises, one delivery");
        assert_eq!(ic.raised(IrqLine::Nic(2)), 5);
        assert_eq!(ic.delivered(IrqLine::Nic(2)), 1);
        assert_eq!(ic.coalesced(IrqLine::Nic(2)), 4);
    }
}
