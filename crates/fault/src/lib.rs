//! Deterministic, seedable fault injection for the soft-timers facility.
//!
//! The paper's guarantee — every event fires inside `(S+T, S+T+X+1)` —
//! is easy to keep on a healthy machine. This crate checks that the
//! implementation keeps (or gracefully relaxes) it on an unhealthy one:
//!
//! - [`plan`] — composable [`plan::FaultPlan`]s covering eight classes:
//!   clock anomalies, trigger-state starvation, backup-interrupt loss,
//!   NIC storms, hostile callbacks, per-packet wire faults (loss,
//!   reordering, duplication — the injector itself lives in
//!   [`st_net::wire`]), overload pressure (arrival surges, slow
//!   clients), and host-runtime chaos (wedged threads, panicking host
//!   callbacks, clock jumps — injected on the real machine by
//!   st-guard, modeled here as CPU wedges);
//! - [`clock`] — [`clock::FaultyClock`], a measurement clock with skew,
//!   jumps, and transient regressions;
//! - [`backup`] — [`backup::BackupFaultStream`], per-slot fates for the
//!   periodic backup interrupt;
//! - [`nic`] — [`nic::NicFaultInjector`], losses and storms in front of
//!   the receive ring;
//! - [`harness`] — [`harness::Scenario`], which drives a facility,
//!   pacer, and poll controller under a plan and asserts the firing
//!   bound on every event.
//!
//! All randomness flows from one seed through per-class
//! [`st_sim::SimRng`] forks, so a failing run replays byte-identically:
//! rerun the same `(plan, seed, duration)` and compare
//! [`harness::FaultReport`]s with `==`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backup;
pub mod clock;
pub mod harness;
pub mod nic;
pub mod plan;

pub use harness::{FaultReport, Scenario};
pub use plan::{FaultPlan, HostFaults};
pub use st_net::{WireFate, WireFaultInjector, WireFaults};
