//! Faults on the NIC receive path: losses before the ring and packet
//! storms that try to overflow it.

use st_net::nic::Nic;
use st_net::packet::Packet;
use st_sim::{SimRng, SimTime};

use crate::plan::NicFaults;

/// Wraps delivery into a [`Nic`], injecting drops and storms.
#[derive(Debug)]
pub struct NicFaultInjector {
    faults: Option<NicFaults>,
    rng: SimRng,
    offered: u64,
    injected_drops: u64,
    storm_extras: u64,
}

impl NicFaultInjector {
    /// Creates an injector for the given fault class (`None` = healthy).
    pub fn new(faults: Option<NicFaults>, rng: SimRng) -> Self {
        NicFaultInjector {
            faults,
            rng,
            offered: 0,
            injected_drops: 0,
            storm_extras: 0,
        }
    }

    /// Delivers `packet` into `nic`, subject to the plan. Returns how
    /// many frames actually reached the ring (0 when dropped before it,
    /// more than 1 during a storm; ring overflow on top shows up in the
    /// NIC's own `rx_dropped`).
    pub fn deliver(&mut self, nic: &mut Nic, now: SimTime, packet: Packet) -> u64 {
        self.offered += 1;
        let Some(f) = self.faults else {
            return nic.deliver_rx(now, packet) as u64;
        };
        if self.rng.chance(f.drop_chance) {
            self.injected_drops += 1;
            return 0;
        }
        let copies = if self.rng.chance(f.storm_chance) {
            self.storm_extras += f.storm_len;
            1 + f.storm_len
        } else {
            1
        };
        let mut reached = 0;
        for _ in 0..copies {
            if nic.deliver_rx(now, packet.clone()) {
                reached += 1;
            }
        }
        reached
    }

    /// Packets offered by the wire so far (storm extras not counted).
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Packets the injector dropped before the ring.
    pub fn injected_drops(&self) -> u64 {
        self.injected_drops
    }

    /// Extra frames injected by storms.
    pub fn storm_extras(&self) -> u64 {
        self.storm_extras
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_net::packet::ConnId;

    fn pkt(id: u64) -> Packet {
        Packet::data(id, ConnId(1), id * 1_000, 1_000, 0, 64_000)
    }

    #[test]
    fn healthy_injector_is_transparent() {
        let mut nic = Nic::new(64);
        let mut inj = NicFaultInjector::new(None, SimRng::seed(5));
        for i in 0..10 {
            assert_eq!(inj.deliver(&mut nic, SimTime::from_micros(i), pkt(i)), 1);
        }
        assert_eq!(nic.rx_pending(), 10);
        assert_eq!(inj.injected_drops(), 0);
        assert_eq!(inj.storm_extras(), 0);
    }

    #[test]
    fn storms_can_overflow_the_ring() {
        let mut nic = Nic::new(8);
        let mut inj = NicFaultInjector::new(Some(NicFaults::nasty()), SimRng::seed(6));
        for i in 0..2_000 {
            inj.deliver(&mut nic, SimTime::from_micros(i), pkt(i));
            if nic.rx_pending() > 4 {
                nic.poll_rx(4);
            }
        }
        assert!(inj.injected_drops() > 0, "nasty plan should drop");
        assert!(inj.storm_extras() > 0, "nasty plan should storm");
        assert!(
            nic.rx_dropped() > 0,
            "storms should overflow an 8-slot ring"
        );
    }

    #[test]
    fn same_seed_same_outcome() {
        let run = || {
            let mut nic = Nic::new(16);
            let mut inj = NicFaultInjector::new(Some(NicFaults::nasty()), SimRng::seed(77));
            for i in 0..500 {
                inj.deliver(&mut nic, SimTime::from_micros(i), pkt(i));
                nic.poll_rx(2);
            }
            (
                inj.injected_drops(),
                inj.storm_extras(),
                nic.rx_delivered(),
                nic.rx_dropped(),
                nic.rx_polled(),
            )
        };
        assert_eq!(run(), run());
    }
}
