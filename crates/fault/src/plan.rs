//! Composable fault plans: which anomalies to inject, how often, how big.
//!
//! A [`FaultPlan`] is plain data — it carries no randomness of its own.
//! The harness draws every probabilistic decision from a [`st_sim::SimRng`]
//! forked per fault class, so one `(plan, seed)` pair replays an entire
//! run byte-for-byte.

use st_net::WireFaults;

/// Clock anomalies: rate skew, forward jumps, transient regressions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockFaults {
    /// Rate error in parts per million; positive runs fast, negative
    /// slow. Models a mis-trimmed TSC.
    pub skew_ppm: f64,
    /// Probability per clock-advance step of a sudden forward jump
    /// (SMI, VM pause, firmware clock write).
    pub jump_chance: f64,
    /// Largest forward jump, in measurement ticks.
    pub max_jump: u64,
    /// Probability per clock-advance step of a transient backwards
    /// reading (unsynchronized TSC across sockets, wraparound glitch).
    pub regression_chance: f64,
    /// Largest transient regression, in measurement ticks.
    pub max_regression: u64,
}

impl ClockFaults {
    /// The fault-matrix default: 200 ppm skew, occasional 5 ms jumps and
    /// 2 ms transient regressions.
    pub fn nasty() -> Self {
        ClockFaults {
            skew_ppm: 200.0,
            jump_chance: 0.01,
            max_jump: 5_000,
            regression_chance: 0.01,
            max_regression: 2_000,
        }
    }
}

/// Trigger-state starvation: stretches with no kernel entries at all
/// (a long-running system call, a tight userspace loop).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StarvationFaults {
    /// Probability, at each trigger state, that the system goes quiet.
    pub window_chance: f64,
    /// Shortest quiet window, in measurement ticks.
    pub min_window: u64,
    /// Longest quiet window, in measurement ticks.
    pub max_window: u64,
}

impl StarvationFaults {
    /// The fault-matrix default: frequent 2–20 ms silences (many backup
    /// periods long).
    pub fn nasty() -> Self {
        StarvationFaults {
            window_chance: 0.02,
            min_window: 2_000,
            max_window: 20_000,
        }
    }
}

/// Backup-interrupt faults: sweeps dropped outright or delivered late
/// (masked sections, interrupt coalescing in firmware).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackupFaults {
    /// Probability a scheduled backup interrupt is lost.
    pub drop_chance: f64,
    /// Probability a scheduled backup interrupt is delayed.
    pub delay_chance: f64,
    /// Largest delivery delay, in measurement ticks. Delays of a full
    /// period or more coalesce with the next sweep.
    pub max_delay: u64,
}

impl BackupFaults {
    /// The fault-matrix default: 20% dropped, 20% delayed by up to
    /// 1.5 periods at the default 1 kHz backup (so some coalesce).
    pub fn nasty() -> Self {
        BackupFaults {
            drop_chance: 0.2,
            delay_chance: 0.2,
            max_delay: 1_500,
        }
    }
}

/// NIC receive-path faults: packet storms and losses in front of the
/// polling interface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NicFaults {
    /// Probability an arriving packet is silently lost before the ring.
    pub drop_chance: f64,
    /// Probability an arrival is a storm burst instead of one packet.
    pub storm_chance: f64,
    /// Extra copies delivered per storm burst.
    pub storm_len: u64,
}

impl NicFaults {
    /// The fault-matrix default: 5% loss, 5% bursts of 32 extras —
    /// enough to overflow the default receive ring.
    pub fn nasty() -> Self {
        NicFaults {
            drop_chance: 0.05,
            storm_chance: 0.05,
            storm_len: 32,
        }
    }
}

/// Event-handler faults: callbacks that panic or hog the CPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CallbackFaults {
    /// Probability a scheduled handler panics when dispatched.
    pub panic_chance: f64,
    /// Probability a scheduled handler runs long.
    pub slow_chance: f64,
    /// How long a slow handler holds the CPU, in measurement ticks.
    pub slow_ticks: u64,
}

impl CallbackFaults {
    /// The fault-matrix default: 10% panics, 10% handlers that run for
    /// two backup periods.
    pub fn nasty() -> Self {
        CallbackFaults {
            panic_chance: 0.1,
            slow_chance: 0.1,
            slow_ticks: 2_000,
        }
    }
}

/// Overload faults: open-loop arrival surges and slow clients that sit
/// on resources — the hostile-client load st-admit is built to shed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverloadFaults {
    /// Probability, at each arrival, that a surge window opens.
    pub surge_chance: f64,
    /// Arrival-rate multiplier inside a surge window.
    pub surge_factor: u64,
    /// Shortest surge window, in measurement ticks.
    pub min_surge: u64,
    /// Longest surge window, in measurement ticks.
    pub max_surge: u64,
    /// Probability an arrival is a slow client that pins its work far
    /// into the future instead of completing promptly.
    pub slow_client_chance: f64,
    /// How far a slow client's workload event is pushed out, in
    /// measurement ticks.
    pub pin_ticks: u64,
}

impl OverloadFaults {
    /// The fault-matrix default: occasional 8× surges of 2–20 ms and 10%
    /// slowloris-style clients pinned 50 ms out.
    pub fn nasty() -> Self {
        OverloadFaults {
            surge_chance: 0.02,
            surge_factor: 8,
            min_surge: 2_000,
            max_surge: 20_000,
            slow_client_chance: 0.1,
            pin_ticks: 50_000,
        }
    }
}

/// Host-runtime faults: wedged runtime threads, panicking host
/// callbacks, forward clock jumps. This is the class `st-rt`'s guard
/// layer (st-guard) injects on the real machine; the sim harness models
/// the same stalls as CPU wedges so every host chaos run has a
/// deterministic sim-side twin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostFaults {
    /// Probability, per scheduling quantum (sim: per trigger state),
    /// that a runtime thread wedges.
    pub stall_chance: f64,
    /// Shortest stall, in measurement ticks.
    pub min_stall: u64,
    /// Longest stall, in measurement ticks.
    pub max_stall: u64,
    /// Probability a dispatched handler panics.
    pub panic_chance: f64,
    /// Probability, per scheduling quantum, of a forward clock jump.
    pub jump_chance: f64,
    /// Largest forward jump, in measurement ticks.
    pub max_jump: u64,
}

impl HostFaults {
    /// The chaos default: occasional 20–60 ms thread wedges (several
    /// backup periods — long enough for a supervisor to notice), 10%
    /// handler panics, rare forward jumps up to 10 ms.
    pub fn nasty() -> Self {
        HostFaults {
            stall_chance: 0.005,
            min_stall: 20_000,
            max_stall: 60_000,
            panic_chance: 0.1,
            jump_chance: 0.001,
            max_jump: 10_000,
        }
    }
}

/// A composable selection of fault classes; `None` means that class is
/// healthy.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultPlan {
    /// Clock skew / jumps / regressions.
    pub clock: Option<ClockFaults>,
    /// Trigger-state starvation windows.
    pub starvation: Option<StarvationFaults>,
    /// Dropped / delayed backup interrupts.
    pub backup: Option<BackupFaults>,
    /// NIC storms and drops.
    pub nic: Option<NicFaults>,
    /// Panicking / slow callbacks.
    pub callbacks: Option<CallbackFaults>,
    /// Per-packet wire faults in front of the NIC: loss, reordering,
    /// duplication (see [`st_net::WireFaults`]).
    pub wire: Option<WireFaults>,
    /// Arrival surges and slow clients (overload pressure).
    pub overload: Option<OverloadFaults>,
    /// Host-runtime faults: wedged threads, panicking host callbacks,
    /// clock jumps. Injected on the real machine by st-guard's chaos
    /// layer; the sim harness models the stalls as CPU wedges.
    pub host: Option<HostFaults>,
}

impl FaultPlan {
    /// A healthy system: no faults at all (the control row).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Only clock anomalies.
    pub fn clock_anomalies() -> Self {
        FaultPlan::none().with_clock(ClockFaults::nasty())
    }

    /// Only trigger-state starvation.
    pub fn starvation() -> Self {
        FaultPlan::none().with_starvation(StarvationFaults::nasty())
    }

    /// Only backup-interrupt loss and delay.
    pub fn backup_loss() -> Self {
        FaultPlan::none().with_backup(BackupFaults::nasty())
    }

    /// Only NIC storms and drops.
    pub fn nic_storm() -> Self {
        FaultPlan::none().with_nic(NicFaults::nasty())
    }

    /// Only hostile callbacks.
    pub fn hostile_callbacks() -> Self {
        FaultPlan::none().with_callbacks(CallbackFaults::nasty())
    }

    /// Only wire faults: packet loss, reordering, duplication.
    pub fn wire_faults() -> Self {
        FaultPlan::none().with_wire(WireFaults::nasty())
    }

    /// Only overload pressure: arrival surges and slow clients.
    pub fn overload() -> Self {
        FaultPlan::none().with_overload(OverloadFaults::nasty())
    }

    /// Only host-runtime chaos: wedged threads, panicking callbacks,
    /// clock jumps.
    pub fn host_chaos() -> Self {
        FaultPlan::none().with_host(HostFaults::nasty())
    }

    /// Every *simulator-native* fault class at once. The host class is
    /// deliberately excluded: it describes faults st-guard injects into
    /// real runtime threads, and the frozen `fault_matrix` seed output
    /// pins this preset's draw streams byte-for-byte.
    pub fn everything() -> Self {
        FaultPlan {
            clock: Some(ClockFaults::nasty()),
            starvation: Some(StarvationFaults::nasty()),
            backup: Some(BackupFaults::nasty()),
            nic: Some(NicFaults::nasty()),
            callbacks: Some(CallbackFaults::nasty()),
            wire: Some(WireFaults::nasty()),
            overload: Some(OverloadFaults::nasty()),
            host: None,
        }
    }

    /// Adds clock anomalies.
    pub fn with_clock(mut self, f: ClockFaults) -> Self {
        self.clock = Some(f);
        self
    }

    /// Adds starvation windows.
    pub fn with_starvation(mut self, f: StarvationFaults) -> Self {
        self.starvation = Some(f);
        self
    }

    /// Adds backup-interrupt faults.
    pub fn with_backup(mut self, f: BackupFaults) -> Self {
        self.backup = Some(f);
        self
    }

    /// Adds NIC faults.
    pub fn with_nic(mut self, f: NicFaults) -> Self {
        self.nic = Some(f);
        self
    }

    /// Adds callback faults.
    pub fn with_callbacks(mut self, f: CallbackFaults) -> Self {
        self.callbacks = Some(f);
        self
    }

    /// Adds wire faults.
    pub fn with_wire(mut self, f: WireFaults) -> Self {
        self.wire = Some(f);
        self
    }

    /// Adds overload pressure.
    pub fn with_overload(mut self, f: OverloadFaults) -> Self {
        self.overload = Some(f);
        self
    }

    /// Adds host-runtime chaos.
    pub fn with_host(mut self, f: HostFaults) -> Self {
        self.host = Some(f);
        self
    }

    /// Whether the paper's `(S+T, S+T+X+1)` firing bound can be asserted
    /// unrelaxed: it requires every backup sweep delivered on the grid
    /// and a trustworthy clock. Starvation, NIC, wire, callback, and
    /// overload faults do not break the bound — the backup interrupt
    /// exists precisely to cover the first, and the rest live in front
    /// of or around the facility, not inside it. In particular a surge
    /// of arrivals must never relax the firing bound: shedding load is
    /// the admission layer's job, not the timer facility's. Host chaos
    /// breaks the bound too — a wedged backup lane or a jumped clock is
    /// exactly a missed sweep or an untrustworthy clock.
    pub fn paper_bound_holds(&self) -> bool {
        self.backup.is_none()
            && self.clock.is_none()
            && self.callbacks.is_none()
            && self.host.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_select_exactly_one_class() {
        assert_eq!(FaultPlan::clock_anomalies().backup, None);
        assert!(FaultPlan::clock_anomalies().clock.is_some());
        assert!(FaultPlan::backup_loss().backup.is_some());
        assert!(FaultPlan::none().paper_bound_holds());
        assert!(FaultPlan::starvation().paper_bound_holds());
        assert!(FaultPlan::nic_storm().paper_bound_holds());
        assert!(FaultPlan::wire_faults().paper_bound_holds());
        assert!(FaultPlan::wire_faults().wire.is_some());
        assert_eq!(FaultPlan::wire_faults().nic, None);
        assert!(FaultPlan::overload().paper_bound_holds());
        assert!(FaultPlan::overload().overload.is_some());
        assert_eq!(FaultPlan::overload().nic, None);
        assert!(!FaultPlan::backup_loss().paper_bound_holds());
        assert!(!FaultPlan::clock_anomalies().paper_bound_holds());
        assert!(!FaultPlan::everything().paper_bound_holds());
        assert!(!FaultPlan::host_chaos().paper_bound_holds());
        assert!(FaultPlan::host_chaos().host.is_some());
        assert_eq!(FaultPlan::host_chaos().backup, None);
        // The frozen fault_matrix pin depends on `everything()` staying a
        // sim-native preset: appending the host class must not enable it.
        assert_eq!(FaultPlan::everything().host, None);
    }

    #[test]
    fn builders_compose() {
        let p = FaultPlan::none()
            .with_nic(NicFaults::nasty())
            .with_backup(BackupFaults::nasty())
            .with_overload(OverloadFaults::nasty());
        assert!(p.nic.is_some() && p.backup.is_some() && p.clock.is_none());
        assert!(p.overload.is_some());
    }
}
