//! Faults on the periodic backup interrupt: drops, delays, coalescing.

use st_sim::SimRng;

use crate::plan::BackupFaults;

/// What happens to one scheduled backup interrupt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackupFate {
    /// Delivered on its grid slot.
    Deliver,
    /// Lost entirely (masked too long, latch overwritten).
    Drop,
    /// Delivered the given number of ticks after its slot. Delays of a
    /// full period or more land in the next slot and coalesce with that
    /// sweep.
    Delay(u64),
}

/// A deterministic per-slot fate stream for the backup interrupt.
///
/// The harness asks for one fate per grid slot, in order; with the same
/// plan and RNG fork the stream replays exactly.
#[derive(Debug)]
pub struct BackupFaultStream {
    faults: Option<BackupFaults>,
    rng: SimRng,
    delivered: u64,
    dropped: u64,
    delayed: u64,
}

impl BackupFaultStream {
    /// Creates a stream for the given fault class (`None` = healthy).
    pub fn new(faults: Option<BackupFaults>, rng: SimRng) -> Self {
        BackupFaultStream {
            faults,
            rng,
            delivered: 0,
            dropped: 0,
            delayed: 0,
        }
    }

    /// Decides the fate of the next grid slot.
    pub fn next_fate(&mut self) -> BackupFate {
        let Some(f) = self.faults else {
            self.delivered += 1;
            return BackupFate::Deliver;
        };
        if self.rng.chance(f.drop_chance) {
            self.dropped += 1;
            st_trace::count("fault.backup.dropped", 1);
            return BackupFate::Drop;
        }
        if self.rng.chance(f.delay_chance) && f.max_delay > 0 {
            self.delayed += 1;
            st_trace::count("fault.backup.delayed", 1);
            return BackupFate::Delay(self.rng.range_u64(1, f.max_delay + 1));
        }
        self.delivered += 1;
        BackupFate::Deliver
    }

    /// Slots delivered on time so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Slots dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Slots delayed so far.
    pub fn delayed(&self) -> u64 {
        self.delayed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_stream_always_delivers() {
        let mut s = BackupFaultStream::new(None, SimRng::seed(3));
        for _ in 0..100 {
            assert_eq!(s.next_fate(), BackupFate::Deliver);
        }
        assert_eq!(s.delivered(), 100);
        assert_eq!(s.dropped() + s.delayed(), 0);
    }

    #[test]
    fn faulty_stream_mixes_fates_deterministically() {
        let mk = || BackupFaultStream::new(Some(BackupFaults::nasty()), SimRng::seed(11));
        let mut a = mk();
        let mut b = mk();
        let fates_a: Vec<_> = (0..500).map(|_| a.next_fate()).collect();
        let fates_b: Vec<_> = (0..500).map(|_| b.next_fate()).collect();
        assert_eq!(fates_a, fates_b);
        assert!(a.dropped() > 0, "nasty plan should drop some");
        assert!(a.delayed() > 0, "nasty plan should delay some");
        assert!(a.delivered() > 0, "nasty plan should deliver some");
    }
}
