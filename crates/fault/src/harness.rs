//! The fault harness: a facility + pacer + poller system driven under an
//! arbitrary [`FaultPlan`], with the paper's firing bound checked on
//! every event.
//!
//! One [`Scenario`] run simulates a single CPU whose true time advances
//! in 1 µs measurement ticks:
//!
//! - **trigger states** occur at random gaps (suppressed during
//!   starvation windows and while a slow callback hogs the CPU);
//! - **backup interrupts** sit on the `X`-tick grid, routed through a
//!   real [`InterruptController`] ([`IrqLine::Timer`]) after the
//!   [`BackupFaultStream`] decides each slot's fate;
//! - the facility reads time through a [`FaultyClock`];
//! - a [`Pacer`] transmit chain and a [`PollController`]-driven NIC
//!   polling chain run as soft-timer events, so the paper's section 4
//!   consumers are exercised under every fault class;
//! - workload events may panic or run slow per [`CallbackFaults`],
//!   dispatched under `catch_unwind` exactly like the production
//!   runtimes.
//!
//! Every decision draws from per-class forks of one seeded
//! [`SimRng`], so a `(plan, seed)` pair replays byte-identically —
//! asserted by comparing whole [`FaultReport`]s, including the
//! [`FaultReport::fingerprint`] over the fired-event sequence.
//!
//! # Bound checking
//!
//! Always asserted, every fire: `fired_at >= due`, and after every
//! check no still-pending event is overdue (each event fires at the
//! *first performed check* past its deadline — the paper's guarantee
//! restated for a world where some checks never happen).
//!
//! When [`FaultPlan::paper_bound_holds`] (no backup, clock, or callback
//! faults) the unrelaxed paper bound is asserted too: delay past the
//! deadline never exceeds `X` ticks, i.e. every fire lands inside
//! `(S+T, S+T+X+1)`. Violations are counted in
//! [`FaultReport::bound_violations`] and make the run panic in tests.

use std::panic::{catch_unwind, AssertUnwindSafe};

use st_core::clock::Clock;
use st_core::facility::{Config, Expired, FireOrigin, SoftTimerCore};
use st_core::pacer::{Pacer, PacerConfig};
use st_core::poller::{PollController, PollControllerConfig};
use st_kernel::interrupts::{InterruptController, IrqLine};
use st_net::nic::Nic;
use st_net::packet::{ConnId, Packet};
use st_net::{WireFate, WireFaultInjector};
use st_sim::{SimRng, SimTime};

use crate::backup::{BackupFate, BackupFaultStream};
use crate::clock::FaultyClock;
use crate::nic::NicFaultInjector;
use crate::plan::FaultPlan;

/// What a scheduled soft-timer event does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    /// A workload event; may panic or run slow per the plan.
    Workload { panics: bool, slow: bool },
    /// Poll the NIC and reschedule per the poll controller.
    Poll,
    /// Transmit one paced packet and reschedule per the pacer.
    Transmit,
}

#[derive(Debug, Clone, Copy)]
struct EventTag {
    id: u64,
    kind: EventKind,
}

/// A fault-injection scenario: a plan, a seed, and a run length.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// Which faults to inject.
    pub plan: FaultPlan,
    /// Master seed; all randomness forks from it.
    pub seed: u64,
    /// True-time run length in measurement ticks (µs at 1 MHz).
    pub duration_ticks: u64,
}

impl Scenario {
    /// A scenario over the paper's default resolutions (1 MHz / 1 kHz).
    pub fn new(plan: FaultPlan, seed: u64, duration_ticks: u64) -> Self {
        Scenario {
            plan,
            seed,
            duration_ticks,
        }
    }

    /// Runs the scenario to completion.
    ///
    /// # Panics
    ///
    /// Panics if any firing-bound invariant is violated — a fault the
    /// hardened facility failed to absorb. The panic message includes
    /// the seed, so the run can be replayed exactly.
    pub fn run(&self) -> FaultReport {
        Harness::new(self).run()
    }
}

/// Everything a run observed, with enough counters to assert on.
///
/// Two runs of the same `(plan, seed, duration)` produce `==` reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultReport {
    /// Master seed the run used.
    pub seed: u64,
    /// True ticks simulated.
    pub ticks_run: u64,
    /// Workload events scheduled.
    pub scheduled: u64,
    /// Events fired (workload + poll + transmit).
    pub fired: u64,
    /// Fires from trigger states.
    pub fired_trigger: u64,
    /// Fires from backup sweeps.
    pub fired_backup: u64,
    /// Largest delay past an event's deadline, in ticks.
    pub max_delay: u64,
    /// Fires that broke the asserted bound (always 0 on a passing run).
    pub bound_violations: u64,
    /// Trigger-state checks performed.
    pub trigger_checks: u64,
    /// Starvation windows entered.
    pub starvation_windows: u64,
    /// Backup slots delivered / dropped / delayed.
    pub backups_delivered: u64,
    /// Backup slots lost outright.
    pub backups_dropped: u64,
    /// Backup slots delivered late.
    pub backups_delayed: u64,
    /// Forward clock jumps injected.
    pub clock_jumps: u64,
    /// Transient clock regressions injected.
    pub clock_regressions_injected: u64,
    /// Regressions the facility clamped (from `FacilityStats`).
    pub clock_regressions_absorbed: u64,
    /// Handler panics injected and caught.
    pub handler_panics: u64,
    /// Slow handlers injected.
    pub slow_handlers: u64,
    /// Packets offered to the NIC by the wire.
    pub nic_offered: u64,
    /// Packets the injector dropped before the ring.
    pub nic_injected_drops: u64,
    /// Extra frames injected by storms.
    pub nic_storm_extras: u64,
    /// Frames lost to ring overflow.
    pub nic_ring_drops: u64,
    /// Frames the poll chain retrieved.
    pub nic_polled: u64,
    /// Packets offered to the wire-fault injector.
    pub wire_offered: u64,
    /// Packets the wire dropped in flight.
    pub wire_dropped: u64,
    /// Packets the wire delivered twice.
    pub wire_duplicated: u64,
    /// Packets the wire held back and delivered out of order.
    pub wire_reordered: u64,
    /// Paced transmissions completed.
    pub transmits: u64,
    /// Arrival-surge windows opened by the overload class.
    pub overload_surge_windows: u64,
    /// Slow clients injected by the overload class.
    pub overload_slow_clients: u64,
    /// Runtime-thread wedges injected by the host class (modeled as CPU
    /// stalls: no trigger states, latched backups, until the wedge ends).
    pub host_stalls: u64,
    /// FNV-1a fingerprint of the fired-event sequence; byte-identical
    /// replay means equal fingerprints.
    pub fingerprint: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_mix(hash: &mut u64, value: u64) {
    for byte in value.to_le_bytes() {
        *hash ^= byte as u64;
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

struct Harness {
    plan: FaultPlan,
    seed: u64,
    duration: u64,
    x: u64,

    clock: FaultyClock,
    core: SoftTimerCore<EventTag>,
    ic: InterruptController,
    backup_stream: BackupFaultStream,
    nic: Nic,
    nic_injector: NicFaultInjector,
    wire_injector: WireFaultInjector,
    poll_ctl: PollController,
    pacer: Pacer,

    rng_triggers: SimRng,
    rng_workload: SimRng,
    rng_callbacks: SimRng,
    rng_arrivals: SimRng,
    rng_overload: SimRng,
    rng_host: SimRng,

    /// True tick before which the CPU is wedged in a slow handler.
    busy_until: u64,
    next_event_id: u64,
    next_packet_id: u64,

    report: FaultReport,
    scratch: Vec<Expired<EventTag>>,
}

impl Harness {
    fn new(scenario: &Scenario) -> Self {
        let plan = scenario.plan;
        let mut master = SimRng::seed(scenario.seed);
        // Stable fork labels: adding a class later must not shift the
        // draws of existing classes.
        let rng_clock = master.fork(1);
        let rng_backup = master.fork(2);
        let rng_nic = master.fork(3);
        let rng_triggers = master.fork(4);
        let rng_workload = master.fork(5);
        let rng_callbacks = master.fork(6);
        let rng_arrivals = master.fork(7);
        let rng_wire = master.fork(8);
        let rng_overload = master.fork(9);
        // Appended after every pre-existing class: forks 1-9 above must
        // keep drawing the exact streams the frozen fault_matrix seed
        // output pins (tests/fault_plan_pin.rs).
        let rng_host = master.fork(10);

        let config = Config {
            measure_hz: 1_000_000,
            interrupt_hz: 1_000,
            record_stats: true,
        };
        let x = config.x_ticks();

        Harness {
            plan,
            seed: scenario.seed,
            duration: scenario.duration_ticks,
            x,
            clock: FaultyClock::new(config.measure_hz, plan.clock, rng_clock),
            core: SoftTimerCore::new(config),
            ic: InterruptController::new(),
            backup_stream: BackupFaultStream::new(plan.backup, rng_backup),
            nic: Nic::default_ring(),
            nic_injector: NicFaultInjector::new(plan.nic, rng_nic),
            wire_injector: WireFaultInjector::new(plan.wire, rng_wire),
            poll_ctl: PollController::new(PollControllerConfig {
                quota: 8.0,
                min_interval: 10,
                max_interval: 500,
                ewma_alpha: 0.25,
            }),
            pacer: Pacer::new(PacerConfig::new(40, 10)),
            rng_triggers,
            rng_workload,
            rng_callbacks,
            rng_arrivals,
            rng_overload,
            rng_host,
            busy_until: 0,
            next_event_id: 0,
            next_packet_id: 0,
            report: FaultReport {
                seed: scenario.seed,
                ticks_run: scenario.duration_ticks,
                scheduled: 0,
                fired: 0,
                fired_trigger: 0,
                fired_backup: 0,
                max_delay: 0,
                bound_violations: 0,
                trigger_checks: 0,
                starvation_windows: 0,
                backups_delivered: 0,
                backups_dropped: 0,
                backups_delayed: 0,
                clock_jumps: 0,
                clock_regressions_injected: 0,
                clock_regressions_absorbed: 0,
                handler_panics: 0,
                slow_handlers: 0,
                nic_offered: 0,
                nic_injected_drops: 0,
                nic_storm_extras: 0,
                nic_ring_drops: 0,
                nic_polled: 0,
                wire_offered: 0,
                wire_dropped: 0,
                wire_duplicated: 0,
                wire_reordered: 0,
                transmits: 0,
                overload_surge_windows: 0,
                overload_slow_clients: 0,
                host_stalls: 0,
                fingerprint: FNV_OFFSET,
            },
            scratch: Vec::new(),
        }
    }

    fn schedule_tagged(&mut self, delta: u64, kind: EventKind) {
        let now = self.clock.measure_time();
        let id = self.next_event_id;
        self.next_event_id += 1;
        self.core.schedule(now, delta, EventTag { id, kind });
    }

    fn schedule_workload(&mut self) {
        let delta = self.rng_workload.range_u64(10, 5_000);
        let (panics, slow) = match self.plan.callbacks {
            Some(f) => (
                self.rng_callbacks.chance(f.panic_chance),
                self.rng_callbacks.chance(f.slow_chance),
            ),
            None => (false, false),
        };
        self.report.scheduled += 1;
        self.schedule_tagged(delta, EventKind::Workload { panics, slow });
    }

    /// Dispatches fired events, verifying the bound on each.
    fn dispatch(&mut self, now_true: u64) {
        let observed = self.clock.measure_time();
        let mut due = std::mem::take(&mut self.scratch);
        for ev in due.drain(..) {
            self.report.fired += 1;
            match ev.origin {
                FireOrigin::TriggerState => self.report.fired_trigger += 1,
                FireOrigin::BackupInterrupt => self.report.fired_backup += 1,
            }
            let delay = ev.delay();
            self.report.max_delay = self.report.max_delay.max(delay);

            // Always: never early.
            if ev.fired_at < ev.due {
                self.report.bound_violations += 1;
                panic!(
                    "event {} fired early: fired_at {} < due {} (seed {})",
                    ev.payload.id, ev.fired_at, ev.due, self.seed
                );
            }
            // The unrelaxed paper bound, when the plan permits it: the
            // backup grid guarantees delay <= X.
            if self.plan.paper_bound_holds() && delay > self.x {
                self.report.bound_violations += 1;
                panic!(
                    "event {} broke the paper bound: delay {} > X {} (seed {})",
                    ev.payload.id, delay, self.x, self.seed
                );
            }

            fnv_mix(&mut self.report.fingerprint, ev.payload.id);
            fnv_mix(&mut self.report.fingerprint, ev.due);
            fnv_mix(&mut self.report.fingerprint, ev.fired_at);
            fnv_mix(
                &mut self.report.fingerprint,
                matches!(ev.origin, FireOrigin::BackupInterrupt) as u64,
            );

            match ev.payload.kind {
                EventKind::Workload { panics, slow } => {
                    if panics {
                        // Dispatch under catch_unwind, exactly like the
                        // production runtimes.
                        let r = catch_unwind(AssertUnwindSafe(|| {
                            panic!("injected handler panic (event {})", ev.payload.id)
                        }));
                        assert!(r.is_err());
                        self.report.handler_panics += 1;
                        self.core.note_handler_panic();
                    }
                    if slow {
                        self.report.slow_handlers += 1;
                        if let Some(f) = self.plan.callbacks {
                            self.busy_until = self.busy_until.max(now_true + f.slow_ticks);
                        }
                    }
                }
                EventKind::Poll => {
                    let found = self
                        .nic
                        .poll_rx(self.poll_ctl.config().quota as usize)
                        .len() as u64;
                    self.report.nic_polled += found;
                    let interval = self.poll_ctl.on_poll(found);
                    self.schedule_tagged(interval, EventKind::Poll);
                }
                EventKind::Transmit => {
                    self.nic.record_tx();
                    self.report.transmits += 1;
                    let interval = self.pacer.on_transmit(observed);
                    let target = self.pacer.config().target_interval;
                    let burst = self.pacer.config().min_burst_interval;
                    assert!(
                        interval == target || interval == burst,
                        "pacer returned {interval}, expected {target} or {burst} (seed {})",
                        self.seed
                    );
                    self.schedule_tagged(self.pacer.next_delta(interval), EventKind::Transmit);
                }
            }
        }
        self.scratch = due;

        // After any check: nothing still pending may be overdue — every
        // event fires at the first performed check past its deadline.
        // The facility may have clamped a regressed clock; its internal
        // time is >= observed, so this check is conservative.
        if let Some(earliest) = self.core.earliest_deadline() {
            if earliest <= observed && self.core.has_due(observed) {
                self.report.bound_violations += 1;
                panic!(
                    "overdue event survived a check at {} (earliest {}, seed {})",
                    observed, earliest, self.seed
                );
            }
        }
    }

    fn trigger_state(&mut self, now_true: u64) {
        self.report.trigger_checks += 1;
        let mut due = std::mem::take(&mut self.scratch);
        due.clear();
        self.core.poll(self.clock.measure_time(), &mut due);
        self.scratch = due;
        self.dispatch(now_true);
    }

    fn backup_sweep(&mut self, now_true: u64) {
        // Route through the interrupt controller: raise the timer line,
        // then deliver it, as the machine loop would.
        self.ic
            .raise(IrqLine::Timer, SimTime::from_micros(now_true));
        if self.ic.take() != Some(IrqLine::Timer) {
            return;
        }
        let mut due = std::mem::take(&mut self.scratch);
        due.clear();
        self.core
            .interrupt_sweep(self.clock.measure_time(), &mut due);
        self.scratch = due;
        self.dispatch(now_true);
    }

    fn run(mut self) -> FaultReport {
        // Seed the event chains.
        self.schedule_tagged(10, EventKind::Poll);
        self.pacer.start_train(0);
        self.schedule_tagged(40, EventKind::Transmit);
        self.schedule_workload();

        let mut next_trigger = self.rng_triggers.range_u64(1, 50);
        let mut next_sched = self.rng_workload.range_u64(50, 500);
        let mut next_arrival = self.rng_arrivals.range_u64(10, 100);
        // Backup deliveries: grid slots with per-slot fate; delayed
        // slots queue here (sorted, since delays are bounded we just
        // re-sort on insert).
        let mut next_slot = self.x;
        let mut pending_backups: Vec<u64> = Vec::new();
        // Reordered packets held back by the wire: (delivery time, frame).
        let mut pending_wire: Vec<(u64, Packet)> = Vec::new();
        // True tick before which arrivals come at the surged rate.
        let mut surge_until: u64 = 0;

        loop {
            // Decide the fate of any grid slot we are about to reach.
            let next_backup = pending_backups.first().copied().unwrap_or(u64::MAX);
            let next_wire = pending_wire.first().map_or(u64::MAX, |&(at, _)| at);
            let t = *[
                next_trigger,
                next_slot,
                next_backup,
                next_sched,
                next_arrival,
                next_wire,
            ]
            .iter()
            .min()
            .unwrap();
            if t >= self.duration {
                break;
            }
            self.clock.set_true(t);

            if t == next_slot {
                match self.backup_stream.next_fate() {
                    BackupFate::Deliver => {
                        let at = next_slot.max(self.busy_until);
                        pending_backups.push(at);
                        pending_backups.sort_unstable();
                    }
                    BackupFate::Drop => {}
                    BackupFate::Delay(d) => {
                        let at = (next_slot + d).max(self.busy_until);
                        pending_backups.push(at);
                        pending_backups.sort_unstable();
                    }
                }
                next_slot += self.x;
            }
            while pending_backups.first() == Some(&t) {
                pending_backups.remove(0);
                if t >= self.busy_until {
                    self.backup_sweep(t);
                } else {
                    // CPU wedged: the latch holds; redeliver when free.
                    pending_backups.push(self.busy_until);
                    pending_backups.sort_unstable();
                }
            }
            // Held-back (reordered) frames whose delivery time arrived:
            // they rejoin the path in front of the NIC injector, behind
            // any same-tick fresh arrival already delivered.
            while pending_wire.first().map(|&(at, _)| at) == Some(t) {
                let (_, pkt) = pending_wire.remove(0);
                self.nic_injector
                    .deliver(&mut self.nic, SimTime::from_micros(t), pkt);
            }
            if t == next_arrival {
                let id = self.next_packet_id;
                self.next_packet_id += 1;
                let pkt = Packet::data(id, ConnId(1), id * 1_000, 1_000, 0, 64_000);
                // The wire decides first; survivors reach the NIC-level
                // injector (storms, ring drops) like any other frame.
                match self.wire_injector.fate() {
                    WireFate::Drop => {}
                    WireFate::Deliver => {
                        self.nic_injector
                            .deliver(&mut self.nic, SimTime::from_micros(t), pkt);
                    }
                    WireFate::Duplicate => {
                        self.nic_injector.deliver(
                            &mut self.nic,
                            SimTime::from_micros(t),
                            pkt.clone(),
                        );
                        self.nic_injector
                            .deliver(&mut self.nic, SimTime::from_micros(t), pkt);
                    }
                    WireFate::Reorder { extra } => {
                        pending_wire.push((t + extra.as_micros(), pkt));
                        pending_wire.sort_by_key(|e| (e.0, e.1.id));
                    }
                }
                // The overload class reshapes arrivals: surge windows
                // compress the drawn gap (the base draw still happens, so
                // the arrival stream's shape is a pure function of the
                // plan), and slow clients park a workload event far out —
                // a connection that arrives but refuses to finish.
                let mut gap = self.rng_arrivals.range_u64(10, 100);
                if let Some(f) = self.plan.overload {
                    if t >= surge_until && self.rng_overload.chance(f.surge_chance) {
                        self.report.overload_surge_windows += 1;
                        surge_until = t + self.rng_overload.range_u64(f.min_surge, f.max_surge + 1);
                    }
                    if t < surge_until {
                        gap = (gap / f.surge_factor).max(1);
                    }
                    if self.rng_overload.chance(f.slow_client_chance) {
                        self.report.overload_slow_clients += 1;
                        self.report.scheduled += 1;
                        self.schedule_tagged(
                            f.pin_ticks,
                            EventKind::Workload {
                                panics: false,
                                slow: false,
                            },
                        );
                    }
                }
                next_arrival = t + gap;
            }
            if t == next_sched {
                self.schedule_workload();
                next_sched = t + self.rng_workload.range_u64(50, 500);
            }
            if t == next_trigger {
                if t >= self.busy_until {
                    self.trigger_state(t);
                    // The host class models a wedged runtime thread as a
                    // CPU stall: no trigger states run and backup sweeps
                    // latch until the wedge ends — the sim twin of the
                    // thread stalls st-guard injects on the real machine.
                    if let Some(f) = self.plan.host {
                        if self.rng_host.chance(f.stall_chance) {
                            self.report.host_stalls += 1;
                            let stall = self.rng_host.range_u64(f.min_stall, f.max_stall + 1);
                            self.busy_until = self.busy_until.max(t + stall);
                        }
                    }
                    // Maybe enter a starvation window.
                    let window = match self.plan.starvation {
                        Some(f) if self.rng_triggers.chance(f.window_chance) => {
                            self.report.starvation_windows += 1;
                            self.rng_triggers.range_u64(f.min_window, f.max_window + 1)
                        }
                        _ => self.rng_triggers.range_u64(1, 50),
                    };
                    next_trigger = t + window;
                } else {
                    next_trigger = self.busy_until;
                }
            }
        }

        // Final accounting from the wrapped components.
        self.report.backups_delivered = self.backup_stream.delivered();
        self.report.backups_dropped = self.backup_stream.dropped();
        self.report.backups_delayed = self.backup_stream.delayed();
        self.report.clock_jumps = self.clock.jumps_injected();
        self.report.clock_regressions_injected = self.clock.regressions_injected();
        self.report.clock_regressions_absorbed = self.core.stats().clock_regressions;
        self.report.nic_offered = self.nic_injector.offered();
        self.report.nic_injected_drops = self.nic_injector.injected_drops();
        self.report.nic_storm_extras = self.nic_injector.storm_extras();
        self.report.nic_ring_drops = self.nic.rx_dropped();
        self.report.wire_offered = self.wire_injector.offered();
        self.report.wire_dropped = self.wire_injector.dropped();
        self.report.wire_duplicated = self.wire_injector.duplicated();
        self.report.wire_reordered = self.wire_injector.reordered();
        fnv_mix(
            &mut self.report.fingerprint,
            self.report.backups_delivered
                ^ self.report.nic_polled.rotate_left(17)
                ^ self.report.transmits.rotate_left(31),
        );
        assert_eq!(
            self.core.stats().handler_panics,
            self.report.handler_panics,
            "facility panic accounting diverged (seed {})",
            self.seed
        );
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DURATION: u64 = 200_000; // 0.2 s of true time.

    #[test]
    fn healthy_run_obeys_the_paper_bound() {
        let r = Scenario::new(FaultPlan::none(), 1, DURATION).run();
        assert_eq!(r.bound_violations, 0);
        assert!(r.max_delay <= 1_000, "delay {} > X", r.max_delay);
        assert!(r.fired > 0 && r.transmits > 0 && r.nic_polled > 0);
        assert_eq!(r.backups_dropped, 0);
        assert_eq!(r.handler_panics, 0);
    }

    #[test]
    fn every_class_runs_and_replays() {
        let classes = [
            FaultPlan::clock_anomalies(),
            FaultPlan::starvation(),
            FaultPlan::backup_loss(),
            FaultPlan::nic_storm(),
            FaultPlan::hostile_callbacks(),
            FaultPlan::wire_faults(),
            FaultPlan::overload(),
            FaultPlan::host_chaos(),
            FaultPlan::everything(),
        ];
        for (i, plan) in classes.iter().enumerate() {
            let a = Scenario::new(*plan, 42, DURATION).run();
            let b = Scenario::new(*plan, 42, DURATION).run();
            assert_eq!(a, b, "class {i} did not replay identically");
            assert_eq!(a.bound_violations, 0, "class {i}");
            assert!(a.fired > 0, "class {i} fired nothing");
        }
    }

    #[test]
    fn fault_classes_actually_inject() {
        let clock = Scenario::new(FaultPlan::clock_anomalies(), 7, DURATION).run();
        assert!(clock.clock_jumps > 0 && clock.clock_regressions_injected > 0);
        assert!(clock.clock_regressions_absorbed > 0, "facility saw none");

        let starve = Scenario::new(FaultPlan::starvation(), 7, DURATION).run();
        assert!(starve.starvation_windows > 0);

        let backup = Scenario::new(FaultPlan::backup_loss(), 7, DURATION).run();
        assert!(backup.backups_dropped > 0 && backup.backups_delayed > 0);

        let nic = Scenario::new(FaultPlan::nic_storm(), 7, DURATION).run();
        assert!(nic.nic_injected_drops > 0 && nic.nic_storm_extras > 0);

        let cb = Scenario::new(FaultPlan::hostile_callbacks(), 7, DURATION).run();
        assert!(cb.handler_panics > 0 && cb.slow_handlers > 0);

        let wire = Scenario::new(FaultPlan::wire_faults(), 7, DURATION).run();
        assert!(wire.wire_offered > 0);
        assert!(wire.wire_dropped > 0 && wire.wire_duplicated > 0 && wire.wire_reordered > 0);

        let ov = Scenario::new(FaultPlan::overload(), 7, DURATION).run();
        assert!(ov.overload_surge_windows > 0 && ov.overload_slow_clients > 0);

        let host = Scenario::new(FaultPlan::host_chaos(), 7, DURATION).run();
        assert!(host.host_stalls > 0, "no host stall injected");
        // A wedged runtime thread stalls trigger states and latches the
        // backup, so delays blow well past X — the bound st-guard's
        // degradation policy exists to re-bound on the real machine.
        assert!(host.max_delay > 1_000, "stalls never delayed a fire");
    }

    #[test]
    fn host_class_leaves_existing_streams_untouched() {
        // The host fork label (10) is appended after labels 1-9, and a
        // plan without host faults never draws from it: every preexisting
        // class must replay the exact run it produced before the host
        // class existed. (The cross-version half of this guarantee is
        // pinned by tests/fault_plan_pin.rs against frozen seed output.)
        let with_field = Scenario::new(FaultPlan::none(), 42, DURATION).run();
        let again = Scenario::new(FaultPlan::none(), 42, DURATION).run();
        assert_eq!(with_field, again);
        assert_eq!(with_field.host_stalls, 0);
    }

    #[test]
    fn wire_faults_keep_the_paper_bound() {
        // The wire sits in front of the NIC: losing, duplicating, or
        // reordering frames must not perturb timer firing at all.
        let r = Scenario::new(FaultPlan::wire_faults(), 23, DURATION).run();
        assert!(r.max_delay <= 1_000, "delay {} > X", r.max_delay);
        assert_eq!(r.bound_violations, 0);
        // Duplicates and held-back frames still reach the ring: the poll
        // chain sees at least the surviving offered load.
        assert!(r.nic_polled > 0);
    }

    #[test]
    fn different_seeds_diverge() {
        let a = Scenario::new(FaultPlan::everything(), 1, DURATION).run();
        let b = Scenario::new(FaultPlan::everything(), 2, DURATION).run();
        assert_ne!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn overload_keeps_the_paper_bound_while_surging() {
        // Arrival surges and slow clients pressure the serving path, not
        // the facility: the unrelaxed firing bound must survive them.
        // This is the harness-level half of the admission story — the
        // shedding half lives in st-http's open-loop experiments.
        let r = Scenario::new(FaultPlan::overload(), 17, DURATION).run();
        assert!(r.max_delay <= 1_000, "delay {} > X", r.max_delay);
        assert_eq!(r.bound_violations, 0);
        assert!(r.overload_surge_windows > 0, "no surge ever opened");
        assert!(r.overload_slow_clients > 0, "no slow client injected");
        // More arrivals than the healthy run: surges compress gaps.
        let healthy = Scenario::new(FaultPlan::none(), 17, DURATION).run();
        assert!(r.wire_offered > healthy.wire_offered);
    }

    #[test]
    fn starvation_alone_keeps_the_paper_bound() {
        // The backup interrupt exists precisely to cover starvation: the
        // unrelaxed bound must hold even with long quiet windows.
        let r = Scenario::new(FaultPlan::starvation(), 13, DURATION).run();
        assert!(r.max_delay <= 1_000, "delay {} > X", r.max_delay);
        assert!(r.fired_backup > 0, "starved run must lean on the backup");
    }
}
