//! A measurement clock that lies: skew, jumps, transient regressions.

use std::cell::{Cell, RefCell};

use st_core::clock::Clock;
use st_sim::SimRng;

use crate::plan::ClockFaults;

/// A [`Clock`] whose readings are derived from harness-driven "true"
/// time with deterministic anomalies layered on top.
///
/// The harness owns true time and calls [`FaultyClock::set_true`] as the
/// run advances; every probabilistic decision happens there (one RNG
/// fork, one draw sequence), so reads through the [`Clock`] trait are
/// pure and the whole run replays from its seed.
///
/// Anomalies, per [`ClockFaults`]:
///
/// - **skew**: observed time advances at `1 + skew_ppm / 1e6` times the
///   true rate;
/// - **jumps**: with `jump_chance` per advance, the observed clock leaps
///   forward by up to `max_jump` ticks and stays there;
/// - **regressions**: with `regression_chance` per advance, the next
///   reading is up to `max_regression` ticks in the past, after which
///   the clock recovers. This transiently violates the [`Clock`]
///   monotonicity contract on purpose — it is exactly the anomaly the
///   facility's release-safe clamp (`FacilityStats::clock_regressions`)
///   must absorb.
///
/// # Examples
///
/// ```
/// use st_core::clock::Clock;
/// use st_fault::clock::FaultyClock;
/// use st_fault::plan::ClockFaults;
/// use st_sim::SimRng;
///
/// let clock = FaultyClock::new(1_000_000, Some(ClockFaults::nasty()), SimRng::seed(7));
/// clock.set_true(500);
/// let a = clock.measure_time();
/// clock.set_true(1_000);
/// let b = clock.measure_time();
/// // Readings come from the faulty mapping, not true time — but the
/// // same seed always produces the same readings.
/// let replay = FaultyClock::new(1_000_000, Some(ClockFaults::nasty()), SimRng::seed(7));
/// replay.set_true(500);
/// assert_eq!(replay.measure_time(), a);
/// replay.set_true(1_000);
/// assert_eq!(replay.measure_time(), b);
/// ```
#[derive(Debug)]
pub struct FaultyClock {
    hz: u64,
    faults: Option<ClockFaults>,
    rng: RefCell<SimRng>,
    true_ticks: Cell<u64>,
    /// Accumulated forward-jump offset.
    jump_offset: Cell<u64>,
    /// A one-shot backwards glitch to apply to the next readings until
    /// the next advance.
    glitch: Cell<u64>,
    jumps: Cell<u64>,
    regressions: Cell<u64>,
}

impl FaultyClock {
    /// Creates a clock at `hz` with the given fault class (`None` =
    /// healthy) drawing decisions from `rng`.
    pub fn new(hz: u64, faults: Option<ClockFaults>, rng: SimRng) -> Self {
        assert!(hz > 0, "clock resolution must be positive");
        FaultyClock {
            hz,
            faults,
            rng: RefCell::new(rng),
            true_ticks: Cell::new(0),
            jump_offset: Cell::new(0),
            glitch: Cell::new(0),
            jumps: Cell::new(0),
            regressions: Cell::new(0),
        }
    }

    /// Advances true time (monotone) and rolls for anomalies.
    ///
    /// # Panics
    ///
    /// Panics if `ticks` moves true time backwards — true time is the
    /// harness's own clock and must be monotone; only the *observed*
    /// clock misbehaves.
    pub fn set_true(&self, ticks: u64) {
        assert!(
            ticks >= self.true_ticks.get(),
            "true time must be monotone: {} -> {ticks}",
            self.true_ticks.get()
        );
        self.true_ticks.set(ticks);
        self.glitch.set(0);
        if let Some(f) = self.faults {
            let mut rng = self.rng.borrow_mut();
            if rng.chance(f.jump_chance) {
                let jump = if f.max_jump > 0 {
                    rng.range_u64(1, f.max_jump + 1)
                } else {
                    0
                };
                self.jump_offset.set(self.jump_offset.get() + jump);
                self.jumps.set(self.jumps.get() + 1);
                if st_trace::active() {
                    st_trace::count("fault.clock.jumps", 1);
                    st_trace::emit(
                        st_trace::Category::Fault,
                        "fault.clock.jump",
                        ticks,
                        jump,
                        0,
                    );
                }
            }
            if rng.chance(f.regression_chance) {
                let g = if f.max_regression > 0 {
                    rng.range_u64(1, f.max_regression + 1)
                } else {
                    0
                };
                self.glitch.set(g);
                self.regressions.set(self.regressions.get() + 1);
                if st_trace::active() {
                    st_trace::count("fault.clock.regressions", 1);
                    st_trace::emit(
                        st_trace::Category::Fault,
                        "fault.clock.regression",
                        ticks,
                        g,
                        0,
                    );
                }
            }
        }
    }

    /// True (fault-free) ticks, for harness bookkeeping.
    pub fn true_time(&self) -> u64 {
        self.true_ticks.get()
    }

    /// Forward jumps injected so far.
    pub fn jumps_injected(&self) -> u64 {
        self.jumps.get()
    }

    /// Transient regressions injected so far.
    pub fn regressions_injected(&self) -> u64 {
        self.regressions.get()
    }
}

impl Clock for FaultyClock {
    fn measure_time(&self) -> u64 {
        let t = self.true_ticks.get();
        let skewed = match self.faults {
            Some(f) => {
                let rate = 1.0 + f.skew_ppm / 1e6;
                (t as f64 * rate) as u64
            }
            None => t,
        };
        (skewed + self.jump_offset.get()).saturating_sub(self.glitch.get())
    }

    fn measure_resolution(&self) -> u64 {
        self.hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_clock_tracks_true_time() {
        let c = FaultyClock::new(1_000_000, None, SimRng::seed(1));
        c.set_true(123);
        assert_eq!(c.measure_time(), 123);
        assert_eq!(c.measure_resolution(), 1_000_000);
    }

    #[test]
    fn skew_shifts_rate() {
        let f = ClockFaults {
            skew_ppm: 1_000_000.0, // Runs 2x fast.
            jump_chance: 0.0,
            max_jump: 0,
            regression_chance: 0.0,
            max_regression: 0,
        };
        let c = FaultyClock::new(1_000_000, Some(f), SimRng::seed(1));
        c.set_true(500);
        assert_eq!(c.measure_time(), 1_000);
    }

    #[test]
    fn jumps_accumulate_and_regressions_are_transient() {
        let f = ClockFaults {
            skew_ppm: 0.0,
            jump_chance: 1.0,
            max_jump: 10,
            regression_chance: 1.0,
            max_regression: 5,
        };
        let c = FaultyClock::new(1_000_000, Some(f), SimRng::seed(9));
        c.set_true(100);
        let glitched = c.measure_time();
        assert_eq!(c.jumps_injected(), 1);
        assert_eq!(c.regressions_injected(), 1);
        // Jump >= 1 and glitch <= 5: reading is within (100-5, 100+10].
        assert!(glitched > 95 && glitched <= 110, "reading {glitched}");
        c.set_true(101);
        // Glitch cleared; the jump persists; maybe a new jump/glitch.
        assert_eq!(c.jumps_injected(), 2);
    }

    #[test]
    fn same_seed_replays_identically() {
        let mk = || FaultyClock::new(1_000_000, Some(ClockFaults::nasty()), SimRng::seed(42));
        let (a, b) = (mk(), mk());
        for t in (0..5_000).step_by(37) {
            a.set_true(t);
            b.set_true(t);
            assert_eq!(a.measure_time(), b.measure_time(), "diverged at {t}");
        }
        assert_eq!(a.jumps_injected(), b.jumps_injected());
        assert_eq!(a.regressions_injected(), b.regressions_injected());
    }
}
