//! Fault-injected runs must leave matching evidence in the trace
//! stream: every fault the plan injects — and every recovery the
//! facility performs — shows up in `st-trace` counters and events that
//! reconcile exactly with the run's own [`FaultReport`] accounting.

use st_fault::{FaultPlan, Scenario};
use st_trace::{TraceConfig, TraceSession};

const DURATION: u64 = 200_000;

fn traced_run(plan: FaultPlan, seed: u64) -> (st_fault::FaultReport, st_trace::Snapshot) {
    let session = TraceSession::start(TraceConfig { capacity: 1 << 20 });
    let report = Scenario::new(plan, seed, DURATION).run();
    let snap = session.finish();
    assert_eq!(snap.dropped, 0, "ring must retain the whole run");
    (report, snap)
}

#[test]
fn clock_anomalies_leave_matching_trace_evidence() {
    let (report, snap) = traced_run(FaultPlan::clock_anomalies(), 42);
    assert!(
        report.clock_regressions_injected > 0,
        "plan must actually inject regressions"
    );

    // Injections: the fault layer's own counters and events.
    assert_eq!(
        snap.counter("fault.clock.regressions"),
        report.clock_regressions_injected
    );
    assert_eq!(snap.counter("fault.clock.jumps"), report.clock_jumps);
    assert_eq!(
        snap.event_count("fault.clock.regression") as u64,
        report.clock_regressions_injected,
        "one regression event per injection"
    );

    // Recoveries: the facility's clamp counter must agree with what the
    // report copied out of FacilityStats.
    assert_eq!(
        snap.counter("facility.clock_regressions"),
        report.clock_regressions_absorbed
    );
    // A clamp can only happen when the facility actually observes a
    // regressed reading, so absorbed <= injected.
    assert!(report.clock_regressions_absorbed <= report.clock_regressions_injected);
}

#[test]
fn dropped_backups_leave_matching_trace_evidence() {
    let (report, snap) = traced_run(FaultPlan::backup_loss(), 43);
    assert!(report.backups_dropped > 0, "plan must actually drop slots");

    assert_eq!(snap.counter("fault.backup.dropped"), report.backups_dropped);
    assert_eq!(snap.counter("fault.backup.delayed"), report.backups_delayed);

    // Fire provenance: the trace's per-origin fire counters must equal
    // the harness's FireOrigin accounting exactly, so the backup-rescue
    // evidence survives into the trace even when slots go missing.
    assert_eq!(snap.counter("facility.fired.trigger"), report.fired_trigger);
    assert_eq!(snap.counter("facility.fired.backup"), report.fired_backup);
    assert_eq!(
        snap.event_count("facility.fire.backup") as u64,
        report.fired_backup
    );
}

#[test]
fn clean_runs_leave_no_fault_evidence() {
    let (report, snap) = traced_run(FaultPlan::none(), 44);
    assert_eq!(snap.counter("fault.clock.regressions"), 0);
    assert_eq!(snap.counter("fault.clock.jumps"), 0);
    assert_eq!(snap.counter("fault.backup.dropped"), 0);
    assert_eq!(snap.counter("facility.clock_regressions"), 0);
    // The ordinary machinery still traces. (facility.scheduled counts
    // every schedule — poll chain and pacer included — so it exceeds
    // the report's workload-only count rather than matching it.)
    assert!(snap.counter("facility.scheduled") >= report.scheduled);
    assert_eq!(
        snap.counter("facility.fired.trigger") + snap.counter("facility.fired.backup"),
        report.fired
    );
    assert!(snap.counter("facility.fired.trigger") > 0);
}

#[test]
fn tracing_does_not_perturb_the_run() {
    // A (plan, seed) pair replays byte-identically; recording the run
    // must not change a single decision.
    let plan = FaultPlan::everything();
    let bare = Scenario::new(plan, 45, DURATION).run();
    let (traced, _snap) = traced_run(plan, 45);
    assert_eq!(bare, traced);
}
