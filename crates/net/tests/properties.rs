//! Property tests for the network substrate: links and the WAN emulator
//! must deliver FIFO per direction, never faster than serialization
//! allows, and conserve every byte.

use proptest::prelude::*;
use st_net::{Link, WanEmulator};
use st_sim::{Bandwidth, SimDuration, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Deliveries in one direction are FIFO and spaced at least a
    /// serialization time apart.
    #[test]
    fn link_is_fifo_and_rate_limited(
        sends in proptest::collection::vec((0u64..10_000, 64u32..2_000), 1..100),
        mbps in 1u64..1000,
    ) {
        let mut link = Link::new(Bandwidth::mbps(mbps), SimDuration::from_micros(7));
        // Enqueue times must be non-decreasing (as in a simulation run).
        let mut sends = sends;
        sends.sort_by_key(|&(t, _)| t);
        let mut last_delivery: Option<(SimTime, u32)> = None;
        let mut total = 0u64;
        for &(t, bytes) in &sends {
            let at = link.enqueue_forward(SimTime::from_micros(t), bytes);
            total += bytes as u64;
            // Physics: arrival >= send + serialization + propagation.
            let min = SimTime::from_micros(t)
                + Bandwidth::mbps(mbps).serialization_time(bytes as u64)
                + SimDuration::from_micros(7);
            prop_assert!(at >= min, "arrived {at} before physics allows {min}");
            if let Some((prev_at, _)) = last_delivery {
                prop_assert!(at >= prev_at, "FIFO violated");
                // The wire can't deliver two frames closer than the
                // second frame's serialization time.
                let gap = at.since(prev_at);
                let ser = Bandwidth::mbps(mbps).serialization_time(bytes as u64);
                prop_assert!(gap >= ser, "gap {gap} < serialization {ser}");
            }
            last_delivery = Some((at, bytes));
        }
        prop_assert_eq!(link.forward_bytes(), total, "byte conservation");
        prop_assert_eq!(link.forward_frames(), sends.len() as u64);
    }

    /// The WAN emulator adds exactly its one-way delay on top of
    /// bottleneck serialization, per direction, FIFO.
    #[test]
    fn wan_is_fifo_with_fixed_delay(
        sends in proptest::collection::vec((0u64..50_000, 64u32..1_500), 1..100),
        delay_ms in 1u64..200,
    ) {
        let mut wan = WanEmulator::new(
            Bandwidth::mbps(50),
            SimDuration::from_millis(delay_ms),
        );
        let mut sends = sends;
        sends.sort_by_key(|&(t, _)| t);
        let mut last: Option<SimTime> = None;
        let mut wire_busy_until = SimTime::ZERO;
        for &(t, bytes) in &sends {
            let now = SimTime::from_micros(t);
            let at = wan.forward(now, bytes);
            // Exact model: serialization starts when the wire frees.
            let start = now.max(wire_busy_until);
            let done = start + Bandwidth::mbps(50).serialization_time(bytes as u64);
            wire_busy_until = done;
            prop_assert_eq!(at, done + SimDuration::from_millis(delay_ms));
            if let Some(prev) = last {
                prop_assert!(at >= prev, "FIFO violated");
            }
            last = Some(at);
        }
        prop_assert_eq!(wan.forwarded(), sends.len() as u64);
    }

    /// Forward and reverse directions never interfere.
    #[test]
    fn wan_directions_independent(
        fwd in proptest::collection::vec(64u32..1_500, 1..50),
        rev in proptest::collection::vec(64u32..1_500, 1..50),
    ) {
        let mut both = WanEmulator::paper_50mbps();
        let mut only_fwd = WanEmulator::paper_50mbps();
        let mut t = 0u64;
        let mut fwd_results_both = Vec::new();
        let mut fwd_results_only = Vec::new();
        for (i, &b) in fwd.iter().enumerate() {
            t += 13;
            let now = SimTime::from_micros(t);
            fwd_results_both.push(both.forward(now, b));
            fwd_results_only.push(only_fwd.forward(now, b));
            if let Some(&rb) = rev.get(i) {
                let _ = both.reverse(now, rb);
            }
        }
        prop_assert_eq!(fwd_results_both, fwd_results_only);
    }
}
