//! Randomized property tests for the network substrate: links and the
//! WAN emulator must deliver FIFO per direction, never faster than
//! serialization allows, and conserve every byte.
//!
//! Cases are drawn from the in-repo deterministic [`SimRng`] (fixed seed,
//! so failures replay exactly) instead of an external property-testing
//! framework — the workspace builds with no network access.

use st_net::{Link, WanEmulator};
use st_sim::{Bandwidth, SimDuration, SimRng, SimTime};

const CASES: u64 = 128;

fn random_sends(rng: &mut SimRng, t_max: u64, b_max: u64, n_max: u64) -> Vec<(u64, u32)> {
    let mut sends: Vec<(u64, u32)> = (0..rng.range_u64(1, n_max))
        .map(|_| (rng.range_u64(0, t_max), rng.range_u64(64, b_max) as u32))
        .collect();
    // Enqueue times must be non-decreasing (as in a simulation run).
    sends.sort_by_key(|&(t, _)| t);
    sends
}

/// Deliveries in one direction are FIFO and spaced at least a
/// serialization time apart.
#[test]
fn link_is_fifo_and_rate_limited() {
    let mut rng = SimRng::seed(0x11f0);
    for case in 0..CASES {
        let sends = random_sends(&mut rng, 10_000, 2_000, 100);
        let mbps = rng.range_u64(1, 1000);

        let mut link = Link::new(Bandwidth::mbps(mbps), SimDuration::from_micros(7));
        let mut last_delivery: Option<(SimTime, u32)> = None;
        let mut total = 0u64;
        for &(t, bytes) in &sends {
            let at = link.enqueue_forward(SimTime::from_micros(t), bytes);
            total += bytes as u64;
            // Physics: arrival >= send + serialization + propagation.
            let min = SimTime::from_micros(t)
                + Bandwidth::mbps(mbps).serialization_time(bytes as u64)
                + SimDuration::from_micros(7);
            assert!(
                at >= min,
                "arrived {at} before physics allows {min} (case {case})"
            );
            if let Some((prev_at, _)) = last_delivery {
                assert!(at >= prev_at, "FIFO violated (case {case})");
                // The wire can't deliver two frames closer than the
                // second frame's serialization time.
                let gap = at.since(prev_at);
                let ser = Bandwidth::mbps(mbps).serialization_time(bytes as u64);
                assert!(gap >= ser, "gap {gap} < serialization {ser} (case {case})");
            }
            last_delivery = Some((at, bytes));
        }
        assert_eq!(
            link.forward_bytes(),
            total,
            "byte conservation (case {case})"
        );
        assert_eq!(link.forward_frames(), sends.len() as u64, "case {case}");
    }
}

/// The WAN emulator adds exactly its one-way delay on top of bottleneck
/// serialization, per direction, FIFO.
#[test]
fn wan_is_fifo_with_fixed_delay() {
    let mut rng = SimRng::seed(0x3a9);
    for case in 0..CASES {
        let sends = random_sends(&mut rng, 50_000, 1_500, 100);
        let delay_ms = rng.range_u64(1, 200);

        let mut wan = WanEmulator::new(Bandwidth::mbps(50), SimDuration::from_millis(delay_ms));
        let mut last: Option<SimTime> = None;
        let mut wire_busy_until = SimTime::ZERO;
        for &(t, bytes) in &sends {
            let now = SimTime::from_micros(t);
            let at = wan.forward(now, bytes);
            // Exact model: serialization starts when the wire frees.
            let start = now.max(wire_busy_until);
            let done = start + Bandwidth::mbps(50).serialization_time(bytes as u64);
            wire_busy_until = done;
            assert_eq!(at, done + SimDuration::from_millis(delay_ms), "case {case}");
            if let Some(prev) = last {
                assert!(at >= prev, "FIFO violated (case {case})");
            }
            last = Some(at);
        }
        assert_eq!(wan.forwarded(), sends.len() as u64, "case {case}");
    }
}

/// Forward and reverse directions never interfere.
#[test]
fn wan_directions_independent() {
    let mut rng = SimRng::seed(0xd19);
    for case in 0..CASES {
        let fwd: Vec<u32> = (0..rng.range_u64(1, 50))
            .map(|_| rng.range_u64(64, 1_500) as u32)
            .collect();
        let rev: Vec<u32> = (0..rng.range_u64(1, 50))
            .map(|_| rng.range_u64(64, 1_500) as u32)
            .collect();

        let mut both = WanEmulator::paper_50mbps();
        let mut only_fwd = WanEmulator::paper_50mbps();
        let mut t = 0u64;
        let mut fwd_results_both = Vec::new();
        let mut fwd_results_only = Vec::new();
        for (i, &b) in fwd.iter().enumerate() {
            t += 13;
            let now = SimTime::from_micros(t);
            fwd_results_both.push(both.forward(now, b));
            fwd_results_only.push(only_fwd.forward(now, b));
            if let Some(&rb) = rev.get(i) {
                let _ = both.reverse(now, rb);
            }
        }
        assert_eq!(fwd_results_both, fwd_results_only, "case {case}");
    }
}
