//! Point-to-point links with exact serialization and propagation times.

use st_sim::{Bandwidth, SimDuration, SimTime};

/// One direction of a full-duplex link.
///
/// A transmitter serializes frames back to back: a frame enqueued while a
/// previous one is still on the wire starts serializing when the wire
/// frees up. Delivery time = serialization end + propagation delay.
#[derive(Debug, Clone)]
struct Direction {
    busy_until: SimTime,
    frames: u64,
    bytes: u64,
}

/// A full-duplex point-to-point link.
///
/// The link is passive: callers ask when an enqueued frame would arrive
/// and schedule their own delivery events. This keeps the link free of
/// event-queue plumbing and lets every simulation reuse it.
///
/// # Examples
///
/// ```
/// use st_net::Link;
/// use st_sim::{Bandwidth, SimDuration, SimTime};
///
/// let mut link = Link::new(Bandwidth::mbps(100), SimDuration::from_micros(10));
/// // A full frame takes 120 µs to serialize + 10 µs to propagate.
/// let t = link.enqueue_forward(SimTime::ZERO, 1500);
/// assert_eq!(t, SimTime::from_micros(130));
/// // A second frame queued immediately waits for the wire.
/// let t2 = link.enqueue_forward(SimTime::ZERO, 1500);
/// assert_eq!(t2, SimTime::from_micros(250));
/// ```
#[derive(Debug, Clone)]
pub struct Link {
    bandwidth: Bandwidth,
    propagation: SimDuration,
    forward: Direction,
    reverse: Direction,
}

impl Link {
    /// Creates a link with the given bandwidth and one-way propagation
    /// delay.
    pub fn new(bandwidth: Bandwidth, propagation: SimDuration) -> Self {
        let dir = Direction {
            busy_until: SimTime::ZERO,
            frames: 0,
            bytes: 0,
        };
        Link {
            bandwidth,
            propagation,
            forward: dir.clone(),
            reverse: dir,
        }
    }

    /// A switched 100 Mbps Ethernet segment with LAN-scale propagation —
    /// the paper's testbed fabric.
    pub fn fast_ethernet_lan() -> Self {
        Link::new(Bandwidth::mbps(100), SimDuration::from_micros(5))
    }

    /// The link bandwidth.
    pub fn bandwidth(&self) -> Bandwidth {
        self.bandwidth
    }

    /// One-way propagation delay.
    pub fn propagation(&self) -> SimDuration {
        self.propagation
    }

    fn enqueue(
        dir: &mut Direction,
        bw: Bandwidth,
        prop: SimDuration,
        now: SimTime,
        bytes: u32,
    ) -> SimTime {
        let start = now.max(dir.busy_until);
        let done = start + bw.serialization_time(bytes as u64);
        dir.busy_until = done;
        dir.frames += 1;
        dir.bytes += bytes as u64;
        done + prop
    }

    /// Enqueues a frame in the forward direction at `now`; returns its
    /// arrival time at the far end.
    pub fn enqueue_forward(&mut self, now: SimTime, bytes: u32) -> SimTime {
        Self::enqueue(
            &mut self.forward,
            self.bandwidth,
            self.propagation,
            now,
            bytes,
        )
    }

    /// Enqueues a frame in the reverse direction at `now`.
    pub fn enqueue_reverse(&mut self, now: SimTime, bytes: u32) -> SimTime {
        Self::enqueue(
            &mut self.reverse,
            self.bandwidth,
            self.propagation,
            now,
            bytes,
        )
    }

    /// When the forward transmitter frees up.
    pub fn forward_busy_until(&self) -> SimTime {
        self.forward.busy_until
    }

    /// Frames sent forward so far.
    pub fn forward_frames(&self) -> u64 {
        self.forward.frames
    }

    /// Bytes sent forward so far.
    pub fn forward_bytes(&self) -> u64 {
        self.forward.bytes
    }

    /// Frames sent in reverse so far.
    pub fn reverse_frames(&self) -> u64 {
        self.reverse.frames
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_and_propagation() {
        let mut l = Link::new(Bandwidth::gbps(1), SimDuration::from_micros(2));
        let t = l.enqueue_forward(SimTime::ZERO, 1500);
        assert_eq!(t, SimTime::from_micros(14)); // 12 + 2
    }

    #[test]
    fn back_to_back_frames_queue() {
        let mut l = Link::new(Bandwidth::mbps(100), SimDuration::ZERO);
        let t1 = l.enqueue_forward(SimTime::ZERO, 1500);
        let t2 = l.enqueue_forward(SimTime::from_micros(30), 1500);
        assert_eq!(t1, SimTime::from_micros(120));
        assert_eq!(t2, SimTime::from_micros(240), "waits for the wire");
        // After the wire idles, a new frame starts immediately.
        let t3 = l.enqueue_forward(SimTime::from_micros(1000), 1500);
        assert_eq!(t3, SimTime::from_micros(1120));
    }

    #[test]
    fn directions_are_independent() {
        let mut l = Link::new(Bandwidth::mbps(100), SimDuration::ZERO);
        l.enqueue_forward(SimTime::ZERO, 1500);
        let t = l.enqueue_reverse(SimTime::ZERO, 1500);
        assert_eq!(t, SimTime::from_micros(120), "no head-of-line blocking");
        assert_eq!(l.forward_frames(), 1);
        assert_eq!(l.reverse_frames(), 1);
    }

    #[test]
    fn counters() {
        let mut l = Link::fast_ethernet_lan();
        l.enqueue_forward(SimTime::ZERO, 1000);
        l.enqueue_forward(SimTime::ZERO, 500);
        assert_eq!(l.forward_bytes(), 1500);
        assert_eq!(l.forward_frames(), 2);
    }
}
