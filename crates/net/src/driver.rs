//! Packet dispatch policies.
//!
//! Four ways to learn about received packets, matching section 4.2's
//! design-space discussion:
//!
//! - **Interrupt-driven** — the conventional kernel: one interrupt per
//!   frame (modulo latch coalescing).
//! - **Pure polling** — fixed-period polls from the scheduler (Traw &
//!   Smith): no interrupts, but latency is the poll period.
//! - **Hybrid** (Mogul & Ramakrishnan) — interrupts normally; while
//!   processing, poll for more packets and only re-enable interrupts when
//!   the ring is empty. Avoids receive livelock under overload.
//! - **Soft-timer polling** (the paper) — NIC interrupts stay disabled
//!   while the CPU is busy; a soft-timer event polls at an adaptive
//!   interval targeting an aggregation quota; interrupts are re-enabled
//!   whenever the CPU idles so latency never suffers on an unloaded
//!   machine.

use st_core::poller::{PollController, PollControllerConfig};

/// Which dispatch policy a machine uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DriverStrategy {
    /// Conventional per-packet interrupts.
    InterruptDriven,
    /// Fixed-period polling, period in measurement-clock ticks (µs).
    PurePolling {
        /// Poll period in ticks.
        period: u64,
    },
    /// Mogul-Ramakrishnan interrupt/poll hybrid.
    Hybrid,
    /// Soft-timer polling with an aggregation quota (packets per poll).
    SoftTimerPolling {
        /// Target packets found per poll.
        quota: f64,
    },
    /// Modern-NIC hardware interrupt moderation (e.g. Intel ITR): the
    /// first frame arms a timer in the NIC; the interrupt fires after
    /// `delay` ticks, covering everything that arrived meanwhile. An
    /// ablation the paper predates: it bounds interrupt rate like soft
    /// polling, but pays the moderation delay even on an idle machine.
    CoalescedInterrupts {
        /// Moderation delay in ticks (µs).
        delay: u64,
    },
}

/// What the kernel should do after processing a batch of packets
/// (hybrid policy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HybridAction {
    /// More frames are pending: poll again without enabling interrupts.
    PollAgain,
    /// Ring empty: re-enable interrupts and return.
    EnableInterrupts,
}

/// Per-NIC driver state machine.
#[derive(Debug)]
pub struct DriverPolicy {
    strategy: DriverStrategy,
    controller: Option<PollController>,
    /// Soft-timer polling: whether the CPU is idle (interrupts enabled).
    idle_mode: bool,
}

impl DriverPolicy {
    /// Creates the policy state for a strategy.
    pub fn new(strategy: DriverStrategy) -> Self {
        let controller = match strategy {
            DriverStrategy::SoftTimerPolling { quota } => Some(PollController::new(
                // Large quotas at moderate packet rates need intervals
                // past the 1 ms backup period; that only costs scheduling
                // precision (the backup sweep still bounds delay), so the
                // controller may range up to 10 ms.
                PollControllerConfig {
                    max_interval: 10_000,
                    ..PollControllerConfig::with_quota(quota)
                },
            )),
            _ => None,
        };
        DriverPolicy {
            strategy,
            controller,
            idle_mode: false,
        }
    }

    /// The configured strategy.
    pub fn strategy(&self) -> DriverStrategy {
        self.strategy
    }

    /// Whether NIC receive interrupts should be enabled at boot.
    pub fn rx_interrupts_at_boot(&self) -> bool {
        matches!(
            self.strategy,
            DriverStrategy::InterruptDriven
                | DriverStrategy::Hybrid
                | DriverStrategy::CoalescedInterrupts { .. }
        )
    }

    /// Whether this policy schedules periodic polls (pure or soft-timer).
    pub fn polls(&self) -> bool {
        matches!(
            self.strategy,
            DriverStrategy::PurePolling { .. } | DriverStrategy::SoftTimerPolling { .. }
        ) && !self.idle_mode
    }

    /// Records a completed poll that found `found` packets and returns the
    /// interval (ticks) until the next poll, or `None` when the policy
    /// does not poll (interrupt-driven / hybrid / idle mode).
    pub fn next_poll_interval(&mut self, found: u64) -> Option<u64> {
        if self.idle_mode {
            return None;
        }
        let interval = match self.strategy {
            DriverStrategy::PurePolling { period } => Some(period),
            DriverStrategy::SoftTimerPolling { .. } => {
                let c = self
                    .controller
                    .as_mut()
                    .expect("soft polling always has a controller");
                Some(c.on_poll(found))
            }
            _ => None,
        };
        // No clock reaches the policy, so the decision is traced as
        // metrics only (the poll itself shows up via the NIC events).
        if let Some(iv) = interval {
            if st_trace::active() {
                st_trace::count("net.poll.decisions", 1);
                st_trace::observe("net.poll.interval_ticks", iv as f64);
                st_trace::observe("net.poll.found", found as f64);
            }
        }
        interval
    }

    /// Hybrid policy: decide what to do after a processing batch.
    pub fn hybrid_after_batch(&self, rx_pending: usize) -> HybridAction {
        debug_assert!(matches!(self.strategy, DriverStrategy::Hybrid));
        if rx_pending > 0 {
            HybridAction::PollAgain
        } else {
            HybridAction::EnableInterrupts
        }
    }

    /// Soft-timer polling: the CPU entered the idle loop. Polling stops
    /// and NIC interrupts should be enabled — "soft-timer based network
    /// polling is turned off (and interrupts are enabled instead)
    /// whenever a CPU enters the idle loop" (section 5.9). Returns whether
    /// the caller should enable NIC interrupts.
    pub fn on_idle_enter(&mut self) -> bool {
        if matches!(self.strategy, DriverStrategy::SoftTimerPolling { .. }) {
            self.idle_mode = true;
            st_trace::count("net.poll.idle_enter", 1);
            true
        } else {
            false
        }
    }

    /// Soft-timer polling: work arrived, the CPU left idle. Returns
    /// whether the caller should disable NIC interrupts and resume
    /// scheduling polls.
    pub fn on_idle_exit(&mut self) -> bool {
        if matches!(self.strategy, DriverStrategy::SoftTimerPolling { .. }) && self.idle_mode {
            self.idle_mode = false;
            st_trace::count("net.poll.idle_exit", 1);
            true
        } else {
            false
        }
    }

    /// Whether the policy is currently in idle mode.
    pub fn idle_mode(&self) -> bool {
        self.idle_mode
    }

    /// Average packets found per poll so far (soft-timer polling).
    pub fn average_found(&self) -> Option<f64> {
        self.controller.as_ref().map(|c| c.average_found())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boot_interrupt_state_by_strategy() {
        assert!(DriverPolicy::new(DriverStrategy::InterruptDriven).rx_interrupts_at_boot());
        assert!(DriverPolicy::new(DriverStrategy::Hybrid).rx_interrupts_at_boot());
        assert!(
            DriverPolicy::new(DriverStrategy::CoalescedInterrupts { delay: 100 })
                .rx_interrupts_at_boot()
        );
        assert!(
            !DriverPolicy::new(DriverStrategy::PurePolling { period: 100 }).rx_interrupts_at_boot()
        );
        assert!(
            !DriverPolicy::new(DriverStrategy::SoftTimerPolling { quota: 1.0 })
                .rx_interrupts_at_boot()
        );
    }

    #[test]
    fn pure_polling_fixed_period() {
        let mut p = DriverPolicy::new(DriverStrategy::PurePolling { period: 100 });
        assert_eq!(p.next_poll_interval(0), Some(100));
        assert_eq!(p.next_poll_interval(50), Some(100));
        assert!(p.polls());
    }

    #[test]
    fn soft_polling_adapts() {
        let mut p = DriverPolicy::new(DriverStrategy::SoftTimerPolling { quota: 1.0 });
        let first = p.next_poll_interval(10).unwrap();
        let mut last = first;
        for _ in 0..20 {
            last = p.next_poll_interval(10).unwrap();
        }
        assert!(last < first, "interval shrinks when over quota");
        assert!(p.average_found().unwrap() > 9.0);
    }

    #[test]
    fn interrupt_driven_never_polls() {
        let mut p = DriverPolicy::new(DriverStrategy::InterruptDriven);
        assert!(!p.polls());
        assert_eq!(p.next_poll_interval(0), None);
    }

    #[test]
    fn hybrid_polls_until_empty() {
        let p = DriverPolicy::new(DriverStrategy::Hybrid);
        assert_eq!(p.hybrid_after_batch(3), HybridAction::PollAgain);
        assert_eq!(p.hybrid_after_batch(0), HybridAction::EnableInterrupts);
    }

    #[test]
    fn soft_polling_idle_transitions() {
        let mut p = DriverPolicy::new(DriverStrategy::SoftTimerPolling { quota: 1.0 });
        assert!(p.polls());
        assert!(p.on_idle_enter(), "enable interrupts on idle");
        assert!(p.idle_mode());
        assert!(!p.polls());
        assert_eq!(p.next_poll_interval(0), None, "no polls while idle");
        assert!(p.on_idle_exit(), "disable interrupts again");
        assert!(p.polls());
        assert!(!p.on_idle_exit(), "double exit is a no-op");
    }

    #[test]
    fn idle_transitions_noop_for_other_strategies() {
        let mut p = DriverPolicy::new(DriverStrategy::InterruptDriven);
        assert!(!p.on_idle_enter());
        assert!(!p.on_idle_exit());
    }
}
