//! Network interface model: descriptor rings, interrupts, polling.

use std::collections::VecDeque;

use st_sim::SimTime;

use crate::packet::Packet;

/// A network interface card.
///
/// Receive path: the wire delivers frames into the rx ring
/// ([`Nic::deliver_rx`]); in interrupt mode the NIC asserts its line (the
/// caller raises it on the interrupt controller); in polled mode the
/// kernel reads the status register ([`Nic::rx_pending`]) and drains
/// frames ([`Nic::poll_rx`]). A full ring drops frames — the overload
/// failure mode Mogul & Ramakrishnan's livelock work targets.
///
/// Transmit completion is reported by the link model; the NIC only counts.
#[derive(Debug)]
pub struct Nic {
    rx_ring: VecDeque<Packet>,
    rx_capacity: usize,
    rx_intr_enabled: bool,
    rx_delivered: u64,
    rx_dropped: u64,
    rx_polled: u64,
    tx_frames: u64,
    last_rx_at: Option<SimTime>,
}

impl Nic {
    /// Creates a NIC with the given rx ring capacity.
    ///
    /// # Panics
    ///
    /// Panics on zero capacity.
    pub fn new(rx_capacity: usize) -> Self {
        assert!(rx_capacity > 0, "rx ring needs capacity");
        Nic {
            rx_ring: VecDeque::with_capacity(rx_capacity),
            rx_capacity,
            rx_intr_enabled: true,
            rx_delivered: 0,
            rx_dropped: 0,
            rx_polled: 0,
            tx_frames: 0,
            last_rx_at: None,
        }
    }

    /// A typical 256-descriptor receive ring.
    pub fn default_ring() -> Self {
        Nic::new(256)
    }

    /// Enables receive interrupts.
    pub fn enable_rx_interrupts(&mut self) {
        self.rx_intr_enabled = true;
    }

    /// Disables receive interrupts (polled operation).
    pub fn disable_rx_interrupts(&mut self) {
        self.rx_intr_enabled = false;
    }

    /// Whether receive interrupts are enabled.
    pub fn rx_interrupts_enabled(&self) -> bool {
        self.rx_intr_enabled
    }

    /// The wire delivers a frame at `now`. Returns `true` when the NIC
    /// would assert its interrupt line (interrupts enabled). A full ring
    /// drops the frame.
    pub fn deliver_rx(&mut self, now: SimTime, packet: Packet) -> bool {
        if self.rx_ring.len() >= self.rx_capacity {
            self.rx_dropped += 1;
            if st_trace::active() {
                st_trace::count("net.rx.dropped", 1);
                st_trace::emit(
                    st_trace::Category::Net,
                    "net.rx_drop",
                    now.as_micros(),
                    self.rx_ring.len() as u64,
                    0,
                );
            }
            return false;
        }
        self.rx_ring.push_back(packet);
        self.rx_delivered += 1;
        self.last_rx_at = Some(now);
        st_scope::gauge(now.as_micros(), "net.rx_ring", self.rx_ring.len() as f64);
        if st_trace::active() {
            st_trace::count("net.rx.delivered", 1);
            st_trace::emit(
                st_trace::Category::Net,
                "net.rx",
                now.as_micros(),
                self.rx_ring.len() as u64,
                self.rx_intr_enabled as u64,
            );
        }
        self.rx_intr_enabled
    }

    /// Status register: frames waiting in the rx ring.
    pub fn rx_pending(&self) -> usize {
        self.rx_ring.len()
    }

    /// Drains up to `max` frames from the rx ring (a poll or the interrupt
    /// handler's work loop).
    pub fn poll_rx(&mut self, max: usize) -> Vec<Packet> {
        let n = max.min(self.rx_ring.len());
        self.rx_polled += n as u64;
        if n > 0 {
            st_trace::count("net.rx.polled", n as u64);
        }
        self.rx_ring.drain(..n).collect()
    }

    /// Records a transmitted frame (for counters only; timing is the
    /// link's job).
    pub fn record_tx(&mut self) {
        self.tx_frames += 1;
    }

    /// Frames accepted into the rx ring so far.
    pub fn rx_delivered(&self) -> u64 {
        self.rx_delivered
    }

    /// Frames dropped due to a full ring.
    pub fn rx_dropped(&self) -> u64 {
        self.rx_dropped
    }

    /// Frames drained by polls / handlers.
    pub fn rx_polled(&self) -> u64 {
        self.rx_polled
    }

    /// Frames transmitted.
    pub fn tx_frames(&self) -> u64 {
        self.tx_frames
    }

    /// When the most recent frame arrived.
    pub fn last_rx_at(&self) -> Option<SimTime> {
        self.last_rx_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{ConnId, Packet};

    fn pkt(id: u64) -> Packet {
        Packet::ack(id, ConnId(0), 0, 0)
    }

    #[test]
    fn rx_interrupt_signaled_only_when_enabled() {
        let mut nic = Nic::new(4);
        assert!(nic.deliver_rx(SimTime::ZERO, pkt(1)));
        nic.disable_rx_interrupts();
        assert!(!nic.deliver_rx(SimTime::ZERO, pkt(2)));
        assert_eq!(nic.rx_pending(), 2);
    }

    #[test]
    fn poll_drains_in_order() {
        let mut nic = Nic::new(8);
        for i in 0..5 {
            nic.deliver_rx(SimTime::from_micros(i), pkt(i));
        }
        let got = nic.poll_rx(3);
        assert_eq!(got.iter().map(|p| p.id).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(nic.rx_pending(), 2);
        let rest = nic.poll_rx(100);
        assert_eq!(rest.len(), 2);
        assert_eq!(nic.rx_polled(), 5);
    }

    #[test]
    fn full_ring_drops() {
        let mut nic = Nic::new(2);
        assert!(nic.deliver_rx(SimTime::ZERO, pkt(1)));
        assert!(nic.deliver_rx(SimTime::ZERO, pkt(2)));
        assert!(!nic.deliver_rx(SimTime::ZERO, pkt(3)), "dropped, no intr");
        assert_eq!(nic.rx_dropped(), 1);
        assert_eq!(nic.rx_delivered(), 2);
    }

    #[test]
    fn tx_counter() {
        let mut nic = Nic::default_ring();
        nic.record_tx();
        nic.record_tx();
        assert_eq!(nic.tx_frames(), 2);
    }

    #[test]
    fn last_rx_time_tracked() {
        let mut nic = Nic::new(4);
        assert_eq!(nic.last_rx_at(), None);
        nic.deliver_rx(SimTime::from_micros(7), pkt(1));
        assert_eq!(nic.last_rx_at(), Some(SimTime::from_micros(7)));
    }
}
