//! Simulated network substrate.
//!
//! Models the paper's testbed network: switched 100 Mbps Ethernet between
//! Pentium machines, NICs that interrupt per packet (or are polled), and
//! the lab "WAN emulator" router that adds delay and a bottleneck to
//! model high bandwidth-delay-product paths (section 5.8).
//!
//! - [`packet`] — wire frames with a small TCP-ish header (shared wire
//!   format; the protocol machine lives in `st-tcp`).
//! - [`link`] — full-duplex point-to-point links with exact serialization
//!   and propagation times.
//! - [`nic`] — network interfaces: rx/tx descriptor rings, per-packet
//!   interrupts, status-register polling, drop accounting.
//! - [`driver`] — packet dispatch policies: interrupt-driven,
//!   pure-polling, the Mogul-Ramakrishnan hybrid, and soft-timer polling
//!   with an aggregation quota (section 4.2).
//! - [`wan`] — the store-and-forward WAN emulator router of section 5.8,
//!   with an optional finite drop-tail bottleneck buffer.
//! - [`wire`] — deterministic per-packet wire faults: loss, reordering,
//!   duplication, replayable from a `(faults, seed)` pair.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod link;
pub mod nic;
pub mod packet;
pub mod wan;
pub mod wire;

pub use driver::{DriverPolicy, DriverStrategy};
pub use link::Link;
pub use nic::Nic;
pub use packet::{ConnId, Packet, TcpFlags, TcpHeader};
pub use wan::{WanDirStats, WanEmulator};
pub use wire::{WireFate, WireFaultInjector, WireFaults};
