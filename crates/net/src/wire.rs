//! Per-packet wire faults: loss, reordering, duplication.
//!
//! Real WAN paths do worse than delay and queueing: routers drop under
//! pressure, ECMP and retransmitting link layers reorder, and duplicated
//! frames appear from spanning-tree flaps or retransmit races. The soft
//! timers paper motivates rate-based clocking as a defense against the
//! bursts that *cause* drop-tail loss (§3.1, Appendix A); exercising the
//! transport against an actively lossy wire is therefore part of the
//! reproduction's robustness story, not an extension of it.
//!
//! [`WireFaults`] is plain `Copy` data — it carries no randomness. The
//! [`WireFaultInjector`] draws every per-packet decision from one
//! [`SimRng`] (callers fork it from their master seed), so a
//! `(faults, seed)` pair replays the exact fate sequence byte-for-byte.
//! One packet costs at most three Bernoulli draws, taken in a fixed
//! order (loss, then duplication, then reordering) regardless of earlier
//! outcomes, so the draw stream never shifts between runs.

use st_sim::{SimDuration, SimRng};

/// Per-packet fault probabilities on an emulated wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireFaults {
    /// Probability a packet is silently dropped in flight.
    pub loss_chance: f64,
    /// Probability a packet is delivered twice (both copies arrive).
    pub duplicate_chance: f64,
    /// Probability a packet is held back and delivered late, behind
    /// packets sent after it.
    pub reorder_chance: f64,
    /// Shortest extra holding delay for a reordered packet, µs.
    pub reorder_min_us: u64,
    /// Longest extra holding delay for a reordered packet, µs.
    pub reorder_max_us: u64,
}

impl WireFaults {
    /// The fault-matrix default: 5 % loss, 2 % duplication, 5 % reorders
    /// held back 100–2000 µs — several packet times at the paper's WAN
    /// rates, enough to trip a naive reassembler on every run.
    pub fn nasty() -> Self {
        WireFaults {
            loss_chance: 0.05,
            duplicate_chance: 0.02,
            reorder_chance: 0.05,
            reorder_min_us: 100,
            reorder_max_us: 2_000,
        }
    }

    /// A mildly lossy path: ≤ 1 % of packets lost, with rare reorders
    /// and duplicates. The `repro congestion` survival rows use this —
    /// every transfer must still complete with bounded RTO backoff.
    pub fn mild() -> Self {
        WireFaults {
            loss_chance: 0.01,
            duplicate_chance: 0.005,
            reorder_chance: 0.01,
            reorder_min_us: 100,
            reorder_max_us: 1_000,
        }
    }
}

/// The fate the injector assigned to one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFate {
    /// Delivered normally.
    Deliver,
    /// Dropped in flight; the packet never arrives.
    Drop,
    /// Delivered twice: the original on time and one extra copy.
    Duplicate,
    /// Held back: delivered `extra` later than it would have been,
    /// allowing packets sent after it to overtake it.
    Reorder {
        /// Extra holding delay before delivery.
        extra: SimDuration,
    },
}

/// Draws per-packet [`WireFate`]s deterministically from a seeded RNG.
#[derive(Debug, Clone)]
pub struct WireFaultInjector {
    faults: Option<WireFaults>,
    rng: SimRng,
    offered: u64,
    dropped: u64,
    duplicated: u64,
    reordered: u64,
}

impl WireFaultInjector {
    /// Creates an injector; `None` faults means every packet is
    /// delivered (and the RNG is never consulted).
    pub fn new(faults: Option<WireFaults>, rng: SimRng) -> Self {
        WireFaultInjector {
            faults,
            rng,
            offered: 0,
            dropped: 0,
            duplicated: 0,
            reordered: 0,
        }
    }

    /// Decides the fate of the next packet. Always takes the same number
    /// of draws per packet, so the stream cannot shift between replays.
    pub fn fate(&mut self) -> WireFate {
        self.offered += 1;
        let Some(f) = self.faults else {
            return WireFate::Deliver;
        };
        // Fixed draw order: loss, duplication, reorder, plus one delay
        // draw reserved whether or not the reorder fires.
        let lost = self.rng.chance(f.loss_chance);
        let duplicated = self.rng.chance(f.duplicate_chance);
        let reordered = self.rng.chance(f.reorder_chance);
        let lo = f.reorder_min_us.max(1);
        let hi = f.reorder_max_us.max(lo);
        let extra = self.rng.range_u64(lo, hi + 1);
        if lost {
            self.dropped += 1;
            return WireFate::Drop;
        }
        if duplicated {
            self.duplicated += 1;
            return WireFate::Duplicate;
        }
        if reordered {
            self.reordered += 1;
            return WireFate::Reorder {
                extra: SimDuration::from_micros(extra),
            };
        }
        WireFate::Deliver
    }

    /// Packets offered to the injector.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Packets dropped in flight.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Packets delivered twice.
    pub fn duplicated(&self) -> u64 {
        self.duplicated
    }

    /// Packets held back for reordering.
    pub fn reordered(&self) -> u64 {
        self.reordered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_wire_never_touches_the_rng() {
        let mut inj = WireFaultInjector::new(None, SimRng::seed(1));
        for _ in 0..1_000 {
            assert_eq!(inj.fate(), WireFate::Deliver);
        }
        assert_eq!(inj.offered(), 1_000);
        assert_eq!(inj.dropped() + inj.duplicated() + inj.reordered(), 0);
        // The RNG stream is untouched: same draws as a fresh seed.
        let mut a = SimRng::seed(1);
        let mut b = inj.rng.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fates_replay_byte_identically() {
        let mk = || {
            let mut inj = WireFaultInjector::new(Some(WireFaults::nasty()), SimRng::seed(77));
            (0..10_000).map(|_| inj.fate()).collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn all_fault_kinds_occur_at_nasty_rates() {
        let mut inj = WireFaultInjector::new(Some(WireFaults::nasty()), SimRng::seed(3));
        for _ in 0..20_000 {
            inj.fate();
        }
        assert!(inj.dropped() > 0, "no losses injected");
        assert!(inj.duplicated() > 0, "no duplicates injected");
        assert!(inj.reordered() > 0, "no reorders injected");
        // Rates land near the configured probabilities.
        let loss_rate = inj.dropped() as f64 / inj.offered() as f64;
        assert!((0.03..0.07).contains(&loss_rate), "loss rate {loss_rate}");
    }

    #[test]
    fn mild_faults_stay_under_one_percent_loss() {
        let mut inj = WireFaultInjector::new(Some(WireFaults::mild()), SimRng::seed(9));
        for _ in 0..50_000 {
            inj.fate();
        }
        let loss_rate = inj.dropped() as f64 / inj.offered() as f64;
        assert!(loss_rate < 0.015, "mild loss rate {loss_rate}");
    }

    #[test]
    fn reorder_delay_respects_bounds() {
        let f = WireFaults {
            loss_chance: 0.0,
            duplicate_chance: 0.0,
            reorder_chance: 1.0,
            reorder_min_us: 50,
            reorder_max_us: 60,
        };
        let mut inj = WireFaultInjector::new(Some(f), SimRng::seed(4));
        for _ in 0..500 {
            match inj.fate() {
                WireFate::Reorder { extra } => {
                    let us = extra.as_micros();
                    assert!((50..=60).contains(&us), "extra {us}");
                }
                other => panic!("expected reorder, got {other:?}"),
            }
        }
    }
}
