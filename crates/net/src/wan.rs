//! The WAN emulator router of section 5.8.
//!
//! "We model this connection in the laboratory by transmitting the data
//! ... via an intermediate Pentium II machine that acts as a 'WAN
//! emulator'. This machine runs a modified FreeBSD kernel configured as
//! an IP router, except that it delays each forwarded packet so as to
//! emulate a WAN with a given delay and bottleneck bandwidth."
//!
//! The emulator is a store-and-forward queue: each direction serializes
//! packets at the bottleneck bandwidth and then adds the fixed one-way
//! delay. With the paper's parameters (50 ms one-way, 50 or 100 Mbps
//! bottleneck) a client-server connection sees a 100 ms RTT and a 5 or
//! 10 Mbit pipe.

use st_sim::{Bandwidth, SimDuration, SimTime};
use st_stats::Summary;

/// One direction of the emulated WAN path.
#[derive(Debug, Clone)]
struct WanDirection {
    busy_until: SimTime,
    forwarded: u64,
    bytes: u64,
    queue_delay: Summary,
    max_backlog: SimDuration,
}

impl WanDirection {
    fn new() -> Self {
        WanDirection {
            busy_until: SimTime::ZERO,
            forwarded: 0,
            bytes: 0,
            queue_delay: Summary::new(),
            max_backlog: SimDuration::ZERO,
        }
    }

    fn forward(&mut self, bw: Bandwidth, delay: SimDuration, now: SimTime, bytes: u32) -> SimTime {
        let start = now.max(self.busy_until);
        let queued = start.since(now);
        self.queue_delay.record(queued.as_micros_f64());
        let backlog = self.busy_until.since(now);
        if backlog > self.max_backlog {
            self.max_backlog = backlog;
        }
        let done = start + bw.serialization_time(bytes as u64);
        self.busy_until = done;
        self.forwarded += 1;
        self.bytes += bytes as u64;
        done + delay
    }
}

/// Store-and-forward WAN emulator with a bottleneck and fixed one-way
/// delay, symmetric in both directions.
///
/// # Examples
///
/// ```
/// use st_net::WanEmulator;
/// use st_sim::{Bandwidth, SimDuration, SimTime};
///
/// // The paper's Table 7 path: 100 Mbps bottleneck, 50 ms one-way.
/// let mut wan = WanEmulator::new(Bandwidth::mbps(100), SimDuration::from_millis(50));
/// let arrive = wan.forward(SimTime::ZERO, 1500);
/// assert_eq!(arrive, SimTime::from_micros(50_120));
/// ```
#[derive(Debug, Clone)]
pub struct WanEmulator {
    bottleneck: Bandwidth,
    one_way_delay: SimDuration,
    forward: WanDirection,
    reverse: WanDirection,
}

impl WanEmulator {
    /// Creates an emulator with the given bottleneck bandwidth and
    /// one-way propagation delay.
    pub fn new(bottleneck: Bandwidth, one_way_delay: SimDuration) -> Self {
        WanEmulator {
            bottleneck,
            one_way_delay,
            forward: WanDirection::new(),
            reverse: WanDirection::new(),
        }
    }

    /// The Table 6 path: 50 Mbps bottleneck, 100 ms RTT.
    pub fn paper_50mbps() -> Self {
        WanEmulator::new(Bandwidth::mbps(50), SimDuration::from_millis(50))
    }

    /// The Table 7 path: 100 Mbps bottleneck, 100 ms RTT.
    pub fn paper_100mbps() -> Self {
        WanEmulator::new(Bandwidth::mbps(100), SimDuration::from_millis(50))
    }

    /// Bottleneck bandwidth.
    pub fn bottleneck(&self) -> Bandwidth {
        self.bottleneck
    }

    /// One-way delay.
    pub fn one_way_delay(&self) -> SimDuration {
        self.one_way_delay
    }

    /// Round-trip time of the bare path (no queueing).
    pub fn rtt(&self) -> SimDuration {
        self.one_way_delay * 2
    }

    /// Bandwidth-delay product in bytes.
    pub fn bdp_bytes(&self) -> u64 {
        self.bottleneck.bdp_bytes(self.rtt())
    }

    /// Forwards a frame server→client; returns its arrival time.
    pub fn forward(&mut self, now: SimTime, bytes: u32) -> SimTime {
        self.forward
            .forward(self.bottleneck, self.one_way_delay, now, bytes)
    }

    /// Forwards a frame client→server; returns its arrival time.
    pub fn reverse(&mut self, now: SimTime, bytes: u32) -> SimTime {
        self.reverse
            .forward(self.bottleneck, self.one_way_delay, now, bytes)
    }

    /// Frames forwarded server→client.
    pub fn forwarded(&self) -> u64 {
        self.forward.forwarded
    }

    /// Mean queueing delay (µs) experienced server→client.
    pub fn mean_queue_delay_us(&self) -> f64 {
        self.forward.queue_delay.mean()
    }

    /// Worst instantaneous backlog (time to drain the queue) seen
    /// server→client.
    pub fn max_backlog(&self) -> SimDuration {
        self.forward.max_backlog
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_paths() {
        let w = WanEmulator::paper_50mbps();
        assert_eq!(w.rtt(), SimDuration::from_millis(100));
        assert_eq!(w.bdp_bytes(), 625_000); // 5 Mbit
        let w = WanEmulator::paper_100mbps();
        assert_eq!(w.bdp_bytes(), 1_250_000); // 10 Mbit
    }

    #[test]
    fn bottleneck_spaces_packets() {
        // Two back-to-back 1500 B frames through a 50 Mbps bottleneck
        // leave 240 µs apart — the pacing the network itself imposes.
        let mut w = WanEmulator::paper_50mbps();
        let t1 = w.forward(SimTime::ZERO, 1500);
        let t2 = w.forward(SimTime::ZERO, 1500);
        assert_eq!(t2.since(t1), SimDuration::from_micros(240));
    }

    #[test]
    fn directions_independent() {
        let mut w = WanEmulator::paper_100mbps();
        w.forward(SimTime::ZERO, 1500);
        let t = w.reverse(SimTime::ZERO, 52);
        // A 52-byte ACK: 4.16 µs serialization + 50 ms.
        assert_eq!(t.as_micros(), 50_004);
    }

    #[test]
    fn queue_stats_accumulate() {
        let mut w = WanEmulator::paper_50mbps();
        for _ in 0..10 {
            w.forward(SimTime::ZERO, 1500);
        }
        assert_eq!(w.forwarded(), 10);
        assert!(w.mean_queue_delay_us() > 0.0);
        // Nine frames were backlogged at t=0: 9 * 240 us.
        assert_eq!(w.max_backlog(), SimDuration::from_micros(2160));
    }
}
