//! The WAN emulator router of section 5.8.
//!
//! "We model this connection in the laboratory by transmitting the data
//! ... via an intermediate Pentium II machine that acts as a 'WAN
//! emulator'. This machine runs a modified FreeBSD kernel configured as
//! an IP router, except that it delays each forwarded packet so as to
//! emulate a WAN with a given delay and bottleneck bandwidth."
//!
//! The emulator is a store-and-forward queue: each direction serializes
//! packets at the bottleneck bandwidth and then adds the fixed one-way
//! delay. With the paper's parameters (50 ms one-way, 50 or 100 Mbps
//! bottleneck) a client-server connection sees a 100 ms RTT and a 5 or
//! 10 Mbit pipe.
//!
//! Real bottleneck routers do not queue infinitely: they have a finite
//! drop-tail buffer, and the bursts that rate-based clocking exists to
//! smooth (§3.1, Appendix A) hurt precisely because they overflow it.
//! [`WanEmulator::with_buffer`] bounds the per-direction waiting room in
//! bytes (the frame in service does not count against it, like a real
//! output queue); [`WanEmulator::try_forward`] / [`try_reverse`] return
//! `None` for packets that arrive to a full buffer, and per-direction
//! [`WanDirStats`] surface drop and backlog accounting.
//!
//! [`try_reverse`]: WanEmulator::try_reverse

use std::collections::VecDeque;

use st_sim::{Bandwidth, SimDuration, SimTime};
use st_stats::Summary;

/// Snapshot of one direction's forwarding statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WanDirStats {
    /// Frames forwarded (accepted and delivered).
    pub forwarded: u64,
    /// Bytes forwarded.
    pub bytes: u64,
    /// Frames dropped at the full drop-tail buffer.
    pub drops: u64,
    /// Bytes dropped at the full drop-tail buffer.
    pub dropped_bytes: u64,
    /// Worst instantaneous backlog (time to drain the queue) observed
    /// at any arrival.
    pub max_backlog: SimDuration,
    /// Mean queueing delay of accepted frames, µs.
    pub mean_queue_delay_us: f64,
}

/// One direction of the emulated WAN path.
#[derive(Debug, Clone)]
struct WanDirection {
    busy_until: SimTime,
    /// Waiting room in bytes; `None` = unlimited (the seed behaviour).
    /// The frame in service is not counted against it.
    capacity: Option<u64>,
    /// Frames waiting for service: (service-start time, bytes). Entries
    /// whose service has started no longer occupy the buffer.
    waiting: VecDeque<(SimTime, u32)>,
    waiting_bytes: u64,
    forwarded: u64,
    bytes: u64,
    drops: u64,
    dropped_bytes: u64,
    queue_delay: Summary,
    max_backlog: SimDuration,
}

impl WanDirection {
    fn new(capacity: Option<u64>) -> Self {
        WanDirection {
            busy_until: SimTime::ZERO,
            capacity,
            waiting: VecDeque::new(),
            waiting_bytes: 0,
            forwarded: 0,
            bytes: 0,
            drops: 0,
            dropped_bytes: 0,
            queue_delay: Summary::new(),
            max_backlog: SimDuration::ZERO,
        }
    }

    /// Retires waiting-room entries whose service began by `now`.
    fn drain_started(&mut self, now: SimTime) {
        while let Some(&(start, b)) = self.waiting.front() {
            if start > now {
                break;
            }
            self.waiting_bytes = self.waiting_bytes.saturating_sub(b as u64);
            self.waiting.pop_front();
        }
    }

    fn forward(
        &mut self,
        bw: Bandwidth,
        delay: SimDuration,
        now: SimTime,
        bytes: u32,
    ) -> Option<SimTime> {
        self.drain_started(now);
        let backlog = self.busy_until.since(now);
        if backlog > self.max_backlog {
            self.max_backlog = backlog;
        }
        let start = now.max(self.busy_until);
        // A frame arriving while the link is busy needs waiting room; the
        // one in service occupies the transmitter, not the buffer.
        if start > now {
            if let Some(cap) = self.capacity {
                if self.waiting_bytes + bytes as u64 > cap {
                    self.drops += 1;
                    self.dropped_bytes += bytes as u64;
                    return None;
                }
            }
            self.waiting.push_back((start, bytes));
            self.waiting_bytes += bytes as u64;
        }
        self.queue_delay.record(start.since(now).as_micros_f64());
        let done = start + bw.serialization_time(bytes as u64);
        self.busy_until = done;
        self.forwarded += 1;
        self.bytes += bytes as u64;
        Some(done + delay)
    }

    fn stats(&self) -> WanDirStats {
        WanDirStats {
            forwarded: self.forwarded,
            bytes: self.bytes,
            drops: self.drops,
            dropped_bytes: self.dropped_bytes,
            max_backlog: self.max_backlog,
            mean_queue_delay_us: self.queue_delay.mean(),
        }
    }
}

/// Store-and-forward WAN emulator with a bottleneck, a fixed one-way
/// delay, and (optionally) a finite per-direction drop-tail buffer,
/// symmetric in both directions.
///
/// # Examples
///
/// ```
/// use st_net::WanEmulator;
/// use st_sim::{Bandwidth, SimDuration, SimTime};
///
/// // The paper's Table 7 path: 100 Mbps bottleneck, 50 ms one-way.
/// let mut wan = WanEmulator::new(Bandwidth::mbps(100), SimDuration::from_millis(50));
/// let arrive = wan.forward(SimTime::ZERO, 1500);
/// assert_eq!(arrive, SimTime::from_micros(50_120));
/// ```
#[derive(Debug, Clone)]
pub struct WanEmulator {
    bottleneck: Bandwidth,
    one_way_delay: SimDuration,
    forward: WanDirection,
    reverse: WanDirection,
}

impl WanEmulator {
    /// Creates an emulator with the given bottleneck bandwidth and
    /// one-way propagation delay, and an unlimited buffer (the original
    /// lossless testbed router).
    pub fn new(bottleneck: Bandwidth, one_way_delay: SimDuration) -> Self {
        WanEmulator {
            bottleneck,
            one_way_delay,
            forward: WanDirection::new(None),
            reverse: WanDirection::new(None),
        }
    }

    /// Creates an emulator whose router has `buffer_bytes` of drop-tail
    /// waiting room per direction (the frame in service is not counted).
    /// Zero means no waiting room at all: any frame arriving while the
    /// link is busy is dropped.
    pub fn with_buffer(
        bottleneck: Bandwidth,
        one_way_delay: SimDuration,
        buffer_bytes: u64,
    ) -> Self {
        WanEmulator {
            bottleneck,
            one_way_delay,
            forward: WanDirection::new(Some(buffer_bytes)),
            reverse: WanDirection::new(Some(buffer_bytes)),
        }
    }

    /// The Table 6 path: 50 Mbps bottleneck, 100 ms RTT.
    pub fn paper_50mbps() -> Self {
        WanEmulator::new(Bandwidth::mbps(50), SimDuration::from_millis(50))
    }

    /// The Table 7 path: 100 Mbps bottleneck, 100 ms RTT.
    pub fn paper_100mbps() -> Self {
        WanEmulator::new(Bandwidth::mbps(100), SimDuration::from_millis(50))
    }

    /// Bottleneck bandwidth.
    pub fn bottleneck(&self) -> Bandwidth {
        self.bottleneck
    }

    /// One-way delay.
    pub fn one_way_delay(&self) -> SimDuration {
        self.one_way_delay
    }

    /// Round-trip time of the bare path (no queueing).
    pub fn rtt(&self) -> SimDuration {
        self.one_way_delay * 2
    }

    /// Bandwidth-delay product in bytes.
    pub fn bdp_bytes(&self) -> u64 {
        self.bottleneck.bdp_bytes(self.rtt())
    }

    /// Forwards a frame server→client; `None` means the drop-tail buffer
    /// was full and the frame was dropped.
    pub fn try_forward(&mut self, now: SimTime, bytes: u32) -> Option<SimTime> {
        self.forward
            .forward(self.bottleneck, self.one_way_delay, now, bytes)
    }

    /// Forwards a frame client→server; `None` means the drop-tail buffer
    /// was full and the frame was dropped.
    pub fn try_reverse(&mut self, now: SimTime, bytes: u32) -> Option<SimTime> {
        self.reverse
            .forward(self.bottleneck, self.one_way_delay, now, bytes)
    }

    /// Forwards a frame server→client; returns its arrival time.
    ///
    /// # Panics
    ///
    /// Panics when a finite buffer drops the frame — lossy callers must
    /// use [`WanEmulator::try_forward`].
    pub fn forward(&mut self, now: SimTime, bytes: u32) -> SimTime {
        self.try_forward(now, bytes)
            .expect("frame dropped: a finite-buffer WanEmulator requires try_forward")
    }

    /// Forwards a frame client→server; returns its arrival time.
    ///
    /// # Panics
    ///
    /// Panics when a finite buffer drops the frame — lossy callers must
    /// use [`WanEmulator::try_reverse`].
    pub fn reverse(&mut self, now: SimTime, bytes: u32) -> SimTime {
        self.try_reverse(now, bytes)
            .expect("frame dropped: a finite-buffer WanEmulator requires try_reverse")
    }

    /// Frames forwarded server→client.
    pub fn forwarded(&self) -> u64 {
        self.forward.forwarded
    }

    /// Mean queueing delay (µs) experienced server→client.
    pub fn mean_queue_delay_us(&self) -> f64 {
        self.forward.queue_delay.mean()
    }

    /// Worst instantaneous backlog (time to drain the queue) seen
    /// server→client. See [`WanEmulator::reverse_stats`] for the other
    /// direction.
    pub fn max_backlog(&self) -> SimDuration {
        self.forward.max_backlog
    }

    /// Frames dropped at the bottleneck buffer, both directions.
    pub fn drops(&self) -> u64 {
        self.forward.drops + self.reverse.drops
    }

    /// Forwarding statistics of the server→client direction.
    pub fn forward_stats(&self) -> WanDirStats {
        self.forward.stats()
    }

    /// Forwarding statistics of the client→server direction.
    pub fn reverse_stats(&self) -> WanDirStats {
        self.reverse.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_paths() {
        let w = WanEmulator::paper_50mbps();
        assert_eq!(w.rtt(), SimDuration::from_millis(100));
        assert_eq!(w.bdp_bytes(), 625_000); // 5 Mbit
        let w = WanEmulator::paper_100mbps();
        assert_eq!(w.bdp_bytes(), 1_250_000); // 10 Mbit
    }

    #[test]
    fn bottleneck_spaces_packets() {
        // Two back-to-back 1500 B frames through a 50 Mbps bottleneck
        // leave 240 µs apart — the pacing the network itself imposes.
        let mut w = WanEmulator::paper_50mbps();
        let t1 = w.forward(SimTime::ZERO, 1500);
        let t2 = w.forward(SimTime::ZERO, 1500);
        assert_eq!(t2.since(t1), SimDuration::from_micros(240));
    }

    #[test]
    fn directions_independent() {
        let mut w = WanEmulator::paper_100mbps();
        w.forward(SimTime::ZERO, 1500);
        let t = w.reverse(SimTime::ZERO, 52);
        // A 52-byte ACK: 4.16 µs serialization + 50 ms.
        assert_eq!(t.as_micros(), 50_004);
    }

    #[test]
    fn queue_stats_accumulate() {
        let mut w = WanEmulator::paper_50mbps();
        for _ in 0..10 {
            w.forward(SimTime::ZERO, 1500);
        }
        assert_eq!(w.forwarded(), 10);
        assert!(w.mean_queue_delay_us() > 0.0);
        // Nine frames were backlogged at t=0: 9 * 240 us.
        assert_eq!(w.max_backlog(), SimDuration::from_micros(2160));
        assert_eq!(w.drops(), 0, "unbounded buffer never drops");
    }

    #[test]
    fn finite_buffer_tail_drops() {
        // 3000 B of waiting room: the frame in service plus two waiting
        // frames fit; the fourth back-to-back arrival is dropped.
        let mut w =
            WanEmulator::with_buffer(Bandwidth::mbps(50), SimDuration::from_millis(50), 3_000);
        assert!(w.try_forward(SimTime::ZERO, 1500).is_some(), "in service");
        assert!(w.try_forward(SimTime::ZERO, 1500).is_some(), "waiting 1");
        assert!(w.try_forward(SimTime::ZERO, 1500).is_some(), "waiting 2");
        assert!(w.try_forward(SimTime::ZERO, 1500).is_none(), "tail drop");
        let s = w.forward_stats();
        assert_eq!((s.forwarded, s.drops), (3, 1));
        assert_eq!(s.dropped_bytes, 1_500);
    }

    #[test]
    fn exactly_full_buffer_accepts_then_drops() {
        // Capacity equal to one waiting frame: the boundary arrival that
        // exactly fills the buffer is accepted; one byte more is not.
        let mut w =
            WanEmulator::with_buffer(Bandwidth::mbps(50), SimDuration::from_millis(50), 1_500);
        assert!(w.try_forward(SimTime::ZERO, 1500).is_some(), "in service");
        assert!(
            w.try_forward(SimTime::ZERO, 1500).is_some(),
            "exactly fills the waiting room"
        );
        assert!(w.try_forward(SimTime::ZERO, 1500).is_none(), "overflows");
        // Once the head frame's service starts, room frees up again.
        let later = SimTime::from_micros(300); // past the 240 µs service start
        assert!(w.try_forward(later, 1500).is_some(), "room freed");
    }

    #[test]
    fn zero_capacity_drops_anything_queued() {
        let mut w = WanEmulator::with_buffer(Bandwidth::mbps(50), SimDuration::from_millis(50), 0);
        // Idle link: straight to service, never buffered.
        assert!(w.try_forward(SimTime::ZERO, 1500).is_some());
        // Busy link and no waiting room: dropped.
        assert!(w.try_forward(SimTime::ZERO, 1500).is_none());
        assert!(w.try_forward(SimTime::from_micros(100), 52).is_none());
        // Idle again after service completes: accepted.
        assert!(w.try_forward(SimTime::from_micros(240), 1500).is_some());
        assert_eq!(w.forward_stats().drops, 2);
    }

    #[test]
    fn backlog_and_drops_tracked_per_direction() {
        let mut w =
            WanEmulator::with_buffer(Bandwidth::mbps(50), SimDuration::from_millis(50), 2_000);
        for _ in 0..4 {
            let _ = w.try_forward(SimTime::ZERO, 1500);
        }
        for _ in 0..60 {
            let _ = w.try_reverse(SimTime::ZERO, 52);
        }
        let f = w.forward_stats();
        let r = w.reverse_stats();
        assert!(f.drops > 0, "forward drops");
        assert!(r.drops > 0, "reverse drops (60 * 52 B > 2000 B + service)");
        assert!(r.max_backlog > SimDuration::ZERO);
        assert!(f.max_backlog > SimDuration::ZERO);
        assert_eq!(w.drops(), f.drops + r.drops);
        // Byte conservation per direction: accepted + dropped = offered.
        assert_eq!(f.bytes + f.dropped_bytes, 4 * 1_500);
        assert_eq!(r.bytes + r.dropped_bytes, 60 * 52);
    }

    #[test]
    fn unbounded_compatibility_unchanged() {
        // The bounded path with a huge buffer matches the unbounded one.
        let mut a = WanEmulator::paper_50mbps();
        let mut b =
            WanEmulator::with_buffer(Bandwidth::mbps(50), SimDuration::from_millis(50), u64::MAX);
        for i in 0..50u64 {
            let t = SimTime::from_micros(i * 13);
            assert_eq!(Some(a.forward(t, 1500)), b.try_forward(t, 1500));
        }
    }
}
