//! Wire frames and the shared TCP header.

/// Identifies one TCP connection within a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnId(pub u64);

/// TCP header flags (only the ones the simulation distinguishes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TcpFlags {
    /// Connection-open.
    pub syn: bool,
    /// Acknowledgment field is valid.
    pub ack: bool,
    /// Connection-close.
    pub fin: bool,
}

impl TcpFlags {
    /// A plain data/ACK segment.
    pub const NONE: TcpFlags = TcpFlags {
        syn: false,
        ack: false,
        fin: false,
    };
    /// A pure ACK.
    pub const ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: false,
    };
    /// SYN.
    pub const SYN: TcpFlags = TcpFlags {
        syn: true,
        ack: false,
        fin: false,
    };
    /// SYN+ACK.
    pub const SYN_ACK: TcpFlags = TcpFlags {
        syn: true,
        ack: true,
        fin: false,
    };
    /// FIN(+ACK).
    pub const FIN: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: true,
    };
}

/// The simulated TCP header: sequence space in *bytes*, like the real one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpHeader {
    /// First payload byte's sequence number.
    pub seq: u64,
    /// Cumulative acknowledgment (next byte expected), valid when
    /// `flags.ack`.
    pub ack: u64,
    /// Receiver's advertised window in bytes.
    pub window: u64,
    /// Flags.
    pub flags: TcpFlags,
}

/// One frame on the wire.
///
/// `wire_bytes` is what serialization is charged for (payload + all
/// headers); `payload_bytes` is what the application sees. A 1448-byte
/// TCP payload (Tables 6-7) rides in a 1500-byte frame with 52 bytes of
/// TCP/IP header and options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Globally unique frame id (assigned by the creator).
    pub id: u64,
    /// Connection this frame belongs to.
    pub conn: ConnId,
    /// Total bytes on the wire.
    pub wire_bytes: u32,
    /// Application payload bytes carried.
    pub payload_bytes: u32,
    /// TCP header.
    pub tcp: TcpHeader,
}

/// Ethernet + IP + TCP header overhead used for sizing frames, bytes.
pub const HEADER_BYTES: u32 = 52;
/// Standard Ethernet MTU payload: 1500 bytes on the wire per full frame.
pub const FRAME_BYTES: u32 = 1500;
/// Payload of a full-sized segment, as in Tables 6-7 (1448-byte packets).
pub const MSS: u32 = FRAME_BYTES - HEADER_BYTES;

impl Packet {
    /// Builds a data segment carrying `payload` bytes starting at `seq`.
    pub fn data(id: u64, conn: ConnId, seq: u64, payload: u32, ack: u64, window: u64) -> Packet {
        Packet {
            id,
            conn,
            wire_bytes: payload + HEADER_BYTES,
            payload_bytes: payload,
            tcp: TcpHeader {
                seq,
                ack,
                window,
                flags: TcpFlags::ACK,
            },
        }
    }

    /// Builds a pure ACK.
    pub fn ack(id: u64, conn: ConnId, ack: u64, window: u64) -> Packet {
        Packet {
            id,
            conn,
            wire_bytes: HEADER_BYTES,
            payload_bytes: 0,
            tcp: TcpHeader {
                seq: 0,
                ack,
                window,
                flags: TcpFlags::ACK,
            },
        }
    }

    /// Builds a control segment (SYN / SYN-ACK / FIN).
    pub fn control(id: u64, conn: ConnId, flags: TcpFlags, seq: u64, ack: u64) -> Packet {
        Packet {
            id,
            conn,
            wire_bytes: HEADER_BYTES,
            payload_bytes: 0,
            tcp: TcpHeader {
                seq,
                ack,
                window: u64::MAX,
                flags,
            },
        }
    }

    /// Whether this is a pure ACK (no payload, no SYN/FIN).
    pub fn is_pure_ack(&self) -> bool {
        self.payload_bytes == 0 && self.tcp.flags == TcpFlags::ACK
    }

    /// End of this segment's payload in sequence space.
    pub fn seq_end(&self) -> u64 {
        self.tcp.seq + self.payload_bytes as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mss_matches_paper_transfer_unit() {
        assert_eq!(MSS, 1448);
        let p = Packet::data(1, ConnId(1), 0, MSS, 0, 65_535);
        assert_eq!(p.wire_bytes, 1500);
        assert_eq!(p.seq_end(), 1448);
    }

    #[test]
    fn pure_ack_detection() {
        let a = Packet::ack(2, ConnId(1), 1000, 65_535);
        assert!(a.is_pure_ack());
        assert_eq!(a.wire_bytes, HEADER_BYTES);
        let d = Packet::data(3, ConnId(1), 0, 100, 0, 65_535);
        assert!(!d.is_pure_ack());
        let s = Packet::control(4, ConnId(1), TcpFlags::SYN, 0, 0);
        assert!(!s.is_pure_ack());
    }

    #[test]
    fn control_segments_have_flags() {
        let s = Packet::control(1, ConnId(9), TcpFlags::SYN_ACK, 5, 6);
        assert!(s.tcp.flags.syn && s.tcp.flags.ack && !s.tcp.flags.fin);
        assert_eq!((s.tcp.seq, s.tcp.ack), (5, 6));
    }
}
