//! Call-graph resolution over a small multi-file fixture crate: bare
//! calls, method calls, `Self::` paths, cross-module `crate::` paths and
//! cross-crate `st_*::` paths all resolve to workspace symbols, while
//! std paths never grow edges.

use st_lint::callgraph::Graph;
use st_lint::model::Model;

fn fixture() -> Model {
    Model::from_sources(&[
        (
            "crates/app/src/lib.rs",
            r#"
pub struct Engine;

impl Engine {
    pub fn run(&self) {
        step();
        self.finish();
    }
    fn finish(&self) {
        Self::cleanup();
    }
    fn cleanup() {}
}

fn step() {
    crate::worker::spin();
    std::mem::drop(1);
}
"#,
        ),
        (
            "crates/app/src/worker.rs",
            r#"
pub fn spin() {
    st_util::tick();
}
"#,
        ),
        (
            "crates/util/src/lib.rs",
            r#"
pub fn tick() {}

pub fn untouched() {
    tick();
}
"#,
        ),
    ])
}

#[test]
fn cross_module_reachability() {
    let model = fixture();
    let graph = Graph::build(&model);
    let root = graph.node(&model, "Engine::run").expect("root resolves");
    let parents = graph.reachable(root);
    let quals: Vec<String> = parents
        .keys()
        .map(|&n| model.fn_item(graph.symbols.fns[n]).qual())
        .collect();
    // Everything on the run path, nothing else: `untouched` stays out and
    // the `std::mem::drop` path grows no edge.
    let mut sorted = quals.clone();
    sorted.sort();
    assert_eq!(
        sorted,
        vec![
            "Engine::cleanup",
            "Engine::finish",
            "Engine::run",
            "spin",
            "step",
            "tick"
        ]
    );
}

#[test]
fn sample_chain_spans_modules_and_crates() {
    let model = fixture();
    let graph = Graph::build(&model);
    let root = graph.node(&model, "Engine::run").unwrap();
    let parents = graph.reachable(root);
    let tick = graph.node(&model, "tick").unwrap();
    assert_eq!(
        graph.chain(&model, &parents, tick),
        "Engine::run -> step -> spin -> tick"
    );
}

#[test]
fn unreferenced_fn_reaches_only_itself_and_callees() {
    let model = fixture();
    let graph = Graph::build(&model);
    let root = graph.node(&model, "untouched").unwrap();
    let parents = graph.reachable(root);
    assert_eq!(parents.len(), 2, "untouched -> tick and nothing more");
}
