//! Golden findings for the fixture corpus: every rule has a fixture with a
//! positive hit, a suppressed hit, and a stale suppression, and the exact
//! `(rule, line, suppressed)` set is pinned here. The fixtures live under
//! `tests/fixtures/` (excluded from workspace walks) and are linted under
//! *pretend* paths, since the path decides which rules apply.

use st_lint::rules::RuleId;
use st_lint::{lint_source, Report};

/// Collapses findings to comparable `(rule, line, suppressed?)` triples.
fn triples(fs: &[st_lint::Finding]) -> Vec<(RuleId, u32, bool)> {
    fs.iter()
        .map(|f| (f.rule, f.line, f.suppressed.is_some()))
        .collect()
}

fn check(pretend_path: &str, src: &str, expected: &[(RuleId, u32, bool)]) {
    let fs = lint_source(pretend_path, src);
    assert_eq!(
        triples(&fs),
        expected,
        "findings for {pretend_path}:\n{:#?}",
        fs
    );
}

#[test]
fn no_wall_clock_fixture() {
    check(
        "crates/net/src/fixture.rs",
        include_str!("fixtures/no_wall_clock.rs"),
        &[
            (RuleId::NoWallClock, 5, false),
            (RuleId::NoWallClock, 6, false),
            (RuleId::NoWallClock, 11, true),
            (RuleId::AllowHygiene, 14, false),
        ],
    );
}

#[test]
fn wall_clock_homes_are_sanctioned() {
    // st-core's rt.rs and the whole st-rt crate are the declared
    // real-time boundary: the same source that flags under any other
    // library path is clean there. The rule no longer applies, so the
    // fixture's suppression comments turn stale and surface as
    // AllowHygiene findings — stale allows are findings everywhere.
    for path in [
        "crates/core/src/rt.rs",
        "crates/rt/src/host.rs",
        "crates/rt/src/clock.rs",
    ] {
        check(
            path,
            include_str!("fixtures/no_wall_clock.rs"),
            &[
                (RuleId::AllowHygiene, 10, false),
                (RuleId::AllowHygiene, 14, false),
            ],
        );
    }
}

#[test]
fn no_unordered_iteration_fixture() {
    check(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/no_unordered_iteration.rs"),
        &[
            (RuleId::NoUnorderedIteration, 2, false),
            (RuleId::NoUnorderedIteration, 4, false),
            (RuleId::NoUnorderedIteration, 9, true),
            (RuleId::AllowHygiene, 13, false),
        ],
    );
}

#[test]
fn no_silent_cast_fixture() {
    check(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/no_silent_cast.rs"),
        &[
            (RuleId::NoSilentCast, 4, false),
            (RuleId::NoSilentCast, 8, false),
            (RuleId::NoSilentCast, 13, true),
            (RuleId::AllowHygiene, 16, false),
        ],
    );
}

#[test]
fn no_panicking_arith_fixture() {
    check(
        "crates/kernel/src/hwtimer.rs",
        include_str!("fixtures/no_panicking_arith.rs"),
        &[
            (RuleId::NoPanickingArith, 6, false),
            (RuleId::NoPanickingArith, 7, false),
            (RuleId::NoPanickingArith, 12, true),
            (RuleId::AllowHygiene, 15, false),
        ],
    );
}

#[test]
fn forbid_unsafe_fixture() {
    check(
        "crates/fixture/src/lib.rs",
        include_str!("fixtures/forbid_unsafe.rs"),
        &[
            (RuleId::ForbidUnsafeEverywhere, 1, false),
            (RuleId::ForbidUnsafeEverywhere, 5, false),
        ],
    );
}

#[test]
fn sealed_trace_fixture() {
    check(
        "crates/net/src/fixture.rs",
        include_str!("fixtures/sealed_trace.rs"),
        &[
            (RuleId::SealedTraceOnly, 5, false),
            (RuleId::SealedTraceOnly, 6, false),
            (RuleId::SealedTraceOnly, 11, true),
            (RuleId::AllowHygiene, 14, false),
            (RuleId::SealedTraceOnly, 18, false),
        ],
    );
}

#[test]
fn no_float_in_bounds_fixture() {
    check(
        "crates/wheel/src/fixture.rs",
        include_str!("fixtures/no_float_in_bounds.rs"),
        &[
            (RuleId::NoFloatInBounds, 6, false),
            (RuleId::NoFloatInBounds, 12, true),
            (RuleId::AllowHygiene, 16, false),
        ],
    );
}

#[test]
fn unit_taint_fixture() {
    check(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/unit_taint.rs"),
        &[
            (RuleId::UnitTaint, 4, false),
            (RuleId::UnitTaint, 5, false),
            (RuleId::UnitTaint, 10, true),
            (RuleId::AllowHygiene, 13, false),
        ],
    );
}

#[test]
fn hot_path_fixture() {
    check(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/hot_path.rs"),
        &[
            (RuleId::HotPathCost, 5, false),
            (RuleId::HotPathCost, 10, false),
            (RuleId::HotPathCost, 16, true),
            (RuleId::AllowHygiene, 19, false),
            (RuleId::AllowHygiene, 22, false),
        ],
    );
}

#[test]
fn shared_state_fixture() {
    check(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/shared_state.rs"),
        &[
            (RuleId::SharedState, 3, false),
            (RuleId::SharedState, 6, false),
            (RuleId::SharedState, 10, false),
            (RuleId::SharedState, 14, true),
            (RuleId::AllowHygiene, 16, false),
        ],
    );
}

/// Timing words, casts, and denied-looking calls inside raw strings and
/// nested block comments must never fire any rule (the lexer masks them).
#[test]
fn lexer_edges_fixture() {
    check(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/lexer_edges.rs"),
        &[],
    );
}

#[test]
fn allow_hygiene_fixture() {
    check(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/allow_hygiene.rs"),
        &[
            (RuleId::AllowHygiene, 4, false),
            (RuleId::AllowHygiene, 7, false),
            (RuleId::AllowHygiene, 10, false),
            (RuleId::AllowHygiene, 13, false),
        ],
    );
}

/// The JSON report round-trips through st-trace's validator and pins the
/// per-rule counts for the hygiene fixture.
#[test]
fn json_report_round_trips_through_st_trace_validator() {
    let report = Report {
        files_scanned: 1,
        findings: lint_source(
            "crates/core/src/fixture.rs",
            include_str!("fixtures/allow_hygiene.rs"),
        ),
    };
    let json = report.to_json();
    st_trace::json::validate(&json).expect("report JSON must validate");
    assert!(json.contains("\"tool\":\"st-lint\""), "{json}");
    assert!(json.contains("\"allow-hygiene\":4"), "{json}");
    assert!(json.contains("\"unsuppressed\":4"), "{json}");
}

/// Every rule name parses back to itself (the suppression syntax depends
/// on this), and the fixture corpus as a whole exercises every rule.
#[test]
fn corpus_covers_every_rule() {
    for r in RuleId::ALL {
        assert_eq!(RuleId::from_name(r.name()), Some(r), "{}", r.name());
    }
    let mut hit: Vec<RuleId> = Vec::new();
    for (path, src) in [
        (
            "crates/net/src/fixture.rs",
            include_str!("fixtures/no_wall_clock.rs"),
        ),
        (
            "crates/sim/src/fixture.rs",
            include_str!("fixtures/no_unordered_iteration.rs"),
        ),
        (
            "crates/core/src/fixture.rs",
            include_str!("fixtures/no_silent_cast.rs"),
        ),
        (
            "crates/kernel/src/hwtimer.rs",
            include_str!("fixtures/no_panicking_arith.rs"),
        ),
        (
            "crates/fixture/src/lib.rs",
            include_str!("fixtures/forbid_unsafe.rs"),
        ),
        (
            "crates/net/src/fixture.rs",
            include_str!("fixtures/sealed_trace.rs"),
        ),
        (
            "crates/wheel/src/fixture.rs",
            include_str!("fixtures/no_float_in_bounds.rs"),
        ),
        (
            "crates/core/src/fixture.rs",
            include_str!("fixtures/allow_hygiene.rs"),
        ),
        (
            "crates/sim/src/fixture.rs",
            include_str!("fixtures/unit_taint.rs"),
        ),
        (
            "crates/core/src/fixture.rs",
            include_str!("fixtures/hot_path.rs"),
        ),
        (
            "crates/sim/src/fixture.rs",
            include_str!("fixtures/shared_state.rs"),
        ),
    ] {
        hit.extend(lint_source(path, src).iter().map(|f| f.rule));
    }
    for r in RuleId::ALL {
        assert!(hit.contains(&r), "no fixture finding for rule {}", r.name());
    }
}
