//! The CI contract: the workspace itself lints clean (zero unsuppressed
//! findings, no stale allows), and the `st-lint` binary's exit codes make
//! deleting any single suppression fail the build.

use std::path::Path;
use std::process::Command;

fn workspace_root() -> &'static Path {
    // crates/lint -> crates -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate sits two levels below the root")
}

#[test]
fn the_workspace_lints_clean() {
    let report = st_lint::lint_workspace(workspace_root()).expect("walk workspace");
    let loud: Vec<String> = report
        .unsuppressed()
        .map(|f| format!("{}:{}: {}", f.file, f.line, f.message))
        .collect();
    assert!(
        loud.is_empty(),
        "unsuppressed findings in the workspace:\n{}",
        loud.join("\n")
    );
    // Every suppression in the tree carries a reason by construction
    // (reasonless allows surface as allow-hygiene findings above); spot
    // the count so a mass deletion of annotations can't pass silently.
    assert!(
        report.findings.iter().any(|f| f.suppressed.is_some()),
        "the tree is expected to carry reasoned suppressions"
    );
}

#[test]
fn cli_exits_zero_on_the_clean_workspace() {
    let out = Command::new(env!("CARGO_BIN_EXE_st-lint"))
        .arg(workspace_root())
        .arg("--quiet")
        .output()
        .expect("run st-lint");
    assert!(
        out.status.success(),
        "st-lint failed on the workspace:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn cli_exits_nonzero_when_a_finding_is_unsuppressed() {
    // A throwaway tree with one wall-clock read and no allow: exactly what
    // deleting a suppression from the real tree produces.
    let dir = std::env::temp_dir().join(format!("st-lint-gate-{}", std::process::id()));
    let src_dir = dir.join("crates/net/src");
    std::fs::create_dir_all(&src_dir).expect("mkdir");
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\n").expect("write manifest");
    std::fs::write(
        src_dir.join("bad.rs"),
        "pub fn f() -> std::time::Instant {\n    std::time::Instant::now()\n}\n",
    )
    .expect("write bad source");

    let out = Command::new(env!("CARGO_BIN_EXE_st-lint"))
        .arg(&dir)
        .output()
        .expect("run st-lint");
    std::fs::remove_dir_all(&dir).ok();

    assert_eq!(out.status.code(), Some(1), "expected the finding exit code");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("no-wall-clock"), "{text}");
}

#[test]
fn cli_json_output_validates() {
    let dir = std::env::temp_dir().join(format!("st-lint-json-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let json_path = dir.join("report.json");
    let out = Command::new(env!("CARGO_BIN_EXE_st-lint"))
        .arg(workspace_root())
        .arg("--quiet")
        .arg("--json")
        .arg(&json_path)
        .output()
        .expect("run st-lint");
    assert!(out.status.success());
    let json = std::fs::read_to_string(&json_path).expect("report written");
    std::fs::remove_dir_all(&dir).ok();
    st_trace::json::validate(&json).expect("CLI JSON must validate");
    assert!(json.contains("\"tool\":\"st-lint\""));
}
