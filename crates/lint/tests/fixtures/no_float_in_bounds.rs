//! Fixture: linted under the pretend path `crates/wheel/src/fixture.rs`
//! (bound-math territory: no floats).

fn positive(due: u64) -> u64 {
    let scaled = due * 3 / 2;
    let _bad = scaled as f64;
    scaled
}

fn suppressed(due: u64) -> u64 {
    // st-lint: allow(no-float-in-bounds) -- fixture: reporting only
    let _shown = due as f64;
    due
}

// st-lint: allow(no-float-in-bounds) -- fixture: stale annotation
fn stale() {}
