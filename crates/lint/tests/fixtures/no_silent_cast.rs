//! Fixture: linted under the pretend path `crates/core/src/fixture.rs`.

fn positive(deadline: u64) -> u32 {
    deadline as u32
}

fn positive_micros(delay: std::time::Duration) -> u64 {
    delay.as_micros() as u64
}

fn suppressed(period: u64) -> usize {
    // st-lint: allow(no-silent-cast) -- fixture: reduced modulo a small n
    (period % 8) as usize
}

// st-lint: allow(no-silent-cast) -- fixture: stale annotation
fn stale() {}

fn widening_is_fine(deadline: u32) -> u64 {
    u64::from(deadline)
}
