//! Fixture: linted under the pretend path `crates/sim/src/fixture.rs`.

static POSITIVE: u64 = 0;

thread_local! {
    static PER_CPU: u64 = 0;
}

struct Holder {
    cell: std::cell::RefCell<u64>,
}

// st-lint: allow(shared-state) -- owner: the single fixture thread
static SUPPRESSED: u64 = 0;

// st-lint: allow(shared-state) -- owner: nobody, this one is stale
fn stale() {}
