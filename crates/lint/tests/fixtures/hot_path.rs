//! Fixture: linted under the pretend path `crates/core/src/fixture.rs`.

// st-lint: hot-path
fn hot_root() {
    let _direct = format!("per-event cost");
    helper();
}

fn helper() {
    let _indirect = String::new();
}

// st-lint: hot-path
fn suppressed_root() {
    // st-lint: allow(hot-path-cost) -- fixture: amortized cold start
    let _ok = vec![1];
}

// st-lint: allow(hot-path-cost) -- fixture: stale annotation
fn cold() {}

// st-lint: hot-path

struct NotAFn;
