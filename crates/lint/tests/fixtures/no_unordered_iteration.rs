//! Fixture: linted under the pretend path `crates/sim/src/fixture.rs`.
use std::collections::HashMap;

fn positive(m: &HashMap<u32, u32>) -> usize {
    m.len()
}

// st-lint: allow(no-unordered-iteration) -- fixture: membership only
fn suppressed(s: &std::collections::HashSet<u32>) -> usize {
    s.len()
}

// st-lint: allow(no-unordered-iteration) -- fixture: stale annotation
fn stale() {}
