//! Fixture: linted under the pretend path `crates/net/src/fixture.rs`
//! (a library crate, where ad-hoc prints are sealed off).

pub fn positive() {
    println!("chatty library");
    dbg!(42);
}

pub fn suppressed() {
    // st-lint: allow(sealed-trace-only) -- fixture: user-facing report
    eprintln!("deliberate");
}

// st-lint: allow(sealed-trace-only) -- fixture: stale annotation
pub fn stale() {}

pub fn grabs_a_handle() {
    let _ = std::io::stdout();
}
