//! Fixture: linted under the pretend path `crates/sim/src/fixture.rs`.
//! Timing words, casts, and denied-looking calls inside raw strings and
//! nested block comments are prose — no rule may fire anywhere here.

fn clean() -> &'static str {
    /* An interval timer /* nested: deadline as f64, Instant::now() */
    still one comment: HashMap iteration order, delay_us + period_ms */
    let doc = r#"timeout math: delay_us + budget_ms as f64; "quoted" Instant::now()"#;
    let bytes = br##"expiry tick "#fence" vec![] String::new()"##;
    let _ = bytes;
    doc
}
