//! Fixture: linted under the pretend path `crates/fixture/src/lib.rs`,
//! a crate root with no `#![forbid(unsafe_code)]` attribute.

pub fn danger(p: *const u64) -> u64 {
    unsafe { *p }
}
