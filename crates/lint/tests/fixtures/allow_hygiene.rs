//! Fixture: linted under the pretend path `crates/core/src/fixture.rs`.
//! Every annotation below is bad in a different way.

// st-lint: allow(no-wall-clock)
fn missing_reason() {}

// st-lint: allow(not-a-rule) -- the rule does not exist
fn unknown_rule() {}

// st-lint: allow(allow-hygiene) -- hygiene itself is not suppressible
fn unsuppressible() {}

// st-lint: allow(no-wall-clock) -- well-formed but matches nothing
fn stale() {}
