//! Fixture: linted under the pretend path `crates/kernel/src/hwtimer.rs`
//! (on the unwrap watchlist via `crates/kernel/src/` and on the index
//! watchlist by name).

fn positive(v: &[u64], o: Option<u64>) -> u64 {
    let x = v[0];
    o.unwrap() + x
}

fn suppressed(o: Option<u64>) -> u64 {
    // st-lint: allow(no-panicking-arith) -- fixture: invariant holds
    o.expect("fixture invariant")
}

// st-lint: allow(no-panicking-arith) -- fixture: stale annotation
fn stale() {}

fn checked_is_fine(v: &[u64]) -> Option<u64> {
    v.get(0).copied()
}
