//! Fixture: linted under the pretend path `crates/net/src/fixture.rs`.
use std::time::Instant;

fn positive() {
    let _ = Instant::now();
    std::thread::sleep(std::time::Duration::from_millis(1));
}

fn suppressed() {
    // st-lint: allow(no-wall-clock) -- fixture: a justified real-time read
    let _ = Instant::now();
}

// st-lint: allow(no-wall-clock) -- fixture: nothing left to allow here
fn stale() {}

#[test]
fn wall_clock_is_fine_in_tests() {
    let _ = Instant::now();
}
