//! Fixture: linted under the pretend path `crates/sim/src/fixture.rs`.

fn positive(delay_us: u64, period_ms: u64) -> u64 {
    let skew = delay_us + period_ms;
    skew + delay_us * 1_000_000
}

fn suppressed(window_ticks: u64, grace_ns: u64) -> u64 {
    // st-lint: allow(unit-taint) -- fixture: deliberate cross-unit probe
    window_ticks + grace_ns
}

// st-lint: allow(unit-taint) -- fixture: stale annotation
fn stale() {}
