//! The `st-lint: allow(<rule>) -- <reason>` suppression syntax.
//!
//! A suppression is a comment. Trailing comments suppress their own line;
//! a comment that owns its line suppresses the next line that carries
//! source tokens (consecutive suppression lines stack onto that same
//! target line). The reason after `--` is mandatory: an allow without a
//! justification is itself a finding, as is an allow that no longer
//! matches anything (`allow-hygiene`).

use crate::lexer::Comment;
use crate::rules::RuleId;

/// A parsed suppression comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// The rule being allowed.
    pub rule: RuleId,
    /// The mandatory justification.
    pub reason: String,
    /// Line of the comment itself.
    pub comment_line: u32,
    /// Line whose findings this suppression covers.
    pub target_line: u32,
}

/// A suppression comment that could not be accepted.
#[derive(Debug, Clone)]
pub struct BadSuppression {
    /// Line of the offending comment.
    pub line: u32,
    /// What is wrong with it.
    pub why: String,
}

/// Everything extracted from a file's comments.
#[derive(Debug, Default)]
pub struct Suppressions {
    /// Well-formed suppressions.
    pub ok: Vec<Suppression>,
    /// Malformed ones (missing reason, unknown rule, …).
    pub bad: Vec<BadSuppression>,
}

const MARKER: &str = "st-lint:";

/// Extracts suppressions from a file's comments. `line_count` bounds the
/// target line of a comment on the last line of the file.
pub fn parse(comments: &[Comment], line_count: u32) -> Suppressions {
    let mut out = Suppressions::default();
    // Lines fully occupied by own-line comments: a suppression comment whose
    // prose wraps onto further `//` lines must skip past them to reach the
    // code it annotates.
    let mut comment_lines = std::collections::BTreeSet::new();
    for c in comments {
        if c.owns_line {
            for l in c.line..=c.end_line {
                comment_lines.insert(l);
            }
        }
    }
    for c in comments {
        // Doc comments are documentation (this crate's own docs describe
        // the syntax!), never annotations.
        if c.text.starts_with("///")
            || c.text.starts_with("//!")
            || c.text.starts_with("/**")
            || c.text.starts_with("/*!")
        {
            continue;
        }
        let Some(at) = c.text.find(MARKER) else {
            continue;
        };
        let body = c.text[at + MARKER.len()..].trim();
        // A `hot-path` body is an annotation for the hot-path analysis
        // (see `crate::parse`), not a suppression.
        if body == "hot-path" {
            continue;
        }
        let target_line = if c.owns_line {
            // Own-line comments cover the next source line, skipping any
            // intervening comment-only lines (stacked suppressions, or a
            // suppression whose prose wraps onto a second `//` line).
            let mut t = c.end_line + 1;
            while comment_lines.contains(&t) {
                t += 1;
            }
            t.min(line_count.max(1))
        } else {
            c.line
        };
        match parse_body(body) {
            Ok((rule, reason)) => {
                if rule == RuleId::AllowHygiene {
                    out.bad.push(BadSuppression {
                        line: c.line,
                        why: "allow-hygiene cannot be suppressed".to_string(),
                    });
                } else {
                    out.ok.push(Suppression {
                        rule,
                        reason: reason.to_string(),
                        comment_line: c.line,
                        target_line,
                    });
                }
            }
            Err(why) => out.bad.push(BadSuppression { line: c.line, why }),
        }
    }
    out
}

/// Parses `allow(<rule>) -- <reason>`.
fn parse_body(body: &str) -> Result<(RuleId, &str), String> {
    let rest = body
        .strip_prefix("allow(")
        .ok_or_else(|| format!("expected `allow(<rule>) -- <reason>`, got `{body}`"))?;
    let close = rest
        .find(')')
        .ok_or_else(|| "unclosed `allow(`".to_string())?;
    let rule_name = rest[..close].trim();
    let rule = RuleId::from_name(rule_name).ok_or_else(|| format!("unknown rule `{rule_name}`"))?;
    let after = rest[close + 1..].trim_start();
    let reason = after.strip_prefix("--").map(str::trim).unwrap_or_default();
    if reason.is_empty() {
        return Err(format!(
            "allow({rule_name}) needs a reason: `st-lint: allow({rule_name}) -- <why>`"
        ));
    }
    // The shared-state whitelist is an ownership declaration, not a mere
    // excuse: the reason must name the owner.
    if rule == RuleId::SharedState && !reason.starts_with("owner:") {
        return Err(format!(
            "allow({rule_name}) must declare an owner: \
             `st-lint: allow({rule_name}) -- owner: <who>, <why>`"
        ));
    }
    Ok((rule, reason))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Suppressions {
        let lexed = lex(src);
        parse(&lexed.comments, src.lines().count() as u32)
    }

    #[test]
    fn trailing_comment_targets_own_line() {
        let s = parse_src("let x = foo(); // st-lint: allow(no-wall-clock) -- test shim\n");
        assert_eq!(s.ok.len(), 1);
        assert_eq!(s.ok[0].target_line, 1);
        assert_eq!(s.ok[0].reason, "test shim");
    }

    #[test]
    fn own_line_comment_targets_next_line() {
        let s = parse_src(
            "// st-lint: allow(no-silent-cast) -- bounded by modulo\nlet x = y as usize;\n",
        );
        assert_eq!(s.ok.len(), 1);
        assert_eq!(s.ok[0].target_line, 2);
    }

    #[test]
    fn wrapped_suppression_reaches_past_continuation_lines() {
        let s = parse_src(
            "// st-lint: allow(no-wall-clock) -- this reason is long and\n\
             // wraps onto a second comment line\n\
             let start = Instant::now();\n",
        );
        assert_eq!(s.ok.len(), 1);
        assert_eq!(s.ok[0].target_line, 3);
    }

    #[test]
    fn missing_reason_is_rejected() {
        let s = parse_src("// st-lint: allow(no-wall-clock)\nlet x = 1;\n");
        assert!(s.ok.is_empty());
        assert_eq!(s.bad.len(), 1);
        assert!(s.bad[0].why.contains("needs a reason"), "{}", s.bad[0].why);
    }

    #[test]
    fn unknown_rule_is_rejected() {
        let s = parse_src("// st-lint: allow(no-such-rule) -- whatever\n");
        assert_eq!(s.bad.len(), 1);
        assert!(s.bad[0].why.contains("unknown rule"));
    }

    #[test]
    fn hygiene_rule_is_not_suppressible() {
        let s = parse_src("// st-lint: allow(allow-hygiene) -- nice try\n");
        assert_eq!(s.bad.len(), 1);
    }

    #[test]
    fn doc_comments_are_documentation_not_annotations() {
        let s = parse_src(
            "//! st-lint: allow(no-wall-clock) -- syntax shown in docs\n\
             /// st-lint: allow(bogus-rule)\n",
        );
        assert!(s.ok.is_empty() && s.bad.is_empty());
    }

    #[test]
    fn hot_path_annotation_is_not_a_suppression() {
        let s = parse_src("// st-lint: hot-path\nfn fire() {}\n");
        assert!(s.ok.is_empty() && s.bad.is_empty());
    }

    #[test]
    fn shared_state_allow_requires_an_owner() {
        let s = parse_src("// st-lint: allow(shared-state) -- it is fine\nstatic X: u32 = 0;\n");
        assert_eq!(s.bad.len(), 1);
        assert!(s.bad[0].why.contains("owner"), "{}", s.bad[0].why);
        let s = parse_src(
            "// st-lint: allow(shared-state) -- owner: rt thread, handoff cell\n\
             static X: u32 = 0;\n",
        );
        assert_eq!(s.ok.len(), 1);
        assert!(s.bad.is_empty());
    }

    #[test]
    fn non_lint_comments_are_ignored() {
        let s = parse_src("// a normal comment\n/* another */\n");
        assert!(s.ok.is_empty() && s.bad.is_empty());
    }
}
