//! A lightweight item-level parser over the token stream.
//!
//! The workspace analyses (unit-taint, hot-path cost, shared-state) need
//! more structure than a flat token stream: which `fn` items exist, which
//! impl type owns them, where their bodies start and end, and which carry
//! a `// st-lint: hot-path` annotation. This module recovers exactly that
//! much structure — no expressions, no types, no full grammar — in the
//! same hand-rolled, hermetic spirit as the lexer. It only has to agree
//! with `rustc` on well-formed files; on malformed input it degrades to
//! fewer recognized items, never a panic.

use crate::lexer::{Comment, Spanned, Tok};

/// One `fn` item (free function, inherent/trait method, or trait default).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// The `impl`/`trait` self type, for methods (`SoftTimerCore`, …).
    pub impl_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token-index range of the body: `(open_brace, close_brace)`,
    /// inclusive. `None` for bodiless trait-method declarations.
    pub body: Option<(usize, usize)>,
    /// Whether a `// st-lint: hot-path` annotation covers this function.
    pub is_hot: bool,
}

impl FnItem {
    /// `Type::name` for methods, bare `name` otherwise.
    pub fn qual(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// A `// st-lint: hot-path` annotation found in the comments.
#[derive(Debug, Clone)]
pub struct HotAnnotation {
    /// Line of the comment.
    pub line: u32,
    /// Whether it attached to a function (an unattached annotation is an
    /// `allow-hygiene` finding: a hot-path contract nobody carries).
    pub attached: bool,
}

/// Everything the item parser extracts from one file.
#[derive(Debug, Default)]
pub struct Items {
    /// All `fn` items in source order.
    pub fns: Vec<FnItem>,
    /// All hot-path annotations, attached or not.
    pub hot_annotations: Vec<HotAnnotation>,
}

/// Keywords that rule out a `fn`/`impl` token being an item keyword
/// (e.g. `impl Trait` in return position is preceded by `>` of `->`).
fn at_item_position(prev: Option<&Tok>) -> bool {
    match prev {
        None => true,
        Some(Tok::Punct(c)) => matches!(c, ';' | '{' | '}' | ']'),
        Some(Tok::Ident(id)) => matches!(
            id.as_str(),
            "pub" | "const" | "async" | "unsafe" | "extern" | "default"
        ),
        Some(Tok::Str) => true, // extern "C"
        _ => false,
    }
}

/// Parses the items of one file. `comments` supplies hot-path annotations;
/// `line_count` bounds annotation targets.
pub fn parse(toks: &[Spanned], comments: &[Comment], line_count: u32) -> Items {
    let mut items = Items::default();
    // Innermost-first stack of `(impl_type, brace_depth_at_open)` frames
    // for `impl` and `trait` blocks.
    let mut frames: Vec<(Option<String>, i32)> = Vec::new();
    let mut depth = 0i32;
    let mut i = 0usize;
    while i < toks.len() {
        let prev = if i == 0 { None } else { Some(&toks[i - 1].tok) };
        match &toks[i].tok {
            Tok::Punct('{') => {
                depth += 1;
            }
            Tok::Punct('}') => {
                depth -= 1;
                while frames.last().is_some_and(|&(_, d)| d >= depth) {
                    frames.pop();
                }
            }
            Tok::Ident(kw) if (kw == "impl" || kw == "trait") && at_item_position(prev) => {
                // Self-type: the last capitalizable path segment before the
                // body (after `for` when present, skipping generic groups).
                let mut name: Option<String> = None;
                let mut j = i + 1;
                let mut angle = 0i32;
                while j < toks.len() {
                    match &toks[j].tok {
                        Tok::Punct('<') => angle += 1,
                        // `->` inside generic bounds does not close.
                        Tok::Punct('>') if !matches!(toks[j - 1].tok, Tok::Punct('-')) => {
                            angle -= 1;
                        }
                        Tok::Punct('{') | Tok::Punct(';') if angle <= 0 => break,
                        Tok::Ident(id) if angle == 0 => match id.as_str() {
                            "for" => name = None,
                            "where" => break,
                            _ => name = Some(id.clone()),
                        },
                        _ => {}
                    }
                    j += 1;
                }
                if matches!(toks.get(j).map(|t| &t.tok), Some(Tok::Punct('{'))) {
                    frames.push((name, depth));
                    depth += 1;
                    i = j;
                }
            }
            Tok::Ident(kw) if kw == "fn" => {
                let Some(Tok::Ident(name)) = toks.get(i + 1).map(|t| &t.tok) else {
                    i += 1;
                    continue;
                };
                let impl_type = frames.iter().rev().find_map(|(t, _)| t.clone());
                // Find the body open brace or the `;` of a bodiless decl:
                // scan past generics/params/return type, tracking nesting
                // so `where F: Fn(u64) -> u64` cannot end the search early.
                let mut j = i + 2;
                let mut angle = 0i32;
                let mut paren = 0i32;
                let mut body = None;
                while j < toks.len() {
                    match &toks[j].tok {
                        Tok::Punct('<') => angle += 1,
                        Tok::Punct('>') if !matches!(toks[j - 1].tok, Tok::Punct('-')) => {
                            angle = (angle - 1).max(0);
                        }
                        Tok::Punct('(') => paren += 1,
                        Tok::Punct(')') => paren -= 1,
                        Tok::Punct('{') if angle == 0 && paren == 0 => {
                            body = Some(j);
                            break;
                        }
                        Tok::Punct(';') if paren == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                let body = body.map(|open| {
                    let mut d = 0i32;
                    let mut m = open;
                    while m < toks.len() {
                        match &toks[m].tok {
                            Tok::Punct('{') => d += 1,
                            Tok::Punct('}') => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        m += 1;
                    }
                    (open, m.min(toks.len() - 1))
                });
                items.fns.push(FnItem {
                    name: name.clone(),
                    impl_type,
                    line: toks[i].line,
                    body,
                    is_hot: false,
                });
                // Continue from the signature; the main loop's depth
                // tracking consumes the body braces naturally.
            }
            _ => {}
        }
        i += 1;
    }
    attach_hot_annotations(&mut items, comments, line_count);
    items
}

const MARKER: &str = "st-lint:";

/// How many lines below its target an annotation may sit from the `fn`
/// keyword (room for a couple of attributes).
pub const HOT_ATTACH_WINDOW: u32 = 3;

/// Finds `// st-lint: hot-path` comments and marks the function each one
/// covers (the next `fn` within a few lines, like a suppression's target).
fn attach_hot_annotations(items: &mut Items, comments: &[Comment], line_count: u32) {
    // Lines fully occupied by own-line comments (annotation prose may wrap).
    let mut comment_lines = std::collections::BTreeSet::new();
    for c in comments {
        if c.owns_line {
            for l in c.line..=c.end_line {
                comment_lines.insert(l);
            }
        }
    }
    for c in comments {
        if c.text.starts_with("///")
            || c.text.starts_with("//!")
            || c.text.starts_with("/**")
            || c.text.starts_with("/*!")
        {
            continue;
        }
        let Some(at) = c.text.find(MARKER) else {
            continue;
        };
        let body = c.text[at + MARKER.len()..].trim();
        if body != "hot-path" {
            continue;
        }
        let target = if c.owns_line {
            let mut t = c.end_line + 1;
            while comment_lines.contains(&t) {
                t += 1;
            }
            t.min(line_count.max(1))
        } else {
            c.line
        };
        let hit = items
            .fns
            .iter_mut()
            .find(|f| f.line >= target && f.line <= target + HOT_ATTACH_WINDOW);
        let attached = match hit {
            Some(f) => {
                f.is_hot = true;
                true
            }
            None => false,
        };
        items.hot_annotations.push(HotAnnotation {
            line: c.line,
            attached,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Items {
        let lexed = lex(src);
        parse(&lexed.tokens, &lexed.comments, src.lines().count() as u32)
    }

    #[test]
    fn free_fns_and_methods() {
        let src = "fn free() { body(); }\n\
                   impl Widget {\n\
                       pub fn poke(&self) -> u64 { 1 }\n\
                   }\n\
                   impl fmt::Display for Widget {\n\
                       fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { Ok(()) }\n\
                   }\n";
        let items = parse_src(src);
        let quals: Vec<String> = items.fns.iter().map(|f| f.qual()).collect();
        assert_eq!(quals, vec!["free", "Widget::poke", "Widget::fmt"]);
        assert!(items.fns.iter().all(|f| f.body.is_some()));
    }

    #[test]
    fn generic_impl_and_where_clause() {
        let src = "impl<P, Q: TimerQueue<P>> SoftTimerCore<P, Q> {\n\
                   fn fire<F>(&mut self, f: F) -> u64 where F: FnMut(u64) -> u64 { f(0) }\n\
                   }\n";
        let items = parse_src(src);
        assert_eq!(items.fns.len(), 1);
        assert_eq!(items.fns[0].qual(), "SoftTimerCore::fire");
    }

    #[test]
    fn impl_trait_in_return_position_is_not_an_impl_block() {
        let src = "fn iter() -> impl Iterator<Item = u64> { 0..3 }\nfn after() {}\n";
        let items = parse_src(src);
        let quals: Vec<String> = items.fns.iter().map(|f| f.qual()).collect();
        assert_eq!(quals, vec!["iter", "after"]);
    }

    #[test]
    fn bodiless_trait_decl() {
        let src = "trait Queue {\n    fn len(&self) -> usize;\n    fn clear(&mut self) {}\n}\n";
        let items = parse_src(src);
        assert_eq!(items.fns.len(), 2);
        assert!(items.fns[0].body.is_none());
        assert!(items.fns[1].body.is_some());
        assert_eq!(items.fns[0].qual(), "Queue::len");
    }

    #[test]
    fn hot_annotation_attaches_and_dangles() {
        let src = "// st-lint: hot-path\n\
                   #[inline]\n\
                   pub fn poll() {}\n\
                   \n\
                   // st-lint: hot-path\n\
                   const X: u64 = 1;\n";
        let items = parse_src(src);
        assert!(items.fns[0].is_hot);
        assert_eq!(items.hot_annotations.len(), 2);
        assert!(items.hot_annotations[0].attached);
        assert!(!items.hot_annotations[1].attached);
    }

    #[test]
    fn trailing_hot_annotation_attaches_to_its_own_line() {
        let src = "pub fn trigger() { // st-lint: hot-path\n}\n";
        let items = parse_src(src);
        assert!(items.fns[0].is_hot);
    }
}
