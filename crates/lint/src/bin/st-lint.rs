#![forbid(unsafe_code)]
//! Workspace lint gate.
//!
//! ```text
//! st-lint [ROOT] [--json PATH] [--list-rules] [--quiet]
//! ```
//!
//! Walks every `.rs` file under ROOT (default: the enclosing workspace),
//! prints the human report, optionally writes a JSON report (`-` =
//! stdout) that has been checked by st-trace's JSON validator, and exits
//! non-zero when any unsuppressed finding — including a stale or
//! malformed suppression — survives.

use st_lint::rules::RuleId;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<std::path::PathBuf> = None;
    let mut json_path: Option<String> = None;
    let mut quiet = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => {
                json_path = Some(
                    it.next()
                        .unwrap_or_else(|| die("--json needs a path ('-' for stdout)"))
                        .clone(),
                );
            }
            "--quiet" | "-q" => quiet = true,
            "--list-rules" => {
                for r in RuleId::ALL {
                    println!("{:<26} {}", r.name(), r.why());
                    println!("{:<26}   fix: {}", "", r.fix_hint());
                }
                return;
            }
            "--help" | "-h" => {
                println!(
                    "usage: st-lint [ROOT] [--json PATH] [--list-rules] [--quiet]\n\
                     exits 1 on any unsuppressed finding; suppression syntax:\n\
                     // st-lint: allow(<rule>) -- <reason>"
                );
                return;
            }
            other if root.is_none() && !other.starts_with('-') => {
                root = Some(std::path::PathBuf::from(other));
            }
            other => die(&format!("unknown argument '{other}' (see --help)")),
        }
    }

    let root = root.unwrap_or_else(|| {
        let cwd = std::env::current_dir().unwrap_or_else(|e| die(&format!("cwd: {e}")));
        st_lint::find_workspace_root(&cwd)
            .unwrap_or_else(|| die("no enclosing workspace found; pass ROOT explicitly"))
    });

    let report = st_lint::lint_workspace(&root)
        .unwrap_or_else(|e| die(&format!("scanning {}: {e}", root.display())));

    let json_to_stdout = json_path.as_deref() == Some("-");
    if !quiet && !json_to_stdout {
        print!("{}", report.render());
    }
    if let Some(path) = &json_path {
        let json = report.to_json();
        if path == "-" {
            println!("{json}");
        } else {
            std::fs::write(path, format!("{json}\n"))
                .unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
        }
    }
    if report.unsuppressed_count() > 0 {
        std::process::exit(1);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("st-lint: error: {msg}");
    std::process::exit(2);
}
