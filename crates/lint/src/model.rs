//! The whole-workspace model: every file lexed, classified, and parsed,
//! plus a per-crate symbol table over the `fn` items.
//!
//! The per-file rules only ever needed one file at a time; the v2 analyses
//! (unit-taint, hot-path reachability, shared-state audit) need to see the
//! workspace at once — a hot path in `st-kernel` reaches allocation through
//! a callee in `st-trace`. The model is built once per lint run and shared
//! by every analysis.

use std::collections::BTreeMap;

use crate::context::{FileContext, FileKind};
use crate::lexer::{self, Lexed};
use crate::parse::{self, Items};

/// One file: tokens, comments, masked source, context, and parsed items.
#[derive(Debug)]
pub struct FileUnit {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// Lexer output (tokens, comments, masked source).
    pub lexed: Lexed,
    /// Path-derived rule context.
    pub ctx: FileContext,
    /// Item-level parse (fns, hot-path annotations).
    pub items: Items,
    /// Number of source lines.
    pub line_count: u32,
}

/// Identifies one `fn` item: `(file index, index into that file's fns)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct FnId {
    /// Index into [`Model::files`].
    pub file: usize,
    /// Index into that file's `items.fns`.
    pub item: usize,
}

/// The workspace under analysis.
#[derive(Debug)]
pub struct Model {
    /// All files, in the order given (workspace walks sort by path).
    pub files: Vec<FileUnit>,
}

impl Model {
    /// Builds the model from `(relative path, source)` pairs.
    pub fn from_sources<S: AsRef<str>, T: AsRef<str>>(sources: &[(S, T)]) -> Model {
        let files = sources
            .iter()
            .map(|(rel, src)| {
                let rel = rel.as_ref().to_string();
                let src = src.as_ref();
                let lexed = lexer::lex(src);
                let ctx = FileContext::new(&rel, &lexed.tokens);
                let line_count = src.lines().count() as u32;
                let items = parse::parse(&lexed.tokens, &lexed.comments, line_count);
                FileUnit {
                    rel,
                    lexed,
                    ctx,
                    items,
                    line_count,
                }
            })
            .collect();
        Model { files }
    }

    /// Whether a file contributes symbols to the call graph: library and
    /// binary code only — test helpers must never satisfy (or pollute) a
    /// hot-path reachability query.
    pub fn is_symbol_file(&self, file: usize) -> bool {
        matches!(self.files[file].ctx.kind, FileKind::Lib | FileKind::Bin)
    }

    /// Iterates the symbol-eligible `fn` items (outside test regions).
    pub fn symbol_fns(&self) -> impl Iterator<Item = FnId> + '_ {
        self.files.iter().enumerate().flat_map(move |(fi, u)| {
            u.items
                .fns
                .iter()
                .enumerate()
                .filter(move |(_, f)| self.is_symbol_file(fi) && !u.ctx.in_test_region(f.line))
                .map(move |(ii, _)| FnId { file: fi, item: ii })
        })
    }

    /// The `fn` item behind an id.
    pub fn fn_item(&self, id: FnId) -> &parse::FnItem {
        &self.files[id.file].items.fns[id.item]
    }
}

/// Name-indexed views over the model's symbol-eligible `fn` items.
#[derive(Debug, Default)]
pub struct Symbols {
    /// Every eligible fn, densely numbered; indices into this vec are the
    /// node ids of the call graph.
    pub fns: Vec<FnId>,
    /// Free functions and methods by bare name.
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// Methods (fns with an impl type) by bare name.
    pub methods_by_name: BTreeMap<String, Vec<usize>>,
    /// Fns by `(crate dir, name)`.
    pub by_crate_name: BTreeMap<(String, String), Vec<usize>>,
    /// Methods by `(impl type, name)`.
    pub by_type_method: BTreeMap<(String, String), Vec<usize>>,
}

impl Symbols {
    /// Builds the symbol table for a model.
    pub fn build(model: &Model) -> Symbols {
        let mut sym = Symbols::default();
        for id in model.symbol_fns() {
            let idx = sym.fns.len();
            sym.fns.push(id);
            let f = model.fn_item(id);
            let crate_dir = model.files[id.file].ctx.crate_dir.clone();
            sym.by_name.entry(f.name.clone()).or_default().push(idx);
            sym.by_crate_name
                .entry((crate_dir, f.name.clone()))
                .or_default()
                .push(idx);
            if let Some(t) = &f.impl_type {
                sym.methods_by_name
                    .entry(f.name.clone())
                    .or_default()
                    .push(idx);
                sym.by_type_method
                    .entry((t.clone(), f.name.clone()))
                    .or_default()
                    .push(idx);
            }
        }
        sym
    }
}
