//! Per-file context: what kind of file this is, which crate owns it, and
//! which line ranges are test code.
//!
//! Rules care about *where* code lives: a wall-clock read is fine in a
//! test or an example, a `HashMap` is fine outside the deterministic
//! simulation crates, and the panicking-arithmetic rule watches only the
//! facility/kernel dispatch paths. All of that policy is decided here so
//! the rules themselves stay mechanical.

use crate::lexer::{Spanned, Tok};

/// Broad classification of a source file by path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code (the default).
    Lib,
    /// A binary target (`src/main.rs`, `src/bin/*`).
    Bin,
    /// An example under `examples/`.
    Example,
    /// An integration test or bench (`tests/`, `benches/`).
    Test,
}

/// Everything rules need to know about one file.
#[derive(Debug)]
pub struct FileContext {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// The owning crate's directory name under `crates/`, or `"."` for
    /// the root package.
    pub crate_dir: String,
    /// Path-derived classification.
    pub kind: FileKind,
    /// Line ranges (inclusive) covered by `#[cfg(test)]` modules or
    /// `#[test]` functions.
    pub test_regions: Vec<(u32, u32)>,
}

/// Crates whose runs must replay byte-identically from a seed.
const DETERMINISTIC_CRATES: [&str; 7] = ["sim", "kernel", "core", "net", "tcp", "admit", "scope"];

/// The sanctioned wall-clock homes: st-core's real-time embedding file,
/// plus the whole st-rt crate — the host-measurement runtime whose entire
/// purpose is reading the real clock. Everything else must stay on
/// simulated time.
const WALL_CLOCK_HOME: &str = "crates/core/src/rt.rs";
const WALL_CLOCK_HOME_PREFIXES: [&str; 1] = ["crates/rt/src/"];

/// Facility/kernel hot paths watched for panicking arithmetic.
const UNWRAP_WATCHED: [&str; 2] = ["crates/core/src/facility.rs", "crates/core/src/rt.rs"];
const UNWRAP_WATCHED_PREFIXES: [&str; 2] = ["crates/kernel/src/", "crates/wheel/src/"];

/// Dispatch-path files where even raw indexing must be justified.
const INDEX_WATCHED: [&str; 3] = [
    "crates/core/src/facility.rs",
    "crates/kernel/src/softclock.rs",
    "crates/kernel/src/hwtimer.rs",
];

/// Files holding the (S+T, S+T+X+1) bound math.
const BOUND_MATH: [&str; 1] = ["crates/core/src/facility.rs"];
const BOUND_MATH_PREFIXES: [&str; 2] = ["crates/wheel/src/", "crates/admit/src/"];

impl FileContext {
    /// Builds the context for a workspace-relative path, extracting test
    /// regions from the token stream.
    pub fn new(path: &str, toks: &[Spanned]) -> FileContext {
        let crate_dir = path
            .strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next())
            .unwrap_or(".")
            .to_string();
        let has_component = |c: &str| path.split('/').any(|p| p == c);
        let kind = if has_component("tests") || has_component("benches") {
            FileKind::Test
        } else if has_component("examples") {
            FileKind::Example
        } else if path.ends_with("src/main.rs") || path.contains("/bin/") {
            FileKind::Bin
        } else {
            FileKind::Lib
        };
        FileContext {
            path: path.to_string(),
            crate_dir,
            kind,
            test_regions: test_regions(toks),
        }
    }

    /// Whether `line` falls inside `#[cfg(test)]` / `#[test]` code, or the
    /// whole file is a test/bench target.
    pub fn in_test_region(&self, line: u32) -> bool {
        self.kind == FileKind::Test
            || self
                .test_regions
                .iter()
                .any(|&(lo, hi)| (lo..=hi).contains(&line))
    }

    /// Is this file a crate root that must carry the forbid attribute?
    pub fn is_crate_root(&self) -> bool {
        self.path.ends_with("src/lib.rs")
            || self.path.ends_with("src/main.rs")
            || (self.path.contains("/bin/") && self.path.ends_with(".rs"))
    }

    pub(crate) fn applies_wall_clock(&self) -> bool {
        self.kind != FileKind::Test
            && self.kind != FileKind::Example
            && self.path != WALL_CLOCK_HOME
            && !WALL_CLOCK_HOME_PREFIXES
                .iter()
                .any(|p| self.path.starts_with(p))
    }

    pub(crate) fn applies_unordered_iteration(&self) -> bool {
        self.kind != FileKind::Test && DETERMINISTIC_CRATES.contains(&self.crate_dir.as_str())
    }

    pub(crate) fn applies_silent_cast(&self) -> bool {
        self.kind != FileKind::Test && self.kind != FileKind::Example
    }

    pub(crate) fn applies_panicking_unwrap(&self) -> bool {
        self.kind != FileKind::Test
            && (UNWRAP_WATCHED.contains(&self.path.as_str())
                || UNWRAP_WATCHED_PREFIXES
                    .iter()
                    .any(|p| self.path.starts_with(p)))
    }

    pub(crate) fn applies_panicking_index(&self) -> bool {
        self.kind != FileKind::Test && INDEX_WATCHED.contains(&self.path.as_str())
    }

    pub(crate) fn applies_sealed_trace(&self) -> bool {
        self.kind == FileKind::Lib
    }

    pub(crate) fn applies_float_bounds(&self) -> bool {
        self.kind != FileKind::Test
            && (BOUND_MATH.contains(&self.path.as_str())
                || BOUND_MATH_PREFIXES.iter().any(|p| self.path.starts_with(p)))
    }

    /// Unit-taint dataflow: the crates where tick/ns/byte arithmetic is
    /// load-bearing — the deterministic set plus the wheel and profiler.
    pub(crate) fn applies_unit_taint(&self) -> bool {
        self.kind != FileKind::Test
            && self.kind != FileKind::Example
            && (DETERMINISTIC_CRATES.contains(&self.crate_dir.as_str())
                || self.crate_dir == "wheel"
                || self.crate_dir == "prof")
    }

    /// Shared-state audit: library code of the deterministic crates. The
    /// real-time runtime is exempt — it is the declared OS-thread boundary
    /// and owns its synchronization by design.
    pub(crate) fn applies_shared_state(&self) -> bool {
        self.kind == FileKind::Lib
            && DETERMINISTIC_CRATES.contains(&self.crate_dir.as_str())
            && self.path != WALL_CLOCK_HOME
    }
}

/// Finds line ranges of items marked `#[test]` or `#[cfg(test)]` (or any
/// attribute mentioning `test`, which also covers `#[cfg(any(test, …))]`).
/// The range runs from the attribute to the matching close brace of the
/// item's body.
fn test_regions(toks: &[Spanned]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        // Outer attribute: `#` `[` … `]` (inner `#![…]` has a `!`).
        if matches!(toks[i].tok, Tok::Punct('#'))
            && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('[')))
        {
            let attr_line = toks[i].line;
            let mut depth = 0i32;
            let mut j = i + 1;
            let mut is_test_attr = false;
            while j < toks.len() {
                match &toks[j].tok {
                    Tok::Punct('[') => depth += 1,
                    Tok::Punct(']') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    Tok::Ident(id) if id == "test" => is_test_attr = true,
                    _ => {}
                }
                j += 1;
            }
            if is_test_attr {
                // Scan forward past further attributes to the item body:
                // the first `{` before a `;` at depth 0.
                let mut k = j + 1;
                let mut found_body = None;
                while k < toks.len() {
                    match &toks[k].tok {
                        Tok::Punct('{') => {
                            found_body = Some(k);
                            break;
                        }
                        Tok::Punct(';') => break,
                        Tok::Punct('#') => {
                            // Another attribute: skip its bracket group.
                            let mut d = 0i32;
                            k += 1;
                            while k < toks.len() {
                                match &toks[k].tok {
                                    Tok::Punct('[') => d += 1,
                                    Tok::Punct(']') => {
                                        d -= 1;
                                        if d == 0 {
                                            break;
                                        }
                                    }
                                    _ => {}
                                }
                                k += 1;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                if let Some(open) = found_body {
                    let mut d = 0i32;
                    let mut m = open;
                    while m < toks.len() {
                        match &toks[m].tok {
                            Tok::Punct('{') => d += 1,
                            Tok::Punct('}') => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        m += 1;
                    }
                    let end_line = toks.get(m).map_or(u32::MAX, |t| t.line);
                    regions.push((attr_line, end_line));
                    i = m;
                }
            } else {
                i = j;
            }
        }
        i += 1;
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn cfg_test_module_is_a_region() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn after() {}\n";
        let lexed = lex(src);
        let ctx = FileContext::new("crates/core/src/x.rs", &lexed.tokens);
        assert!(!ctx.in_test_region(1));
        assert!(ctx.in_test_region(2));
        assert!(ctx.in_test_region(4));
        assert!(ctx.in_test_region(5));
        assert!(!ctx.in_test_region(6));
    }

    #[test]
    fn test_fn_is_a_region() {
        let src = "fn a() {}\n#[test]\nfn t() {\n    body();\n}\nfn b() {}\n";
        let lexed = lex(src);
        let ctx = FileContext::new("crates/net/src/x.rs", &lexed.tokens);
        assert!(ctx.in_test_region(3));
        assert!(!ctx.in_test_region(6));
    }

    #[test]
    fn kinds_by_path() {
        let t = |p: &str| FileContext::new(p, &[]).kind;
        assert_eq!(t("crates/core/src/facility.rs"), FileKind::Lib);
        assert_eq!(t("crates/experiments/src/bin/repro.rs"), FileKind::Bin);
        assert_eq!(t("examples/quickstart.rs"), FileKind::Example);
        assert_eq!(t("tests/determinism.rs"), FileKind::Test);
        assert_eq!(t("crates/lint/tests/golden.rs"), FileKind::Test);
        assert_eq!(t("src/lib.rs"), FileKind::Lib);
    }

    #[test]
    fn crate_roots() {
        assert!(FileContext::new("crates/core/src/lib.rs", &[]).is_crate_root());
        assert!(FileContext::new("src/lib.rs", &[]).is_crate_root());
        assert!(FileContext::new("crates/experiments/src/bin/repro.rs", &[]).is_crate_root());
        assert!(!FileContext::new("crates/core/src/pacer.rs", &[]).is_crate_root());
    }

    #[test]
    fn crate_dir_extraction() {
        assert_eq!(
            FileContext::new("crates/tcp/src/lib.rs", &[]).crate_dir,
            "tcp"
        );
        assert_eq!(FileContext::new("src/lib.rs", &[]).crate_dir, ".");
    }
}
