//! The workspace-gated analyses: unit-taint dataflow, hot-path cost
//! discipline, and the SMP shared-state audit.
//!
//! All three run over the [`crate::model::Model`] (every file at once) and
//! append [`RawFinding`]s into the per-file buckets; suppression matching
//! happens afterwards in the engine, exactly as for the per-file rules.

use std::collections::BTreeMap;

use crate::callgraph::Graph;
use crate::lexer::{Spanned, Tok};
use crate::model::Model;
use crate::rules::{finding, RawFinding, RuleId};

// ---------------------------------------------------------------------------
// Unit-taint dataflow
// ---------------------------------------------------------------------------

/// The unit lattice: a value is tagged by the unit its name, constructor,
/// or binding carries. `Unknown` never produces findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Unit {
    Nanos,
    Micros,
    Millis,
    Secs,
    Ticks,
    Bytes,
    Hz,
}

impl Unit {
    fn label(self) -> &'static str {
        match self {
            Unit::Nanos => "nanoseconds",
            Unit::Micros => "microseconds",
            Unit::Millis => "milliseconds",
            Unit::Secs => "seconds",
            Unit::Ticks => "ticks",
            Unit::Bytes => "bytes",
            Unit::Hz => "hertz",
        }
    }
}

/// The unit a snake_case name carries, by exact name or suffix.
/// SCREAMING_CASE names are named constants — the blessed escape hatch —
/// and types/constructors (`from_*`, capitalized) carry no raw unit.
fn name_unit(name: &str) -> Option<Unit> {
    if name.chars().any(|c| c.is_ascii_uppercase()) || name.starts_with("from_") {
        return None;
    }
    match name {
        "ns" | "nanos" => return Some(Unit::Nanos),
        "us" | "micros" => return Some(Unit::Micros),
        "ms" | "millis" => return Some(Unit::Millis),
        "secs" => return Some(Unit::Secs),
        "tick" | "ticks" => return Some(Unit::Ticks),
        "bytes" => return Some(Unit::Bytes),
        "hz" => return Some(Unit::Hz),
        _ => {}
    }
    const SUFFIXES: [(&str, Unit); 12] = [
        ("_ns", Unit::Nanos),
        ("_nanos", Unit::Nanos),
        ("_us", Unit::Micros),
        ("_micros", Unit::Micros),
        ("_ms", Unit::Millis),
        ("_millis", Unit::Millis),
        ("_sec", Unit::Secs),
        ("_secs", Unit::Secs),
        ("_tick", Unit::Ticks),
        ("_ticks", Unit::Ticks),
        ("_bytes", Unit::Bytes),
        ("_hz", Unit::Hz),
    ];
    SUFFIXES
        .iter()
        .find(|(s, _)| name.ends_with(s))
        .map(|&(_, u)| u)
}

/// What an operand of a binary operator resolves to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Operand {
    Val(Unit),
    Lit(u64),
    Unknown,
}

fn tok_at(toks: &[Spanned], i: usize) -> Option<&Tok> {
    toks.get(i).map(|t| &t.tok)
}

fn punct_at(toks: &[Spanned], i: usize) -> Option<char> {
    match tok_at(toks, i) {
        Some(Tok::Punct(c)) => Some(*c),
        _ => None,
    }
}

/// Index just past the `)` matching the `(` at `open`.
fn skip_paren_group(toks: &[Spanned], open: usize) -> usize {
    let mut d = 0i32;
    let mut i = open;
    while i < toks.len() {
        match tok_at(toks, i) {
            Some(Tok::Punct('(')) => d += 1,
            Some(Tok::Punct(')')) => {
                d -= 1;
                if d == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    toks.len()
}

/// Index of the `(` matching the `)` at `close`.
fn paren_open_of(toks: &[Spanned], close: usize) -> Option<usize> {
    let mut d = 0i32;
    let mut i = close as isize;
    while i >= 0 {
        match tok_at(toks, i as usize) {
            Some(Tok::Punct(')')) => d += 1,
            Some(Tok::Punct('(')) => {
                d -= 1;
                if d == 0 {
                    return Some(i as usize);
                }
            }
            _ => {}
        }
        i -= 1;
    }
    None
}

type Env = BTreeMap<String, Unit>;

/// Resolves the operand ending at token `i` (inclusive), walking back
/// through a matched paren group or one field/`as`-cast level.
fn operand_ending_at(toks: &[Spanned], i: usize, env: &Env) -> Operand {
    match tok_at(toks, i) {
        Some(Tok::Int(v)) => {
            if i >= 1 && punct_at(toks, i - 1) == Some('.') {
                Operand::Unknown // tuple field: `self.0`
            } else {
                v.map(Operand::Lit).unwrap_or(Operand::Unknown)
            }
        }
        Some(Tok::Ident(name)) => {
            // Cast target: `x_ns as u64` — resolve the value before `as`.
            if i >= 2 && matches!(tok_at(toks, i - 1), Some(Tok::Ident(a)) if a == "as") {
                return operand_ending_at(toks, i - 2, env);
            }
            if i >= 1 && punct_at(toks, i - 1) == Some('.') {
                // Field access: the field name decides.
                return name_unit(name)
                    .map(Operand::Val)
                    .unwrap_or(Operand::Unknown);
            }
            env.get(name)
                .copied()
                .or_else(|| name_unit(name))
                .map(Operand::Val)
                .unwrap_or(Operand::Unknown)
        }
        Some(Tok::Punct(')')) => {
            let Some(open) = paren_open_of(toks, i) else {
                return Operand::Unknown;
            };
            if open == 0 {
                return Operand::Unknown;
            }
            // `recv.method(args)` or `func(args)`: the callee name decides;
            // a unit-neutral method (`min`, `clamp`) defers to its receiver.
            if let Some(Tok::Ident(callee)) = tok_at(toks, open - 1) {
                if let Some(u) = name_unit(callee) {
                    return Operand::Val(u);
                }
                if open >= 2 && punct_at(toks, open - 2) == Some('.') && open >= 3 {
                    return operand_ending_at(toks, open - 3, env);
                }
            }
            Operand::Unknown
        }
        _ => Operand::Unknown,
    }
}

/// Resolves the operand starting at token `j`, walking a forward chain of
/// path segments, calls, and field/method accesses; the last unit-bearing
/// name wins and unit-neutral links keep the current unit.
fn operand_starting_at(toks: &[Spanned], j: usize, env: &Env) -> Operand {
    match tok_at(toks, j) {
        Some(Tok::Int(v)) => v.map(Operand::Lit).unwrap_or(Operand::Unknown),
        Some(Tok::Ident(first)) => {
            let mut cur = env.get(first).copied().or_else(|| name_unit(first));
            let mut k = j + 1;
            loop {
                match (tok_at(toks, k), tok_at(toks, k + 1)) {
                    (Some(Tok::Punct(':')), Some(Tok::Punct(':'))) => {
                        // Path segment: the final segment decides.
                        match tok_at(toks, k + 2) {
                            Some(Tok::Ident(seg)) => {
                                cur = name_unit(seg);
                                k += 3;
                            }
                            _ => break,
                        }
                    }
                    (Some(Tok::Punct('(')), _) => {
                        k = skip_paren_group(toks, k);
                    }
                    (Some(Tok::Punct('.')), Some(Tok::Ident(m))) => {
                        if let Some(u) = name_unit(m) {
                            cur = u.into();
                        }
                        k += 2;
                    }
                    (Some(Tok::Punct('.')), Some(Tok::Int(_))) => {
                        cur = None;
                        k += 2;
                    }
                    _ => break,
                }
            }
            cur.map(Operand::Val).unwrap_or(Operand::Unknown)
        }
        _ => Operand::Unknown,
    }
}

/// Collects `let [mut] name = <expr>` bindings whose right-hand side has a
/// resolvable unit.
fn bindings(toks: &[Spanned], range: (usize, usize)) -> Env {
    let mut env = Env::new();
    let (open, close) = range;
    let mut i = open;
    while i <= close && i < toks.len() {
        if matches!(tok_at(toks, i), Some(Tok::Ident(id)) if id == "let") {
            let mut j = i + 1;
            if matches!(tok_at(toks, j), Some(Tok::Ident(id)) if id == "mut") {
                j += 1;
            }
            if let Some(Tok::Ident(name)) = tok_at(toks, j) {
                // Find the `=` of this binding (skip `: Type` annotations).
                let mut k = j + 1;
                let mut angle = 0i32;
                while k <= close && k < toks.len() {
                    match tok_at(toks, k) {
                        Some(Tok::Punct('<')) => angle += 1,
                        Some(Tok::Punct('>')) => angle -= 1,
                        Some(Tok::Punct('=')) if angle <= 0 => {
                            // `==`, `>=`, … never follow a let header.
                            if punct_at(toks, k + 1) != Some('=') {
                                if let Operand::Val(u) = operand_starting_at(toks, k + 1, &env) {
                                    env.insert(name.clone(), u);
                                }
                            }
                            break;
                        }
                        Some(Tok::Punct(';')) => break,
                        _ => {}
                    }
                    k += 1;
                }
            }
        }
        i += 1;
    }
    env
}

/// Whether a literal value is a power-of-ten conversion constant.
fn is_conversion_constant(v: u64) -> bool {
    if v < 1_000 {
        return false;
    }
    let mut x = v;
    while x.is_multiple_of(10) {
        x /= 10;
    }
    x == 1
}

/// Can the previous token end a value expression (making the operator
/// binary rather than unary/deref/generic)?
fn ends_value(t: Option<&Tok>) -> bool {
    matches!(
        t,
        Some(Tok::Ident(_) | Tok::Int(_) | Tok::Float | Tok::Punct(')') | Tok::Punct(']'))
    )
}

/// The unit-taint analysis over every function body in scope.
pub fn unit_taint(model: &Model, out: &mut [Vec<RawFinding>]) {
    for (fi, unit) in model.files.iter().enumerate() {
        if !unit.ctx.applies_unit_taint() {
            continue;
        }
        let toks = &unit.lexed.tokens;
        for f in &unit.items.fns {
            let Some(range) = f.body else { continue };
            if unit.ctx.in_test_region(f.line) {
                continue;
            }
            let env = bindings(toks, range);
            scan_ops(toks, range, &env, &mut out[fi]);
        }
    }
}

fn scan_ops(toks: &[Spanned], range: (usize, usize), env: &Env, out: &mut Vec<RawFinding>) {
    let (open, close) = range;
    for i in (open + 1)..close.min(toks.len()) {
        let Some(Tok::Punct(c)) = tok_at(toks, i) else {
            continue;
        };
        let c = *c;
        let prev = punct_at(toks, i.wrapping_sub(1));
        let next = punct_at(toks, i + 1);
        // Identify a binary operator and where its right operand starts.
        let (arith, right_at) = match c {
            '+' | '-' | '*' | '/' | '%' => {
                if c == '-' && next == Some('>') {
                    continue; // ->
                }
                if !ends_value(tok_at(toks, i - 1)) {
                    continue; // unary minus, deref, `&`-adjacent …
                }
                let right = if next == Some('=') { i + 2 } else { i + 1 }; // +=
                (true, right)
            }
            '<' | '>' => {
                if prev == Some(c) || next == Some(c) {
                    continue; // shifts
                }
                if prev == Some('-') || prev == Some('=') || prev == Some(':') {
                    continue; // ->, =>, turbofish
                }
                if !ends_value(tok_at(toks, i - 1)) {
                    continue;
                }
                let right = if next == Some('=') { i + 2 } else { i + 1 };
                (false, right)
            }
            '=' if next == Some('=')
                && prev != Some('=')
                && !matches!(prev, Some('<' | '>' | '!' | '+' | '-' | '*' | '/' | '%')) =>
            {
                (false, i + 2)
            }
            '!' if next == Some('=') => (false, i + 2),
            _ => continue,
        };
        let lhs = operand_ending_at(toks, i - 1, env);
        let rhs = operand_starting_at(toks, right_at, env);
        let line = toks[i].line;
        // `*` and `/` across units are dimensional analysis (`secs * hz`
        // makes ticks); only additive ops and comparisons demand same-unit
        // operands.
        let additive = !matches!(c, '*' | '/');
        match (lhs, rhs) {
            (Operand::Val(a), Operand::Val(b)) if additive && a != b => {
                out.push(finding(
                    RuleId::UnitTaint,
                    line,
                    &format!("`{c}` mixes {} with {}", a.label(), b.label()),
                ));
            }
            (Operand::Val(u), Operand::Lit(v)) | (Operand::Lit(v), Operand::Val(u))
                if arith && u != Unit::Bytes && is_conversion_constant(v) =>
            {
                out.push(finding(
                    RuleId::UnitTaint,
                    line,
                    &format!(
                        "`{c}` folds raw conversion constant {v} into {} math",
                        u.label()
                    ),
                ));
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Hot-path cost discipline
// ---------------------------------------------------------------------------

const ALLOC_TYPES: [&str; 11] = [
    "Box",
    "Vec",
    "VecDeque",
    "String",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "HashMap",
    "HashSet",
    "Rc",
    "Arc",
];
const ALLOC_CTORS: [&str; 4] = ["new", "with_capacity", "from", "default"];
const ALLOC_METHODS: [&str; 5] = [
    "to_string",
    "to_owned",
    "to_vec",
    "collect",
    "into_boxed_slice",
];
const FMT_MACROS: [&str; 4] = ["format", "format_args", "write", "writeln"];
const EMIT_MACROS: [&str; 5] = ["println", "print", "eprintln", "eprint", "dbg"];
const LOCK_TYPES: [&str; 3] = ["Mutex", "RwLock", "Condvar"];

/// One denied operation found in a function body.
struct Denied {
    line: u32,
    what: String,
}

/// Scans one body for syntactically overt allocation/locking/formatting/
/// emission. (Hidden costs — a `BTreeMap::entry` that splits a node — are
/// out of scope; the audit catches the overt ones.)
fn denied_ops(toks: &[Spanned], range: (usize, usize)) -> Vec<Denied> {
    let (open, close) = range;
    let mut out = Vec::new();
    for i in open..=close.min(toks.len().saturating_sub(1)) {
        let Some(Tok::Ident(id)) = tok_at(toks, i) else {
            continue;
        };
        let line = toks[i].line;
        let next = punct_at(toks, i + 1);
        if next == Some('!') {
            let what = if FMT_MACROS.contains(&id.as_str()) {
                format!("formatting `{id}!`")
            } else if EMIT_MACROS.contains(&id.as_str()) {
                format!("unsealed emit `{id}!`")
            } else if id == "vec" {
                "allocation `vec![]`".to_string()
            } else {
                continue;
            };
            out.push(Denied { line, what });
            continue;
        }
        if LOCK_TYPES.contains(&id.as_str()) {
            out.push(Denied {
                line,
                what: format!("locking `{id}`"),
            });
            continue;
        }
        if ALLOC_TYPES.contains(&id.as_str())
            && punct_at(toks, i + 1) == Some(':')
            && punct_at(toks, i + 2) == Some(':')
        {
            if let Some(Tok::Ident(m)) = tok_at(toks, i + 3) {
                if ALLOC_CTORS.contains(&m.as_str()) && punct_at(toks, i + 4) == Some('(') {
                    out.push(Denied {
                        line,
                        what: format!("allocation `{id}::{m}`"),
                    });
                }
            }
            continue;
        }
        if i >= 1 && punct_at(toks, i - 1) == Some('.') && next == Some('(') {
            if ALLOC_METHODS.contains(&id.as_str()) {
                out.push(Denied {
                    line,
                    what: format!("allocation `.{id}()`"),
                });
            } else if id == "lock" {
                out.push(Denied {
                    line,
                    what: format!("locking `.{id}()`"),
                });
            }
        }
    }
    out
}

/// The hot-path reachability analysis: from every `// st-lint: hot-path`
/// root, walk the call graph and flag denied operations anywhere the root
/// can reach.
pub fn hot_path(model: &Model, out: &mut [Vec<RawFinding>]) {
    let graph = Graph::build(model);
    // Deterministic first-root-wins dedup per offending line.
    let mut claimed: BTreeMap<(usize, u32), RawFinding> = BTreeMap::new();
    for root in 0..graph.symbols.fns.len() {
        let root_id = graph.symbols.fns[root];
        if !model.fn_item(root_id).is_hot {
            continue;
        }
        let root_qual = model.fn_item(root_id).qual();
        let parents = graph.reachable(root);
        for &node in parents.keys() {
            let id = graph.symbols.fns[node];
            let Some(body) = model.fn_item(id).body else {
                continue;
            };
            let unit = &model.files[id.file];
            for d in denied_ops(&unit.lexed.tokens, body) {
                let key = (id.file, d.line);
                if claimed.contains_key(&key) {
                    continue;
                }
                let msg = if node == root {
                    format!("hot path `{root_qual}` contains {}", d.what)
                } else {
                    format!(
                        "hot path `{root_qual}` reaches {} via {}",
                        d.what,
                        graph.chain(model, &parents, node)
                    )
                };
                claimed.insert(key, finding(RuleId::HotPathCost, d.line, &msg));
            }
        }
    }
    for ((file, _), f) in claimed {
        out[file].push(f);
    }
}

// ---------------------------------------------------------------------------
// SMP shared-state audit
// ---------------------------------------------------------------------------

const CELL_TYPES: [&str; 12] = [
    "RefCell",
    "Cell",
    "UnsafeCell",
    "OnceCell",
    "OnceLock",
    "LazyLock",
    "SyncUnsafeCell",
    "Mutex",
    "RwLock",
    "Condvar",
    "Rc",
    "Arc",
];

/// Inventories `static` items, `thread_local!` cells, and interior-
/// mutability types across the deterministic crates. Every entry must be
/// whitelisted with an owner-declaring suppression.
pub fn shared_state(model: &Model, out: &mut [Vec<RawFinding>]) {
    for (fi, unit) in model.files.iter().enumerate() {
        if !unit.ctx.applies_shared_state() {
            continue;
        }
        let toks = &unit.lexed.tokens;
        // (line, priority, message); statics outrank cell-type mentions.
        let mut candidates: Vec<(u32, u8, String)> = Vec::new();
        let mut seen_cells: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
        let mut i = 0usize;
        let mut tl_depth: Option<i32> = None; // inside thread_local! braces
        let mut depth = 0i32;
        while i < toks.len() {
            let line = toks[i].line;
            match tok_at(toks, i) {
                Some(Tok::Punct('{')) => depth += 1,
                Some(Tok::Punct('}')) => {
                    depth -= 1;
                    if tl_depth.is_some_and(|d| depth <= d) {
                        tl_depth = None;
                    }
                }
                Some(Tok::Ident(id)) if unit.ctx.in_test_region(line) => {
                    let _ = id;
                }
                Some(Tok::Ident(id)) if id == "use" && punct_at(toks, i + 1) != Some(':') => {
                    // Skip the import; inventory records cells, not imports.
                    while i < toks.len() && punct_at(toks, i) != Some(';') {
                        i += 1;
                    }
                }
                Some(Tok::Ident(id))
                    if id == "thread_local" && punct_at(toks, i + 1) == Some('!') =>
                {
                    tl_depth = Some(depth);
                }
                Some(Tok::Ident(id)) if id == "static" => {
                    if let Some(Tok::Ident(name)) = tok_at(toks, i + 1) {
                        let kind = if tl_depth.is_some() {
                            "thread-local static"
                        } else {
                            "static"
                        };
                        candidates.push((line, 0, format!("shared state: {kind} `{name}`")));
                    }
                }
                Some(Tok::Ident(id))
                    if CELL_TYPES.contains(&id.as_str()) || id.starts_with("Atomic") =>
                {
                    // One inventory entry per cell type per file.
                    let name: &str = match CELL_TYPES.iter().find(|t| *t == id) {
                        Some(t) => t,
                        None if id.starts_with("Atomic") => "Atomic*",
                        None => unreachable!(),
                    };
                    if seen_cells.insert(name) {
                        candidates.push((line, 1, format!("interior mutability: `{id}`")));
                    }
                }
                _ => {}
            }
            i += 1;
        }
        // Per line, the highest-priority candidate wins.
        candidates.sort_by_key(|c| (c.0, c.1));
        let mut last_line = None;
        for (line, _, msg) in candidates {
            if last_line == Some(line) {
                continue;
            }
            last_line = Some(line);
            out[fi].push(finding(RuleId::SharedState, line, &msg));
        }
    }
}
