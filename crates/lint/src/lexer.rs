//! A hand-rolled Rust token scanner.
//!
//! The linter does not need a full parser: every invariant it enforces is
//! expressible over a token stream plus a little brace matching. The lexer
//! therefore produces four things the rule engine consumes: the token
//! stream (with string/char/comment *contents removed*, so rules can never
//! false-positive on a literal), the comments (for suppression parsing),
//! per-token line numbers, and nothing else. It understands the parts of
//! the Rust grammar that matter for not mis-tokenizing real code: nested
//! block comments, raw strings with `#` fences, byte strings, char
//! literals vs. lifetimes, and numeric literals with suffixes.

/// One lexed token. String-like literals carry no content on purpose.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// A lifetime such as `'a` (without the quote).
    Lifetime(String),
    /// Integer literal (including suffixed forms such as `1u64`), with its
    /// parsed value when it fits in a `u64` (the unit-taint analysis
    /// recognizes raw power-of-ten conversion constants by value).
    Int(Option<u64>),
    /// Floating literal: has a fraction part, an exponent, or an
    /// `f32`/`f64` suffix.
    Float,
    /// String, raw-string, byte-string, or raw-byte-string literal.
    Str,
    /// Character or byte literal.
    Char,
    /// A single punctuation character (`::` arrives as two `:`).
    Punct(char),
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// A comment (line or block) with its starting line and full text,
/// including the `//` / `/*` markers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (same as `line` for `//`).
    pub end_line: u32,
    /// Raw comment text.
    pub text: String,
    /// Whether the comment has only whitespace before it on its line.
    pub owns_line: bool,
}

/// The lexer's output.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Token stream in source order.
    pub tokens: Vec<Spanned>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
    /// The source with every string/char/comment content byte replaced by a
    /// space (newlines kept, so line numbers are preserved). Line-based
    /// heuristics must read this, never the raw source: a timing word
    /// inside a raw string or a block comment is prose, not code.
    pub masked: String,
}

/// Tokenizes `src`. Invalid input never panics: unrecognized bytes are
/// skipped (the real compiler is the authority on well-formedness; the
/// linter only needs to agree with it on well-formed files).
pub fn lex(src: &str) -> Lexed {
    Lexer {
        b: src.as_bytes(),
        src,
        pos: 0,
        line: 1,
        line_has_tokens: false,
        mask_ranges: Vec::new(),
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    b: &'a [u8],
    src: &'a str,
    pos: usize,
    line: u32,
    /// Whether a non-comment token has been emitted on the current line.
    line_has_tokens: bool,
    /// Byte ranges of string/char/comment content, blanked in `masked`.
    mask_ranges: Vec<(usize, usize)>,
    out: Lexed,
}

impl<'a> Lexer<'a> {
    fn peek(&self, off: usize) -> Option<u8> {
        self.b.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.b.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == b'\n' {
                self.line += 1;
                self.line_has_tokens = false;
            }
        }
        c
    }

    fn push(&mut self, tok: Tok) {
        self.out.tokens.push(Spanned {
            tok,
            line: self.line,
        });
        self.line_has_tokens = true;
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(),
                b'\'' => self.char_or_lifetime(),
                b'r' if self.raw_identifier() => {}
                b'r' | b'b' if self.raw_or_byte_literal() => {}
                c if c.is_ascii_digit() => self.number(),
                c if c == b'_' || c.is_ascii_alphabetic() => self.ident(),
                c if c.is_ascii() => {
                    self.bump();
                    self.push(Tok::Punct(c as char));
                }
                _ => {
                    // Multi-byte UTF-8 outside strings/comments: only legal
                    // in identifiers; treat as one.
                    self.ident();
                }
            }
        }
        self.out.masked = self.build_masked();
        self.out
    }

    /// The source with every masked range blanked to spaces, newlines kept.
    fn build_masked(&self) -> String {
        let mut bytes = self.b.to_vec();
        for &(lo, hi) in &self.mask_ranges {
            for b in &mut bytes[lo..hi] {
                if *b != b'\n' {
                    *b = b' ';
                }
            }
        }
        // Masked ranges cover whole literals/comments, so any multi-byte
        // character is either fully blanked or fully untouched.
        String::from_utf8(bytes).unwrap_or_default()
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        let line = self.line;
        let owns_line = !self.line_has_tokens;
        while let Some(c) = self.peek(0) {
            if c == b'\n' {
                break;
            }
            self.bump();
        }
        self.mask_ranges.push((start, self.pos));
        self.out.comments.push(Comment {
            line,
            end_line: line,
            text: self.src[start..self.pos].to_string(),
            owns_line,
        });
    }

    fn block_comment(&mut self) {
        let start = self.pos;
        let line = self.line;
        let owns_line = !self.line_has_tokens;
        self.bump();
        self.bump(); // consume "/*"
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
        self.mask_ranges.push((start, self.pos));
        self.out.comments.push(Comment {
            line,
            end_line: self.line,
            text: self.src[start..self.pos].to_string(),
            owns_line,
        });
    }

    /// Handles raw identifiers (`r#match`): lexed as the bare identifier so
    /// the `r` and `#` never leak into the token stream as separate tokens.
    /// Returns whether one was consumed.
    fn raw_identifier(&mut self) -> bool {
        if self.peek(1) != Some(b'#')
            || !self
                .peek(2)
                .is_some_and(|c| c == b'_' || c.is_ascii_alphabetic() || c >= 0x80)
        {
            return false;
        }
        self.bump(); // r
        self.bump(); // #
        self.ident();
        true
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br##"…"##`, `b'…'`. Returns
    /// whether a literal was consumed (otherwise the caller lexes an
    /// identifier starting with `r`/`b`).
    fn raw_or_byte_literal(&mut self) -> bool {
        let mut off = 1; // past the leading r or b
        let first = self.peek(0).unwrap_or(0);
        if first == b'b' && self.peek(off) == Some(b'r') {
            off += 1;
        }
        let raw = first == b'r' || off == 2;
        let mut fences = 0usize;
        if raw {
            while self.peek(off) == Some(b'#') {
                fences += 1;
                off += 1;
            }
        }
        let start = self.pos;
        match self.peek(off) {
            Some(b'"') => {
                for _ in 0..=off {
                    self.bump();
                }
                if raw {
                    self.raw_string_body(fences);
                } else {
                    self.string_body();
                }
                self.mask_ranges.push((start, self.pos));
                self.push(Tok::Str);
                true
            }
            Some(b'\'') if first == b'b' && off == 1 => {
                self.bump(); // b
                self.bump(); // '
                self.char_body();
                self.mask_ranges.push((start, self.pos));
                self.push(Tok::Char);
                true
            }
            _ => false,
        }
    }

    fn string(&mut self) {
        let start = self.pos;
        self.bump(); // opening quote
        self.string_body();
        self.mask_ranges.push((start, self.pos));
        self.push(Tok::Str);
    }

    /// Consumes up to and including the closing `"`, honoring escapes.
    fn string_body(&mut self) {
        while let Some(c) = self.bump() {
            match c {
                b'"' => return,
                b'\\' => {
                    self.bump();
                }
                _ => {}
            }
        }
    }

    /// Consumes a raw string body up to `"` followed by `fences` hashes.
    fn raw_string_body(&mut self, fences: usize) {
        while let Some(c) = self.bump() {
            if c == b'"' {
                let mut n = 0;
                while n < fences && self.peek(n) == Some(b'#') {
                    n += 1;
                }
                if n == fences {
                    for _ in 0..fences {
                        self.bump();
                    }
                    return;
                }
            }
        }
    }

    /// Consumes a char-literal body after the opening quote.
    fn char_body(&mut self) {
        while let Some(c) = self.bump() {
            match c {
                b'\'' => return,
                b'\\' => {
                    self.bump();
                }
                _ => {}
            }
        }
    }

    fn char_or_lifetime(&mut self) {
        // Disambiguate 'a' (char) from 'a (lifetime): a lifetime is a
        // quote, an identifier, and *no* closing quote right after.
        let start = self.pos;
        let mut off = 1;
        if self.peek(off).is_some_and(|c| c == b'\\') {
            // Escaped char literal, e.g. '\n'.
            self.bump();
            self.char_body();
            self.mask_ranges.push((start, self.pos));
            self.push(Tok::Char);
            return;
        }
        while self
            .peek(off)
            .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80)
        {
            off += 1;
        }
        if off > 1 && self.peek(off) != Some(b'\'') {
            let start = self.pos + 1;
            for _ in 0..off {
                self.bump();
            }
            let name = self.src[start..self.pos].to_string();
            self.push(Tok::Lifetime(name));
        } else {
            self.bump(); // opening quote
            self.char_body();
            self.mask_ranges.push((start, self.pos));
            self.push(Tok::Char);
        }
    }

    fn number(&mut self) {
        let mut is_float = false;
        let radix_prefix = self.peek(0) == Some(b'0')
            && matches!(self.peek(1), Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B'));
        if radix_prefix {
            let radix = match self.peek(1) {
                Some(b'x' | b'X') => 16,
                Some(b'o' | b'O') => 8,
                _ => 2,
            };
            self.bump();
            self.bump();
            let digits_start = self.pos;
            while self
                .peek(0)
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
            {
                self.bump();
            }
            let digits: String = self.src[digits_start..self.pos]
                .chars()
                .take_while(|c| c.is_digit(radix) || *c == '_')
                .filter(|c| *c != '_')
                .collect();
            self.push(Tok::Int(u64::from_str_radix(&digits, radix).ok()));
            return;
        }
        let digits_start = self.pos;
        while self
            .peek(0)
            .is_some_and(|c| c.is_ascii_digit() || c == b'_')
        {
            self.bump();
        }
        let digits_end = self.pos;
        // A fraction part only if the dot is followed by a digit or ends
        // the literal (so `1.max(2)` and `0..n` stay integers).
        if self.peek(0) == Some(b'.')
            && self.peek(1).is_none_or(|c| {
                c.is_ascii_digit() || !(c == b'.' || c == b'_' || c.is_ascii_alphabetic())
            })
        {
            is_float = true;
            self.bump();
            while self
                .peek(0)
                .is_some_and(|c| c.is_ascii_digit() || c == b'_')
            {
                self.bump();
            }
        }
        if matches!(self.peek(0), Some(b'e' | b'E'))
            && self
                .peek(1)
                .is_some_and(|c| c.is_ascii_digit() || c == b'+' || c == b'-')
        {
            is_float = true;
            self.bump();
            self.bump();
            while self
                .peek(0)
                .is_some_and(|c| c.is_ascii_digit() || c == b'_')
            {
                self.bump();
            }
        }
        // Suffix (u64, f64, usize, …).
        let sfx_start = self.pos;
        while self
            .peek(0)
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
        {
            self.bump();
        }
        let suffix = &self.src[sfx_start..self.pos];
        if suffix == "f32" || suffix == "f64" {
            is_float = true;
        }
        if is_float {
            self.push(Tok::Float);
        } else {
            let digits: String = self.src[digits_start..digits_end]
                .chars()
                .filter(|c| *c != '_')
                .collect();
            self.push(Tok::Int(digits.parse().ok()));
        }
    }

    fn ident(&mut self) {
        let start = self.pos;
        while let Some(c) = self.peek(0) {
            if c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80 {
                self.bump();
            } else {
                break;
            }
        }
        let text = self.src[start..self.pos].to_string();
        self.push(Tok::Ident(text));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|s| match s.tok {
                Tok::Ident(i) => Some(i),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"
            let a = "Instant::now() inside a string";
            // Instant::now() inside a comment
            /* HashMap in /* a nested */ block */
            let b = r#"HashMap "quoted" raw"#;
            let c = b"bytes";
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"HashMap".to_string()));
        assert_eq!(lex(src).comments.len(), 2);
    }

    #[test]
    fn char_vs_lifetime() {
        let lexed = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|s| matches!(s.tok, Tok::Lifetime(_)))
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars = lexed.tokens.iter().filter(|s| s.tok == Tok::Char).count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn numbers_int_vs_float() {
        let lexed = lex("let a = 1; let b = 1.5; let c = 1e3; let d = 0x2F; let e = 1.max(2); let f = 2f64; let g = 0..9;");
        let kinds: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|s| matches!(s.tok, Tok::Int(_) | Tok::Float))
            .map(|s| s.tok.clone())
            .collect();
        assert_eq!(
            kinds,
            vec![
                Tok::Int(Some(1)),
                Tok::Float, // 1.5
                Tok::Float, // 1e3
                Tok::Int(Some(0x2F)),
                Tok::Int(Some(1)), // 1 (in 1.max)
                Tok::Int(Some(2)), // 2 (arg)
                Tok::Float,        // 2f64
                Tok::Int(Some(0)),
                Tok::Int(Some(9)),
            ]
        );
    }

    #[test]
    fn int_values_parse_through_underscores_and_suffixes() {
        let lexed = lex("let a = 1_000_000; let b = 1_000u64; let c = 0b1010; let d = 0o17;");
        let vals: Vec<_> = lexed
            .tokens
            .iter()
            .filter_map(|s| match s.tok {
                Tok::Int(v) => Some(v),
                _ => None,
            })
            .collect();
        assert_eq!(
            vals,
            vec![Some(1_000_000), Some(1_000), Some(0b1010), Some(0o17)]
        );
    }

    #[test]
    fn masked_source_blanks_literals_and_comments_but_keeps_lines() {
        let src = "let a = \"deadline inside\"; // timeout prose\nlet b = r#\"expiry\nraw line two\"#; let tick = 1;\n";
        let lexed = lex(src);
        assert_eq!(lexed.masked.lines().count(), src.lines().count());
        assert!(!lexed.masked.contains("deadline"));
        assert!(!lexed.masked.contains("timeout"));
        assert!(!lexed.masked.contains("expiry"));
        assert!(lexed.masked.contains("let tick = 1;"));
    }

    #[test]
    fn masked_source_blanks_nested_block_comments() {
        let src = "/* outer /* interval */ still comment */ let x = 1;\n";
        let lexed = lex(src);
        assert!(!lexed.masked.contains("interval"));
        assert!(!lexed.masked.contains("still comment"));
        assert!(lexed.masked.contains("let x = 1;"));
    }

    #[test]
    fn raw_identifiers_lex_as_plain_identifiers() {
        let lexed = lex("let r#match = r#\"due\"#; fn r#fn() {}");
        let ids = lexed
            .tokens
            .iter()
            .filter_map(|s| match &s.tok {
                Tok::Ident(i) => Some(i.as_str()),
                _ => None,
            })
            .collect::<Vec<_>>();
        assert_eq!(ids, vec!["let", "match", "fn", "fn"]);
        assert!(
            !lexed.tokens.iter().any(|s| s.tok == Tok::Punct('#')),
            "raw identifier hash must not leak into the token stream"
        );
    }

    #[test]
    fn line_numbers_and_owns_line() {
        let lexed = lex("let a = 1;\n  // own-line comment\nlet b = 2; // trailing\n");
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].owns_line);
        assert_eq!(lexed.comments[0].line, 2);
        assert!(!lexed.comments[1].owns_line);
        assert_eq!(lexed.comments[1].line, 3);
        let b = lexed
            .tokens
            .iter()
            .find(|s| s.tok == Tok::Ident("b".into()))
            .unwrap();
        assert_eq!(b.line, 3);
    }

    #[test]
    fn raw_string_fences() {
        let src = "let x = r##\"end\"# not yet\"##; let y = 1;";
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "x", "let", "y"]);
    }
}
