//! Call-site extraction and a conservative, over-approximating call graph.
//!
//! Resolution is name-based, in the only way a hermetic linter can be
//! sound for reachability checks: a bare call resolves within the caller's
//! crate first (falling back to any crate), a `path::to::fn` call resolves
//! through its crate or type segment, and a `.method()` call resolves to
//! *every* workspace method of that name. Over-approximation is the point:
//! the hot-path analysis must never miss an edge; a false edge at worst
//! asks for a reasoned suppression.

use std::collections::BTreeMap;

use crate::lexer::{Spanned, Tok};
use crate::model::{Model, Symbols};

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallSite {
    /// `name(…)` — a bare call.
    Bare(String),
    /// `.name(…)` — a method call.
    Method(String),
    /// `seg::…::name(…)` — a path call, segments in source order.
    Path(Vec<String>),
}

/// Keywords that look like `ident (` but are not calls.
const NON_CALL_KEYWORDS: [&str; 9] = [
    "if", "while", "match", "return", "for", "loop", "in", "as", "move",
];

/// Extracts the call sites in `toks[range]` (a function body).
pub fn call_sites(toks: &[Spanned], range: (usize, usize)) -> Vec<CallSite> {
    let (open, close) = range;
    let mut out = Vec::new();
    for i in open..=close.min(toks.len().saturating_sub(1)) {
        let Tok::Ident(name) = &toks[i].tok else {
            continue;
        };
        if !matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('('))) {
            continue;
        }
        if NON_CALL_KEYWORDS.contains(&name.as_str()) {
            continue;
        }
        let prev = |k: usize| match toks.get(k).map(|t| &t.tok) {
            Some(Tok::Punct(c)) => Some(*c),
            _ => None,
        };
        if i > 0 && prev(i - 1) == Some('.') {
            out.push(CallSite::Method(name.clone()));
        } else if i >= 2 && prev(i - 1) == Some(':') && prev(i - 2) == Some(':') {
            // Walk the path backwards: `a::b::name`.
            let mut segs = vec![name.clone()];
            let mut j = i;
            while j >= 2 && prev(j - 1) == Some(':') && prev(j - 2) == Some(':') {
                match toks.get(j.wrapping_sub(3)).map(|t| &t.tok) {
                    Some(Tok::Ident(s)) => {
                        segs.push(s.clone());
                        j -= 3;
                    }
                    _ => break,
                }
            }
            segs.reverse();
            out.push(CallSite::Path(segs));
        } else {
            out.push(CallSite::Bare(name.clone()));
        }
    }
    out
}

/// The resolved call graph over a model's symbol-eligible functions.
#[derive(Debug)]
pub struct Graph {
    /// Node ids are indices into `Symbols::fns`.
    pub symbols: Symbols,
    /// Adjacency: callees per node, deduplicated and sorted.
    pub edges: Vec<Vec<usize>>,
}

impl Graph {
    /// Builds the call graph for a model.
    pub fn build(model: &Model) -> Graph {
        let symbols = Symbols::build(model);
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); symbols.fns.len()];
        for (node, &id) in symbols.fns.iter().enumerate() {
            let f = model.fn_item(id);
            let Some(body) = f.body else { continue };
            let unit = &model.files[id.file];
            let crate_dir = unit.ctx.crate_dir.as_str();
            let impl_type = f.impl_type.as_deref();
            let mut callees = Vec::new();
            for call in call_sites(&unit.lexed.tokens, body) {
                resolve(&symbols, crate_dir, impl_type, &call, &mut callees);
            }
            callees.sort_unstable();
            callees.dedup();
            callees.retain(|&c| c != node);
            edges[node] = callees;
        }
        Graph { symbols, edges }
    }

    /// The node id of a function, by `name` or `Type::name` (first match).
    pub fn node(&self, model: &Model, qual: &str) -> Option<usize> {
        self.symbols
            .fns
            .iter()
            .position(|&id| model.fn_item(id).qual() == qual)
    }

    /// Breadth-first reachability from `root`, returning each reachable
    /// node with its predecessor (for reconstructing one sample chain).
    /// The root itself is included with no predecessor.
    pub fn reachable(&self, root: usize) -> BTreeMap<usize, Option<usize>> {
        let mut seen: BTreeMap<usize, Option<usize>> = BTreeMap::new();
        let mut queue = std::collections::VecDeque::new();
        seen.insert(root, None);
        queue.push_back(root);
        while let Some(n) = queue.pop_front() {
            for &c in &self.edges[n] {
                if let std::collections::btree_map::Entry::Vacant(e) = seen.entry(c) {
                    e.insert(Some(n));
                    queue.push_back(c);
                }
            }
        }
        seen
    }

    /// One call chain `root -> … -> node`, as qualified names.
    pub fn chain(
        &self,
        model: &Model,
        parents: &BTreeMap<usize, Option<usize>>,
        node: usize,
    ) -> String {
        let mut names = Vec::new();
        let mut cur = Some(node);
        while let Some(n) = cur {
            names.push(model.fn_item(self.symbols.fns[n]).qual());
            cur = parents.get(&n).copied().flatten();
        }
        names.reverse();
        names.join(" -> ")
    }
}

/// Maps a crate-name path segment (`st_trace`) to a crate dir (`trace`).
fn crate_dir_of_segment(seg: &str) -> Option<&str> {
    seg.strip_prefix("st_")
}

/// Appends the candidate callees of one call site.
fn resolve(
    sym: &Symbols,
    caller_crate: &str,
    impl_type: Option<&str>,
    call: &CallSite,
    out: &mut Vec<usize>,
) {
    let by_crate = |krate: &str, name: &str, out: &mut Vec<usize>| {
        if let Some(v) = sym
            .by_crate_name
            .get(&(krate.to_string(), name.to_string()))
        {
            out.extend(v.iter().copied());
            true
        } else {
            false
        }
    };
    match call {
        CallSite::Method(name) => {
            if let Some(v) = sym.methods_by_name.get(name) {
                out.extend(v.iter().copied());
            }
        }
        CallSite::Bare(name) => {
            // Same crate wins; otherwise any crate (a `use`d import).
            if !by_crate(caller_crate, name, out) {
                if let Some(v) = sym.by_name.get(name) {
                    out.extend(v.iter().copied());
                }
            }
        }
        CallSite::Path(segs) => {
            let name = segs.last().cloned().unwrap_or_default();
            let first = segs.first().map(String::as_str).unwrap_or_default();
            // Standard-library paths never resolve into the workspace.
            if matches!(first, "std" | "core" | "alloc") {
                return;
            }
            // `Self::helper` and `<Type>::helper`: the last capitalized
            // segment before the name is the type.
            let type_seg = segs[..segs.len().saturating_sub(1)]
                .iter()
                .rev()
                .find(|s| s.chars().next().is_some_and(char::is_uppercase));
            if first == "Self" {
                if let Some(t) = impl_type {
                    if let Some(v) = sym.by_type_method.get(&(t.to_string(), name.clone())) {
                        out.extend(v.iter().copied());
                        return;
                    }
                }
                // Unknown impl type: any method of that name.
                if let Some(v) = sym.methods_by_name.get(&name) {
                    out.extend(v.iter().copied());
                }
                return;
            }
            if let Some(t) = type_seg {
                if t != "Self" {
                    if let Some(v) = sym.by_type_method.get(&(t.clone(), name.clone())) {
                        out.extend(v.iter().copied());
                    }
                    // A type path that resolves to nothing is a std or
                    // external type (Vec::new): no edge.
                    return;
                }
            }
            if let Some(dir) = crate_dir_of_segment(first) {
                if by_crate(dir, &name, out) {
                    return;
                }
            }
            if matches!(first, "self" | "crate" | "super") || crate_dir_of_segment(first).is_none()
            {
                // Module-relative path: same crate, else anywhere.
                if !by_crate(caller_crate, &name, out) {
                    if let Some(v) = sym.by_name.get(&name) {
                        out.extend(v.iter().copied());
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn call_site_kinds() {
        let lexed =
            lex("fn f() { helper(); x.poke(); st_trace::emit(1); Self::tick(); if (a) {} }");
        let open = lexed
            .tokens
            .iter()
            .position(|t| matches!(t.tok, Tok::Punct('{')))
            .unwrap();
        let sites = call_sites(&lexed.tokens, (open, lexed.tokens.len() - 1));
        assert_eq!(
            sites,
            vec![
                CallSite::Bare("helper".into()),
                CallSite::Method("poke".into()),
                CallSite::Path(vec!["st_trace".into(), "emit".into()]),
                CallSite::Path(vec!["Self".into(), "tick".into()]),
            ]
        );
    }
}
