//! The rule set: project invariants `rustc` and clippy cannot express.
//!
//! Every rule ties back to one of the repro's two load-bearing guarantees:
//!
//! * **the delay bound** — a soft-timer event fires inside
//!   `(S+T, S+T+X+1)`; arithmetic on ticks must therefore never silently
//!   truncate, go through floats, or panic mid-sweep, and
//! * **seed replay** — two runs with the same seed are byte-identical;
//!   wall-clock reads and unordered-container iteration are the two ways
//!   that property has historically been lost.
//!
//! Rules operate on the token stream from [`crate::lexer`] plus the raw
//! source lines (for the tick-arithmetic heuristic of `no-silent-cast`).

use crate::context::FileContext;
use crate::lexer::{Spanned, Tok};

/// Identifier of a lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// Wall-clock access outside the real-time runtime.
    NoWallClock,
    /// `HashMap`/`HashSet` in the deterministic simulation crates.
    NoUnorderedIteration,
    /// Narrowing `as` casts in tick/delay arithmetic.
    NoSilentCast,
    /// `.unwrap()` / `.expect()` / indexing in facility/kernel hot paths.
    NoPanickingArith,
    /// Crate roots must carry `#![forbid(unsafe_code)]`.
    ForbidUnsafeEverywhere,
    /// Trace emission only through `st-trace`; no ad-hoc prints in libs.
    SealedTraceOnly,
    /// The firing-bound math stays in integers.
    NoFloatInBounds,
    /// Arithmetic must not mix time/tick/byte units or fold raw
    /// conversion constants into unit-tainted math.
    UnitTaint,
    /// `// st-lint: hot-path` functions must not reach allocation,
    /// locking, formatting, or unsealed emit through any callee.
    HotPathCost,
    /// Every `static`/`thread_local`/interior-mutability cell in the
    /// deterministic crates needs a declared owner.
    SharedState,
    /// Suppressions must be well-formed, reasoned, and still firing.
    AllowHygiene,
}

impl RuleId {
    /// Every rule, in report order.
    pub const ALL: [RuleId; 11] = [
        RuleId::NoWallClock,
        RuleId::NoUnorderedIteration,
        RuleId::NoSilentCast,
        RuleId::NoPanickingArith,
        RuleId::ForbidUnsafeEverywhere,
        RuleId::SealedTraceOnly,
        RuleId::NoFloatInBounds,
        RuleId::UnitTaint,
        RuleId::HotPathCost,
        RuleId::SharedState,
        RuleId::AllowHygiene,
    ];

    /// The kebab-case name used in reports and suppressions.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::NoWallClock => "no-wall-clock",
            RuleId::NoUnorderedIteration => "no-unordered-iteration",
            RuleId::NoSilentCast => "no-silent-cast",
            RuleId::NoPanickingArith => "no-panicking-arith",
            RuleId::ForbidUnsafeEverywhere => "forbid-unsafe-everywhere",
            RuleId::SealedTraceOnly => "sealed-trace-only",
            RuleId::NoFloatInBounds => "no-float-in-bounds",
            RuleId::UnitTaint => "unit-taint",
            RuleId::HotPathCost => "hot-path-cost",
            RuleId::SharedState => "shared-state",
            RuleId::AllowHygiene => "allow-hygiene",
        }
    }

    /// Parses a rule name.
    pub fn from_name(name: &str) -> Option<RuleId> {
        RuleId::ALL.into_iter().find(|r| r.name() == name)
    }

    /// One-line statement of the invariant the rule protects.
    pub fn why(self) -> &'static str {
        match self {
            RuleId::NoWallClock => {
                "seed replay: simulated time comes from the engine, never the host clock \
                 (only core/src/rt.rs, the st-rt crate, tests, and examples touch real time)"
            }
            RuleId::NoUnorderedIteration => {
                "seed replay: HashMap/HashSet iteration order varies per process, so two \
                 identical seeds could diverge (sim/kernel/core/net/tcp crates)"
            }
            RuleId::NoSilentCast => {
                "delay bound: a narrowing `as` cast in tick/delay arithmetic truncates \
                 silently and can shrink a deadline instead of failing loudly"
            }
            RuleId::NoPanickingArith => {
                "delay bound: an unwrap/expect or raw index in the facility or kernel \
                 dispatch path turns a recoverable condition into a lost timer sweep"
            }
            RuleId::ForbidUnsafeEverywhere => {
                "both: every crate root carries #![forbid(unsafe_code)] so no unsafe \
                 block can undermine the facility's memory-safety story"
            }
            RuleId::SealedTraceOnly => {
                "observability stays sealed: library crates emit through st-trace / \
                 st-scope sessions only, so the zero-overhead disabled path stays \
                 the only path"
            }
            RuleId::NoFloatInBounds => {
                "delay bound: the (S+T, S+T+X+1) firing-bound math is exact integer \
                 arithmetic; floats would make the bound approximate"
            }
            RuleId::UnitTaint => {
                "delay bound: mixing ns/us/ms/tick/byte quantities or folding a raw \
                 power-of-ten constant into time math silently rescales a deadline"
            }
            RuleId::HotPathCost => {
                "cost model: the paper's argument is a ~20ns trigger check vs a 4.45us \
                 interrupt; an allocation, lock, or format anywhere a hot path can \
                 reach costs more than the operation being modeled"
            }
            RuleId::SharedState => {
                "SMP readiness: per-CPU facilities (ROADMAP item 2) need a machine- \
                 checked map of every shared mutable cell with a declared owner"
            }
            RuleId::AllowHygiene => {
                "suppressions are debts: each carries a reason, and one that no longer \
                 fires must be deleted, not inherited"
            }
        }
    }

    /// How to fix a finding of this rule.
    pub fn fix_hint(self) -> &'static str {
        match self {
            RuleId::NoWallClock => {
                "take time from Clock/SimTime, or move the code into core/src/rt.rs"
            }
            RuleId::NoUnorderedIteration => "use BTreeMap/BTreeSet or sort before iterating",
            RuleId::NoSilentCast => "use try_from with an explicit failure path",
            RuleId::NoPanickingArith => "return Option/Result or use get()/checked ops",
            RuleId::ForbidUnsafeEverywhere => "add #![forbid(unsafe_code)] to the crate root",
            RuleId::SealedTraceOnly => {
                "emit via st_trace::emit/count/observe or st_scope::gauge/observe/fire_delay"
            }
            RuleId::NoFloatInBounds => "keep tick math in u64; floats only in reporting",
            RuleId::UnitTaint => {
                "convert at the boundary and bind conversion factors to named constants"
            }
            RuleId::HotPathCost => {
                "hoist the allocation out of the path, or suppress with the enabled-path \
                 justification"
            }
            RuleId::SharedState => {
                "declare ownership: `st-lint: allow(shared-state) -- owner: <who>, <why>`"
            }
            RuleId::AllowHygiene => "fix the reason, or delete the stale suppression",
        }
    }
}

/// One rule violation at a location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawFinding {
    /// The violated rule.
    pub rule: RuleId,
    /// 1-based line.
    pub line: u32,
    /// Human message (what fired, and the fix hint).
    pub message: String,
}

pub(crate) fn finding(rule: RuleId, line: u32, what: &str) -> RawFinding {
    RawFinding {
        rule,
        line,
        message: format!("{what} [{}: {}]", rule.name(), rule.fix_hint()),
    }
}

/// Runs every location-based rule over one file. (`allow-hygiene` is
/// applied afterwards by the engine, once suppression usage is known.)
pub fn scan(ctx: &FileContext, toks: &[Spanned], lines: &[&str]) -> Vec<RawFinding> {
    let mut out = Vec::new();
    no_wall_clock(ctx, toks, &mut out);
    no_unordered_iteration(ctx, toks, &mut out);
    no_silent_cast(ctx, toks, lines, &mut out);
    no_panicking_arith(ctx, toks, &mut out);
    forbid_unsafe_everywhere(ctx, toks, &mut out);
    sealed_trace_only(ctx, toks, &mut out);
    no_float_in_bounds(ctx, toks, &mut out);
    out.sort_by_key(|f| (f.line, f.rule));
    out
}

fn ident_at(toks: &[Spanned], i: usize) -> Option<&str> {
    match toks.get(i).map(|s| &s.tok) {
        Some(Tok::Ident(id)) => Some(id.as_str()),
        _ => None,
    }
}

fn punct_at(toks: &[Spanned], i: usize) -> Option<char> {
    match toks.get(i).map(|s| &s.tok) {
        Some(Tok::Punct(c)) => Some(*c),
        _ => None,
    }
}

/// Does `toks[i..]` start with `::` followed by the identifier `id`?
fn path_seg(toks: &[Spanned], i: usize, id: &str) -> bool {
    punct_at(toks, i) == Some(':')
        && punct_at(toks, i + 1) == Some(':')
        && ident_at(toks, i + 2) == Some(id)
}

/// The paper's measurement clock is the *only* real-time source; everything
/// else must run on simulated ticks or be explicitly justified.
fn no_wall_clock(ctx: &FileContext, toks: &[Spanned], out: &mut Vec<RawFinding>) {
    if !ctx.applies_wall_clock() {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        if ctx.in_test_region(t.line) {
            continue;
        }
        let Tok::Ident(id) = &t.tok else { continue };
        let what = match id.as_str() {
            "Instant" if path_seg(toks, i + 1, "now") => "`Instant::now()`",
            "SystemTime" => "`SystemTime`",
            "thread" if path_seg(toks, i + 1, "sleep") => "`thread::sleep`",
            _ => continue,
        };
        out.push(finding(
            RuleId::NoWallClock,
            t.line,
            &format!("wall-clock access via {what}"),
        ));
    }
}

fn no_unordered_iteration(ctx: &FileContext, toks: &[Spanned], out: &mut Vec<RawFinding>) {
    if !ctx.applies_unordered_iteration() {
        return;
    }
    for t in toks {
        if ctx.in_test_region(t.line) {
            continue;
        }
        let Tok::Ident(id) = &t.tok else { continue };
        if id == "HashMap" || id == "HashSet" {
            out.push(finding(
                RuleId::NoUnorderedIteration,
                t.line,
                &format!("`{id}` in a deterministic crate (iteration order is per-process)"),
            ));
        }
    }
}

/// Words that mark a source line as tick/delay arithmetic.
const TIMING_WORDS: [&str; 9] = [
    "tick", "delay", "deadline", "due", "period", "interval", "horizon", "timeout", "expir",
];

/// Cast targets that can truncate a 64-bit tick count.
const NARROWING: [&str; 8] = ["u8", "u16", "u32", "usize", "i8", "i16", "i32", "isize"];

fn line_is_timing(lines: &[&str], line: u32) -> bool {
    let Some(text) = lines.get(line as usize - 1) else {
        return false;
    };
    // Ignore a trailing line comment so a suppression's prose (or any
    // other comment) cannot make the heuristic fire.
    let code = text.split("//").next().unwrap_or(text).to_ascii_lowercase();
    TIMING_WORDS.iter().any(|w| code.contains(w))
}

fn no_silent_cast(ctx: &FileContext, toks: &[Spanned], lines: &[&str], out: &mut Vec<RawFinding>) {
    if !ctx.applies_silent_cast() {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        if ctx.in_test_region(t.line) {
            continue;
        }
        if ident_at(toks, i) != Some("as") {
            continue;
        }
        let Some(target) = ident_at(toks, i + 1) else {
            continue;
        };
        let narrowing = NARROWING.contains(&target)
            // `as u64` is widening from every named tick type except the
            // u128 that Duration::as_micros/as_nanos return.
            || (target == "u64"
                && toks[..i]
                    .iter()
                    .rev()
                    .take(8)
                    .any(|p| matches!(&p.tok, Tok::Ident(id) if id == "as_micros" || id == "as_nanos")));
        if narrowing && line_is_timing(lines, t.line) {
            out.push(finding(
                RuleId::NoSilentCast,
                t.line,
                &format!("narrowing `as {target}` in tick/delay arithmetic"),
            ));
        }
    }
}

/// Keywords that may legitimately precede `[` (slice patterns, array
/// types); anything else followed by `[` is an index expression.
const NON_INDEX_KEYWORDS: [&str; 24] = [
    "let", "in", "if", "else", "match", "return", "mut", "ref", "move", "as", "break", "continue",
    "where", "for", "while", "loop", "impl", "fn", "pub", "use", "mod", "const", "static", "dyn",
];

fn no_panicking_arith(ctx: &FileContext, toks: &[Spanned], out: &mut Vec<RawFinding>) {
    let unwraps = ctx.applies_panicking_unwrap();
    let indexing = ctx.applies_panicking_index();
    if !unwraps && !indexing {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        if ctx.in_test_region(t.line) {
            continue;
        }
        if unwraps {
            if let Some(id @ ("unwrap" | "expect")) = ident_at(toks, i) {
                if punct_at(toks, i.wrapping_sub(1)) == Some('.')
                    && punct_at(toks, i + 1) == Some('(')
                {
                    out.push(finding(
                        RuleId::NoPanickingArith,
                        t.line,
                        &format!("`.{id}()` in a facility/kernel hot path"),
                    ));
                }
            }
        }
        if indexing && punct_at(toks, i) == Some('[') && i > 0 {
            let prev = &toks[i - 1].tok;
            let is_index = match prev {
                Tok::Ident(id) => !NON_INDEX_KEYWORDS.contains(&id.as_str()),
                Tok::Punct(')') | Tok::Punct(']') => true,
                _ => false,
            };
            if is_index {
                out.push(finding(
                    RuleId::NoPanickingArith,
                    t.line,
                    "raw index expression in a facility/kernel hot path",
                ));
            }
        }
    }
}

fn forbid_unsafe_everywhere(ctx: &FileContext, toks: &[Spanned], out: &mut Vec<RawFinding>) {
    // Any `unsafe` token anywhere (tests included) is a finding.
    for t in toks {
        if matches!(&t.tok, Tok::Ident(id) if id == "unsafe") {
            out.push(finding(
                RuleId::ForbidUnsafeEverywhere,
                t.line,
                "`unsafe` is forbidden workspace-wide",
            ));
        }
    }
    if !ctx.is_crate_root() {
        return;
    }
    // Look for #![forbid(unsafe_code)]: a `#` `!` attr containing both
    // identifiers.
    let mut i = 0;
    while i < toks.len() {
        if punct_at(toks, i) == Some('#') && punct_at(toks, i + 1) == Some('!') {
            let mut j = i + 2;
            let mut depth = 0i32;
            let mut saw_forbid = false;
            let mut saw_unsafe_code = false;
            while j < toks.len() {
                match &toks[j].tok {
                    Tok::Punct('[') => depth += 1,
                    Tok::Punct(']') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    Tok::Ident(id) if id == "forbid" => saw_forbid = true,
                    Tok::Ident(id) if id == "unsafe_code" => saw_unsafe_code = true,
                    _ => {}
                }
                j += 1;
            }
            if saw_forbid && saw_unsafe_code {
                return;
            }
            i = j;
        }
        i += 1;
    }
    out.push(finding(
        RuleId::ForbidUnsafeEverywhere,
        1,
        "crate root is missing `#![forbid(unsafe_code)]`",
    ));
}

const PRINT_MACROS: [&str; 5] = ["println", "eprintln", "print", "eprint", "dbg"];

fn sealed_trace_only(ctx: &FileContext, toks: &[Spanned], out: &mut Vec<RawFinding>) {
    if !ctx.applies_sealed_trace() {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        if ctx.in_test_region(t.line) {
            continue;
        }
        let Tok::Ident(id) = &t.tok else { continue };
        if PRINT_MACROS.contains(&id.as_str()) && punct_at(toks, i + 1) == Some('!') {
            out.push(finding(
                RuleId::SealedTraceOnly,
                t.line,
                &format!("ad-hoc `{id}!` in a library crate"),
            ));
        }
        // `io::stdout()` / `io::stderr()` handle grabs dodge the macro
        // check; `.stdout(...)` builder calls (std::process::Command)
        // are not emission and stay allowed.
        if (id == "stdout" || id == "stderr")
            && punct_at(toks, i + 1) == Some('(')
            && (i == 0 || punct_at(toks, i - 1) != Some('.'))
        {
            out.push(finding(
                RuleId::SealedTraceOnly,
                t.line,
                &format!("direct `{id}()` handle in a library crate"),
            ));
        }
    }
}

fn no_float_in_bounds(ctx: &FileContext, toks: &[Spanned], out: &mut Vec<RawFinding>) {
    if !ctx.applies_float_bounds() {
        return;
    }
    for t in toks {
        if ctx.in_test_region(t.line) {
            continue;
        }
        let what = match &t.tok {
            Tok::Float => "float literal",
            Tok::Ident(id) if id == "f32" || id == "f64" => "float type",
            _ => continue,
        };
        out.push(finding(
            RuleId::NoFloatInBounds,
            t.line,
            &format!("{what} in firing-bound code"),
        ));
    }
}
