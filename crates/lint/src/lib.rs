#![forbid(unsafe_code)]
//! `st-lint` — a hermetic workspace linter for determinism and
//! timing-safety invariants.
//!
//! The paper's claims rest on a delay *bound* (a soft-timer event fires
//! within the interrupt-clock period) and this reproduction's claims rest
//! on seed-replayable simulation. Neither property is checkable by
//! `rustc` or clippy — both were, until this crate, enforced only by
//! convention. `st-lint` walks every `.rs` file in the workspace with a
//! hand-rolled token scanner ([`lexer`]), an item-level parser
//! ([`parse`]), and a rule engine ([`rules`]), in the same hermetic
//! spirit as the repo's in-tree SimRng, criterion shim, and JSON writer:
//! no `syn`, no registry dependencies.
//!
//! On top of the per-file rules, three whole-workspace analyses run over
//! a symbol-resolved [`model::Model`] ([`analyses`]): **unit-taint**
//! (arithmetic must not mix ns/us/ms/tick/byte quantities or fold raw
//! conversion constants into time math), **hot-path-cost** (a function
//! annotated `// st-lint: hot-path` must not reach allocation, locking,
//! formatting, or unsealed emit through any callee in the [`callgraph`]),
//! and **shared-state** (every static/thread-local/interior-mutability
//! cell in the deterministic crates carries a declared owner).
//!
//! Findings are suppressible only with a reasoned annotation:
//!
//! ```text
//! // st-lint: allow(no-wall-clock) -- measures real tracer cost on purpose
//! ```
//!
//! and a suppression that stops matching anything becomes a finding
//! itself (`allow-hygiene`), so the allow-list can never rot.
//!
//! The JSON report is emitted through `st-trace`'s hand-rolled writer and
//! checked by its validator before it is ever written.

pub mod analyses;
pub mod callgraph;
pub mod context;
pub mod lexer;
pub mod model;
pub mod parse;
pub mod rules;
pub mod suppress;

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use model::Model;
use rules::{RawFinding, RuleId};

/// One finding, after suppression processing.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The violated rule.
    pub rule: RuleId,
    /// Human-readable message including the fix hint.
    pub message: String,
    /// The justification, when an allow annotation covers this finding.
    pub suppressed: Option<String>,
}

/// Lint results for a set of files.
#[derive(Debug, Default)]
pub struct Report {
    /// Files scanned (including clean ones).
    pub files_scanned: usize,
    /// All findings, suppressed and not, in path/line order.
    pub findings: Vec<Finding>,
}

impl Report {
    /// Findings not covered by an allow annotation.
    pub fn unsuppressed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.suppressed.is_none())
    }

    /// Count of unsuppressed findings (the CI gate: must be zero).
    pub fn unsuppressed_count(&self) -> usize {
        self.unsuppressed().count()
    }

    /// The human report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            match &f.suppressed {
                None => {
                    let _ = writeln!(out, "{}:{}: {}", f.file, f.line, f.message);
                }
                Some(reason) => {
                    let _ = writeln!(
                        out,
                        "{}:{}: allowed({}) -- {}",
                        f.file,
                        f.line,
                        f.rule.name(),
                        reason
                    );
                }
            }
        }
        let suppressed = self.findings.len() - self.unsuppressed_count();
        let _ = writeln!(
            out,
            "st-lint: {} files, {} finding(s), {} suppressed, {} unsuppressed",
            self.files_scanned,
            self.findings.len(),
            suppressed,
            self.unsuppressed_count()
        );
        out
    }

    /// The machine report: one JSON object, already passed through the
    /// st-trace validator.
    ///
    /// # Panics
    ///
    /// Panics if the writer ever emits JSON its own validator rejects —
    /// that is a bug in this crate, not a runtime condition.
    pub fn to_json(&self) -> String {
        let mut items = String::from("[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                items.push(',');
            }
            let mut obj = st_trace::json::ObjectBuilder::new()
                .str("file", &f.file)
                .u64("line", u64::from(f.line))
                .str("rule", f.rule.name())
                .str("message", &f.message)
                .raw(
                    "suppressed",
                    if f.suppressed.is_some() {
                        "true"
                    } else {
                        "false"
                    },
                );
            if let Some(reason) = &f.suppressed {
                obj = obj.str("reason", reason);
            }
            items.push_str(&obj.build());
        }
        items.push(']');
        let mut rule_counts = String::from("{");
        for (i, r) in RuleId::ALL.iter().enumerate() {
            if i > 0 {
                rule_counts.push(',');
            }
            let n = self.findings.iter().filter(|f| f.rule == *r).count();
            let _ = write!(rule_counts, "\"{}\":{n}", st_trace::json::escape(r.name()));
        }
        rule_counts.push('}');
        let json = st_trace::json::ObjectBuilder::new()
            .str("tool", "st-lint")
            .u64("files_scanned", self.files_scanned as u64)
            .u64("findings", self.findings.len() as u64)
            .u64("unsuppressed", self.unsuppressed_count() as u64)
            .raw("by_rule", &rule_counts)
            .raw("items", &items)
            .build();
        st_trace::json::validate(&json).expect("st-lint emitted invalid JSON");
        json
    }
}

/// Lints a set of `(workspace-relative path, source)` pairs as one
/// workspace: the per-file rules run over each file, then the
/// model-wide analyses (unit-taint, hot-path reachability, shared-state)
/// run over the whole set, and suppressions are applied uniformly.
pub fn lint_sources<S: AsRef<str>, T: AsRef<str>>(sources: &[(S, T)]) -> Report {
    let model = Model::from_sources(sources);
    let mut raw: Vec<Vec<RawFinding>> = model
        .files
        .iter()
        .map(|unit| {
            // Rules consume *masked* lines: string/comment content is
            // blanked, so prose can never trip a code heuristic.
            let lines: Vec<&str> = unit.lexed.masked.lines().collect();
            rules::scan(&unit.ctx, &unit.lexed.tokens, &lines)
        })
        .collect();
    analyses::unit_taint(&model, &mut raw);
    analyses::hot_path(&model, &mut raw);
    analyses::shared_state(&model, &mut raw);

    let mut report = Report {
        files_scanned: model.files.len(),
        findings: Vec::new(),
    };
    for (unit, file_raw) in model.files.iter().zip(raw) {
        let mut findings = apply_suppressions(unit, file_raw);
        findings.sort_by_key(|f| (f.line, f.rule));
        report.findings.extend(findings);
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    report
}

/// Lints one file's source under a workspace-relative path (a
/// single-file workspace).
///
/// The path decides which rules apply (see [`context::FileContext`]), so
/// fixtures can impersonate any location.
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Finding> {
    lint_sources(&[(rel_path, src)]).findings
}

/// Matches raw findings against a file's suppressions and appends the
/// allow-hygiene findings (malformed, stale, dangling hot-path).
fn apply_suppressions(unit: &model::FileUnit, raw: Vec<RawFinding>) -> Vec<Finding> {
    let rel_path = unit.rel.as_str();
    let sup = suppress::parse(&unit.lexed.comments, unit.line_count);

    let mut used = vec![false; sup.ok.len()];
    let mut findings: Vec<Finding> = raw
        .into_iter()
        .map(|f| {
            let hit = sup
                .ok
                .iter()
                .enumerate()
                .find(|(_, s)| s.rule == f.rule && s.target_line == f.line);
            let suppressed = hit.map(|(i, s)| {
                used[i] = true;
                s.reason.clone()
            });
            Finding {
                file: rel_path.to_string(),
                line: f.line,
                rule: f.rule,
                message: f.message,
                suppressed,
            }
        })
        .collect();

    // allow-hygiene: malformed annotations and stale suppressions are
    // findings in their own right — and are themselves unsuppressible.
    for bad in &sup.bad {
        findings.push(Finding {
            file: rel_path.to_string(),
            line: bad.line,
            rule: RuleId::AllowHygiene,
            message: format!(
                "malformed suppression: {} [{}: {}]",
                bad.why,
                RuleId::AllowHygiene.name(),
                RuleId::AllowHygiene.fix_hint()
            ),
            suppressed: None,
        });
    }
    for (i, s) in sup.ok.iter().enumerate() {
        if !used[i] {
            findings.push(Finding {
                file: rel_path.to_string(),
                line: s.comment_line,
                rule: RuleId::AllowHygiene,
                message: format!(
                    "stale suppression: allow({}) matches no finding on line {} [{}: {}]",
                    s.rule.name(),
                    s.target_line,
                    RuleId::AllowHygiene.name(),
                    RuleId::AllowHygiene.fix_hint()
                ),
                suppressed: None,
            });
        }
    }
    // A hot-path annotation that attached to no function is as stale as a
    // suppression that covers nothing.
    for h in &unit.items.hot_annotations {
        if !h.attached {
            findings.push(Finding {
                file: rel_path.to_string(),
                line: h.line,
                rule: RuleId::AllowHygiene,
                message: format!(
                    "dangling `st-lint: hot-path` annotation: no fn starts within {} line(s) \
                     [{}: {}]",
                    parse::HOT_ATTACH_WINDOW,
                    RuleId::AllowHygiene.name(),
                    RuleId::AllowHygiene.fix_hint()
                ),
                suppressed: None,
            });
        }
    }
    findings
}

/// Paths never linted: build output, VCS, and the linter's own corpus of
/// deliberately bad fixtures.
fn skip_dir(name: &str) -> bool {
    name == "target" || name.starts_with('.')
}

const FIXTURE_DIR: &str = "crates/lint/tests/fixtures";

/// Collects every workspace `.rs` file, sorted for deterministic reports.
fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        if path.is_dir() {
            if skip_dir(name) {
                continue;
            }
            let rel = path.strip_prefix(root).unwrap_or(&path);
            if rel.to_string_lossy().replace('\\', "/") == FIXTURE_DIR {
                continue;
            }
            collect_rs(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Reads every workspace `.rs` file under `root` as `(relative path,
/// source)` pairs, in deterministic path order. Separated from
/// [`lint_workspace`] so the bench suite can time the analysis alone,
/// free of disk I/O.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    collect_rs(root, root, &mut files)?;
    let mut sources: Vec<(String, String)> = Vec::with_capacity(files.len());
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push((rel, std::fs::read_to_string(&path)?));
    }
    Ok(sources)
}

/// Lints every `.rs` file under `root` (the workspace).
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    Ok(lint_sources(&workspace_sources(root)?))
}

/// Walks upward from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppressed_finding_carries_reason() {
        let src = "use std::time::Instant;\n\
                   fn f() -> u64 {\n\
                       let t = Instant::now(); // st-lint: allow(no-wall-clock) -- measuring real cost\n\
                       t.elapsed().as_micros() as u64\n\
                   }\n";
        let fs = lint_source("crates/stats/src/x.rs", src);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].rule, RuleId::NoWallClock);
        assert_eq!(fs[0].suppressed.as_deref(), Some("measuring real cost"));
    }

    #[test]
    fn stale_suppression_is_a_finding() {
        let src = "// st-lint: allow(no-wall-clock) -- nothing here anymore\nfn f() {}\n";
        let fs = lint_source("crates/stats/src/x.rs", src);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].rule, RuleId::AllowHygiene);
        assert!(fs[0].message.contains("stale"));
        assert!(fs[0].suppressed.is_none());
    }

    #[test]
    fn json_report_validates_and_counts() {
        let report = Report {
            files_scanned: 2,
            findings: lint_source(
                "crates/core/src/x.rs",
                "use std::collections::HashMap;\nfn f(m: HashMap<u32, u32>) {}\n",
            ),
        };
        assert_eq!(report.unsuppressed_count(), 2);
        let json = report.to_json();
        st_trace::json::validate(&json).unwrap();
        assert!(json.contains("\"no-unordered-iteration\":2"));
    }

    #[test]
    fn wrong_rule_suppression_does_not_cover_and_goes_stale() {
        let src = "use std::collections::HashMap; // st-lint: allow(no-wall-clock) -- wrong rule\n";
        let fs = lint_source("crates/sim/src/x.rs", src);
        // The HashMap finding survives, and the mismatched allow is stale.
        assert_eq!(fs.len(), 2);
        assert!(fs
            .iter()
            .any(|f| f.rule == RuleId::NoUnorderedIteration && f.suppressed.is_none()));
        assert!(fs.iter().any(|f| f.rule == RuleId::AllowHygiene));
    }
}
