//! Property tests: every wheel must agree with the binary-heap oracle on
//! arbitrary schedule / cancel / advance sequences.

use proptest::prelude::*;
use st_wheel::{CalendarQueue, HashedWheel, HeapQueue, HierarchicalWheel, SimpleWheel, TimerQueue};

/// An operation in a random timer workload.
#[derive(Debug, Clone)]
enum Op {
    /// Schedule a timer `delta` ticks past the current advance point.
    Schedule { delta: u64 },
    /// Cancel the `nth` still-live handle (modulo live count).
    Cancel { nth: usize },
    /// Advance time forward by `delta` ticks.
    Advance { delta: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u64..5000).prop_map(|delta| Op::Schedule { delta }),
        1 => any::<usize>().prop_map(|nth| Op::Cancel { nth }),
        2 => (0u64..2000).prop_map(|delta| Op::Advance { delta }),
    ]
}

/// Runs the op sequence against `queue` and the oracle simultaneously,
/// asserting identical observable behaviour after every step.
fn check_against_oracle<Q: TimerQueue<u64>>(mut queue: Q, ops: &[Op]) {
    let mut oracle: HeapQueue<u64> = HeapQueue::new();
    let mut now = 0u64;
    let mut live: Vec<(st_wheel::TimerHandle, st_wheel::TimerHandle)> = Vec::new();
    let mut payload = 0u64;

    for op in ops {
        match *op {
            Op::Schedule { delta } => {
                let deadline = now + delta;
                let h1 = queue.schedule(deadline, payload);
                let h2 = oracle.schedule(deadline, payload);
                live.push((h1, h2));
                payload += 1;
            }
            Op::Cancel { nth } => {
                if live.is_empty() {
                    continue;
                }
                let idx = nth % live.len();
                let (h1, h2) = live.swap_remove(idx);
                let c1 = queue.cancel(h1);
                let c2 = oracle.cancel(h2);
                assert_eq!(c1, c2, "cancel result diverged");
            }
            Op::Advance { delta } => {
                now += delta;
                let mut out1 = Vec::new();
                let mut out2 = Vec::new();
                queue.advance(now, &mut out1);
                oracle.advance(now, &mut out2);
                assert_eq!(out1, out2, "expiry diverged at t={now}");
                // Handles of fired timers stay in `live`; canceling them
                // later must return `None` identically in both structures,
                // which the Cancel arm asserts.
            }
        }
        assert_eq!(queue.len(), oracle.len(), "len diverged");
        assert_eq!(
            queue.next_deadline(),
            oracle.next_deadline(),
            "next_deadline diverged"
        );
    }

    // Drain everything left and compare.
    let mut out1 = Vec::new();
    let mut out2 = Vec::new();
    queue.advance(now + (1u64 << 34), &mut out1);
    oracle.advance(now + (1u64 << 34), &mut out2);
    assert_eq!(out1, out2, "final drain diverged");
    assert!(queue.is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn simple_wheel_matches_heap(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        check_against_oracle(SimpleWheel::new(512), &ops);
    }

    #[test]
    fn small_simple_wheel_matches_heap(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        // A tiny horizon exercises the overflow path constantly.
        check_against_oracle(SimpleWheel::new(7), &ops);
    }

    #[test]
    fn hashed_wheel_matches_heap(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        check_against_oracle(HashedWheel::with_slots(64), &ops);
    }

    #[test]
    fn tiny_hashed_wheel_matches_heap(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        // One-slot wheel degenerates to a single unsorted list; still must
        // behave identically.
        check_against_oracle(HashedWheel::with_slots(1), &ops);
    }

    #[test]
    fn hierarchical_wheel_matches_heap(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        check_against_oracle(HierarchicalWheel::new(), &ops);
    }

    #[test]
    fn calendar_queue_matches_heap(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        check_against_oracle(CalendarQueue::new(), &ops);
    }

    #[test]
    fn hierarchical_wheel_long_jumps(
        deltas in proptest::collection::vec(0u64..100_000_000, 1..40),
        deadlines in proptest::collection::vec(0u64..200_000_000, 1..40),
    ) {
        // Long jumps stress cascading and the overflow list.
        let mut w = HierarchicalWheel::new();
        let mut oracle = HeapQueue::new();
        for (i, &d) in deadlines.iter().enumerate() {
            w.schedule(d, i as u64);
            oracle.schedule(d, i as u64);
        }
        let mut now = 0;
        for &d in &deltas {
            now += d;
            let mut o1 = Vec::new();
            let mut o2 = Vec::new();
            w.advance(now, &mut o1);
            oracle.advance(now, &mut o2);
            prop_assert_eq!(o1, o2, "diverged at t={}", now);
        }
    }
}
