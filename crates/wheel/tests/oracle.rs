//! Randomized oracle tests: every wheel must agree with the binary-heap
//! oracle on arbitrary schedule / cancel / advance sequences.
//!
//! Op sequences are drawn from the in-repo deterministic [`SimRng`]
//! (fixed seed per test, so failures replay exactly) instead of an
//! external property-testing framework — the workspace builds with no
//! network access.

use st_sim::SimRng;
use st_wheel::{CalendarQueue, HashedWheel, HeapQueue, HierarchicalWheel, SimpleWheel, TimerQueue};

/// An operation in a random timer workload.
#[derive(Debug, Clone)]
enum Op {
    /// Schedule a timer `delta` ticks past the current advance point.
    Schedule { delta: u64 },
    /// Cancel the `nth` still-live handle (modulo live count).
    Cancel { nth: usize },
    /// Advance time forward by `delta` ticks.
    Advance { delta: u64 },
}

/// Weighted draw matching the old strategy: schedule 4, cancel 1,
/// advance 2.
fn random_op(rng: &mut SimRng) -> Op {
    match rng.range_u64(0, 7) {
        0..=3 => Op::Schedule {
            delta: rng.range_u64(0, 5000),
        },
        4 => Op::Cancel {
            nth: rng.next_u64() as usize,
        },
        _ => Op::Advance {
            delta: rng.range_u64(0, 2000),
        },
    }
}

fn random_ops(rng: &mut SimRng) -> Vec<Op> {
    (0..rng.range_u64(1, 120)).map(|_| random_op(rng)).collect()
}

/// Runs the op sequence against `queue` and the oracle simultaneously,
/// asserting identical observable behaviour after every step.
fn check_against_oracle<Q: TimerQueue<u64>>(mut queue: Q, ops: &[Op]) {
    let mut oracle: HeapQueue<u64> = HeapQueue::new();
    let mut now = 0u64;
    let mut live: Vec<(st_wheel::TimerHandle, st_wheel::TimerHandle)> = Vec::new();
    let mut payload = 0u64;

    for op in ops {
        match *op {
            Op::Schedule { delta } => {
                let deadline = now + delta;
                let h1 = queue.schedule(deadline, payload);
                let h2 = oracle.schedule(deadline, payload);
                live.push((h1, h2));
                payload += 1;
            }
            Op::Cancel { nth } => {
                if live.is_empty() {
                    continue;
                }
                let idx = nth % live.len();
                let (h1, h2) = live.swap_remove(idx);
                let c1 = queue.cancel(h1);
                let c2 = oracle.cancel(h2);
                assert_eq!(c1, c2, "cancel result diverged");
            }
            Op::Advance { delta } => {
                now += delta;
                let mut out1 = Vec::new();
                let mut out2 = Vec::new();
                queue.advance(now, &mut out1);
                oracle.advance(now, &mut out2);
                assert_eq!(out1, out2, "expiry diverged at t={now}");
                // Handles of fired timers stay in `live`; canceling them
                // later must return `None` identically in both structures,
                // which the Cancel arm asserts.
            }
        }
        assert_eq!(queue.len(), oracle.len(), "len diverged");
        assert_eq!(
            queue.next_deadline(),
            oracle.next_deadline(),
            "next_deadline diverged"
        );
    }

    // Drain everything left and compare.
    let mut out1 = Vec::new();
    let mut out2 = Vec::new();
    queue.advance(now + (1u64 << 34), &mut out1);
    oracle.advance(now + (1u64 << 34), &mut out2);
    assert_eq!(out1, out2, "final drain diverged");
    assert!(queue.is_empty());
}

const CASES: u64 = 64;

fn run_cases<Q: TimerQueue<u64>>(seed: u64, make: impl Fn() -> Q) {
    let mut rng = SimRng::seed(seed);
    for _ in 0..CASES {
        let ops = random_ops(&mut rng);
        check_against_oracle(make(), &ops);
    }
}

#[test]
fn simple_wheel_matches_heap() {
    run_cases(0x51, || SimpleWheel::new(512));
}

#[test]
fn small_simple_wheel_matches_heap() {
    // A tiny horizon exercises the overflow path constantly.
    run_cases(0x52, || SimpleWheel::new(7));
}

#[test]
fn hashed_wheel_matches_heap() {
    run_cases(0x53, || HashedWheel::with_slots(64));
}

#[test]
fn tiny_hashed_wheel_matches_heap() {
    // One-slot wheel degenerates to a single unsorted list; still must
    // behave identically.
    run_cases(0x54, || HashedWheel::with_slots(1));
}

#[test]
fn hierarchical_wheel_matches_heap() {
    run_cases(0x55, HierarchicalWheel::new);
}

#[test]
fn calendar_queue_matches_heap() {
    run_cases(0x56, CalendarQueue::new);
}

#[test]
fn hierarchical_wheel_long_jumps() {
    // Long jumps stress cascading and the overflow list.
    let mut rng = SimRng::seed(0x57);
    for _ in 0..CASES {
        let deadlines: Vec<u64> = (0..rng.range_u64(1, 40))
            .map(|_| rng.range_u64(0, 200_000_000))
            .collect();
        let deltas: Vec<u64> = (0..rng.range_u64(1, 40))
            .map(|_| rng.range_u64(0, 100_000_000))
            .collect();
        let mut w = HierarchicalWheel::new();
        let mut oracle = HeapQueue::new();
        for (i, &d) in deadlines.iter().enumerate() {
            w.schedule(d, i as u64);
            oracle.schedule(d, i as u64);
        }
        let mut now = 0;
        for &d in &deltas {
            now += d;
            let mut o1 = Vec::new();
            let mut o2 = Vec::new();
            w.advance(now, &mut o1);
            oracle.advance(now, &mut o2);
            assert_eq!(o1, o2, "diverged at t={now}");
        }
    }
}
