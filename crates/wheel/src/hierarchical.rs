//! Hierarchical timing wheel (Varghese & Lauck scheme 7).

use crate::slab::{Entry, TimerSlab};
use crate::{TimerHandle, TimerQueue};

/// Bits per level; each level has `2^LEVEL_BITS` slots.
const LEVEL_BITS: u32 = 8;
/// Number of levels; together they span `2^(LEVEL_BITS * LEVELS)` ticks.
const LEVELS: usize = 4;
const SLOTS_PER_LEVEL: usize = 1 << LEVEL_BITS;
const LEVEL_MASK: u64 = (SLOTS_PER_LEVEL as u64) - 1;
/// Deadlines further than this from `now` park in the overflow list.
const HORIZON: u64 = 1 << (LEVEL_BITS as u64 * LEVELS as u64);

/// Hierarchical timing wheel: four levels of 256 slots spanning 2^32 ticks
/// (over an hour at 1 µs ticks), with an overflow list beyond that.
///
/// Entries at level `k` cover deadlines `2^(8k) <= delta < 2^(8(k+1))` and
/// cascade down a level as the cursor reaches their epoch — the structure
/// used by classic kernel timer implementations.
///
/// # Examples
///
/// ```
/// use st_wheel::{HierarchicalWheel, TimerQueue};
///
/// let mut w = HierarchicalWheel::new();
/// w.schedule(70_000, "far");  // level 2 at first
/// w.schedule(3, "near");
/// let mut out = Vec::new();
/// w.advance(100, &mut out);
/// assert_eq!(out, vec![(3, "near")]);
/// out.clear();
/// w.advance(70_000, &mut out);
/// assert_eq!(out, vec![(70_000, "far")]);
/// ```
#[derive(Debug)]
pub struct HierarchicalWheel<P> {
    levels: Vec<Vec<Vec<Entry>>>,
    overflow: Vec<Entry>,
    past_due: Vec<Entry>,
    /// Reusable sweep buffer; keeps `advance` allocation-free once warm.
    sweep: Vec<(u64, u64, P)>,
    slab: TimerSlab<P>,
    now: u64,
}

impl<P> HierarchicalWheel<P> {
    /// Creates an empty wheel at tick 0.
    pub fn new() -> Self {
        HierarchicalWheel {
            levels: (0..LEVELS)
                .map(|_| (0..SLOTS_PER_LEVEL).map(|_| Vec::new()).collect())
                .collect(),
            overflow: Vec::new(),
            past_due: Vec::new(),
            sweep: Vec::new(),
            slab: TimerSlab::new(),
            now: 0,
        }
    }

    /// The tick span covered by the wheel levels (beyond it: overflow list).
    pub fn horizon() -> u64 {
        HORIZON
    }

    fn place(&mut self, deadline: u64, entry: Entry) {
        if deadline <= self.now {
            self.past_due.push(entry);
            return;
        }
        let delta = deadline - self.now;
        if delta >= HORIZON {
            self.overflow.push(entry);
            return;
        }
        // Smallest level whose span contains delta.
        let level = ((64 - delta.leading_zeros() - 1) / LEVEL_BITS) as usize;
        let level = level.min(LEVELS - 1);
        // st-lint: allow(no-silent-cast) -- level is clamped below LEVELS
        // and the slot is masked to the per-level slot count
        let slot = ((deadline >> (LEVEL_BITS * level as u32)) & LEVEL_MASK) as usize;
        self.levels[level][slot].push(entry);
    }

    /// Re-places every entry of `list`, emitting due ones into `due`.
    fn replace_or_expire(&mut self, list: Vec<Entry>, due: &mut Vec<(u64, u64, P)>) {
        for entry in list {
            match self.slab.deadline_of(entry.index, entry.generation) {
                None => {} // Canceled; drop.
                Some(d) if d <= self.now => {
                    if let Some((dd, s, p)) = self.slab.remove_index(entry.index, entry.generation)
                    {
                        due.push((dd, s, p));
                    }
                }
                Some(d) => self.place(d, entry),
            }
        }
    }
}

impl<P> Default for HierarchicalWheel<P> {
    fn default() -> Self {
        HierarchicalWheel::new()
    }
}

impl<P> TimerQueue<P> for HierarchicalWheel<P> {
    fn schedule(&mut self, deadline: u64, payload: P) -> TimerHandle {
        let handle = self.slab.insert(deadline, payload);
        self.place(
            deadline,
            Entry {
                index: handle.index,
                generation: handle.generation,
            },
        );
        handle
    }

    fn cancel(&mut self, handle: TimerHandle) -> Option<P> {
        self.slab.remove(handle).map(|(_, _, p)| p)
    }

    fn advance(&mut self, now: u64, out: &mut Vec<(u64, P)>) {
        assert!(
            now >= self.now,
            "time went backwards: {} -> {now}",
            self.now
        );
        let old = self.now;
        self.now = now;

        let mut due = std::mem::take(&mut self.sweep);

        let past = std::mem::take(&mut self.past_due);
        for entry in past {
            if let Some((d, s, p)) = self.slab.remove_index(entry.index, entry.generation) {
                due.push((d, s, p));
            }
        }

        // Process levels from coarsest to finest so that cascaded entries
        // land in already-final lower-level slots before those are visited.
        for level in (0..LEVELS).rev() {
            let shift = LEVEL_BITS * level as u32;
            let from_epoch = old >> shift;
            let to_epoch = now >> shift;
            if to_epoch == from_epoch && level > 0 {
                continue;
            }
            let crossed = to_epoch - from_epoch;
            if crossed >= SLOTS_PER_LEVEL as u64 {
                // Full rotation (or more): every slot needs a pass.
                for slot in 0..SLOTS_PER_LEVEL {
                    let list = std::mem::take(&mut self.levels[level][slot]);
                    self.replace_or_expire(list, &mut due);
                }
            } else {
                // Visit epochs from_epoch+1..=to_epoch, plus the target
                // epoch's slot at level 0 equals `now & mask` which is
                // covered by the same range when level == 0.
                let mut epoch = from_epoch + 1;
                while epoch <= to_epoch {
                    let slot = (epoch & LEVEL_MASK) as usize;
                    let list = std::mem::take(&mut self.levels[level][slot]);
                    self.replace_or_expire(list, &mut due);
                    epoch += 1;
                }
            }
        }

        // Overflow entries may have come into range (or become due).
        if now - old > 0 {
            let overflow = std::mem::take(&mut self.overflow);
            for entry in overflow {
                match self.slab.deadline_of(entry.index, entry.generation) {
                    None => {}
                    Some(d) => {
                        let e = entry;
                        if d <= now {
                            if let Some((dd, s, p)) = self.slab.remove_index(e.index, e.generation)
                            {
                                due.push((dd, s, p));
                            }
                        } else if d - now < HORIZON {
                            self.place(d, e);
                        } else {
                            self.overflow.push(e);
                        }
                    }
                }
            }
        }

        due.sort_by_key(|&(d, s, _)| (d, s));
        out.extend(due.drain(..).map(|(d, _, p)| (d, p)));
        self.sweep = due;
    }

    fn next_deadline(&self) -> Option<u64> {
        let mut min: Option<u64> = None;
        let mut consider = |d: u64| {
            min = Some(match min {
                Some(m) => m.min(d),
                None => d,
            });
        };
        for entry in &self.past_due {
            if let Some(d) = self.slab.deadline_of(entry.index, entry.generation) {
                consider(d);
            }
        }
        for level in &self.levels {
            for slot in level {
                for entry in slot {
                    if let Some(d) = self.slab.deadline_of(entry.index, entry.generation) {
                        consider(d);
                    }
                }
            }
        }
        for entry in &self.overflow {
            if let Some(d) = self.slab.deadline_of(entry.index, entry.generation) {
                consider(d);
            }
        }
        min
    }

    fn len(&self) -> usize {
        self.slab.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn near_and_far_deadlines() {
        let mut w = HierarchicalWheel::new();
        w.schedule(1, "t1");
        w.schedule(300, "t300");
        w.schedule(70_000, "t70k");
        w.schedule(20_000_000, "t20M");
        let mut out = Vec::new();
        w.advance(25_000_000, &mut out);
        let names: Vec<&str> = out.iter().map(|&(_, n)| n).collect();
        assert_eq!(names, vec!["t1", "t300", "t70k", "t20M"]);
        assert!(w.is_empty());
    }

    #[test]
    fn cascading_preserves_deadline() {
        let mut w = HierarchicalWheel::new();
        // Lands at level 1 initially; cascades to level 0 when the cursor
        // enters its epoch; must fire exactly at 300, not early.
        w.schedule(300, ());
        let mut out = Vec::new();
        w.advance(299, &mut out);
        assert!(out.is_empty(), "fired early: {out:?}");
        w.advance(300, &mut out);
        assert_eq!(out, vec![(300, ())]);
    }

    #[test]
    fn step_by_step_advance_equals_jump() {
        let deadlines = [3u64, 255, 256, 257, 65_535, 65_536, 70_001];
        let mut w1 = HierarchicalWheel::new();
        let mut w2 = HierarchicalWheel::new();
        for &d in &deadlines {
            w1.schedule(d, d);
            w2.schedule(d, d);
        }
        let mut out1 = Vec::new();
        w1.advance(100_000, &mut out1);
        let mut out2 = Vec::new();
        let mut t = 0;
        while t < 100_000 {
            t += 997; // Prime step to hit odd boundaries.
            w2.advance(t.min(100_000), &mut out2);
        }
        assert_eq!(out1, out2);
    }

    #[test]
    fn overflow_beyond_horizon() {
        let mut w = HierarchicalWheel::new();
        let far = HierarchicalWheel::<u32>::horizon() + 500;
        w.schedule(far, 1);
        assert_eq!(w.next_deadline(), Some(far));
        let mut out = Vec::new();
        w.advance(far - 1, &mut out);
        assert!(out.is_empty());
        w.advance(far, &mut out);
        assert_eq!(out, vec![(far, 1)]);
    }

    #[test]
    fn cancel_at_every_level() {
        let mut w = HierarchicalWheel::new();
        let h1 = w.schedule(10, ());
        let h2 = w.schedule(1000, ());
        let h3 = w.schedule(100_000, ());
        let far = HierarchicalWheel::<()>::horizon() + 10;
        let h4 = w.schedule(far, ());
        for h in [h1, h2, h3, h4] {
            assert!(w.cancel(h).is_some());
        }
        assert!(w.is_empty());
        let mut out = Vec::new();
        w.advance(far + 10, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn equal_deadlines_fifo() {
        let mut w = HierarchicalWheel::new();
        for i in 0..5 {
            w.schedule(1000, i);
        }
        let mut out = Vec::new();
        w.advance(1000, &mut out);
        assert_eq!(out, (0..5).map(|i| (1000, i)).collect::<Vec<_>>());
    }

    #[test]
    fn past_deadline_fires_on_next_advance() {
        let mut w = HierarchicalWheel::new();
        let mut out = Vec::new();
        w.advance(500, &mut out);
        w.schedule(100, "late-scheduled");
        w.advance(500, &mut out);
        assert_eq!(out, vec![(100, "late-scheduled")]);
    }
}
