//! Generation-checked payload storage shared by all timer structures.
//!
//! Wheels keep lists of small indices rather than payloads; the payload
//! and its full deadline live in a slab slot. Cancelation empties the slot
//! (`O(1)`) and stale list entries are skipped when their slot generation
//! no longer matches — the classic lazy-deletion scheme, which keeps wheel
//! slots as plain `Vec<u32>`s.

/// Opaque handle to a scheduled timer, valid across any [`crate::TimerQueue`]
/// implementation that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerHandle {
    pub(crate) index: u32,
    pub(crate) generation: u32,
}

#[derive(Debug)]
pub(crate) struct Slot<P> {
    pub(crate) generation: u32,
    pub(crate) state: SlotState<P>,
}

#[derive(Debug)]
pub(crate) enum SlotState<P> {
    Free { next_free: Option<u32> },
    Occupied { deadline: u64, seq: u64, payload: P },
}

/// Slab of timer slots with an intrusive free list.
#[derive(Debug)]
pub(crate) struct TimerSlab<P> {
    slots: Vec<Slot<P>>,
    free_head: Option<u32>,
    live: usize,
    next_seq: u64,
}

impl<P> TimerSlab<P> {
    pub(crate) fn new() -> Self {
        TimerSlab {
            slots: Vec::new(),
            free_head: None,
            live: 0,
            next_seq: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.live
    }

    /// Stores a payload, returning its handle and insertion sequence.
    pub(crate) fn insert(&mut self, deadline: u64, payload: P) -> TimerHandle {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live += 1;
        match self.free_head {
            Some(idx) => {
                let slot = &mut self.slots[idx as usize];
                let next_free = match slot.state {
                    SlotState::Free { next_free } => next_free,
                    SlotState::Occupied { .. } => unreachable!("free list points at occupied slot"),
                };
                self.free_head = next_free;
                slot.state = SlotState::Occupied {
                    deadline,
                    seq,
                    payload,
                };
                TimerHandle {
                    index: idx,
                    generation: slot.generation,
                }
            }
            None => {
                // st-lint: allow(no-panicking-arith) -- handles carry u32
                // indices by design; 2^32 live timers is a program bug, not
                // a runtime condition to recover from
                let idx = u32::try_from(self.slots.len()).expect("timer slab exceeds u32 slots");
                self.slots.push(Slot {
                    generation: 0,
                    state: SlotState::Occupied {
                        deadline,
                        seq,
                        payload,
                    },
                });
                TimerHandle {
                    index: idx,
                    generation: 0,
                }
            }
        }
    }

    /// Removes the payload behind `handle` if it is still current.
    pub(crate) fn remove(&mut self, handle: TimerHandle) -> Option<(u64, u64, P)> {
        let slot = self.slots.get_mut(handle.index as usize)?;
        if slot.generation != handle.generation {
            return None;
        }
        if matches!(slot.state, SlotState::Free { .. }) {
            return None;
        }
        let state = std::mem::replace(
            &mut slot.state,
            SlotState::Free {
                next_free: self.free_head,
            },
        );
        slot.generation = slot.generation.wrapping_add(1);
        self.free_head = Some(handle.index);
        self.live -= 1;
        match state {
            SlotState::Occupied {
                deadline,
                seq,
                payload,
            } => Some((deadline, seq, payload)),
            SlotState::Free { .. } => unreachable!("checked occupied above"),
        }
    }

    /// Removes by raw index when the stored generation matches `generation`.
    pub(crate) fn remove_index(&mut self, index: u32, generation: u32) -> Option<(u64, u64, P)> {
        self.remove(TimerHandle { index, generation })
    }

    /// The deadline stored at `index` when live under `generation`.
    pub(crate) fn deadline_of(&self, index: u32, generation: u32) -> Option<u64> {
        let slot = self.slots.get(index as usize)?;
        if slot.generation != generation {
            return None;
        }
        match slot.state {
            SlotState::Occupied { deadline, .. } => Some(deadline),
            SlotState::Free { .. } => None,
        }
    }
}

/// A wheel-slot entry: slab index plus the generation at insert time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct Entry {
    pub(crate) index: u32,
    pub(crate) generation: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_roundtrip() {
        let mut s: TimerSlab<&str> = TimerSlab::new();
        let h = s.insert(10, "a");
        assert_eq!(s.len(), 1);
        let (d, _, p) = s.remove(h).unwrap();
        assert_eq!((d, p), (10, "a"));
        assert_eq!(s.len(), 0);
        assert!(s.remove(h).is_none(), "double remove");
    }

    #[test]
    fn slots_are_reused_with_new_generation() {
        let mut s: TimerSlab<u32> = TimerSlab::new();
        let h1 = s.insert(1, 100);
        s.remove(h1).unwrap();
        let h2 = s.insert(2, 200);
        assert_eq!(h1.index, h2.index, "slot reused");
        assert_ne!(h1.generation, h2.generation, "generation bumped");
        assert!(s.remove(h1).is_none(), "stale handle rejected");
        assert_eq!(s.remove(h2).unwrap().2, 200);
    }

    #[test]
    fn seq_monotone() {
        let mut s: TimerSlab<()> = TimerSlab::new();
        let h1 = s.insert(5, ());
        let h2 = s.insert(5, ());
        let (_, s1, _) = s.remove(h1).unwrap();
        let (_, s2, _) = s.remove(h2).unwrap();
        assert!(s1 < s2);
    }

    #[test]
    fn deadline_of_checks_generation() {
        let mut s: TimerSlab<()> = TimerSlab::new();
        let h = s.insert(42, ());
        assert_eq!(s.deadline_of(h.index, h.generation), Some(42));
        assert_eq!(s.deadline_of(h.index, h.generation + 1), None);
        s.remove(h).unwrap();
        assert_eq!(s.deadline_of(h.index, h.generation), None);
    }
}
