//! Timer queue data structures for the soft-timers facility.
//!
//! The paper maintains scheduled soft-timer events in "a modified form of
//! timing wheels" (section 3, footnote 2), citing Varghese & Lauck. This
//! crate implements the relevant schemes plus a baseline:
//!
//! - [`HeapQueue`] — binary-heap timer queue (`O(log n)` insert/expire), the
//!   baseline every wheel is benchmarked against.
//! - [`SimpleWheel`] — one slot per tick over a bounded horizon with an
//!   overflow list (Varghese & Lauck scheme 4).
//! - [`HashedWheel`] — deadline hashed modulo the slot count, unsorted
//!   per-slot lists (scheme 6) — `O(1)` insert, amortized `O(1)` expiry at
//!   soft-timer densities.
//! - [`HierarchicalWheel`] — multiple levels of wheels with cascading
//!   (scheme 7), unbounded horizon with small memory.
//! - [`CalendarQueue`] — Brown's self-resizing calendar (an ablation
//!   point: the adaptive-geometry alternative to fixed wheels).
//!
//! All implementations share the [`TimerQueue`] trait, carry generic
//! payloads, support `O(1)` cancelation through generation-checked
//! [`TimerHandle`]s, and fire events in deadline order (FIFO among equal
//! deadlines) so they are interchangeable inside the facility. Property
//! tests check each wheel against [`HeapQueue`] as an oracle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calendar;
pub mod heap;
pub mod hierarchical;
pub mod slab;
pub mod wheel;

pub use calendar::CalendarQueue;
pub use heap::HeapQueue;
pub use hierarchical::HierarchicalWheel;
pub use slab::TimerHandle;
pub use wheel::{HashedWheel, SimpleWheel};

/// A queue of `(deadline_tick, payload)` timers.
///
/// Ticks are abstract `u64` values — the facility uses measurement-clock
/// ticks (1 µs by default). Time never goes backwards: `advance` panics on
/// a tick lower than a previous call's.
pub trait TimerQueue<P> {
    /// Schedules `payload` to expire at absolute tick `deadline`.
    ///
    /// A deadline at or before the current tick expires on the next
    /// [`TimerQueue::advance`] call.
    fn schedule(&mut self, deadline: u64, payload: P) -> TimerHandle;

    /// Cancels a scheduled timer, returning its payload, or `None` when the
    /// timer already expired or was already canceled.
    fn cancel(&mut self, handle: TimerHandle) -> Option<P>;

    /// Advances the queue to `now`, appending all timers with
    /// `deadline <= now` to `out` in deadline order (FIFO among equals).
    ///
    /// # Panics
    ///
    /// Panics if `now` is smaller than a previously passed tick.
    fn advance(&mut self, now: u64, out: &mut Vec<(u64, P)>);

    /// Earliest pending deadline, or `None` when empty.
    ///
    /// May cost a scan of the structure's slots; the facility caches the
    /// result and only re-queries after expiry (see `st-core`).
    fn next_deadline(&self) -> Option<u64>;

    /// Number of pending (scheduled, not canceled, not expired) timers.
    fn len(&self) -> usize;

    /// Whether no timers are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
