//! A calendar queue (Brown 1988): the self-resizing cousin of the timing
//! wheel, standard in discrete-event simulators.
//!
//! Buckets cover `bucket_width` ticks each; the structure re-sizes (and
//! re-estimates the width from the spacing of live deadlines) when the
//! population outgrows or undershoots the bucket count, keeping near-O(1)
//! operation across widely varying timer densities — the property the
//! fixed-geometry wheels trade away. Included as an ablation point next
//! to the paper's "modified timing wheels".

use crate::slab::{Entry, TimerSlab};
use crate::{TimerHandle, TimerQueue};

const MIN_BUCKETS: usize = 16;

/// A self-resizing calendar queue.
///
/// # Examples
///
/// ```
/// use st_wheel::{CalendarQueue, TimerQueue};
///
/// let mut q = CalendarQueue::new();
/// q.schedule(25, "a");
/// q.schedule(1_000_000, "b");
/// let mut out = Vec::new();
/// q.advance(100, &mut out);
/// assert_eq!(out, vec![(25, "a")]);
/// ```
#[derive(Debug)]
pub struct CalendarQueue<P> {
    buckets: Vec<Vec<Entry>>,
    /// Ticks covered by one bucket (>= 1).
    bucket_width: u64,
    past_due: Vec<Entry>,
    /// Reusable sweep buffer; keeps `advance` allocation-free once warm.
    sweep: Vec<(u64, u64, P)>,
    slab: TimerSlab<P>,
    now: u64,
    seq: u64,
    resizes: u64,
}

impl<P> CalendarQueue<P> {
    /// Creates an empty queue (16 buckets of 64 ticks).
    pub fn new() -> Self {
        CalendarQueue {
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            bucket_width: 64,
            past_due: Vec::new(),
            sweep: Vec::new(),
            slab: TimerSlab::new(),
            now: 0,
            seq: 0,
            resizes: 0,
        }
    }

    /// Current bucket count.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Current bucket width in ticks.
    pub fn bucket_width(&self) -> u64 {
        self.bucket_width
    }

    /// How many times the calendar has re-sized itself.
    pub fn resizes(&self) -> u64 {
        self.resizes
    }

    fn bucket_of(&self, deadline: u64) -> usize {
        // st-lint: allow(no-silent-cast) -- value reduced modulo the bucket
        // count, so it always fits a usize index
        ((deadline / self.bucket_width) % self.buckets.len() as u64) as usize
    }

    fn place(&mut self, deadline: u64, entry: Entry) {
        if deadline <= self.now {
            self.past_due.push(entry);
        } else {
            let b = self.bucket_of(deadline);
            self.buckets[b].push(entry);
        }
    }

    /// Re-sizes to `n` buckets, re-estimating the width from live
    /// deadlines (Brown's heuristic: average spacing of a sample).
    fn rebucket(&mut self, n: usize) {
        self.resizes += 1;
        // Collect the live entries.
        let mut live: Vec<(u64, Entry)> = Vec::with_capacity(self.slab.len()); // st-lint: allow(hot-path-cost) -- amortized rebucket is the calendar queue's defining trade-off; it is the ablation queue, not the default wheel
        for bucket in &self.buckets {
            for &entry in bucket {
                if let Some(d) = self.slab.deadline_of(entry.index, entry.generation) {
                    live.push((d, entry));
                }
            }
        }
        // Width estimate: average gap across a sorted sample's middle
        // half; falls back to the old width when too few samples.
        let mut sample: Vec<u64> = live.iter().map(|&(d, _)| d).take(64).collect(); // st-lint: allow(hot-path-cost) -- amortized rebucket (see above); bounded to 64 samples
        sample.sort_unstable();
        if sample.len() >= 4 {
            let lo = sample.len() / 4;
            let hi = (3 * sample.len()) / 4;
            let span = sample[hi].saturating_sub(sample[lo]);
            let gaps = (hi - lo).max(1) as u64;
            self.bucket_width = (span / gaps).clamp(1, 1 << 32);
        }
        self.buckets = (0..n.max(MIN_BUCKETS)).map(|_| Vec::new()).collect(); // st-lint: allow(hot-path-cost) -- amortized rebucket (see above)
        for (d, entry) in live {
            self.place(d, entry);
        }
    }

    fn maybe_resize(&mut self) {
        let live = self.slab.len();
        let n = self.buckets.len();
        if live > 2 * n {
            self.rebucket(n * 2);
        } else if n > MIN_BUCKETS && live < n / 2 {
            self.rebucket((n / 2).max(MIN_BUCKETS));
        }
    }
}

impl<P> Default for CalendarQueue<P> {
    fn default() -> Self {
        CalendarQueue::new()
    }
}

impl<P> TimerQueue<P> for CalendarQueue<P> {
    fn schedule(&mut self, deadline: u64, payload: P) -> TimerHandle {
        let handle = self.slab.insert(deadline, payload);
        self.seq += 1;
        self.place(
            deadline,
            Entry {
                index: handle.index,
                generation: handle.generation,
            },
        );
        self.maybe_resize();
        handle
    }

    fn cancel(&mut self, handle: TimerHandle) -> Option<P> {
        self.slab.remove(handle).map(|(_, _, p)| p)
    }

    fn advance(&mut self, now: u64, out: &mut Vec<(u64, P)>) {
        assert!(
            now >= self.now,
            "time went backwards: {} -> {now}",
            self.now
        );
        let old = self.now;
        self.now = now;

        let mut due = std::mem::take(&mut self.sweep);
        let past = std::mem::take(&mut self.past_due);
        for entry in past {
            if let Some((d, s, p)) = self.slab.remove_index(entry.index, entry.generation) {
                due.push((d, s, p));
            }
        }

        // Visit each bucket whose time band intersects (old, now]; a jump
        // past a full rotation visits every bucket once.
        let n = self.buckets.len() as u64;
        let first_band = old / self.bucket_width;
        let last_band = now / self.bucket_width;
        let bands = (last_band - first_band).min(n - 1);
        for band in first_band..=first_band + bands {
            let idx = (band % n) as usize;
            let mut bucket = std::mem::take(&mut self.buckets[idx]);
            bucket.retain(
                |entry| match self.slab.deadline_of(entry.index, entry.generation) {
                    None => false,
                    Some(d) if d <= now => {
                        if let Some((dd, s, p)) =
                            self.slab.remove_index(entry.index, entry.generation)
                        {
                            due.push((dd, s, p));
                        }
                        false
                    }
                    Some(_) => true,
                },
            );
            self.buckets[idx] = bucket;
        }

        due.sort_by_key(|&(d, s, _)| (d, s));
        out.extend(due.drain(..).map(|(d, _, p)| (d, p)));
        self.sweep = due;
        self.maybe_resize();
    }

    fn next_deadline(&self) -> Option<u64> {
        let mut min: Option<u64> = None;
        let mut consider = |d: u64| {
            min = Some(match min {
                Some(m) => m.min(d),
                None => d,
            });
        };
        for entry in &self.past_due {
            if let Some(d) = self.slab.deadline_of(entry.index, entry.generation) {
                consider(d);
            }
        }
        for bucket in &self.buckets {
            for entry in bucket {
                if let Some(d) = self.slab.deadline_of(entry.index, entry.generation) {
                    consider(d);
                }
            }
        }
        min
    }

    fn len(&self) -> usize {
        self.slab.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_order_across_bucket_widths() {
        let mut q = CalendarQueue::new();
        for d in [5u64, 500, 50_000, 5_000_000] {
            q.schedule(d, d);
        }
        let mut out = Vec::new();
        q.advance(10_000_000, &mut out);
        assert_eq!(
            out.iter().map(|&(d, _)| d).collect::<Vec<_>>(),
            vec![5, 500, 50_000, 5_000_000]
        );
        assert!(q.is_empty());
    }

    #[test]
    fn grows_and_shrinks_with_population() {
        let mut q = CalendarQueue::new();
        let handles: Vec<_> = (0..1_000u64).map(|i| q.schedule(10 + i * 7, i)).collect();
        assert!(q.bucket_count() > MIN_BUCKETS, "grew: {}", q.bucket_count());
        assert!(q.resizes() > 0);
        for h in handles {
            q.cancel(h);
        }
        // Shrink happens lazily on the next operations.
        for i in 0..40u64 {
            let h = q.schedule(1_000_000 + i, i);
            q.cancel(h);
        }
        assert!(q.bucket_count() < 256, "shrunk back: {}", q.bucket_count());
    }

    #[test]
    fn width_adapts_to_deadline_spacing() {
        let mut q = CalendarQueue::new();
        // Deadlines 1000 ticks apart: after resizing, the width should be
        // in that order of magnitude, not the initial 64.
        for i in 0..200u64 {
            q.schedule(1_000 + i * 1_000, i);
        }
        assert!(
            q.bucket_width() >= 256,
            "width {} should track the 1000-tick spacing",
            q.bucket_width()
        );
    }

    #[test]
    fn past_deadlines_fire_next_advance() {
        let mut q = CalendarQueue::new();
        let mut out = Vec::new();
        q.advance(100, &mut out);
        q.schedule(50, "late");
        q.advance(100, &mut out);
        assert_eq!(out, vec![(50, "late")]);
    }

    #[test]
    fn cancel_and_next_deadline() {
        let mut q = CalendarQueue::new();
        let a = q.schedule(30, ());
        q.schedule(90, ());
        assert_eq!(q.next_deadline(), Some(30));
        assert_eq!(q.cancel(a), Some(()));
        assert_eq!(q.next_deadline(), Some(90));
        assert_eq!(q.len(), 1);
    }
}
