//! Simple and hashed timing wheels (Varghese & Lauck schemes 4 and 6).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::slab::{Entry, TimerSlab};
use crate::{TimerHandle, TimerQueue};

fn drain_sorted<P>(due: &mut Vec<(u64, u64, P)>, out: &mut Vec<(u64, P)>) {
    due.sort_by_key(|&(d, s, _)| (d, s));
    out.extend(due.drain(..).map(|(d, _, p)| (d, p)));
}

/// Simple timing wheel: one slot per tick over a bounded horizon, with an
/// overflow heap for deadlines beyond it (scheme 4 of Varghese & Lauck).
///
/// Insert and per-tick expiry are `O(1)` for deadlines within the horizon.
/// The facility's backing store wants exactly this shape: soft-timer events
/// live tens to hundreds of ticks in the future, far inside a modest
/// horizon.
///
/// # Examples
///
/// ```
/// use st_wheel::{SimpleWheel, TimerQueue};
///
/// let mut w = SimpleWheel::new(1024);
/// w.schedule(40, "poll");
/// w.schedule(4000, "beyond-horizon"); // lands in the overflow heap
/// let mut out = Vec::new();
/// w.advance(50, &mut out);
/// assert_eq!(out, vec![(40, "poll")]);
/// ```
#[derive(Debug)]
pub struct SimpleWheel<P> {
    slots: Vec<Vec<Entry>>,
    overflow: BinaryHeap<Reverse<(u64, u64, Entry)>>,
    past_due: Vec<Entry>,
    /// Reusable sweep buffer; keeps `advance` allocation-free once warm.
    sweep: Vec<(u64, u64, P)>,
    slab: TimerSlab<P>,
    now: u64,
    seq: u64,
}

impl<P> SimpleWheel<P> {
    /// Creates a wheel with `horizon` one-tick slots.
    ///
    /// # Panics
    ///
    /// Panics when `horizon` is zero.
    pub fn new(horizon: usize) -> Self {
        assert!(horizon > 0, "horizon must be positive");
        SimpleWheel {
            slots: (0..horizon).map(|_| Vec::new()).collect(),
            overflow: BinaryHeap::new(),
            past_due: Vec::new(),
            sweep: Vec::new(),
            slab: TimerSlab::new(),
            now: 0,
            seq: 0,
        }
    }

    /// Number of slots (the horizon, in ticks).
    pub fn horizon(&self) -> usize {
        self.slots.len()
    }

    /// Number of timers currently parked in the overflow heap.
    pub fn overflow_len(&self) -> usize {
        self.overflow.len()
    }

    fn place(&mut self, deadline: u64, entry: Entry, seq: u64) {
        if deadline <= self.now {
            self.past_due.push(entry);
        } else if deadline - self.now < self.slots.len() as u64 {
            // st-lint: allow(no-silent-cast) -- value reduced modulo the
            // slot count, so it always fits a usize index
            let idx = (deadline % self.slots.len() as u64) as usize;
            self.slots[idx].push(entry);
        } else {
            self.overflow.push(Reverse((deadline, seq, entry)));
        }
    }

    /// Pulls overflow entries that now fit in the horizon into slots.
    fn migrate_overflow(&mut self) {
        let horizon = self.slots.len() as u64;
        while let Some(&Reverse((deadline, seq, entry))) = self.overflow.peek() {
            if deadline > self.now && deadline - self.now >= horizon {
                break;
            }
            self.overflow.pop();
            // Skip entries canceled while parked.
            if self
                .slab
                .deadline_of(entry.index, entry.generation)
                .is_some()
            {
                self.place(deadline, entry, seq);
            }
        }
    }

    fn collect_slot(
        slot: &mut Vec<Entry>,
        slab: &mut TimerSlab<P>,
        now: u64,
        due: &mut Vec<(u64, u64, P)>,
    ) {
        slot.retain(|entry| {
            match slab.deadline_of(entry.index, entry.generation) {
                // Canceled while parked: drop the husk.
                None => false,
                Some(d) if d <= now => {
                    if let Some((dd, seq, p)) = slab.remove_index(entry.index, entry.generation) {
                        due.push((dd, seq, p));
                    }
                    false
                }
                // A later rotation: keep.
                Some(_) => true,
            }
        });
    }
}

impl<P> TimerQueue<P> for SimpleWheel<P> {
    fn schedule(&mut self, deadline: u64, payload: P) -> TimerHandle {
        let handle = self.slab.insert(deadline, payload);
        let seq = self.seq;
        self.seq += 1;
        self.place(
            deadline,
            Entry {
                index: handle.index,
                generation: handle.generation,
            },
            seq,
        );
        handle
    }

    fn cancel(&mut self, handle: TimerHandle) -> Option<P> {
        self.slab.remove(handle).map(|(_, _, p)| p)
    }

    fn advance(&mut self, now: u64, out: &mut Vec<(u64, P)>) {
        assert!(
            now >= self.now,
            "time went backwards: {} -> {now}",
            self.now
        );
        let old = self.now;
        self.now = now;
        // Migrate first so overflow entries that became due inside this
        // advance land in `past_due` and fire below, not one call late.
        self.migrate_overflow();

        let mut due = std::mem::take(&mut self.sweep);
        let past = std::mem::take(&mut self.past_due);
        for entry in past {
            if let Some((d, s, p)) = self.slab.remove_index(entry.index, entry.generation) {
                due.push((d, s, p));
            }
        }

        let horizon = self.slots.len() as u64;
        let jump = now - old;
        if jump >= horizon {
            // Every slot's current rotation is due; visit each slot once.
            for i in 0..self.slots.len() {
                let mut slot = std::mem::take(&mut self.slots[i]);
                Self::collect_slot(&mut slot, &mut self.slab, now, &mut due);
                self.slots[i] = slot;
            }
        } else {
            for tick in (old + 1)..=now {
                // st-lint: allow(no-silent-cast) -- value reduced modulo
                // the slot count, so it always fits a usize index
                let idx = (tick % horizon) as usize;
                let mut slot = std::mem::take(&mut self.slots[idx]);
                Self::collect_slot(&mut slot, &mut self.slab, now, &mut due);
                self.slots[idx] = slot;
            }
        }
        drain_sorted(&mut due, out);
        self.sweep = due;
    }

    fn next_deadline(&self) -> Option<u64> {
        let mut min: Option<u64> = None;
        let mut consider = |d: u64| {
            min = Some(match min {
                Some(m) => m.min(d),
                None => d,
            });
        };
        for entry in &self.past_due {
            if let Some(d) = self.slab.deadline_of(entry.index, entry.generation) {
                consider(d);
            }
        }
        for slot in &self.slots {
            for entry in slot {
                if let Some(d) = self.slab.deadline_of(entry.index, entry.generation) {
                    consider(d);
                }
            }
        }
        for &Reverse((_, _, entry)) in self.overflow.iter() {
            if let Some(d) = self.slab.deadline_of(entry.index, entry.generation) {
                consider(d);
            }
        }
        min
    }

    fn len(&self) -> usize {
        self.slab.len()
    }
}

/// Hashed timing wheel: deadlines hash into `slots` by modulo, each slot an
/// unsorted list checked against the full deadline (scheme 6).
///
/// Unlike [`SimpleWheel`] there is no horizon: a deadline arbitrarily far
/// out parks in its slot and survives as many cursor rotations as needed.
/// This is the structure the paper's facility is described as using.
///
/// # Examples
///
/// ```
/// use st_wheel::{HashedWheel, TimerQueue};
///
/// let mut w = HashedWheel::with_slots(256);
/// w.schedule(10, 'a');
/// w.schedule(10 + 256, 'b'); // same slot, next rotation
/// let mut out = Vec::new();
/// w.advance(20, &mut out);
/// assert_eq!(out, vec![(10, 'a')]);
/// out.clear();
/// w.advance(300, &mut out);
/// assert_eq!(out, vec![(266, 'b')]);
/// ```
#[derive(Debug)]
pub struct HashedWheel<P> {
    slots: Vec<Vec<Entry>>,
    mask: u64,
    past_due: Vec<Entry>,
    /// Reusable sweep buffer; keeps `advance` allocation-free once warm.
    sweep: Vec<(u64, u64, P)>,
    slab: TimerSlab<P>,
    now: u64,
    seq: u64,
}

impl<P> HashedWheel<P> {
    /// Creates a wheel with `slots` slots (rounded up to a power of two).
    ///
    /// # Panics
    ///
    /// Panics when `slots` is zero.
    pub fn with_slots(slots: usize) -> Self {
        assert!(slots > 0, "slot count must be positive");
        let n = slots.next_power_of_two();
        HashedWheel {
            slots: (0..n).map(|_| Vec::new()).collect(),
            mask: n as u64 - 1,
            past_due: Vec::new(),
            sweep: Vec::new(),
            slab: TimerSlab::new(),
            now: 0,
            seq: 0,
        }
    }

    /// Creates the facility's default geometry (4096 slots).
    pub fn new() -> Self {
        HashedWheel::with_slots(4096)
    }

    /// Number of slots.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }
}

impl<P> Default for HashedWheel<P> {
    fn default() -> Self {
        HashedWheel::new()
    }
}

impl<P> TimerQueue<P> for HashedWheel<P> {
    fn schedule(&mut self, deadline: u64, payload: P) -> TimerHandle {
        let handle = self.slab.insert(deadline, payload);
        self.seq += 1;
        let entry = Entry {
            index: handle.index,
            generation: handle.generation,
        };
        if deadline <= self.now {
            self.past_due.push(entry);
        } else {
            // st-lint: allow(no-silent-cast) -- masked to the power-of-two
            // slot count, so it always fits a usize index
            let idx = (deadline & self.mask) as usize;
            self.slots[idx].push(entry);
        }
        handle
    }

    fn cancel(&mut self, handle: TimerHandle) -> Option<P> {
        self.slab.remove(handle).map(|(_, _, p)| p)
    }

    fn advance(&mut self, now: u64, out: &mut Vec<(u64, P)>) {
        assert!(
            now >= self.now,
            "time went backwards: {} -> {now}",
            self.now
        );
        let mut due = std::mem::take(&mut self.sweep);

        let past = std::mem::take(&mut self.past_due);
        for entry in past {
            if let Some((d, s, p)) = self.slab.remove_index(entry.index, entry.generation) {
                due.push((d, s, p));
            }
        }

        let slots = self.slots.len() as u64;
        let jump = now - self.now;
        let visit = |slot: &mut Vec<Entry>,
                     slab: &mut TimerSlab<P>,
                     due: &mut Vec<(u64, u64, P)>| {
            slot.retain(
                |entry| match slab.deadline_of(entry.index, entry.generation) {
                    None => false,
                    Some(d) if d <= now => {
                        if let Some((dd, s, p)) = slab.remove_index(entry.index, entry.generation) {
                            due.push((dd, s, p));
                        }
                        false
                    }
                    Some(_) => true,
                },
            );
        };
        if jump >= slots {
            for i in 0..self.slots.len() {
                let mut slot = std::mem::take(&mut self.slots[i]);
                visit(&mut slot, &mut self.slab, &mut due);
                self.slots[i] = slot;
            }
        } else {
            for tick in (self.now + 1)..=now {
                // st-lint: allow(no-silent-cast) -- masked to the
                // power-of-two slot count, so it always fits a usize index
                let idx = (tick & self.mask) as usize;
                let mut slot = std::mem::take(&mut self.slots[idx]);
                visit(&mut slot, &mut self.slab, &mut due);
                self.slots[idx] = slot;
            }
        }
        self.now = now;
        drain_sorted(&mut due, out);
        self.sweep = due;
    }

    fn next_deadline(&self) -> Option<u64> {
        let mut min: Option<u64> = None;
        let mut consider = |d: u64| {
            min = Some(match min {
                Some(m) => m.min(d),
                None => d,
            });
        };
        for entry in &self.past_due {
            if let Some(d) = self.slab.deadline_of(entry.index, entry.generation) {
                consider(d);
            }
        }
        for slot in &self.slots {
            for entry in slot {
                if let Some(d) = self.slab.deadline_of(entry.index, entry.generation) {
                    consider(d);
                }
            }
        }
        min
    }

    fn len(&self) -> usize {
        self.slab.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_wheel_fires_in_order() {
        let mut w = SimpleWheel::new(64);
        w.schedule(30, 3);
        w.schedule(10, 1);
        w.schedule(20, 2);
        let mut out = Vec::new();
        w.advance(40, &mut out);
        assert_eq!(out, vec![(10, 1), (20, 2), (30, 3)]);
    }

    #[test]
    fn simple_wheel_overflow_migrates() {
        let mut w = SimpleWheel::new(16);
        w.schedule(100, "far");
        assert_eq!(w.overflow_len(), 1);
        let mut out = Vec::new();
        w.advance(90, &mut out);
        assert!(out.is_empty());
        assert_eq!(w.overflow_len(), 0, "migrated into slots");
        w.advance(100, &mut out);
        assert_eq!(out, vec![(100, "far")]);
    }

    #[test]
    fn simple_wheel_big_jump_drains_everything() {
        let mut w = SimpleWheel::new(8);
        for d in [1u64, 5, 7, 200, 5000] {
            w.schedule(d, d);
        }
        let mut out = Vec::new();
        w.advance(10_000, &mut out);
        let fired: Vec<u64> = out.iter().map(|&(d, _)| d).collect();
        assert_eq!(fired, vec![1, 5, 7, 200, 5000]);
        assert!(w.is_empty());
    }

    #[test]
    fn simple_wheel_cancel_in_overflow() {
        let mut w = SimpleWheel::new(8);
        let h = w.schedule(1000, ());
        assert_eq!(w.cancel(h), Some(()));
        let mut out = Vec::new();
        w.advance(2000, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn simple_wheel_past_deadline_fires_next_advance() {
        let mut w = SimpleWheel::new(8);
        let mut out = Vec::new();
        w.advance(50, &mut out);
        w.schedule(10, "past");
        w.advance(50, &mut out);
        assert_eq!(out, vec![(10, "past")]);
    }

    #[test]
    fn hashed_wheel_rotations() {
        let mut w = HashedWheel::with_slots(16);
        w.schedule(5, 'a');
        w.schedule(5 + 16, 'b');
        w.schedule(5 + 32, 'c');
        let mut out = Vec::new();
        w.advance(6, &mut out);
        assert_eq!(out, vec![(5, 'a')]);
        out.clear();
        w.advance(40, &mut out);
        assert_eq!(out, vec![(21, 'b'), (37, 'c')]);
    }

    #[test]
    fn hashed_wheel_rounds_slots_to_power_of_two() {
        let w: HashedWheel<()> = HashedWheel::with_slots(1000);
        assert_eq!(w.slot_count(), 1024);
    }

    #[test]
    fn hashed_wheel_next_deadline() {
        let mut w = HashedWheel::with_slots(8);
        assert_eq!(w.next_deadline(), None);
        let h = w.schedule(9, ());
        w.schedule(17, ());
        assert_eq!(w.next_deadline(), Some(9));
        w.cancel(h);
        assert_eq!(w.next_deadline(), Some(17));
    }

    #[test]
    fn simple_wheel_next_deadline_sees_overflow() {
        let mut w = SimpleWheel::new(4);
        w.schedule(1000, ());
        assert_eq!(w.next_deadline(), Some(1000));
    }

    #[test]
    fn fifo_among_equal_deadlines() {
        let mut w = HashedWheel::with_slots(8);
        for i in 0..4 {
            w.schedule(3, i);
        }
        let mut out = Vec::new();
        w.advance(3, &mut out);
        assert_eq!(out, (0..4).map(|i| (3, i)).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn simple_wheel_rejects_regression() {
        let mut w: SimpleWheel<()> = SimpleWheel::new(4);
        let mut out = Vec::new();
        w.advance(5, &mut out);
        w.advance(4, &mut out);
    }
}
