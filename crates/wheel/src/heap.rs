//! Binary-heap timer queue — the baseline and property-test oracle.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::slab::{Entry, TimerSlab};
use crate::{TimerHandle, TimerQueue};

/// A timer queue backed by a binary heap of `(deadline, seq)` keys.
///
/// `O(log n)` schedule and expire. This is what a conventional OS timer
/// facility (e.g. a `callout` heap) provides; the wheels are measured
/// against it in `st-bench`, and the property tests use it as the oracle
/// the wheels must agree with.
///
/// # Examples
///
/// ```
/// use st_wheel::{HeapQueue, TimerQueue};
///
/// let mut q = HeapQueue::new();
/// q.schedule(30, "late");
/// q.schedule(10, "early");
/// let mut out = Vec::new();
/// q.advance(20, &mut out);
/// assert_eq!(out, vec![(10, "early")]);
/// ```
#[derive(Debug)]
pub struct HeapQueue<P> {
    heap: BinaryHeap<Reverse<(u64, u64, Entry)>>,
    slab: TimerSlab<P>,
    now: u64,
    push_count: u64,
}

impl<P> HeapQueue<P> {
    /// Creates an empty queue at tick 0.
    pub fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
            slab: TimerSlab::new(),
            now: 0,
            push_count: 0,
        }
    }
}

impl<P> Default for HeapQueue<P> {
    fn default() -> Self {
        HeapQueue::new()
    }
}

impl<P> TimerQueue<P> for HeapQueue<P> {
    fn schedule(&mut self, deadline: u64, payload: P) -> TimerHandle {
        let handle = self.slab.insert(deadline, payload);
        let seq = self.push_count;
        self.push_count += 1;
        self.heap.push(Reverse((
            deadline,
            seq,
            Entry {
                index: handle.index,
                generation: handle.generation,
            },
        )));
        handle
    }

    fn cancel(&mut self, handle: TimerHandle) -> Option<P> {
        // The heap entry stays behind and is skipped at pop time (lazy
        // deletion keyed on the slab generation).
        self.slab.remove(handle).map(|(_, _, p)| p)
    }

    fn advance(&mut self, now: u64, out: &mut Vec<(u64, P)>) {
        assert!(
            now >= self.now,
            "time went backwards: {} -> {now}",
            self.now
        );
        self.now = now;
        while let Some(&Reverse((deadline, _, entry))) = self.heap.peek() {
            if deadline > now {
                break;
            }
            self.heap.pop();
            if let Some((d, _, payload)) = self.slab.remove_index(entry.index, entry.generation) {
                out.push((d, payload));
            }
        }
    }

    fn next_deadline(&self) -> Option<u64> {
        // Canceled entries linger in the heap, so the head alone is not
        // authoritative; take the min over entries still live in the slab.
        // The facility calls this only after expiry, so O(n) is acceptable
        // for the baseline.
        self.heap
            .iter()
            .filter_map(|&Reverse((d, _, e))| {
                self.slab.deadline_of(e.index, e.generation).map(|_| d)
            })
            .min()
    }

    fn len(&self) -> usize {
        self.slab.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_among_equal_deadlines() {
        let mut q = HeapQueue::new();
        for i in 0..5 {
            q.schedule(7, i);
        }
        let mut out = Vec::new();
        q.advance(7, &mut out);
        assert_eq!(out, (0..5).map(|i| (7, i)).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_prevents_expiry() {
        let mut q = HeapQueue::new();
        let a = q.schedule(5, "a");
        q.schedule(5, "b");
        assert_eq!(q.cancel(a), Some("a"));
        assert_eq!(q.cancel(a), None);
        let mut out = Vec::new();
        q.advance(10, &mut out);
        assert_eq!(out, vec![(5, "b")]);
    }

    #[test]
    fn next_deadline_ignores_canceled() {
        let mut q = HeapQueue::new();
        let a = q.schedule(3, ());
        q.schedule(9, ());
        q.cancel(a);
        assert_eq!(q.next_deadline(), Some(9));
    }

    #[test]
    fn len_tracks_live() {
        let mut q = HeapQueue::new();
        let a = q.schedule(1, ());
        q.schedule(2, ());
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        let mut out = Vec::new();
        q.advance(5, &mut out);
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn advance_rejects_regression() {
        let mut q: HeapQueue<()> = HeapQueue::new();
        let mut out = Vec::new();
        q.advance(10, &mut out);
        q.advance(9, &mut out);
    }

    #[test]
    fn deadline_at_or_before_now_fires_immediately() {
        let mut q = HeapQueue::new();
        let mut out = Vec::new();
        q.advance(100, &mut out);
        q.schedule(50, "past");
        q.advance(100, &mut out);
        assert_eq!(out, vec![(50, "past")]);
    }

    #[test]
    fn empty_queue_behaviour() {
        let q: HeapQueue<()> = HeapQueue::new();
        assert_eq!(q.next_deadline(), None);
        assert!(q.is_empty());
    }
}
