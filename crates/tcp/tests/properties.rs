//! Randomized property tests for the TCP engine: sequence-space
//! conservation, window discipline, receiver cumulative-ACK monotonicity,
//! and end-to-end transfer invariants.
//!
//! Cases are drawn from the in-repo deterministic [`SimRng`] (fixed seed,
//! so failures replay exactly) instead of an external property-testing
//! framework — the workspace builds with no network access.

use st_net::packet::ConnId;
use st_sim::{SimRng, SimTime};
use st_tcp::receiver::{AckDecision, AckPolicy, TcpReceiver};
use st_tcp::sender::{SenderConfig, SenderMode, TcpSender};
use st_tcp::transfer::{TransferConfig, TransferSim};

const CASES: u64 = 64;

/// Under any interleaving of send opportunities and cumulative ACKs, the
/// sender never exceeds its window, never re-sends bytes, and exactly
/// covers the transfer.
#[test]
fn sender_conserves_sequence_space() {
    let mut rng = SimRng::seed(0x5ec_0de);
    for case in 0..CASES {
        let transfer_segments = rng.range_u64(1, 200);
        let iw = rng.range_u64(1, 8) as u32;
        let acks_per_round = rng.range_u64(1, 5) as usize;
        let mode_rb = rng.chance(0.5);

        let mss = 1_000u32;
        let config = SenderConfig {
            mss,
            initial_cwnd_segments: iw,
            rwnd: 64_000,
            mode: if mode_rb {
                SenderMode::RateBased
            } else {
                SenderMode::SelfClocked
            },
        };
        let transfer = transfer_segments * mss as u64;
        let mut s = TcpSender::new(config, ConnId(1), transfer);
        let mut sent: Vec<(u64, u32)> = Vec::new();
        let mut acked = 0u64;
        let mut id = 0;
        let mut guard = 0;
        while !s.complete() {
            guard += 1;
            assert!(guard < 100_000, "live-lock in the sender (case {case})");
            // Send as much as allowed.
            while let Some(p) = s.next_segment(id) {
                id += 1;
                // No overlap with anything sent before.
                if let Some(&(last_seq, last_len)) = sent.last() {
                    assert_eq!(
                        p.tcp.seq,
                        last_seq + last_len as u64,
                        "gap or overlap (case {case})"
                    );
                }
                assert!(s.inflight() <= s.window(), "window violated (case {case})");
                sent.push((p.tcp.seq, p.payload_bytes));
            }
            // Acknowledge a few outstanding segments cumulatively.
            for _ in 0..acks_per_round {
                let next_unacked = sent
                    .iter()
                    .map(|&(q, l)| q + l as u64)
                    .find(|&end| end > acked);
                match next_unacked {
                    Some(end) => {
                        s.on_ack(end);
                        acked = end;
                    }
                    None => break,
                }
            }
        }
        // Every byte sent exactly once.
        let total: u64 = sent.iter().map(|&(_, l)| l as u64).sum();
        assert_eq!(total, transfer, "case {case}");
        assert_eq!(s.segments_sent(), sent.len() as u64, "case {case}");
    }
}

/// The receiver's cumulative ACK is monotone, never past the data it has
/// seen, and every delayed ACK eventually flushes on the timer.
#[test]
fn receiver_acks_are_monotone_and_complete() {
    let mut rng = SimRng::seed(0xacc);
    for case in 0..CASES {
        let n = rng.range_u64(1, 200) as usize;
        let lens: Vec<u32> = (0..n).map(|_| rng.range_u64(1, 1500) as u32).collect();

        let mut r = TcpReceiver::new(AckPolicy::DelayedEvery2);
        let mut seq = 0u64;
        let mut last_ack = 0u64;
        for (i, &len) in lens.iter().enumerate() {
            let t = SimTime::from_micros(i as u64 * 10);
            match r.on_data(t, seq, len) {
                AckDecision::AckNow { ack } => {
                    assert!(ack >= last_ack, "ACK went backwards (case {case})");
                    assert!(ack <= seq + len as u64, "ACKed unseen data (case {case})");
                    last_ack = ack;
                }
                AckDecision::Delay => {}
            }
            seq += len as u64;
        }
        // The delack timer flushes whatever is owed; afterwards the
        // cumulative ACK covers the whole stream.
        if let Some(ack) = r.on_timer(SimTime::from_secs(1)) {
            assert!(ack >= last_ack, "case {case}");
            last_ack = ack;
        }
        assert_eq!(last_ack, seq, "stream fully acknowledged (case {case})");
        assert_eq!(r.segments_received(), lens.len() as u64, "case {case}");
    }
}

/// End-to-end: every transfer completes, delivers each segment once, and
/// rate-based is never slower than regular TCP on this lossless high-BDP
/// path.
#[test]
fn transfers_complete_and_pacing_wins() {
    let mut rng = SimRng::seed(0x7ab1e6);
    for case in 0..24 {
        let segments = rng.range_u64(1, 400);
        let reg = TransferSim::run(TransferConfig::table6(segments, false));
        let rbc = TransferSim::run(TransferConfig::table6(segments, true));
        assert_eq!(reg.segments, segments, "case {case}");
        assert_eq!(rbc.segments, segments, "case {case}");
        // For a 1-segment transfer both modes are one RTT; pacing adds
        // only its microsecond trigger latency. Allow that as a tie.
        let tolerance = st_sim::SimDuration::from_millis(1);
        assert!(
            rbc.response_time <= reg.response_time + tolerance,
            "pacing lost (case {case}): {} vs {}",
            rbc.response_time,
            reg.response_time
        );
        // Both response times include at least one WAN crossing each way.
        assert!(
            reg.response_time >= st_sim::SimDuration::from_millis(100),
            "case {case}"
        );
    }
}
