//! The transmission-process simulator behind Tables 4 and 5.
//!
//! Drives the *real* facility ([`SoftTimerCore`]) and the *real* adaptive
//! pacer ([`Pacer`]) with a synthetic trigger-state stream (gaps supplied
//! by the caller — e.g. drawn from the ST-Apache workload model) plus the
//! periodic backup interrupt, and reports the statistics of the resulting
//! packet transmission process: average inter-transmission interval and
//! its standard deviation, exactly the columns of Tables 4-5.
//!
//! The hardware-timer comparison rows are produced by
//! [`TransmissionProcess::run_hardware`]: a periodic interrupt at the
//! target rate, with interrupt-masked windows during which timer ticks are
//! lost (the paper: "some timer interrupts are lost during periods when
//! interrupts are disabled in FreeBSD").

use st_core::facility::{Config, Expired, SoftTimerCore};
use st_core::pacer::{Pacer, PacerConfig};
use st_kernel::hwtimer::HardwareTimer;
use st_sim::{SampleDist, SimDuration, SimRng, SimTime};
use st_stats::Summary;

/// Statistics of one pacing run. All values in measurement-clock ticks
/// (µs at the default 1 MHz).
#[derive(Debug, Clone)]
pub struct PacingRun {
    /// Inter-transmission interval statistics.
    pub intervals: Summary,
    /// Packets transmitted.
    pub packets: u64,
    /// Fraction of transmissions released by the backup interrupt rather
    /// than a trigger state (soft runs only; 0 for hardware runs).
    pub backup_fraction: f64,
}

impl PacingRun {
    /// Average inter-transmission interval (ticks).
    pub fn avg_interval(&self) -> f64 {
        self.intervals.mean()
    }

    /// Standard deviation of the interval (ticks).
    pub fn std_dev(&self) -> f64 {
        self.intervals.population_stddev()
    }
}

/// Harness for transmission-process experiments.
#[derive(Debug)]
pub struct TransmissionProcess;

impl TransmissionProcess {
    /// Runs `packets` soft-timer-paced transmissions.
    ///
    /// `trigger_gap` yields successive trigger-state gaps in ticks (the
    /// workload's inter-trigger distribution); the backup interrupt runs
    /// every `X` ticks per the facility config.
    pub fn run_soft(
        pacer_config: PacerConfig,
        facility_config: Config,
        packets: u64,
        mut trigger_gap: impl FnMut() -> u64,
    ) -> PacingRun {
        let x = facility_config.x_ticks();
        let mut core: SoftTimerCore<()> = SoftTimerCore::new(facility_config);
        let mut pacer = Pacer::new(pacer_config);
        pacer.start_train(0);

        let mut intervals = Summary::new();
        let mut sent = 0u64;
        let mut last_tx: Option<u64> = None;
        let mut backup_fires = 0u64;

        let mut next_trigger = trigger_gap().max(1);
        let mut next_backup = x;
        // First transmission is scheduled immediately.
        core.schedule(0, 0, ());
        let mut due: Vec<Expired<()>> = Vec::new();

        while sent < packets {
            // Advance to the next check, whichever comes first.
            let now = next_backup.min(next_trigger);
            let is_backup = next_backup < next_trigger;
            due.clear();
            if is_backup {
                core.interrupt_sweep(now, &mut due);
                next_backup += x;
            } else {
                core.poll(now, &mut due);
                next_trigger = now + trigger_gap().max(1);
            }
            for ev in &due {
                let from_backup = ev.origin == st_core::facility::FireOrigin::BackupInterrupt;
                if from_backup {
                    backup_fires += 1;
                }
                // Transmit one packet and schedule the next event.
                if let Some(prev) = last_tx {
                    intervals.record((now - prev) as f64);
                }
                if st_trace::active() {
                    st_trace::count("tcp.pace.released", 1);
                    if from_backup {
                        st_trace::count("tcp.pace.released_by_backup", 1);
                    }
                    let gap = last_tx.map_or(0, |prev| now - prev);
                    st_trace::emit(
                        st_trace::Category::Tcp,
                        "tcp.pace.release",
                        now,
                        gap,
                        from_backup as u64,
                    );
                    st_trace::observe("tcp.pace.interval_ticks", gap as f64);
                }
                last_tx = Some(now);
                sent += 1;
                if sent >= packets {
                    break;
                }
                let interval = pacer.on_transmit(now);
                core.schedule(now, pacer.next_delta(interval), ());
            }
        }

        PacingRun {
            intervals,
            packets: sent,
            backup_fraction: if sent == 0 {
                0.0
            } else {
                backup_fires as f64 / sent as f64
            },
        }
    }

    /// Runs `packets` hardware-timer-paced transmissions: the 8253 is
    /// programmed to `target_interval` ticks; interrupt-masked windows
    /// (Poisson arrivals at `mask_rate_per_tick`, durations drawn from
    /// `mask_duration`) delay deliveries, and ticks that fully elapse
    /// while masked are lost.
    pub fn run_hardware(
        target_interval: u64,
        packets: u64,
        mask_rate_per_tick: f64,
        mask_duration: &impl SampleDist,
        rng: &mut SimRng,
    ) -> PacingRun {
        assert!(target_interval > 0, "interval must be positive");
        let mut timer =
            HardwareTimer::new(SimDuration::from_micros(target_interval), SimTime::ZERO);
        let mut intervals = Summary::new();
        let mut last_tx: Option<u64> = None;
        let mut sent = 0u64;

        // Pre-draw the masked windows as (start, end) in ticks, in order.
        let mean_gap = 1.0 / mask_rate_per_tick.max(1e-12);
        let mut mask_start = (rng.uniform01() * mean_gap) as u64;
        let mut mask_end = mask_start + mask_duration.sample(rng).max(0.0) as u64;

        while sent < packets {
            let due = timer.next_due().as_micros();
            // Advance the mask schedule past stale windows.
            while mask_end <= due {
                mask_start = mask_end + (-(mean_gap) * (1.0 - rng.uniform01()).ln()) as u64;
                mask_end = mask_start + mask_duration.sample(rng).max(0.0) as u64;
            }
            // Delivery is deferred to the end of a masked window covering
            // the due time.
            let deliver = if due >= mask_start && due < mask_end {
                mask_end
            } else {
                due
            };
            timer.fire_at(SimTime::from_micros(deliver));
            if let Some(prev) = last_tx {
                intervals.record((deliver - prev) as f64);
            }
            last_tx = Some(deliver);
            sent += 1;
        }

        PacingRun {
            intervals,
            packets: sent,
            backup_fraction: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_sim::Exp;

    fn exp_gaps(mean: f64, seed: u64) -> impl FnMut() -> u64 {
        let mut rng = SimRng::seed(seed);
        let dist = Exp::with_mean(mean);
        move || dist.sample(&mut rng).round().max(1.0) as u64
    }

    #[test]
    fn dense_triggers_hit_target_rate() {
        // Triggers every ~2 ticks: the pacer should achieve its 40-tick
        // target almost exactly (Table 4, min interval 12 row).
        let run = TransmissionProcess::run_soft(
            PacerConfig::new(40, 12),
            Config::default(),
            20_000,
            exp_gaps(2.0, 1),
        );
        let avg = run.avg_interval();
        assert!((avg - 40.0).abs() < 1.0, "avg {avg}");
    }

    #[test]
    fn sparse_triggers_fall_behind_without_burst_headroom() {
        // Mean trigger gap 31.5 ticks (ST-Apache-like) with min burst
        // interval equal to the target: no catch-up headroom, so the
        // average interval exceeds the target (Table 4, last rows).
        let run = TransmissionProcess::run_soft(
            PacerConfig::new(40, 35),
            Config::default(),
            20_000,
            exp_gaps(31.5, 2),
        );
        assert!(
            run.avg_interval() > 50.0,
            "should miss target: {}",
            run.avg_interval()
        );
    }

    #[test]
    fn burst_headroom_restores_target() {
        // Same sparse triggers, but bursts at 12 ticks allowed: the
        // adaptive algorithm recovers the 40-tick average.
        let run = TransmissionProcess::run_soft(
            PacerConfig::new(40, 12),
            Config::default(),
            20_000,
            exp_gaps(31.5, 3),
        );
        let avg = run.avg_interval();
        // With memoryless (exponential) gaps the catch-up wait after the
        // 12-tick burst interval still averages a full mean gap, so the
        // recovery is partial (~42); the paper's ST-Apache distribution
        // has most of its mass at small gaps and recovers fully to 40
        // (reproduced in the Table 4 experiment with the real workload
        // stream from st-workloads).
        assert!((40.0..44.0).contains(&avg), "avg {avg}");
        // And the variability is tens of ticks, like Table 4's ~30-35.
        assert!(run.std_dev() > 5.0 && run.std_dev() < 60.0);
    }

    #[test]
    fn backup_bound_catches_long_gaps() {
        // Triggers every ~5000 ticks: most fires come from the 1000-tick
        // backup interrupt; intervals never exceed ~2 backup periods.
        let run = TransmissionProcess::run_soft(
            PacerConfig::new(40, 12),
            Config::default(),
            2_000,
            exp_gaps(5000.0, 4),
        );
        assert!(run.backup_fraction > 0.5, "backup {}", run.backup_fraction);
        assert!(run.intervals.max().unwrap() <= 2100.0);
    }

    #[test]
    fn hardware_timer_unmasked_is_exact() {
        let mut rng = SimRng::seed(5);
        let run = TransmissionProcess::run_hardware(
            40,
            5_000,
            1e-9, // Essentially never masked.
            &Exp::with_mean(1.0),
            &mut rng,
        );
        assert!((run.avg_interval() - 40.0).abs() < 0.1);
        assert!(run.std_dev() < 1.0);
    }

    #[test]
    fn hardware_timer_masking_loses_ticks() {
        let mut rng = SimRng::seed(6);
        // Masked windows of mean 60 ticks arriving every ~300 ticks: some
        // windows cover multiple 40-tick periods and lose ticks, pushing
        // the average interval above the programmed 40 (Table 4: 43.6).
        let run = TransmissionProcess::run_hardware(
            40,
            20_000,
            1.0 / 300.0,
            &Exp::with_mean(60.0),
            &mut rng,
        );
        assert!(
            run.avg_interval() > 41.0,
            "losses should raise the average: {}",
            run.avg_interval()
        );
        assert!(run.std_dev() > 1.0, "jitter from deferred deliveries");
    }
}
