//! Loss recovery support: RTT estimation with RTO backoff, and the
//! loss-adaptive rate pacer.
//!
//! The retransmission timer is the facility's own thesis turned on TCP
//! itself: BSD's 500 ms slow-timeout grid quantizes every RTO to half a
//! second, but a soft-timer event costs so little that the RTO can sit
//! at its RFC 6298 value with microsecond granularity — `srtt + 4·rttvar`
//! on a 100 ms-RTT WAN path is ~100-130 ms, not "whichever 500 ms tick
//! comes next". [`RttEstimator`] implements the RFC 6298 integer
//! estimator (SRTT/RTTVAR in scaled fixed point, Karn's rule left to the
//! caller by only feeding unambiguous samples) plus exponential backoff.
//!
//! [`LossPacer`] adapts the paper's rate-based clocking to a lossy path:
//! the configured interval is the wire time of one segment at the known
//! bottleneck capacity, and on a loss signal the pacer halves its rate
//! (doubles its interval), recovering multiplicatively as ACKs arrive.
//! The max-burst bound is preserved in both directions: the interval
//! never drops below the capacity spacing, so the sender never bursts
//! faster than the bottleneck drains.

/// RFC 6298 retransmission-timeout estimator, integer microseconds.
///
/// Internally SRTT is kept scaled by 8 and RTTVAR by 4 (the classic
/// Jacobson/Karels fixed-point trick), so the EWMA shifts are exact.
#[derive(Debug, Clone, Copy)]
pub struct RttEstimator {
    /// SRTT × 8, µs; `None` until the first sample.
    srtt_x8: Option<u64>,
    /// RTTVAR × 4, µs.
    rttvar_x4: u64,
    /// Current base RTO, µs (before backoff).
    rto_us: u64,
    /// Consecutive-timeout backoff exponent.
    backoff: u32,
    /// Lower clamp on the RTO, µs.
    min_rto_us: u64,
    /// Upper clamp on the (backed-off) RTO, µs.
    max_rto_us: u64,
}

/// Backoff exponent cap: 2^6 = 64× the base RTO. Keeps the worst-case
/// retry schedule bounded (the "bounded backoff" acceptance criterion)
/// while still spanning three orders of magnitude.
pub const MAX_BACKOFF: u32 = 6;

impl RttEstimator {
    /// Creates an estimator with the given RTO clamps. Until the first
    /// RTT sample arrives the RTO is `initial_rto_us` (RFC 6298 says 1 s;
    /// experiments on a known ~100 ms path may start lower).
    pub fn new(initial_rto_us: u64, min_rto_us: u64, max_rto_us: u64) -> Self {
        RttEstimator {
            srtt_x8: None,
            rttvar_x4: 0,
            rto_us: initial_rto_us.clamp(min_rto_us, max_rto_us),
            backoff: 0,
            min_rto_us,
            max_rto_us,
        }
    }

    /// Paper-path defaults: 100 ms RTT WAN, so start at 1 s per RFC 6298
    /// with a 10 ms floor — far below BSD's 500 ms tick, which is the
    /// point of running the RTO on the soft-timer facility.
    pub fn wan_defaults() -> Self {
        RttEstimator::new(1_000_000, 10_000, 64_000_000)
    }

    /// Feeds one RTT sample, µs. Callers apply Karn's rule: never sample
    /// a retransmitted segment. A valid sample also resets the backoff.
    pub fn on_sample(&mut self, rtt_us: u64) {
        let r = rtt_us.max(1);
        match self.srtt_x8 {
            None => {
                // First measurement: SRTT = R, RTTVAR = R/2.
                self.srtt_x8 = Some(r * 8);
                self.rttvar_x4 = r * 2; // (R/2) × 4
            }
            Some(srtt_x8) => {
                // RTTVAR = 3/4·RTTVAR + 1/4·|SRTT − R|
                let srtt = srtt_x8 / 8;
                let err = srtt.abs_diff(r);
                self.rttvar_x4 = self.rttvar_x4 - self.rttvar_x4 / 4 + err;
                // SRTT = 7/8·SRTT + 1/8·R
                self.srtt_x8 = Some(srtt_x8 - srtt_x8 / 8 + r);
            }
        }
        let srtt = self.srtt_x8.unwrap_or(0) / 8;
        self.rto_us = (srtt + self.rttvar_x4.max(1)).clamp(self.min_rto_us, self.max_rto_us);
        self.backoff = 0;
    }

    /// Smoothed RTT, µs (0 until the first sample).
    pub fn srtt_us(&self) -> u64 {
        self.srtt_x8.unwrap_or(0) / 8
    }

    /// RTT variance, µs.
    pub fn rttvar_us(&self) -> u64 {
        self.rttvar_x4 / 4
    }

    /// The RTO to arm now: base RTO doubled per outstanding backoff step,
    /// clamped to the maximum.
    pub fn rto_us(&self) -> u64 {
        // backoff is capped at MAX_BACKOFF (= 6), so the shift is small.
        let shifted = self.rto_us.saturating_mul(1u64 << self.backoff);
        shifted.clamp(self.min_rto_us, self.max_rto_us)
    }

    /// A retransmission timer expired: double the RTO (up to the cap).
    pub fn on_timeout(&mut self) {
        self.backoff = (self.backoff + 1).min(MAX_BACKOFF);
    }

    /// Clears the backoff without feeding a sample. RFC 6298 (5.7) and
    /// every deployed stack do this when an ACK advances `snd_una`:
    /// forward progress proves the path is passing traffic again, even
    /// when Karn's rule leaves no segment eligible for measurement —
    /// without it, serial tail-hole recovery pays an already-obsolete
    /// backoff on every hole.
    pub fn reset_backoff(&mut self) {
        self.backoff = 0;
    }

    /// Current backoff exponent.
    pub fn backoff(&self) -> u32 {
        self.backoff
    }
}

/// Loss-adaptive pacing interval for rate-based clocking.
#[derive(Debug, Clone, Copy)]
pub struct LossPacer {
    /// Capacity spacing: wire time of one full frame at the bottleneck,
    /// µs. The interval never goes below this (the max-burst bound).
    base_interval_us: u64,
    /// Current interval, µs.
    interval_us: u64,
    /// Slowest allowed rate: `base × 2^MAX_SLOWDOWN_SHIFT`.
    max_interval_us: u64,
}

/// The pacer never slows past 64× the capacity interval.
const MAX_SLOWDOWN_SHIFT: u32 = 6;

impl LossPacer {
    /// Creates a pacer clocked at the known capacity interval.
    pub fn new(base_interval_us: u64) -> Self {
        let base = base_interval_us.max(1);
        LossPacer {
            base_interval_us: base,
            interval_us: base,
            max_interval_us: base << MAX_SLOWDOWN_SHIFT,
        }
    }

    /// Current release interval, µs. Always ≥ the capacity interval, so
    /// the sender's burst rate never exceeds what the bottleneck drains.
    pub fn interval_us(&self) -> u64 {
        self.interval_us
    }

    /// The capacity interval the pacer converges back to.
    pub fn base_interval_us(&self) -> u64 {
        self.base_interval_us
    }

    /// A loss signal (fast retransmit or RTO): halve the rate by
    /// doubling the interval, up to the slowdown cap.
    pub fn on_loss(&mut self) {
        self.interval_us = (self.interval_us * 2).min(self.max_interval_us);
    }

    /// An ACK advanced the window: recover 1/8 of the way back toward
    /// the capacity rate (multiplicative decrease, gradual recovery —
    /// the same shape as the RTT estimator's gains).
    pub fn on_progress(&mut self) {
        let above = self.interval_us - self.base_interval_us;
        let step = (above / 8).max(u64::from(above > 0));
        self.interval_us -= step;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_initializes_per_rfc6298() {
        let mut e = RttEstimator::new(1_000_000, 1_000, 60_000_000);
        e.on_sample(100_000); // 100 ms
        assert_eq!(e.srtt_us(), 100_000);
        assert_eq!(e.rttvar_us(), 50_000);
        // RTO = SRTT + 4·RTTVAR = 100 + 200 = 300 ms.
        assert_eq!(e.rto_us(), 300_000);
    }

    #[test]
    fn srtt_and_rttvar_converge_on_a_steady_path() {
        let mut e = RttEstimator::new(1_000_000, 1_000, 60_000_000);
        for _ in 0..100 {
            e.on_sample(100_000);
        }
        // Steady samples: SRTT pins to the sample, RTTVAR decays toward
        // zero, RTO approaches SRTT (clamped only by the floor).
        assert!(
            (99_000..=100_000).contains(&e.srtt_us()),
            "srtt {}",
            e.srtt_us()
        );
        assert!(e.rttvar_us() < 2_000, "rttvar {}", e.rttvar_us());
        assert!(e.rto_us() < 110_000, "rto {}", e.rto_us());
    }

    #[test]
    fn variance_tracks_jitter() {
        let mut e = RttEstimator::new(1_000_000, 1_000, 60_000_000);
        for i in 0..200u64 {
            e.on_sample(if i % 2 == 0 { 80_000 } else { 120_000 });
        }
        // ±20 ms jitter around a 100 ms mean keeps RTTVAR well above the
        // steady-state floor, widening the RTO margin.
        assert!(
            (90_000..=110_000).contains(&e.srtt_us()),
            "srtt {}",
            e.srtt_us()
        );
        assert!(e.rttvar_us() > 10_000, "rttvar {}", e.rttvar_us());
        assert!(e.rto_us() > e.srtt_us() + 40_000, "rto {}", e.rto_us());
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut e = RttEstimator::new(1_000_000, 1_000, 600_000_000);
        e.on_sample(100_000); // RTO 300 ms
        let base = e.rto_us();
        let mut expected = base;
        for _ in 0..MAX_BACKOFF {
            e.on_timeout();
            expected *= 2;
            assert_eq!(e.rto_us(), expected);
        }
        // Further timeouts stay at the cap: bounded backoff.
        e.on_timeout();
        e.on_timeout();
        assert_eq!(e.backoff(), MAX_BACKOFF);
        assert_eq!(e.rto_us(), base << MAX_BACKOFF);
    }

    #[test]
    fn sample_resets_backoff() {
        let mut e = RttEstimator::new(1_000_000, 1_000, 60_000_000);
        e.on_sample(100_000);
        e.on_timeout();
        e.on_timeout();
        assert_eq!(e.backoff(), 2);
        e.on_sample(100_000);
        assert_eq!(e.backoff(), 0);
        assert!(e.rto_us() < 400_000);
    }

    #[test]
    fn ack_progress_resets_backoff_without_a_sample() {
        let mut e = RttEstimator::new(1_000_000, 1_000, 60_000_000);
        e.on_sample(100_000);
        let base = e.rto_us();
        e.on_timeout();
        e.on_timeout();
        assert_eq!(e.backoff(), 2);
        e.reset_backoff();
        assert_eq!(e.backoff(), 0);
        assert_eq!(e.rto_us(), base, "estimate itself must be untouched");
    }

    #[test]
    fn rto_respects_clamps() {
        let mut e = RttEstimator::new(500, 10_000, 20_000);
        assert_eq!(e.rto_us(), 10_000, "initial clamped up to the floor");
        e.on_sample(100_000);
        assert_eq!(e.rto_us(), 20_000, "clamped down to the ceiling");
    }

    #[test]
    fn pacer_halves_rate_on_loss_and_recovers() {
        let mut p = LossPacer::new(240);
        assert_eq!(p.interval_us(), 240);
        p.on_loss();
        assert_eq!(p.interval_us(), 480, "half rate = double interval");
        p.on_loss();
        assert_eq!(p.interval_us(), 960);
        for _ in 0..200 {
            p.on_progress();
        }
        assert_eq!(p.interval_us(), 240, "recovers to capacity rate");
    }

    #[test]
    fn pacer_preserves_the_max_burst_bound() {
        let mut p = LossPacer::new(240);
        for _ in 0..1_000 {
            p.on_progress();
        }
        assert_eq!(p.interval_us(), 240, "never faster than capacity");
        for _ in 0..100 {
            p.on_loss();
        }
        assert_eq!(
            p.interval_us(),
            240 << MAX_SLOWDOWN_SHIFT,
            "slowdown capped so the transfer cannot livelock"
        );
    }
}
