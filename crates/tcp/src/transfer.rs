//! End-to-end WAN transfer experiment (Tables 6 and 7), extended to
//! lossy paths.
//!
//! Client ── WAN emulator router ── server, as in section 5.8: a
//! persistent connection already exists; at t = 0 the client's request
//! leaves for the server; the response of N segments comes back either
//! through standard slow-start TCP or through rate-based clocking at the
//! known bottleneck capacity. Response time is measured from the request
//! to the arrival of the last payload byte at the client.
//!
//! Beyond the paper's lossless testbed, the path can be made adverse in
//! two independent ways:
//!
//! - a **finite drop-tail bottleneck buffer** ([`TransferConfig::buffer_bytes`]):
//!   the router drops frames that arrive to a full queue, which is
//!   exactly the burst cost rate-based clocking exists to avoid (§3.1,
//!   Appendix A);
//! - **wire faults** ([`TransferConfig::wire_faults`]): per-packet loss,
//!   reordering, and duplication after the bottleneck, drawn from forked
//!   [`SimRng`] streams so one `(config, seed)` replays byte-for-byte.
//!
//! Loss recovery runs the full stack from this crate: out-of-order
//! reassembly with duplicate ACKs at the receiver, fast retransmit /
//! fast recovery at the sender, and an RFC 6298 retransmission timer.
//! The RTO (and the pacer's release point) is scheduled as a **soft
//! timer through the real facility** ([`SoftTimerCore`]): every timer's
//! firing point is the first check opportunity past its deadline —
//! either a trigger-state check (exponential residual, by memorylessness
//! of the trigger stream) or the next 1 kHz backup-grid sweep, whichever
//! comes first — so retransmission timing inherits the paper's
//! `(S+T, S+T+X+1)` bound instead of BSD's 500 ms slow-timeout grid.

use std::collections::BTreeMap;

use st_core::facility::{
    Config as FacilityConfig, Expired, FireOrigin, SoftTimerCore, TimerHandle,
};
use st_net::link::Link;
use st_net::packet::{ConnId, Packet, HEADER_BYTES};
use st_net::wan::WanEmulator;
use st_net::wire::{WireFate, WireFaultInjector, WireFaults};
use st_sim::{Bandwidth, Ctx, Engine, Exp, SampleDist, SimDuration, SimRng, SimTime, World};

use crate::receiver::{AckDecision, AckPolicy, TcpReceiver};
use crate::recovery::{LossPacer, RttEstimator};
use crate::sender::{SenderConfig, SenderMode, TcpSender};

/// Transfer experiment configuration.
#[derive(Debug, Clone)]
pub struct TransferConfig {
    /// Bottleneck bandwidth of the emulated WAN.
    pub bottleneck: Bandwidth,
    /// One-way propagation delay of the emulated WAN.
    pub one_way_delay: SimDuration,
    /// The server's LAN access link (the testbed's 100 Mbps Ethernet).
    pub lan: Bandwidth,
    /// Response length in MSS-sized segments (the paper's "transfer
    /// size (1448 byte packets)" column).
    pub transfer_segments: u64,
    /// Sender configuration (mode, initial window, rwnd).
    pub sender: SenderConfig,
    /// Rate-based mode: the pacing interval in µs per segment — the wire
    /// time of one full frame at the known capacity (240 µs at 50 Mbps,
    /// 120 µs at 100 Mbps).
    pub pacing_interval_us: u64,
    /// Mean trigger-state gap on the (otherwise idle) server, µs. An idle
    /// CPU's loop checks continuously, so this is small (~1-2 µs).
    pub trigger_mean_us: f64,
    /// The client's delayed-ACK timer period (FreeBSD: a 200 ms grid).
    pub delack_period: SimDuration,
    /// The client's ACK policy.
    pub ack_policy: AckPolicy,
    /// Cross traffic on the reverse (client-to-server) path, causing ACK
    /// compression (Appendix A.1): every `period`, a burst of
    /// `burst_bytes` occupies the reverse bottleneck ahead of any ACKs,
    /// which then drain back to back.
    pub reverse_cross_traffic: Option<CrossTraffic>,
    /// Per-direction drop-tail waiting room at the bottleneck router,
    /// bytes; `None` is the paper's unlimited lossless testbed queue.
    pub buffer_bytes: Option<u64>,
    /// Per-packet wire faults on the response path (both directions);
    /// `None` is a healthy wire. The initial request is exempt so every
    /// run starts.
    pub wire_faults: Option<WireFaults>,
    /// RNG seed.
    pub seed: u64,
}

/// Periodic cross traffic on the reverse path.
#[derive(Debug, Clone, Copy)]
pub struct CrossTraffic {
    /// Bytes injected per burst.
    pub burst_bytes: u32,
    /// Gap between bursts.
    pub period: SimDuration,
}

impl TransferConfig {
    /// The Table 6 setup at a given transfer size (50 Mbps bottleneck).
    pub fn table6(transfer_segments: u64, rate_based: bool) -> Self {
        TransferConfig::paper(Bandwidth::mbps(50), 240, transfer_segments, rate_based)
    }

    /// The Table 7 setup (100 Mbps bottleneck).
    pub fn table7(transfer_segments: u64, rate_based: bool) -> Self {
        TransferConfig::paper(Bandwidth::mbps(100), 120, transfer_segments, rate_based)
    }

    fn paper(
        bottleneck: Bandwidth,
        pacing_interval_us: u64,
        transfer_segments: u64,
        rate_based: bool,
    ) -> Self {
        TransferConfig {
            bottleneck,
            one_way_delay: SimDuration::from_millis(50),
            lan: Bandwidth::mbps(100),
            transfer_segments,
            sender: if rate_based {
                SenderConfig::rate_based()
            } else {
                SenderConfig::freebsd_defaults()
            },
            pacing_interval_us,
            trigger_mean_us: 1.5,
            delack_period: SimDuration::from_millis(200),
            ack_policy: AckPolicy::DelayedEvery2,
            reverse_cross_traffic: None,
            buffer_bytes: None,
            wire_faults: None,
            seed: 1,
        }
    }

    /// Bounds the bottleneck buffer (builder style).
    pub fn with_buffer(mut self, bytes: u64) -> Self {
        self.buffer_bytes = Some(bytes);
        self
    }

    /// Injects wire faults (builder style).
    pub fn with_wire_faults(mut self, faults: WireFaults) -> Self {
        self.wire_faults = Some(faults);
        self
    }
}

/// Result of one transfer.
#[derive(Debug, Clone)]
pub struct TransferOutcome {
    /// Request-to-last-byte response time.
    pub response_time: SimDuration,
    /// Payload throughput over the response time, Mbps (the paper's
    /// "Xput" column).
    pub throughput_mbps: f64,
    /// Segments the server sent (retransmissions included).
    pub segments: u64,
    /// ACK packets the client sent.
    pub acks: u64,
    /// Inter-arrival statistics of ACKs at the server, µs.
    pub ack_gap_us: st_stats::Summary,
    /// ACK gaps under 50 µs — back-to-back arrivals, the direct signature
    /// of ACK compression (a 52 B ACK serializes in ~8 µs at 50 Mbps).
    pub compressed_ack_gaps: u64,
    /// Largest segment count covered by one ACK.
    pub max_ack_coverage: u32,
    /// Worst instantaneous bottleneck-queue backlog at the WAN router
    /// (time to drain), a direct measure of sender burstiness.
    pub wan_max_backlog: SimDuration,
    /// Frames the bottleneck's drop-tail buffer discarded (both
    /// directions; 0 on an unlimited buffer).
    pub wan_drops: u64,
    /// Packets the faulty wire lost in flight (both directions).
    pub wire_drops: u64,
    /// Segments retransmitted (fast retransmit + timeout driven).
    pub retransmits: u64,
    /// Fast retransmits triggered by three duplicate ACKs.
    pub fast_retransmits: u64,
    /// Retransmission timeouts taken.
    pub timeouts: u64,
    /// Worst RTO backoff exponent reached (bounded-backoff witness).
    pub max_rto_backoff: u32,
    /// Smoothed RTT estimate at the end of the transfer, µs.
    pub srtt_us: u64,
    /// Soft-timer events (pace + RTO) fired at trigger-state checks.
    pub fired_trigger: u64,
    /// Soft-timer events swept up by the backup grid.
    pub fired_backup: u64,
}

/// Payloads scheduled through the soft-timer facility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SoftEv {
    /// Release the next paced segment.
    Pace,
    /// The retransmission timer.
    Rto,
}

#[derive(Debug)]
enum Ev {
    /// A cross-traffic burst enters the reverse path.
    CrossTraffic,
    /// The client's request (or an ACK) arrives at the server.
    ServerRx(Packet),
    /// A data segment arrives at the client.
    ClientRx(Packet),
    /// The client's periodic delayed-ACK / slow-reader timer.
    AckTimer,
    /// A check opportunity on the server: poll (trigger state) or sweep
    /// (backup grid) the soft-timer facility.
    TimerCheck {
        /// True when this opportunity is a backup-grid sweep.
        backup: bool,
    },
}

struct TransferWorld {
    config: TransferConfig,
    sender: TcpSender,
    receiver: TcpReceiver,
    wan: WanEmulator,
    server_lan: Link,
    rng: SimRng,
    trigger_gap: Exp,
    wire_fwd: WireFaultInjector,
    wire_rev: WireFaultInjector,

    /// The server's soft-timer facility: pace + RTO events.
    core: SoftTimerCore<SoftEv>,
    scratch: Vec<Expired<SoftEv>>,
    backup_x: u64,
    est: RttEstimator,
    loss_pacer: LossPacer,
    rto_handle: Option<TimerHandle>,
    /// Send time and retransmitted? per in-flight segment (Karn's rule:
    /// never RTT-sample a retransmitted sequence range).
    sent_times: BTreeMap<u64, (SimTime, bool)>,
    /// When the last retransmission left; RTT samples from segments sent
    /// at or before this measure the recovery stall, so they are skipped.
    last_rexmit_at: Option<SimTime>,
    max_rto_backoff: u32,
    fired_trigger: u64,
    fired_backup: u64,

    next_packet_id: u64,
    transfer_len: u64,
    started: bool,
    pace_pending: bool,
    done_at: Option<SimTime>,
    last_ack_at: Option<SimTime>,
    ack_gap_us: st_stats::Summary,
    compressed_ack_gaps: u64,
}

impl TransferWorld {
    fn new(config: TransferConfig) -> Self {
        let transfer_len = config.transfer_segments * config.sender.mss as u64;
        let mut master = SimRng::seed(config.seed);
        // Stable fork labels: 1 = trigger gaps, 2 = forward wire,
        // 3 = reverse wire.
        let rng = master.fork(1);
        let wire_fwd = WireFaultInjector::new(config.wire_faults, master.fork(2));
        let wire_rev = WireFaultInjector::new(config.wire_faults, master.fork(3));
        let facility = FacilityConfig {
            measure_hz: 1_000_000,
            interrupt_hz: 1_000,
            record_stats: false,
        };
        TransferWorld {
            sender: TcpSender::new(config.sender, ConnId(1), transfer_len),
            receiver: TcpReceiver::new(config.ack_policy),
            wan: match config.buffer_bytes {
                Some(b) => WanEmulator::with_buffer(config.bottleneck, config.one_way_delay, b),
                None => WanEmulator::new(config.bottleneck, config.one_way_delay),
            },
            server_lan: Link::new(config.lan, SimDuration::from_micros(5)),
            rng,
            trigger_gap: Exp::with_mean(config.trigger_mean_us.max(0.01)),
            wire_fwd,
            wire_rev,
            backup_x: facility.x_ticks(),
            core: SoftTimerCore::new(facility),
            scratch: Vec::new(),
            est: RttEstimator::wan_defaults(),
            loss_pacer: LossPacer::new(config.pacing_interval_us.max(1)),
            rto_handle: None,
            sent_times: BTreeMap::new(),
            last_rexmit_at: None,
            max_rto_backoff: 0,
            fired_trigger: 0,
            fired_backup: 0,
            next_packet_id: 1,
            transfer_len,
            started: false,
            pace_pending: false,
            config,
            done_at: None,
            last_ack_at: None,
            ack_gap_us: st_stats::Summary::new(),
            compressed_ack_gaps: 0,
        }
    }

    fn pid(&mut self) -> u64 {
        let id = self.next_packet_id;
        self.next_packet_id += 1;
        id
    }

    /// Schedules `ev` through the facility and books the engine event
    /// for its firing check: the first trigger-state check past the
    /// deadline (exponential residual — the trigger stream is memoryless,
    /// so sampling at schedule time is exact) or the next backup-grid
    /// sweep, whichever comes first. This is the paper's firing rule:
    /// the event fires inside `(S+T, S+T+X+1)`.
    fn schedule_soft(
        &mut self,
        now: SimTime,
        delta_us: u64,
        ev: SoftEv,
        ctx: &mut Ctx<'_, Ev>,
    ) -> TimerHandle {
        let now_ticks = now.as_micros();
        let handle = self.core.schedule(now_ticks, delta_us, ev);
        let due = now_ticks + delta_us + 1;
        let trigger_after = {
            let gap = self.trigger_gap.sample(&mut self.rng).max(0.0);
            gap.ceil() as u64
        };
        let grid_after = (self.backup_x - due % self.backup_x) % self.backup_x;
        let backup = grid_after <= trigger_after;
        let check_at = due + grid_after.min(trigger_after);
        ctx.schedule_at(SimTime::from_micros(check_at), Ev::TimerCheck { backup });
        handle
    }

    /// (Re-)arms the retransmission timer to the estimator's current
    /// (possibly backed-off) RTO, or disarms it when nothing is in
    /// flight.
    fn rearm_rto(&mut self, now: SimTime, ctx: &mut Ctx<'_, Ev>) {
        if let Some(h) = self.rto_handle.take() {
            self.core.cancel(h);
        }
        if self.sender.inflight() == 0 || self.done_at.is_some() {
            return;
        }
        let rto = self.est.rto_us();
        if st_trace::active() {
            st_trace::emit(
                st_trace::Category::Tcp,
                "tcp.rto.arm",
                now.as_micros(),
                rto,
                self.est.backoff().into(),
            );
        }
        self.rto_handle = Some(self.schedule_soft(now, rto, SoftEv::Rto, ctx));
    }

    /// Sends one data segment: server LAN, then the WAN bottleneck
    /// (which may tail-drop), then the wire (which may lose, duplicate,
    /// or hold back the frame).
    fn transmit(&mut self, now: SimTime, p: Packet, ctx: &mut Ctx<'_, Ev>) {
        self.sent_times.entry(p.tcp.seq).or_insert((now, false));
        let at_router = self.server_lan.enqueue_forward(now, p.wire_bytes);
        let Some(at_client) = self.wan.try_forward(at_router, p.wire_bytes) else {
            if st_trace::active() {
                st_trace::count("tcp.wan.drop", 1);
                st_trace::emit(
                    st_trace::Category::Tcp,
                    "tcp.wan.drop",
                    at_router.as_micros(),
                    p.tcp.seq,
                    0,
                );
            }
            return;
        };
        match self.wire_fwd.fate() {
            WireFate::Drop => {
                if st_trace::active() {
                    st_trace::count("tcp.wire.drop", 1);
                }
            }
            WireFate::Deliver => {
                ctx.schedule_at(at_client, Ev::ClientRx(p));
            }
            WireFate::Duplicate => {
                ctx.schedule_at(at_client, Ev::ClientRx(p.clone()));
                ctx.schedule_at(at_client, Ev::ClientRx(p));
            }
            WireFate::Reorder { extra } => {
                ctx.schedule_at(at_client + extra, Ev::ClientRx(p));
            }
        }
    }

    /// Retransmits the segment at `seq` right now.
    fn retransmit(&mut self, now: SimTime, seq: u64, ctx: &mut Ctx<'_, Ev>) {
        let id = self.pid();
        let p = self.sender.retransmit_segment(id, seq);
        // Karn's rule: this sequence range is now ambiguous.
        match self.sent_times.get_mut(&seq) {
            Some(e) => e.1 = true,
            None => {
                self.sent_times.insert(seq, (now, true));
            }
        }
        self.last_rexmit_at = Some(now);
        if st_trace::active() {
            st_trace::count("tcp.retransmit", 1);
        }
        self.transmit(now, p, ctx);
    }

    /// Self-clocked mode: send as much as the window allows.
    fn pump_self_clocked(&mut self, now: SimTime, ctx: &mut Ctx<'_, Ev>) {
        while self.sender.can_send() {
            let id = self.pid();
            let p = self
                .sender
                .next_segment(id)
                .expect("can_send implies a segment");
            self.transmit(now, p, ctx);
        }
        if self.rto_handle.is_none() {
            self.rearm_rto(now, ctx);
        }
    }

    /// Rate-based mode: schedule the next pacing opportunity through the
    /// facility at the loss-adaptive interval.
    fn schedule_pace(&mut self, now: SimTime, interval_us: u64, ctx: &mut Ctx<'_, Ev>) {
        self.pace_pending = true;
        self.schedule_soft(now, interval_us, SoftEv::Pace, ctx);
    }

    fn send_ack(&mut self, now: SimTime, ack: u64, ctx: &mut Ctx<'_, Ev>) {
        let id = self.pid();
        let p = Packet::ack(id, ConnId(1), ack, self.config.sender.rwnd);
        let Some(at_server) = self.wan.try_reverse(now, HEADER_BYTES) else {
            return; // ACK tail-dropped at the reverse bottleneck.
        };
        match self.wire_rev.fate() {
            WireFate::Drop => {}
            WireFate::Deliver => {
                ctx.schedule_at(at_server, Ev::ServerRx(p));
            }
            WireFate::Duplicate => {
                ctx.schedule_at(at_server, Ev::ServerRx(p.clone()));
                ctx.schedule_at(at_server, Ev::ServerRx(p));
            }
            WireFate::Reorder { extra } => {
                ctx.schedule_at(at_server + extra, Ev::ServerRx(p));
            }
        }
    }

    /// Karn-filtered RTT sampling: the freshest fully-acknowledged,
    /// never-retransmitted segment provides the sample.
    fn sample_rtt(&mut self, now: SimTime, upto: u64) {
        let acked: Vec<u64> = self.sent_times.range(..upto).map(|(&s, _)| s).collect();
        let mut sample: Option<SimTime> = None;
        for seq in acked {
            if let Some((sent_at, rexmit)) = self.sent_times.remove(&seq) {
                // Karn's rule, strengthened: skip retransmitted ranges,
                // and skip anything sent before the latest retransmission.
                // A pre-loss segment's ACK was held back by the hole, so
                // its elapsed time measures the recovery stall, not the
                // path — timestamp-echo TCP would sample the recent
                // hole-filler here, not the stalled segment.
                let stalled = self.last_rexmit_at.is_some_and(|at| sent_at <= at);
                if !rexmit && !stalled {
                    sample = Some(sent_at);
                }
            }
        }
        if let Some(sent_at) = sample {
            self.est.on_sample(now.since(sent_at).as_micros().max(1));
        }
    }

    /// Dispatches one expired soft-timer event.
    fn dispatch_soft(&mut self, now: SimTime, ev: Expired<SoftEv>, ctx: &mut Ctx<'_, Ev>) {
        match ev.origin {
            FireOrigin::TriggerState => self.fired_trigger += 1,
            FireOrigin::BackupInterrupt => self.fired_backup += 1,
        }
        match ev.payload {
            SoftEv::Pace => {
                self.pace_pending = false;
                if self.sender.all_sent() || self.done_at.is_some() {
                    return;
                }
                let id = self.pid();
                if let Some(p) = self.sender.next_segment(id) {
                    if st_trace::active() {
                        st_trace::count("tcp.pace.release", 1);
                    }
                    self.transmit(now, p, ctx);
                    if self.rto_handle.is_none() {
                        self.rearm_rto(now, ctx);
                    }
                    if !self.sender.all_sent() {
                        let interval = self.loss_pacer.interval_us();
                        self.schedule_pace(now, interval, ctx);
                    }
                }
                // If rwnd-blocked, the next ACK restarts pacing.
            }
            SoftEv::Rto => {
                self.rto_handle = None;
                if self.done_at.is_some() {
                    return;
                }
                if let Some(seq) = self.sender.on_rto() {
                    self.est.on_timeout();
                    self.max_rto_backoff = self.max_rto_backoff.max(self.est.backoff());
                    self.loss_pacer.on_loss();
                    if st_trace::active() {
                        st_trace::count("tcp.rto.fire", 1);
                        st_trace::emit(
                            st_trace::Category::Tcp,
                            "tcp.rto.fire",
                            now.as_micros(),
                            seq,
                            self.est.backoff().into(),
                        );
                    }
                    self.retransmit(now, seq, ctx);
                    self.rearm_rto(now, ctx);
                }
            }
        }
    }
}

impl World for TransferWorld {
    type Event = Ev;

    fn handle(&mut self, ev: Ev, ctx: &mut Ctx<'_, Ev>) {
        let now = ctx.now();
        match ev {
            Ev::CrossTraffic => {
                if let Some(ct) = self.config.reverse_cross_traffic {
                    // The burst occupies the reverse bottleneck; its
                    // delivery is irrelevant, only the queueing it causes.
                    let _ = self.wan.try_reverse(now, ct.burst_bytes);
                    if self.done_at.is_none() {
                        ctx.schedule_in(ct.period, Ev::CrossTraffic);
                    }
                }
            }
            Ev::ServerRx(p) => {
                if !self.started {
                    // The request: start the response.
                    self.started = true;
                    match self.config.sender.mode {
                        SenderMode::SelfClocked => self.pump_self_clocked(now, ctx),
                        SenderMode::RateBased => self.schedule_pace(now, 0, ctx),
                    }
                } else if p.is_pure_ack() {
                    if let Some(last) = self.last_ack_at {
                        let gap = now.since(last).as_micros_f64();
                        self.ack_gap_us.record(gap);
                        if gap < 50.0 {
                            self.compressed_ack_gaps += 1;
                        }
                    }
                    self.last_ack_at = Some(now);
                    let out = self.sender.on_ack(p.tcp.ack);
                    st_scope::gauge(now.as_micros(), "tcp.cwnd", self.sender.cwnd() as f64);
                    st_scope::gauge(
                        now.as_micros(),
                        "tcp.inflight",
                        self.sender.inflight() as f64,
                    );
                    if out.newly_acked > 0 {
                        self.sample_rtt(now, p.tcp.ack);
                        // Forward progress clears any RTO backoff even
                        // when Karn's rule yielded no usable sample.
                        self.est.reset_backoff();
                        self.loss_pacer.on_progress();
                        // New data acknowledged: restart the timer.
                        self.rearm_rto(now, ctx);
                    }
                    if let Some(seq) = out.retransmit {
                        if out.loss_signal {
                            self.loss_pacer.on_loss();
                            if st_trace::active() {
                                st_trace::count("tcp.fast_retransmit", 1);
                                st_trace::emit(
                                    st_trace::Category::Tcp,
                                    "tcp.fast_retransmit",
                                    now.as_micros(),
                                    seq,
                                    self.sender.dup_acks().into(),
                                );
                            }
                        }
                        self.retransmit(now, seq, ctx);
                    }
                    match self.config.sender.mode {
                        SenderMode::SelfClocked => self.pump_self_clocked(now, ctx),
                        SenderMode::RateBased => {
                            // An ACK freeing rwnd space restarts pacing if
                            // it had stalled.
                            if !self.pace_pending && !self.sender.all_sent() {
                                self.schedule_pace(now, 0, ctx);
                            }
                        }
                    }
                }
            }
            Ev::TimerCheck { backup } => {
                let ticks = now.as_micros();
                let mut due = std::mem::take(&mut self.scratch);
                due.clear();
                if backup {
                    self.core.interrupt_sweep(ticks, &mut due);
                } else {
                    self.core.poll(ticks, &mut due);
                }
                for expired in due.drain(..) {
                    self.dispatch_soft(now, expired, ctx);
                }
                self.scratch = due;
            }
            Ev::ClientRx(p) => {
                let read_pending_before = self.receiver.next_read_at();
                match self.receiver.on_data(now, p.tcp.seq, p.payload_bytes) {
                    AckDecision::AckNow { ack } => self.send_ack(now, ack, ctx),
                    AckDecision::Delay => {}
                }
                // A slow reader schedules its next application read when
                // the first segment of a burst arrives; fire the timer at
                // exactly that time (not on the coarse delack grid).
                if read_pending_before.is_none() {
                    if let Some(at) = self.receiver.next_read_at() {
                        ctx.schedule_at(at, Ev::AckTimer);
                    }
                }
                if self.receiver.rcv_nxt() >= self.transfer_len && self.done_at.is_none() {
                    self.done_at = Some(now);
                }
            }
            Ev::AckTimer => {
                if let Some(ack) = self.receiver.on_timer(now) {
                    self.send_ack(now, ack, ctx);
                }
                // The periodic delayed-ACK grid re-arms itself; one-shot
                // slow-reader read events (scheduled above) do not — they
                // fire once at their exact time. Distinguish by policy:
                // the grid is only needed for delayed ACKs.
                if self.done_at.is_none()
                    && matches!(self.config.ack_policy, AckPolicy::DelayedEvery2)
                {
                    ctx.schedule_in(self.config.delack_period, Ev::AckTimer);
                }
            }
        }
    }
}

/// Runs one transfer to completion.
#[derive(Debug)]
pub struct TransferSim;

impl TransferSim {
    /// Executes the configured transfer and returns its outcome.
    pub fn run(config: TransferConfig) -> TransferOutcome {
        let transfer_len = config.transfer_segments * config.sender.mss as u64;
        let mut engine = Engine::new(TransferWorld::new(config.clone()));

        // The request leaves the client at t = 0 and crosses the WAN.
        // The reverse queue is empty at t = 0, so it is never dropped.
        let at_server = engine
            .world_mut()
            .wan
            .try_reverse(SimTime::ZERO, 300 + HEADER_BYTES)
            .expect("empty reverse queue at t = 0 cannot drop");
        let req = Packet::data(0, ConnId(1), 0, 300, 0, 65_535);
        engine.schedule_at(at_server, Ev::ServerRx(req));
        engine.schedule_at(SimTime::ZERO + config.delack_period, Ev::AckTimer);
        if config.reverse_cross_traffic.is_some() {
            engine.schedule_at(SimTime::from_micros(11), Ev::CrossTraffic);
        }

        let finished = engine.run_while(|w| w.done_at.is_none());
        assert!(finished, "transfer did not complete: event queue drained");

        let world = engine.into_world();
        let done = world.done_at.expect("loop exits only when done");
        let response_time = done.since(SimTime::ZERO);
        let secs = response_time.as_secs_f64();
        TransferOutcome {
            response_time,
            throughput_mbps: if secs > 0.0 {
                transfer_len as f64 * 8.0 / secs / 1e6
            } else {
                0.0
            },
            segments: world.sender.segments_sent(),
            acks: world.receiver.acks_sent(),
            ack_gap_us: world.ack_gap_us.clone(),
            compressed_ack_gaps: world.compressed_ack_gaps,
            max_ack_coverage: world.receiver.max_ack_coverage(),
            wan_max_backlog: world.wan.max_backlog(),
            wan_drops: world.wan.drops(),
            wire_drops: world.wire_fwd.dropped() + world.wire_rev.dropped(),
            retransmits: world.sender.retransmits(),
            fast_retransmits: world.sender.fast_retransmits(),
            timeouts: world.sender.timeouts(),
            max_rto_backoff: world.max_rto_backoff,
            srtt_us: world.est.srtt_us(),
            fired_trigger: world.fired_trigger,
            fired_backup: world.fired_backup,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recovery::MAX_BACKOFF;

    #[test]
    fn rate_based_small_transfer_is_about_one_rtt() {
        // Table 6, 5-packet row, rate-based: ~101 ms.
        let out = TransferSim::run(TransferConfig::table6(5, true));
        let ms = out.response_time.as_secs_f64() * 1e3;
        assert!((95.0..115.0).contains(&ms), "response {ms} ms");
        assert_eq!(out.segments, 5);
        assert_eq!(out.retransmits, 0, "lossless path");
    }

    #[test]
    fn regular_small_transfer_stalls_on_delayed_ack() {
        // Table 6, 5-packet row, regular TCP: hundreds of ms — the lone
        // initial segment waits out the delayed-ACK timer.
        let out = TransferSim::run(TransferConfig::table6(5, false));
        let ms = out.response_time.as_secs_f64() * 1e3;
        assert!(ms > 300.0, "expected delack stall, got {ms} ms");
    }

    #[test]
    fn rate_based_100_packets_matches_paper_shape() {
        // Table 6: 123.7 ms. One RTT/2 each way + 100 * 240 µs of pacing.
        let out = TransferSim::run(TransferConfig::table6(100, true));
        let ms = out.response_time.as_secs_f64() * 1e3;
        assert!((115.0..140.0).contains(&ms), "response {ms} ms");
    }

    #[test]
    fn regular_100_packets_takes_many_rtts() {
        // Table 6: 1145 ms — slow start needs ~10 round trips.
        let out = TransferSim::run(TransferConfig::table6(100, false));
        let ms = out.response_time.as_secs_f64() * 1e3;
        assert!((800.0..1500.0).contains(&ms), "response {ms} ms");
    }

    #[test]
    fn large_transfer_converges_to_bottleneck() {
        // Table 6, 10000 packets: both modes approach the bottleneck
        // rate; rate-based stays ahead.
        let reg = TransferSim::run(TransferConfig::table6(10_000, false));
        let rbc = TransferSim::run(TransferConfig::table6(10_000, true));
        assert!(rbc.throughput_mbps > reg.throughput_mbps);
        assert!(
            rbc.throughput_mbps > 40.0 && rbc.throughput_mbps < 50.0,
            "rbc {}",
            rbc.throughput_mbps
        );
    }

    #[test]
    fn faster_bottleneck_is_faster() {
        let t6 = TransferSim::run(TransferConfig::table6(1000, true));
        let t7 = TransferSim::run(TransferConfig::table7(1000, true));
        assert!(t7.response_time < t6.response_time);
    }

    #[test]
    fn all_segments_delivered_exactly_once() {
        let out = TransferSim::run(TransferConfig::table7(500, false));
        assert_eq!(out.segments, 500, "no loss, no retransmit on this path");
        assert_eq!(out.retransmits, 0);
        assert_eq!(out.timeouts, 0);
    }

    #[test]
    fn soft_timer_checks_fire_paced_segments() {
        // The pace/RTO events run through the real facility: both
        // origins should appear over a long paced transfer (most fires
        // come from the dense trigger stream; occasionally the 1 kHz
        // grid wins the race).
        let out = TransferSim::run(TransferConfig::table6(2_000, true));
        assert!(out.fired_trigger > 0, "no trigger-state fires");
        assert!(
            out.fired_trigger + out.fired_backup >= 2_000,
            "every segment release is a facility fire"
        );
    }

    #[test]
    fn lossy_wire_transfer_completes_with_recovery() {
        let cfg = TransferConfig::table6(300, false).with_wire_faults(WireFaults::mild());
        let out = TransferSim::run(cfg);
        assert!(out.retransmits > 0, "1% loss over 300 segments recovers");
        assert!(
            out.max_rto_backoff <= MAX_BACKOFF,
            "backoff bounded: {}",
            out.max_rto_backoff
        );
        assert!(out.srtt_us > 90_000, "SRTT near the 100 ms RTT");
    }

    #[test]
    fn nasty_wire_transfer_still_completes() {
        // 5% loss + reorders + duplicates in both directions: the
        // recovery machinery must never panic or livelock.
        for seed in 1..=3 {
            let mut cfg = TransferConfig::table6(150, false).with_wire_faults(WireFaults::nasty());
            cfg.seed = seed;
            let out = TransferSim::run(cfg);
            assert!(out.retransmits > 0, "seed {seed}");
            assert!(out.max_rto_backoff <= MAX_BACKOFF, "seed {seed}");
        }
    }

    #[test]
    fn paced_mode_survives_wire_faults() {
        let mut cfg = TransferConfig::table6(200, true).with_wire_faults(WireFaults::mild());
        cfg.seed = 5;
        let out = TransferSim::run(cfg);
        assert_eq!(out.segments - out.retransmits, 200);
    }

    #[test]
    fn small_buffer_punishes_self_clocked_bursts() {
        // A tight drop-tail buffer (a handful of frames) at the
        // bottleneck: slow start's doubling bursts overflow it, while
        // paced release at the capacity interval keeps the queue shallow
        // — the robustness payoff of §3.1's rate-based clocking.
        let buffer = 8 * 1_500;
        let reg = TransferSim::run(TransferConfig::table6(400, false).with_buffer(buffer));
        let rbc = TransferSim::run(TransferConfig::table6(400, true).with_buffer(buffer));
        assert!(reg.wan_drops > 0, "bursts must overflow the tiny buffer");
        assert!(
            rbc.wan_drops < reg.wan_drops,
            "paced {} vs self-clocked {} drops",
            rbc.wan_drops,
            reg.wan_drops
        );
        assert_eq!(reg.segments - reg.retransmits, 400, "all data delivered");
    }

    #[test]
    fn lossy_runs_replay_byte_identically() {
        let mk = || {
            let mut cfg = TransferConfig::table6(250, false)
                .with_buffer(6 * 1_500)
                .with_wire_faults(WireFaults::nasty());
            cfg.seed = 42;
            TransferSim::run(cfg)
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a.response_time, b.response_time);
        assert_eq!(a.segments, b.segments);
        assert_eq!(a.retransmits, b.retransmits);
        assert_eq!(a.timeouts, b.timeouts);
        assert_eq!(a.wan_drops, b.wan_drops);
        assert_eq!(a.wire_drops, b.wire_drops);
        assert_eq!(a.acks, b.acks);
    }
}
