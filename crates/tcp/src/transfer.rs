//! End-to-end WAN transfer experiment (Tables 6 and 7).
//!
//! Client ── WAN emulator router ── server, as in section 5.8: a
//! persistent connection already exists; at t = 0 the client's request
//! leaves for the server; the response of N segments comes back either
//! through standard slow-start TCP or through rate-based clocking at the
//! known bottleneck capacity. Response time is measured from the request
//! to the arrival of the last payload byte at the client.

use st_net::link::Link;
use st_net::packet::{ConnId, Packet, HEADER_BYTES};
use st_net::wan::WanEmulator;
use st_sim::{Bandwidth, Ctx, Engine, Exp, SampleDist, SimDuration, SimRng, SimTime, World};

use crate::receiver::{AckDecision, AckPolicy, TcpReceiver};
use crate::sender::{SenderConfig, SenderMode, TcpSender};

/// Transfer experiment configuration.
#[derive(Debug, Clone)]
pub struct TransferConfig {
    /// Bottleneck bandwidth of the emulated WAN.
    pub bottleneck: Bandwidth,
    /// One-way propagation delay of the emulated WAN.
    pub one_way_delay: SimDuration,
    /// The server's LAN access link (the testbed's 100 Mbps Ethernet).
    pub lan: Bandwidth,
    /// Response length in MSS-sized segments (the paper's "transfer
    /// size (1448 byte packets)" column).
    pub transfer_segments: u64,
    /// Sender configuration (mode, initial window, rwnd).
    pub sender: SenderConfig,
    /// Rate-based mode: the pacing interval in µs per segment — the wire
    /// time of one full frame at the known capacity (240 µs at 50 Mbps,
    /// 120 µs at 100 Mbps).
    pub pacing_interval_us: u64,
    /// Mean trigger-state gap on the (otherwise idle) server, µs. An idle
    /// CPU's loop checks continuously, so this is small (~1-2 µs).
    pub trigger_mean_us: f64,
    /// The client's delayed-ACK timer period (FreeBSD: a 200 ms grid).
    pub delack_period: SimDuration,
    /// The client's ACK policy.
    pub ack_policy: AckPolicy,
    /// Cross traffic on the reverse (client-to-server) path, causing ACK
    /// compression (Appendix A.1): every `period`, a burst of
    /// `burst_bytes` occupies the reverse bottleneck ahead of any ACKs,
    /// which then drain back to back.
    pub reverse_cross_traffic: Option<CrossTraffic>,
    /// RNG seed.
    pub seed: u64,
}

/// Periodic cross traffic on the reverse path.
#[derive(Debug, Clone, Copy)]
pub struct CrossTraffic {
    /// Bytes injected per burst.
    pub burst_bytes: u32,
    /// Gap between bursts.
    pub period: SimDuration,
}

impl TransferConfig {
    /// The Table 6 setup at a given transfer size (50 Mbps bottleneck).
    pub fn table6(transfer_segments: u64, rate_based: bool) -> Self {
        TransferConfig::paper(Bandwidth::mbps(50), 240, transfer_segments, rate_based)
    }

    /// The Table 7 setup (100 Mbps bottleneck).
    pub fn table7(transfer_segments: u64, rate_based: bool) -> Self {
        TransferConfig::paper(Bandwidth::mbps(100), 120, transfer_segments, rate_based)
    }

    fn paper(
        bottleneck: Bandwidth,
        pacing_interval_us: u64,
        transfer_segments: u64,
        rate_based: bool,
    ) -> Self {
        TransferConfig {
            bottleneck,
            one_way_delay: SimDuration::from_millis(50),
            lan: Bandwidth::mbps(100),
            transfer_segments,
            sender: if rate_based {
                SenderConfig::rate_based()
            } else {
                SenderConfig::freebsd_defaults()
            },
            pacing_interval_us,
            trigger_mean_us: 1.5,
            delack_period: SimDuration::from_millis(200),
            ack_policy: AckPolicy::DelayedEvery2,
            reverse_cross_traffic: None,
            seed: 1,
        }
    }
}

/// Result of one transfer.
#[derive(Debug, Clone)]
pub struct TransferOutcome {
    /// Request-to-last-byte response time.
    pub response_time: SimDuration,
    /// Payload throughput over the response time, Mbps (the paper's
    /// "Xput" column).
    pub throughput_mbps: f64,
    /// Segments the server sent.
    pub segments: u64,
    /// ACK packets the client sent.
    pub acks: u64,
    /// Inter-arrival statistics of ACKs at the server, µs.
    pub ack_gap_us: st_stats::Summary,
    /// ACK gaps under 50 µs — back-to-back arrivals, the direct signature
    /// of ACK compression (a 52 B ACK serializes in ~8 µs at 50 Mbps).
    pub compressed_ack_gaps: u64,
    /// Largest segment count covered by one ACK.
    pub max_ack_coverage: u32,
    /// Worst instantaneous bottleneck-queue backlog at the WAN router
    /// (time to drain), a direct measure of sender burstiness.
    pub wan_max_backlog: SimDuration,
}

#[derive(Debug)]
enum Ev {
    /// A cross-traffic burst enters the reverse path.
    CrossTraffic,
    /// The client's request (or an ACK) arrives at the server.
    ServerRx(Packet),
    /// A data segment arrives at the client.
    ClientRx(Packet),
    /// The client's periodic delayed-ACK / slow-reader timer.
    AckTimer,
    /// A pacing opportunity on the server (soft-timer fire).
    PaceFire,
}

struct TransferWorld {
    config: TransferConfig,
    sender: TcpSender,
    receiver: TcpReceiver,
    wan: WanEmulator,
    server_lan: Link,
    rng: SimRng,
    trigger_gap: Exp,
    next_packet_id: u64,
    transfer_len: u64,
    started: bool,
    pace_pending: bool,
    done_at: Option<SimTime>,
    last_ack_at: Option<SimTime>,
    ack_gap_us: st_stats::Summary,
    compressed_ack_gaps: u64,
}

impl TransferWorld {
    fn new(config: TransferConfig) -> Self {
        let transfer_len = config.transfer_segments * config.sender.mss as u64;
        TransferWorld {
            sender: TcpSender::new(config.sender, ConnId(1), transfer_len),
            receiver: TcpReceiver::new(config.ack_policy),
            wan: WanEmulator::new(config.bottleneck, config.one_way_delay),
            server_lan: Link::new(config.lan, SimDuration::from_micros(5)),
            rng: SimRng::seed(config.seed),
            trigger_gap: Exp::with_mean(config.trigger_mean_us.max(0.01)),
            next_packet_id: 1,
            transfer_len,
            started: false,
            pace_pending: false,
            config,
            done_at: None,
            last_ack_at: None,
            ack_gap_us: st_stats::Summary::new(),
            compressed_ack_gaps: 0,
        }
    }

    fn pid(&mut self) -> u64 {
        let id = self.next_packet_id;
        self.next_packet_id += 1;
        id
    }

    /// Sends one data segment: server LAN, then the WAN bottleneck.
    fn transmit(&mut self, now: SimTime, p: Packet, ctx: &mut Ctx<'_, Ev>) {
        let at_router = self.server_lan.enqueue_forward(now, p.wire_bytes);
        let at_client = self.wan.forward(at_router, p.wire_bytes);
        ctx.schedule_at(at_client, Ev::ClientRx(p));
    }

    /// Self-clocked mode: send as much as the window allows.
    fn pump_self_clocked(&mut self, now: SimTime, ctx: &mut Ctx<'_, Ev>) {
        while self.sender.can_send() {
            let id = self.pid();
            let p = self
                .sender
                .next_segment(id)
                .expect("can_send implies a segment");
            self.transmit(now, p, ctx);
        }
    }

    /// Rate-based mode: schedule the next pacing opportunity after the
    /// pacer interval plus a trigger-state delay.
    fn schedule_pace(&mut self, interval_us: u64, ctx: &mut Ctx<'_, Ev>) {
        let delay = self.trigger_gap.sample(&mut self.rng).max(0.0);
        let d = SimDuration::from_micros(interval_us) + SimDuration::from_micros_f64(delay);
        self.pace_pending = true;
        ctx.schedule_in(d, Ev::PaceFire);
    }

    fn send_ack(&mut self, now: SimTime, ack: u64, ctx: &mut Ctx<'_, Ev>) {
        let id = self.pid();
        let p = Packet::ack(id, ConnId(1), ack, self.config.sender.rwnd);
        let at_server = self.wan.reverse(now, HEADER_BYTES);
        ctx.schedule_at(at_server, Ev::ServerRx(p));
    }
}

impl World for TransferWorld {
    type Event = Ev;

    fn handle(&mut self, ev: Ev, ctx: &mut Ctx<'_, Ev>) {
        let now = ctx.now();
        match ev {
            Ev::CrossTraffic => {
                if let Some(ct) = self.config.reverse_cross_traffic {
                    // The burst occupies the reverse bottleneck; its
                    // delivery is irrelevant, only the queueing it causes.
                    let _ = self.wan.reverse(now, ct.burst_bytes);
                    if self.done_at.is_none() {
                        ctx.schedule_in(ct.period, Ev::CrossTraffic);
                    }
                }
            }
            Ev::ServerRx(p) => {
                if !self.started {
                    // The request: start the response.
                    self.started = true;
                    match self.config.sender.mode {
                        SenderMode::SelfClocked => self.pump_self_clocked(now, ctx),
                        SenderMode::RateBased => self.schedule_pace(0, ctx),
                    }
                } else if p.is_pure_ack() {
                    if let Some(last) = self.last_ack_at {
                        let gap = now.since(last).as_micros_f64();
                        self.ack_gap_us.record(gap);
                        if gap < 50.0 {
                            self.compressed_ack_gaps += 1;
                        }
                    }
                    self.last_ack_at = Some(now);
                    self.sender.on_ack(p.tcp.ack);
                    match self.config.sender.mode {
                        SenderMode::SelfClocked => self.pump_self_clocked(now, ctx),
                        SenderMode::RateBased => {
                            // An ACK freeing rwnd space restarts pacing if
                            // it had stalled.
                            if !self.pace_pending && !self.sender.all_sent() {
                                self.schedule_pace(0, ctx);
                            }
                        }
                    }
                }
            }
            Ev::PaceFire => {
                self.pace_pending = false;
                if self.sender.all_sent() {
                    return;
                }
                let id = self.pid();
                if let Some(p) = self.sender.next_segment(id) {
                    self.transmit(now, p, ctx);
                    if !self.sender.all_sent() {
                        self.schedule_pace(self.config.pacing_interval_us, ctx);
                    }
                }
                // If rwnd-blocked, the next ACK restarts pacing.
            }
            Ev::ClientRx(p) => {
                let read_pending_before = self.receiver.next_read_at();
                match self.receiver.on_data(now, p.tcp.seq, p.payload_bytes) {
                    AckDecision::AckNow { ack } => self.send_ack(now, ack, ctx),
                    AckDecision::Delay => {}
                }
                // A slow reader schedules its next application read when
                // the first segment of a burst arrives; fire the timer at
                // exactly that time (not on the coarse delack grid).
                if read_pending_before.is_none() {
                    if let Some(at) = self.receiver.next_read_at() {
                        ctx.schedule_at(at, Ev::AckTimer);
                    }
                }
                if self.receiver.rcv_nxt() >= self.transfer_len && self.done_at.is_none() {
                    self.done_at = Some(now);
                }
            }
            Ev::AckTimer => {
                if let Some(ack) = self.receiver.on_timer(now) {
                    self.send_ack(now, ack, ctx);
                }
                // The periodic delayed-ACK grid re-arms itself; one-shot
                // slow-reader read events (scheduled above) do not — they
                // fire once at their exact time. Distinguish by policy:
                // the grid is only needed for delayed ACKs.
                if self.done_at.is_none()
                    && matches!(self.config.ack_policy, AckPolicy::DelayedEvery2)
                {
                    ctx.schedule_in(self.config.delack_period, Ev::AckTimer);
                }
            }
        }
    }
}

/// Runs one transfer to completion.
#[derive(Debug)]
pub struct TransferSim;

impl TransferSim {
    /// Executes the configured transfer and returns its outcome.
    pub fn run(config: TransferConfig) -> TransferOutcome {
        let transfer_len = config.transfer_segments * config.sender.mss as u64;
        let mut engine = Engine::new(TransferWorld::new(config.clone()));

        // The request leaves the client at t = 0 and crosses the WAN.
        let at_server = engine
            .world_mut()
            .wan
            .reverse(SimTime::ZERO, 300 + HEADER_BYTES);
        let req = Packet::data(0, ConnId(1), 0, 300, 0, 65_535);
        engine.schedule_at(at_server, Ev::ServerRx(req));
        engine.schedule_at(SimTime::ZERO + config.delack_period, Ev::AckTimer);
        if config.reverse_cross_traffic.is_some() {
            engine.schedule_at(SimTime::from_micros(11), Ev::CrossTraffic);
        }

        let finished = engine.run_while(|w| w.done_at.is_none());
        assert!(finished, "transfer did not complete: event queue drained");

        let world = engine.into_world();
        let done = world.done_at.expect("loop exits only when done");
        let response_time = done.since(SimTime::ZERO);
        let secs = response_time.as_secs_f64();
        TransferOutcome {
            response_time,
            throughput_mbps: if secs > 0.0 {
                transfer_len as f64 * 8.0 / secs / 1e6
            } else {
                0.0
            },
            segments: world.sender.segments_sent(),
            acks: world.receiver.acks_sent(),
            ack_gap_us: world.ack_gap_us.clone(),
            compressed_ack_gaps: world.compressed_ack_gaps,
            max_ack_coverage: world.receiver.max_ack_coverage(),
            wan_max_backlog: world.wan.max_backlog(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_based_small_transfer_is_about_one_rtt() {
        // Table 6, 5-packet row, rate-based: ~101 ms.
        let out = TransferSim::run(TransferConfig::table6(5, true));
        let ms = out.response_time.as_secs_f64() * 1e3;
        assert!((95.0..115.0).contains(&ms), "response {ms} ms");
        assert_eq!(out.segments, 5);
    }

    #[test]
    fn regular_small_transfer_stalls_on_delayed_ack() {
        // Table 6, 5-packet row, regular TCP: hundreds of ms — the lone
        // initial segment waits out the delayed-ACK timer.
        let out = TransferSim::run(TransferConfig::table6(5, false));
        let ms = out.response_time.as_secs_f64() * 1e3;
        assert!(ms > 300.0, "expected delack stall, got {ms} ms");
    }

    #[test]
    fn rate_based_100_packets_matches_paper_shape() {
        // Table 6: 123.7 ms. One RTT/2 each way + 100 * 240 µs of pacing.
        let out = TransferSim::run(TransferConfig::table6(100, true));
        let ms = out.response_time.as_secs_f64() * 1e3;
        assert!((115.0..140.0).contains(&ms), "response {ms} ms");
    }

    #[test]
    fn regular_100_packets_takes_many_rtts() {
        // Table 6: 1145 ms — slow start needs ~10 round trips.
        let out = TransferSim::run(TransferConfig::table6(100, false));
        let ms = out.response_time.as_secs_f64() * 1e3;
        assert!((800.0..1500.0).contains(&ms), "response {ms} ms");
    }

    #[test]
    fn large_transfer_converges_to_bottleneck() {
        // Table 6, 10000 packets: both modes approach the bottleneck
        // rate; rate-based stays ahead.
        let reg = TransferSim::run(TransferConfig::table6(10_000, false));
        let rbc = TransferSim::run(TransferConfig::table6(10_000, true));
        assert!(rbc.throughput_mbps > reg.throughput_mbps);
        assert!(
            rbc.throughput_mbps > 40.0 && rbc.throughput_mbps < 50.0,
            "rbc {}",
            rbc.throughput_mbps
        );
    }

    #[test]
    fn faster_bottleneck_is_faster() {
        let t6 = TransferSim::run(TransferConfig::table6(1000, true));
        let t7 = TransferSim::run(TransferConfig::table7(1000, true));
        assert!(t7.response_time < t6.response_time);
    }

    #[test]
    fn all_segments_delivered_exactly_once() {
        let out = TransferSim::run(TransferConfig::table7(500, false));
        assert_eq!(out.segments, 500, "no loss, no retransmit on this path");
    }
}
