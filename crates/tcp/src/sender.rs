//! The TCP sender: windows, slow start, rate-based clocking, and loss
//! recovery (fast retransmit / fast recovery per RFC 5681, with NewReno
//! partial-ACK retransmission).

use st_net::packet::{ConnId, Packet, MSS};

/// Duplicate-ACK threshold for fast retransmit. Two dup ACKs tolerate
/// simple reordering; the third signals a real hole (RFC 5681).
pub const DUP_ACK_THRESHOLD: u32 = 3;

/// How the sender clocks transmissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SenderMode {
    /// Standard self-clocked TCP: slow start, ACK-driven growth.
    SelfClocked,
    /// The paper's rate-based clocking: slow start is skipped; the
    /// congestion window is opened to the whole transfer and segments are
    /// released by the pacer (the caller schedules the soft-timer events).
    RateBased,
}

/// Sender configuration.
#[derive(Debug, Clone, Copy)]
pub struct SenderConfig {
    /// Maximum segment size in bytes (payload); the paper's transfers use
    /// 1448-byte packets.
    pub mss: u32,
    /// Initial congestion window in segments. FreeBSD-2.2.6 starts at 1;
    /// the stall this causes against delayed ACKs is visible in the
    /// paper's Table 6 small-transfer response times.
    pub initial_cwnd_segments: u32,
    /// Receiver window / socket-buffer limit in bytes.
    pub rwnd: u64,
    /// Clocking mode.
    pub mode: SenderMode,
}

impl SenderConfig {
    /// FreeBSD-2.2.6-like defaults used by the WAN experiments: MSS 1448,
    /// initial window 1, and a 2 MB socket buffer — larger than the
    /// paper's 10 Mbit bandwidth-delay product, since Table 7 shows their
    /// regular TCP exceeding 81 Mbps at a 100 ms RTT (window >= ~1.1 MB).
    pub fn freebsd_defaults() -> Self {
        SenderConfig {
            mss: MSS,
            initial_cwnd_segments: 1,
            rwnd: 2 << 20,
            mode: SenderMode::SelfClocked,
        }
    }

    /// Rate-based variant of the defaults.
    pub fn rate_based() -> Self {
        SenderConfig {
            mode: SenderMode::RateBased,
            ..SenderConfig::freebsd_defaults()
        }
    }
}

/// A one-direction bulk-data TCP sender.
///
/// Sequence space starts at 0; the caller owns packet-id allocation and
/// the wire. The sender is passive: ask [`TcpSender::next_segment`]
/// whether a segment may leave now (window space in self-clocked mode; the
/// pacer's say-so in rate-based mode, where the sender only enforces the
/// receiver window).
#[derive(Debug)]
pub struct TcpSender {
    config: SenderConfig,
    conn: ConnId,
    transfer_len: u64,
    /// Next new byte to send.
    snd_nxt: u64,
    /// Oldest unacknowledged byte.
    snd_una: u64,
    /// Congestion window in bytes (self-clocked mode).
    cwnd: u64,
    /// Slow-start threshold in bytes; starts effectively unbounded.
    ssthresh: u64,
    /// Consecutive duplicate ACKs for the current `snd_una`.
    dup_acks: u32,
    /// Fast-recovery exit point (`snd_nxt` when recovery was entered).
    recover: Option<u64>,
    /// Duplicate-free count of ACKs processed (growth bookkeeping).
    acks_processed: u64,
    segments_sent: u64,
    retransmits: u64,
    fast_retransmits: u64,
    timeouts: u64,
}

/// What processing one ACK tells the caller to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AckOutcome {
    /// Bytes newly acknowledged (0 for a duplicate or stale ACK).
    pub newly_acked: u64,
    /// A segment to retransmit right now: fast retransmit on the third
    /// duplicate ACK, or a NewReno partial-ACK retransmission.
    pub retransmit: Option<u64>,
    /// A loss was inferred from this ACK — a rate-based pacer should
    /// halve its rate.
    pub loss_signal: bool,
}

impl TcpSender {
    /// Creates a sender for a `transfer_len`-byte response on `conn`.
    pub fn new(config: SenderConfig, conn: ConnId, transfer_len: u64) -> Self {
        TcpSender {
            config,
            conn,
            transfer_len,
            snd_nxt: 0,
            snd_una: 0,
            cwnd: config.mss as u64 * config.initial_cwnd_segments as u64,
            ssthresh: u64::MAX,
            dup_acks: 0,
            recover: None,
            acks_processed: 0,
            segments_sent: 0,
            retransmits: 0,
            fast_retransmits: 0,
            timeouts: 0,
        }
    }

    /// The connection id.
    pub fn conn(&self) -> ConnId {
        self.conn
    }

    /// Bytes still unacknowledged.
    pub fn inflight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    /// Current effective window in bytes.
    pub fn window(&self) -> u64 {
        match self.config.mode {
            SenderMode::SelfClocked => self.cwnd.min(self.config.rwnd),
            SenderMode::RateBased => self.config.rwnd,
        }
    }

    /// Current congestion window (bytes).
    pub fn cwnd(&self) -> u64 {
        self.cwnd
    }

    /// Whether all bytes are sent *and* acknowledged.
    pub fn complete(&self) -> bool {
        self.snd_una >= self.transfer_len
    }

    /// Whether all bytes have been handed to the wire (maybe unacked).
    pub fn all_sent(&self) -> bool {
        self.snd_nxt >= self.transfer_len
    }

    /// Segments transmitted so far.
    pub fn segments_sent(&self) -> u64 {
        self.segments_sent
    }

    /// Whether window space and data allow sending a segment now.
    pub fn can_send(&self) -> bool {
        !self.all_sent() && self.inflight() + self.next_len() as u64 <= self.window()
    }

    fn next_len(&self) -> u32 {
        let remaining = self.transfer_len - self.snd_nxt.min(self.transfer_len);
        (self.config.mss as u64).min(remaining) as u32
    }

    /// Emits the next segment if the window allows; `packet_id` is the
    /// caller-assigned frame id and `ack`/`window` fill the header fields
    /// of the piggybacked ACK.
    pub fn next_segment(&mut self, packet_id: u64) -> Option<Packet> {
        if !self.can_send() {
            return None;
        }
        let len = self.next_len();
        debug_assert!(len > 0);
        let p = Packet::data(packet_id, self.conn, self.snd_nxt, len, 0, self.config.rwnd);
        self.snd_nxt += len as u64;
        self.segments_sent += 1;
        Some(p)
    }

    /// Processes a cumulative ACK up to `ackno`.
    ///
    /// An advancing ACK grows the window — slow start below `ssthresh`
    /// (one MSS per ACK, which is why delayed and big ACKs slow the
    /// ramp, Appendix A), congestion avoidance above it. A duplicate ACK
    /// with data outstanding counts toward fast retransmit: the third
    /// (RFC 5681's `DupThresh`) retransmits `snd_una`, halves the window
    /// into `ssthresh`, and enters fast recovery; partial ACKs during
    /// recovery retransmit the next hole (NewReno); the ACK covering
    /// `recover` deflates the window and exits.
    pub fn on_ack(&mut self, ackno: u64) -> AckOutcome {
        if ackno < self.snd_una {
            return AckOutcome::default(); // stale
        }
        let mss = self.config.mss as u64;
        if ackno == self.snd_una {
            if self.inflight() == 0 {
                // Nothing outstanding: a keepalive, not a loss signal.
                return AckOutcome::default();
            }
            self.dup_acks += 1;
            if self.dup_acks == DUP_ACK_THRESHOLD && self.recover.is_none() {
                // Fast retransmit: the hole at snd_una is lost. Halve,
                // inflate by the three dups, enter fast recovery.
                self.ssthresh = (self.inflight() / 2).max(2 * mss);
                self.cwnd = self.ssthresh + u64::from(DUP_ACK_THRESHOLD) * mss;
                self.recover = Some(self.snd_nxt);
                self.fast_retransmits += 1;
                return AckOutcome {
                    newly_acked: 0,
                    retransmit: Some(self.snd_una),
                    loss_signal: true,
                };
            }
            if self.recover.is_some() {
                // Window inflation: each further dup means one more
                // segment left the network.
                self.cwnd += mss;
            }
            return AckOutcome::default();
        }
        // Advancing ACK.
        let upto = ackno.min(self.snd_nxt);
        let newly = upto - self.snd_una;
        self.snd_una = upto;
        self.dup_acks = 0;
        self.acks_processed += 1;
        let mut out = AckOutcome {
            newly_acked: newly,
            retransmit: None,
            loss_signal: false,
        };
        if let Some(recover) = self.recover {
            if self.snd_una >= recover {
                // Full ACK: recovery done; deflate to ssthresh.
                self.recover = None;
                self.cwnd = self.ssthresh.max(mss);
            } else {
                // NewReno partial ACK: the next hole is lost too —
                // retransmit it, deflate by what was acked, stay in.
                self.cwnd = self.cwnd.saturating_sub(newly).max(self.ssthresh) + mss;
                out.retransmit = Some(self.snd_una);
            }
        } else if self.config.mode == SenderMode::SelfClocked {
            if self.cwnd < self.ssthresh {
                // Slow start: cwnd += MSS per window-advancing ACK.
                self.cwnd += mss;
            } else {
                // Congestion avoidance: ~one MSS per window per RTT.
                self.cwnd += (mss * mss / self.cwnd.max(1)).max(1);
            }
        }
        out
    }

    /// The retransmission timer expired: classic Reno response. Halve
    /// `ssthresh`, collapse the window to one segment, abandon any fast
    /// recovery, and return the oldest unacknowledged sequence number
    /// for retransmission (`None` when nothing is outstanding).
    pub fn on_rto(&mut self) -> Option<u64> {
        if self.inflight() == 0 {
            return None;
        }
        self.timeouts += 1;
        self.ssthresh = (self.inflight() / 2).max(2 * self.config.mss as u64);
        self.cwnd = self.config.mss as u64;
        self.dup_acks = 0;
        self.recover = None;
        Some(self.snd_una)
    }

    /// Builds a retransmission of the segment starting at `seq`.
    pub fn retransmit_segment(&mut self, packet_id: u64, seq: u64) -> Packet {
        let remaining = self.transfer_len.saturating_sub(seq);
        let len = (self.config.mss as u64).min(remaining).max(1) as u32;
        self.retransmits += 1;
        self.segments_sent += 1;
        Packet::data(packet_id, self.conn, seq, len, 0, self.config.rwnd)
    }

    /// Slow-start threshold, bytes.
    pub fn ssthresh(&self) -> u64 {
        self.ssthresh
    }

    /// Whether the sender is inside fast recovery.
    pub fn in_fast_recovery(&self) -> bool {
        self.recover.is_some()
    }

    /// Consecutive duplicate ACKs seen for the current `snd_una`.
    pub fn dup_acks(&self) -> u32 {
        self.dup_acks
    }

    /// Total retransmitted segments.
    pub fn retransmits(&self) -> u64 {
        self.retransmits
    }

    /// Fast retransmits triggered by the duplicate-ACK threshold.
    pub fn fast_retransmits(&self) -> u64 {
        self.fast_retransmits
    }

    /// Retransmission timeouts taken.
    pub fn timeouts(&self) -> u64 {
        self.timeouts
    }

    /// Oldest unacknowledged byte.
    pub fn snd_una(&self) -> u64 {
        self.snd_una
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sender(mode: SenderMode, iw: u32, len: u64) -> TcpSender {
        TcpSender::new(
            SenderConfig {
                mss: 1000,
                initial_cwnd_segments: iw,
                rwnd: 1 << 20,
                mode,
            },
            ConnId(1),
            len,
        )
    }

    #[test]
    fn initial_window_limits_first_burst() {
        let mut s = sender(SenderMode::SelfClocked, 2, 10_000);
        assert!(s.next_segment(1).is_some());
        assert!(s.next_segment(2).is_some());
        assert!(s.next_segment(3).is_none(), "cwnd=2 segments");
        assert_eq!(s.inflight(), 2000);
    }

    #[test]
    fn ack_opens_window_by_one_mss_per_ack() {
        let mut s = sender(SenderMode::SelfClocked, 1, 100_000);
        s.next_segment(1).unwrap();
        assert!(s.next_segment(2).is_none());
        // One ACK for one segment: cwnd 1 -> 2.
        assert_eq!(s.on_ack(1000).newly_acked, 1000);
        assert_eq!(s.cwnd(), 2000);
        assert!(s.next_segment(2).is_some());
        assert!(s.next_segment(3).is_some());
        assert!(s.next_segment(4).is_none());
    }

    #[test]
    fn big_ack_grows_cwnd_once() {
        let mut s = sender(SenderMode::SelfClocked, 4, 100_000);
        for i in 0..4 {
            s.next_segment(i).unwrap();
        }
        // One big ACK covering all four segments grows cwnd by one MSS,
        // not four — the Appendix A big-ACK penalty.
        s.on_ack(4000);
        assert_eq!(s.cwnd(), 5000);
    }

    #[test]
    fn rate_based_ignores_cwnd() {
        let mut s = sender(SenderMode::RateBased, 1, 50_000);
        // Fifty segments go out without any ACK, bounded only by rwnd.
        let mut n = 0;
        while s.next_segment(n).is_some() {
            n += 1;
        }
        assert_eq!(n, 50);
        assert!(s.all_sent());
        assert!(!s.complete());
        s.on_ack(50_000);
        assert!(s.complete());
    }

    #[test]
    fn rwnd_caps_rate_based_inflight() {
        let mut s = TcpSender::new(
            SenderConfig {
                mss: 1000,
                initial_cwnd_segments: 1,
                rwnd: 3000,
                mode: SenderMode::RateBased,
            },
            ConnId(1),
            100_000,
        );
        let mut n = 0;
        while s.next_segment(n).is_some() {
            n += 1;
        }
        assert_eq!(n, 3, "rwnd of 3 segments");
        s.on_ack(1000);
        assert!(s.next_segment(99).is_some());
    }

    #[test]
    fn short_final_segment() {
        let mut s = sender(SenderMode::RateBased, 1, 2_500);
        assert_eq!(s.next_segment(1).unwrap().payload_bytes, 1000);
        assert_eq!(s.next_segment(2).unwrap().payload_bytes, 1000);
        assert_eq!(s.next_segment(3).unwrap().payload_bytes, 500);
        assert!(s.next_segment(4).is_none());
        assert_eq!(s.segments_sent(), 3);
    }

    #[test]
    fn stale_and_duplicate_acks_ignored() {
        let mut s = sender(SenderMode::SelfClocked, 2, 10_000);
        s.next_segment(1).unwrap();
        s.next_segment(2).unwrap();
        assert_eq!(s.on_ack(2000).newly_acked, 2000);
        let cwnd = s.cwnd();
        assert_eq!(s.on_ack(2000).newly_acked, 0, "duplicate");
        assert_eq!(s.on_ack(1000).newly_acked, 0, "stale");
        assert_eq!(s.cwnd(), cwnd, "no growth from duplicates");
        assert_eq!(s.dup_acks(), 0, "nothing inflight: dups are keepalives");
    }

    /// Fast retransmit fires on exactly the third duplicate ACK — two
    /// tolerate reordering (RFC 5681's DupThresh).
    #[test]
    fn fast_retransmit_on_third_dup_ack_not_second() {
        let mut s = sender(SenderMode::SelfClocked, 8, 100_000);
        for i in 0..8 {
            s.next_segment(i).unwrap();
        }
        assert_eq!(s.on_ack(1000).newly_acked, 1000);
        // Segment at 1000 lost: dup ACKs for 1000 arrive.
        assert_eq!(s.on_ack(1000).retransmit, None, "1st dup");
        assert_eq!(
            s.on_ack(1000).retransmit,
            None,
            "2nd dup: reorder tolerance"
        );
        assert!(!s.in_fast_recovery());
        let third = s.on_ack(1000);
        assert_eq!(third.retransmit, Some(1000), "3rd dup fires");
        assert!(third.loss_signal);
        assert!(s.in_fast_recovery());
        assert_eq!(s.fast_retransmits(), 1);
        // ssthresh = inflight/2 = 7000/2 = 3500; cwnd = ssthresh + 3 MSS.
        assert_eq!(s.ssthresh(), 3500);
        assert_eq!(s.cwnd(), 6500);
    }

    #[test]
    fn fast_recovery_inflates_then_deflates() {
        let mut s = sender(SenderMode::SelfClocked, 8, 100_000);
        for i in 0..8 {
            s.next_segment(i).unwrap();
        }
        for _ in 0..3 {
            s.on_ack(0);
        }
        assert!(s.in_fast_recovery());
        let inflated = s.cwnd();
        s.on_ack(0); // 4th dup: inflation
        assert_eq!(s.cwnd(), inflated + 1000);
        // The retransmission is cumulatively ACKed: full ACK deflates.
        let out = s.on_ack(8000);
        assert_eq!(out.newly_acked, 8000);
        assert!(!s.in_fast_recovery());
        assert_eq!(s.cwnd(), s.ssthresh(), "window deflates to ssthresh");
    }

    #[test]
    fn newreno_partial_ack_retransmits_next_hole() {
        let mut s = sender(SenderMode::SelfClocked, 8, 100_000);
        for i in 0..8 {
            s.next_segment(i).unwrap();
        }
        // Segments 0 and 3 lost. Dups for 0 trigger fast retransmit.
        for _ in 0..3 {
            s.on_ack(0);
        }
        assert!(s.in_fast_recovery());
        // The retransmitted 0 is ACKed up to the next hole at 3000: a
        // partial ACK — retransmit the hole, stay in recovery.
        let out = s.on_ack(3000);
        assert_eq!(out.retransmit, Some(3000));
        assert!(s.in_fast_recovery());
        // ACK past `recover` exits.
        s.on_ack(8000);
        assert!(!s.in_fast_recovery());
    }

    #[test]
    fn rto_collapses_to_one_segment() {
        let mut s = sender(SenderMode::SelfClocked, 8, 100_000);
        for i in 0..8 {
            s.next_segment(i).unwrap();
        }
        assert_eq!(s.on_rto(), Some(0), "retransmit the head");
        assert_eq!(s.cwnd(), 1000, "window collapses to one MSS");
        assert_eq!(s.ssthresh(), 4000, "half the 8000 inflight");
        assert_eq!(s.timeouts(), 1);
        let p = s.retransmit_segment(99, 0);
        assert_eq!((p.tcp.seq, p.payload_bytes), (0, 1000));
        assert_eq!(s.retransmits(), 1);
        // Growth after the collapse is slow start up to ssthresh, then
        // congestion avoidance: cwnd 1000 -> 2000 (slow start) ...
        s.on_ack(1000);
        assert_eq!(s.cwnd(), 2000);
        s.on_ack(2000);
        s.on_ack(3000);
        assert_eq!(s.cwnd(), 4000, "reached ssthresh");
        // ... then additive: +mss²/cwnd = +250.
        s.on_ack(4000);
        assert_eq!(s.cwnd(), 4250, "congestion avoidance");
    }

    #[test]
    fn rto_with_nothing_inflight_is_a_no_op() {
        let mut s = sender(SenderMode::SelfClocked, 2, 2_000);
        s.next_segment(1).unwrap();
        s.next_segment(2).unwrap();
        s.on_ack(2000);
        assert!(s.complete());
        assert_eq!(s.on_rto(), None);
        assert_eq!(s.timeouts(), 0);
    }
}
