//! The TCP sender: windows, slow start, and rate-based clocking.

use st_net::packet::{ConnId, Packet, MSS};

/// How the sender clocks transmissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SenderMode {
    /// Standard self-clocked TCP: slow start, ACK-driven growth.
    SelfClocked,
    /// The paper's rate-based clocking: slow start is skipped; the
    /// congestion window is opened to the whole transfer and segments are
    /// released by the pacer (the caller schedules the soft-timer events).
    RateBased,
}

/// Sender configuration.
#[derive(Debug, Clone, Copy)]
pub struct SenderConfig {
    /// Maximum segment size in bytes (payload); the paper's transfers use
    /// 1448-byte packets.
    pub mss: u32,
    /// Initial congestion window in segments. FreeBSD-2.2.6 starts at 1;
    /// the stall this causes against delayed ACKs is visible in the
    /// paper's Table 6 small-transfer response times.
    pub initial_cwnd_segments: u32,
    /// Receiver window / socket-buffer limit in bytes.
    pub rwnd: u64,
    /// Clocking mode.
    pub mode: SenderMode,
}

impl SenderConfig {
    /// FreeBSD-2.2.6-like defaults used by the WAN experiments: MSS 1448,
    /// initial window 1, and a 2 MB socket buffer — larger than the
    /// paper's 10 Mbit bandwidth-delay product, since Table 7 shows their
    /// regular TCP exceeding 81 Mbps at a 100 ms RTT (window >= ~1.1 MB).
    pub fn freebsd_defaults() -> Self {
        SenderConfig {
            mss: MSS,
            initial_cwnd_segments: 1,
            rwnd: 2 << 20,
            mode: SenderMode::SelfClocked,
        }
    }

    /// Rate-based variant of the defaults.
    pub fn rate_based() -> Self {
        SenderConfig {
            mode: SenderMode::RateBased,
            ..SenderConfig::freebsd_defaults()
        }
    }
}

/// A one-direction bulk-data TCP sender.
///
/// Sequence space starts at 0; the caller owns packet-id allocation and
/// the wire. The sender is passive: ask [`TcpSender::next_segment`]
/// whether a segment may leave now (window space in self-clocked mode; the
/// pacer's say-so in rate-based mode, where the sender only enforces the
/// receiver window).
#[derive(Debug)]
pub struct TcpSender {
    config: SenderConfig,
    conn: ConnId,
    transfer_len: u64,
    /// Next new byte to send.
    snd_nxt: u64,
    /// Oldest unacknowledged byte.
    snd_una: u64,
    /// Congestion window in bytes (self-clocked mode).
    cwnd: u64,
    /// Duplicate-free count of ACKs processed (growth bookkeeping).
    acks_processed: u64,
    segments_sent: u64,
}

impl TcpSender {
    /// Creates a sender for a `transfer_len`-byte response on `conn`.
    pub fn new(config: SenderConfig, conn: ConnId, transfer_len: u64) -> Self {
        TcpSender {
            config,
            conn,
            transfer_len,
            snd_nxt: 0,
            snd_una: 0,
            cwnd: config.mss as u64 * config.initial_cwnd_segments as u64,
            acks_processed: 0,
            segments_sent: 0,
        }
    }

    /// The connection id.
    pub fn conn(&self) -> ConnId {
        self.conn
    }

    /// Bytes still unacknowledged.
    pub fn inflight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    /// Current effective window in bytes.
    pub fn window(&self) -> u64 {
        match self.config.mode {
            SenderMode::SelfClocked => self.cwnd.min(self.config.rwnd),
            SenderMode::RateBased => self.config.rwnd,
        }
    }

    /// Current congestion window (bytes).
    pub fn cwnd(&self) -> u64 {
        self.cwnd
    }

    /// Whether all bytes are sent *and* acknowledged.
    pub fn complete(&self) -> bool {
        self.snd_una >= self.transfer_len
    }

    /// Whether all bytes have been handed to the wire (maybe unacked).
    pub fn all_sent(&self) -> bool {
        self.snd_nxt >= self.transfer_len
    }

    /// Segments transmitted so far.
    pub fn segments_sent(&self) -> u64 {
        self.segments_sent
    }

    /// Whether window space and data allow sending a segment now.
    pub fn can_send(&self) -> bool {
        !self.all_sent() && self.inflight() + self.next_len() as u64 <= self.window()
    }

    fn next_len(&self) -> u32 {
        let remaining = self.transfer_len - self.snd_nxt.min(self.transfer_len);
        (self.config.mss as u64).min(remaining) as u32
    }

    /// Emits the next segment if the window allows; `packet_id` is the
    /// caller-assigned frame id and `ack`/`window` fill the header fields
    /// of the piggybacked ACK.
    pub fn next_segment(&mut self, packet_id: u64) -> Option<Packet> {
        if !self.can_send() {
            return None;
        }
        let len = self.next_len();
        debug_assert!(len > 0);
        let p = Packet::data(packet_id, self.conn, self.snd_nxt, len, 0, self.config.rwnd);
        self.snd_nxt += len as u64;
        self.segments_sent += 1;
        Some(p)
    }

    /// Processes a cumulative ACK up to `ackno`. Returns the number of
    /// newly acknowledged bytes. In self-clocked mode, slow start grows
    /// the congestion window by one MSS per ACK that advances `snd_una` —
    /// which is why delayed and big ACKs slow the ramp (Appendix A).
    pub fn on_ack(&mut self, ackno: u64) -> u64 {
        if ackno <= self.snd_una {
            return 0;
        }
        let newly = ackno - self.snd_una;
        self.snd_una = ackno.min(self.snd_nxt);
        self.acks_processed += 1;
        if self.config.mode == SenderMode::SelfClocked {
            // Slow start (no loss on the emulated path, so the sender
            // never leaves it): cwnd += MSS per window-advancing ACK.
            self.cwnd += self.config.mss as u64;
        }
        newly
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sender(mode: SenderMode, iw: u32, len: u64) -> TcpSender {
        TcpSender::new(
            SenderConfig {
                mss: 1000,
                initial_cwnd_segments: iw,
                rwnd: 1 << 20,
                mode,
            },
            ConnId(1),
            len,
        )
    }

    #[test]
    fn initial_window_limits_first_burst() {
        let mut s = sender(SenderMode::SelfClocked, 2, 10_000);
        assert!(s.next_segment(1).is_some());
        assert!(s.next_segment(2).is_some());
        assert!(s.next_segment(3).is_none(), "cwnd=2 segments");
        assert_eq!(s.inflight(), 2000);
    }

    #[test]
    fn ack_opens_window_by_one_mss_per_ack() {
        let mut s = sender(SenderMode::SelfClocked, 1, 100_000);
        s.next_segment(1).unwrap();
        assert!(s.next_segment(2).is_none());
        // One ACK for one segment: cwnd 1 -> 2.
        assert_eq!(s.on_ack(1000), 1000);
        assert_eq!(s.cwnd(), 2000);
        assert!(s.next_segment(2).is_some());
        assert!(s.next_segment(3).is_some());
        assert!(s.next_segment(4).is_none());
    }

    #[test]
    fn big_ack_grows_cwnd_once() {
        let mut s = sender(SenderMode::SelfClocked, 4, 100_000);
        for i in 0..4 {
            s.next_segment(i).unwrap();
        }
        // One big ACK covering all four segments grows cwnd by one MSS,
        // not four — the Appendix A big-ACK penalty.
        s.on_ack(4000);
        assert_eq!(s.cwnd(), 5000);
    }

    #[test]
    fn rate_based_ignores_cwnd() {
        let mut s = sender(SenderMode::RateBased, 1, 50_000);
        // Fifty segments go out without any ACK, bounded only by rwnd.
        let mut n = 0;
        while s.next_segment(n).is_some() {
            n += 1;
        }
        assert_eq!(n, 50);
        assert!(s.all_sent());
        assert!(!s.complete());
        s.on_ack(50_000);
        assert!(s.complete());
    }

    #[test]
    fn rwnd_caps_rate_based_inflight() {
        let mut s = TcpSender::new(
            SenderConfig {
                mss: 1000,
                initial_cwnd_segments: 1,
                rwnd: 3000,
                mode: SenderMode::RateBased,
            },
            ConnId(1),
            100_000,
        );
        let mut n = 0;
        while s.next_segment(n).is_some() {
            n += 1;
        }
        assert_eq!(n, 3, "rwnd of 3 segments");
        s.on_ack(1000);
        assert!(s.next_segment(99).is_some());
    }

    #[test]
    fn short_final_segment() {
        let mut s = sender(SenderMode::RateBased, 1, 2_500);
        assert_eq!(s.next_segment(1).unwrap().payload_bytes, 1000);
        assert_eq!(s.next_segment(2).unwrap().payload_bytes, 1000);
        assert_eq!(s.next_segment(3).unwrap().payload_bytes, 500);
        assert!(s.next_segment(4).is_none());
        assert_eq!(s.segments_sent(), 3);
    }

    #[test]
    fn stale_and_duplicate_acks_ignored() {
        let mut s = sender(SenderMode::SelfClocked, 2, 10_000);
        s.next_segment(1).unwrap();
        s.next_segment(2).unwrap();
        assert_eq!(s.on_ack(2000), 2000);
        let cwnd = s.cwnd();
        assert_eq!(s.on_ack(2000), 0, "duplicate");
        assert_eq!(s.on_ack(1000), 0, "stale");
        assert_eq!(s.cwnd(), cwnd, "no growth from duplicates");
    }
}
