//! The TCP receiver: reassembly and ACK generation.
//!
//! Two ACK policies matter to the paper:
//!
//! - **Delayed ACKs** (the default): acknowledge every second segment
//!   immediately; a lone outstanding segment waits for the periodic
//!   delayed-ACK timer (FreeBSD's 200 ms `fasttimo` grid). Combined with
//!   FreeBSD-2.2.6's initial window of one segment, this produces the
//!   multi-hundred-millisecond stalls visible in Table 6's small
//!   transfers.
//! - **Slow reader** (Appendix A.3): the application reads the socket
//!   buffer only every `read_interval`; since ACKs are sent from the
//!   application's read path, all segments arriving in between are
//!   covered by one *big ACK*.
//!
//! On a lossy or reordering path the receiver follows RFC 5681's
//! immediate-ACK rules: an out-of-order segment is buffered and answered
//! at once with a *duplicate ACK* for `rcv_nxt` (three of which trigger
//! the sender's fast retransmit), a segment that fills a gap is answered
//! at once with the advanced cumulative ACK, and an already-received
//! segment (a wire duplicate or a spurious retransmission) is re-ACKed
//! immediately so the sender's state converges.

use std::collections::BTreeMap;

use st_sim::{SimDuration, SimTime};

/// When the receiver decides to emit an ACK.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckDecision {
    /// Send a cumulative ACK for everything received (`ack` = next byte
    /// expected).
    AckNow {
        /// The cumulative acknowledgment number.
        ack: u64,
    },
    /// Hold the ACK (delayed-ACK policy or slow reader still sleeping).
    Delay,
}

/// The receiver's acknowledgment policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckPolicy {
    /// Standard delayed ACKs: every 2nd segment, or the delack timer.
    DelayedEvery2,
    /// The application reads (and thereby ACKs) only every
    /// `read_interval`; models the big-ACK scenarios of Appendix A.3.
    SlowReader {
        /// Gap between application reads.
        read_interval: SimDuration,
    },
}

/// TCP receiver with out-of-order reassembly.
#[derive(Debug)]
pub struct TcpReceiver {
    policy: AckPolicy,
    /// Next byte expected.
    rcv_nxt: u64,
    /// Out-of-order spans buffered for reassembly: start byte → end byte
    /// (exclusive). Disjoint and above `rcv_nxt`.
    ooo: BTreeMap<u64, u64>,
    /// Segments received since the last ACK we sent.
    unacked_segments: u32,
    /// Highest ACK number already emitted.
    last_acked: u64,
    /// Slow reader: when the next application read happens.
    next_read_at: Option<SimTime>,
    /// Largest number of segments one ACK covered (big-ACK detector).
    max_ack_coverage: u32,
    segments_received: u64,
    acks_sent: u64,
    ooo_segments: u64,
    dup_segments: u64,
    dup_acks_sent: u64,
}

impl TcpReceiver {
    /// Creates a receiver expecting a stream starting at byte 0.
    pub fn new(policy: AckPolicy) -> Self {
        TcpReceiver {
            policy,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            unacked_segments: 0,
            last_acked: 0,
            next_read_at: None,
            max_ack_coverage: 0,
            segments_received: 0,
            acks_sent: 0,
            ooo_segments: 0,
            dup_segments: 0,
            dup_acks_sent: 0,
        }
    }

    /// Next byte expected (current cumulative ACK value).
    pub fn rcv_nxt(&self) -> u64 {
        self.rcv_nxt
    }

    /// Total segments received in order.
    pub fn segments_received(&self) -> u64 {
        self.segments_received
    }

    /// ACK packets emitted.
    pub fn acks_sent(&self) -> u64 {
        self.acks_sent
    }

    /// Largest number of segments covered by a single ACK (> 3 is a "big
    /// ACK" by the paper's definition in Appendix A.3).
    pub fn max_ack_coverage(&self) -> u32 {
        self.max_ack_coverage
    }

    /// Segments that arrived out of order and were buffered.
    pub fn ooo_segments(&self) -> u64 {
        self.ooo_segments
    }

    /// Segments that carried no new bytes (wire duplicates or spurious
    /// retransmissions).
    pub fn dup_segments(&self) -> u64 {
        self.dup_segments
    }

    /// Duplicate ACKs emitted (immediate ACKs that did not advance the
    /// cumulative acknowledgment).
    pub fn dup_acks_sent(&self) -> u64 {
        self.dup_acks_sent
    }

    /// Spans currently buffered out of order (reassembly-queue depth).
    pub fn ooo_spans(&self) -> usize {
        self.ooo.len()
    }

    fn emit(&mut self) -> AckDecision {
        self.max_ack_coverage = self.max_ack_coverage.max(self.unacked_segments);
        self.unacked_segments = 0;
        if self.rcv_nxt == self.last_acked {
            self.dup_acks_sent += 1;
        }
        self.last_acked = self.rcv_nxt;
        self.acks_sent += 1;
        AckDecision::AckNow { ack: self.rcv_nxt }
    }

    /// Buffers an out-of-order span, coalescing overlaps and adjacency.
    fn insert_span(&mut self, start: u64, end: u64) {
        let mut start = start.max(self.rcv_nxt);
        let mut end = end;
        let candidates: Vec<(u64, u64)> = self.ooo.range(..=end).map(|(&s, &e)| (s, e)).collect();
        for (s, e) in candidates {
            if e >= start {
                start = start.min(s);
                end = end.max(e);
                self.ooo.remove(&s);
            }
        }
        self.ooo.insert(start, end);
    }

    /// Pulls buffered spans that the advanced `rcv_nxt` now reaches.
    fn drain_contiguous(&mut self) {
        while let Some((&s, &e)) = self.ooo.first_key_value() {
            if s > self.rcv_nxt {
                break;
            }
            self.ooo.remove(&s);
            self.rcv_nxt = self.rcv_nxt.max(e);
        }
    }

    /// Handles a data segment of `len` bytes at `seq`, arriving at `now`.
    ///
    /// In-order segments follow the configured ACK policy. Per RFC 5681
    /// the exceptions are immediate: an out-of-order segment is buffered
    /// and answered with a duplicate ACK for `rcv_nxt`; a segment that
    /// fills (part of) a gap is answered with the advanced cumulative
    /// ACK; a segment carrying no new bytes is re-ACKed at once.
    pub fn on_data(&mut self, now: SimTime, seq: u64, len: u32) -> AckDecision {
        self.segments_received += 1;
        let end = seq + len as u64;
        if end <= self.rcv_nxt {
            // Entirely old bytes: a wire duplicate or a spurious
            // retransmission. Re-ACK so the sender converges.
            self.dup_segments += 1;
            return self.emit();
        }
        if seq > self.rcv_nxt {
            // A hole precedes this segment: buffer it and send an
            // immediate duplicate ACK for the byte we still need.
            self.ooo_segments += 1;
            self.insert_span(seq, end);
            return self.emit();
        }
        // In-order (possibly overlapping the front). If reassembly was
        // pending, this fills a gap: ACK the merged front immediately.
        let was_recovering = !self.ooo.is_empty();
        self.rcv_nxt = end;
        self.drain_contiguous();
        self.unacked_segments += 1;
        if was_recovering {
            return self.emit();
        }
        match self.policy {
            AckPolicy::DelayedEvery2 => {
                if self.unacked_segments >= 2 {
                    self.emit()
                } else {
                    AckDecision::Delay
                }
            }
            AckPolicy::SlowReader { read_interval } => {
                // The first segment after an idle read period schedules
                // the next application read; everything arriving before
                // it piles into one big ACK.
                if self.next_read_at.is_none() {
                    self.next_read_at = Some(now + read_interval);
                }
                AckDecision::Delay
            }
        }
    }

    /// The periodic delayed-ACK timer fired at `now`; also drives the
    /// slow reader's application reads. Returns an ACK to send, if one is
    /// owed.
    pub fn on_timer(&mut self, now: SimTime) -> Option<u64> {
        match self.policy {
            AckPolicy::DelayedEvery2 => {
                if self.unacked_segments > 0 {
                    match self.emit() {
                        AckDecision::AckNow { ack } => Some(ack),
                        AckDecision::Delay => None,
                    }
                } else {
                    None
                }
            }
            AckPolicy::SlowReader { .. } => match self.next_read_at {
                Some(t) if now >= t && self.unacked_segments > 0 => {
                    self.next_read_at = None;
                    match self.emit() {
                        AckDecision::AckNow { ack } => Some(ack),
                        AckDecision::Delay => None,
                    }
                }
                _ => None,
            },
        }
    }

    /// When the slow reader's next application read is due (testing and
    /// scheduling aid).
    pub fn next_read_at(&self) -> Option<SimTime> {
        self.next_read_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn delayed_ack_every_second_segment() {
        let mut r = TcpReceiver::new(AckPolicy::DelayedEvery2);
        assert_eq!(r.on_data(t(0), 0, 1000), AckDecision::Delay);
        assert_eq!(
            r.on_data(t(10), 1000, 1000),
            AckDecision::AckNow { ack: 2000 }
        );
        assert_eq!(r.on_data(t(20), 2000, 1000), AckDecision::Delay);
        assert_eq!(r.acks_sent(), 1);
    }

    #[test]
    fn delack_timer_flushes_lone_segment() {
        let mut r = TcpReceiver::new(AckPolicy::DelayedEvery2);
        r.on_data(t(0), 0, 1000);
        assert_eq!(r.on_timer(t(200_000)), Some(1000));
        assert_eq!(r.on_timer(t(400_000)), None, "nothing owed");
    }

    #[test]
    fn out_of_order_buffers_and_dup_acks() {
        let mut r = TcpReceiver::new(AckPolicy::DelayedEvery2);
        // Segment 0 lost; 1, 2, 3 arrive: three immediate dup ACKs for 0.
        assert_eq!(r.on_data(t(0), 1000, 1000), AckDecision::AckNow { ack: 0 });
        assert_eq!(r.on_data(t(10), 2000, 1000), AckDecision::AckNow { ack: 0 });
        assert_eq!(r.on_data(t(20), 3000, 1000), AckDecision::AckNow { ack: 0 });
        assert_eq!(r.dup_acks_sent(), 3);
        assert_eq!(r.ooo_segments(), 3);
        assert_eq!(r.ooo_spans(), 1, "contiguous spans coalesce");
        // The retransmission fills the gap: one immediate cumulative ACK
        // covering everything.
        assert_eq!(r.on_data(t(30), 0, 1000), AckDecision::AckNow { ack: 4000 });
        assert_eq!(r.rcv_nxt(), 4000);
        assert_eq!(r.ooo_spans(), 0);
    }

    #[test]
    fn duplicate_segment_reacked_immediately() {
        let mut r = TcpReceiver::new(AckPolicy::DelayedEvery2);
        r.on_data(t(0), 0, 1000);
        r.on_data(t(10), 1000, 1000); // ACK 2000 emitted
                                      // A wire duplicate of segment 0: old bytes, immediate re-ACK.
        assert_eq!(r.on_data(t(20), 0, 1000), AckDecision::AckNow { ack: 2000 });
        assert_eq!(r.dup_segments(), 1);
        assert_eq!(r.dup_acks_sent(), 1);
        assert_eq!(r.rcv_nxt(), 2000, "no regression");
    }

    #[test]
    fn interleaved_holes_coalesce_out_of_order_spans() {
        let mut r = TcpReceiver::new(AckPolicy::DelayedEvery2);
        // Holes at 0 and 2000; spans land out of order.
        r.on_data(t(0), 3000, 1000);
        r.on_data(t(1), 1000, 1000);
        assert_eq!(r.ooo_spans(), 2, "disjoint spans stay separate");
        r.on_data(t(2), 2000, 1000);
        assert_eq!(r.ooo_spans(), 1, "bridge merges the spans");
        // Filling the front hole drains the whole buffer.
        assert_eq!(r.on_data(t(3), 0, 1000), AckDecision::AckNow { ack: 4000 });
        assert_eq!(r.ooo_spans(), 0);
    }

    #[test]
    fn partial_overlap_advances_without_double_count() {
        let mut r = TcpReceiver::new(AckPolicy::DelayedEvery2);
        r.on_data(t(0), 0, 1000);
        // A retransmission overlapping already-received bytes: the new
        // tail advances rcv_nxt.
        r.on_data(t(10), 500, 1000);
        assert_eq!(r.rcv_nxt(), 1500);
    }

    #[test]
    fn slow_reader_produces_big_ack() {
        let mut r = TcpReceiver::new(AckPolicy::SlowReader {
            read_interval: SimDuration::from_millis(1),
        });
        // Ten closely spaced segments, all before the app reads.
        for i in 0..10u64 {
            assert_eq!(r.on_data(t(i * 20), i * 1000, 1000), AckDecision::Delay);
        }
        assert_eq!(r.on_timer(t(500)), None, "read not due yet");
        let ack = r.on_timer(t(1_500)).expect("app read flushes");
        assert_eq!(ack, 10_000);
        assert_eq!(r.max_ack_coverage(), 10, "a big ACK covering 10 segments");
    }

    #[test]
    fn slow_reader_cycle_repeats() {
        let mut r = TcpReceiver::new(AckPolicy::SlowReader {
            read_interval: SimDuration::from_millis(1),
        });
        r.on_data(t(0), 0, 500);
        assert!(r.next_read_at().is_some());
        assert_eq!(r.on_timer(t(1_000)), Some(500));
        assert!(r.next_read_at().is_none());
        // Next burst restarts the cycle.
        r.on_data(t(2_000), 500, 500);
        assert_eq!(r.next_read_at(), Some(t(3_000)));
    }

    #[test]
    fn coverage_counts_only_acked_batches() {
        let mut r = TcpReceiver::new(AckPolicy::DelayedEvery2);
        r.on_data(t(0), 0, 100);
        r.on_data(t(1), 100, 100);
        assert_eq!(r.max_ack_coverage(), 2);
        r.on_data(t(2), 200, 100);
        assert_eq!(r.max_ack_coverage(), 2, "pending segment not counted yet");
    }
}
