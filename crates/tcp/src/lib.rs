//! Simulated TCP data-transfer engine.
//!
//! Implements the protocol behaviour the paper's evaluation depends on:
//!
//! - [`sender`] — window management: slow start from FreeBSD-2.2.6's
//!   initial window, ACK-clocked growth, receiver-window limiting, and the
//!   paper's *rate-based clocking* mode that skips slow start and paces
//!   segments at a known capacity.
//! - [`receiver`] — in-order reassembly and ACK generation: the standard
//!   delayed-ACK policy (every second segment, with the periodic delayed-
//!   ACK timer) and a slow-reader mode that produces the *big ACKs* of
//!   Appendix A.3.
//! - [`pacing`] — the transmission-process simulator behind Tables 4-5:
//!   the real soft-timer facility driven by a synthetic trigger-state
//!   stream, transmitting through the adaptive pacer.
//! - [`recovery`] — RFC 6298 SRTT/RTTVAR RTO estimation with bounded
//!   exponential backoff, and the loss-adaptive rate pacer.
//! - [`transfer`] — the end-to-end WAN experiment of Tables 6-7: client,
//!   WAN emulator router, server; regular TCP vs. rate-based clocking,
//!   optionally through a finite drop-tail bottleneck with wire faults,
//!   with the retransmission timer running as a soft-timer event.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pacing;
pub mod receiver;
pub mod recovery;
pub mod sender;
pub mod transfer;

pub use pacing::{PacingRun, TransmissionProcess};
pub use receiver::{AckDecision, AckPolicy, TcpReceiver};
pub use recovery::{LossPacer, RttEstimator, MAX_BACKOFF};
pub use sender::{AckOutcome, SenderConfig, SenderMode, TcpSender, DUP_ACK_THRESHOLD};
pub use transfer::{TransferConfig, TransferOutcome, TransferSim};

// Re-exported so callers configuring a lossy transfer need only this
// crate (the type lives in `st-net`, next to the emulated wire).
pub use st_net::wire::WireFaults;
