//! Determinism and convergence properties of the limiter families.
//!
//! These are the PR 6 acceptance properties at the crate boundary:
//! the same observation trace must always produce the same limit
//! sequence (the `repro overload --json` replay gate depends on it),
//! and AIMD must converge to a bounded oscillation band rather than
//! wandering.

use st_admit::{
    AdmissionController, Decision, Limiter, LimiterKind, RejectPolicy, RequestClass, Sample,
};

/// A synthetic closed-feedback latency model: serving `inflight`
/// requests costs `(1 + inflight) * service_us` — a linear queue.
fn feedback_rtt(inflight: u64, service_us: u64) -> u64 {
    (1 + inflight) * service_us
}

fn drive(limiter: &mut dyn Limiter, service_us: u64, steps: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(steps);
    for _ in 0..steps {
        let inflight = limiter.limit();
        let rtt = feedback_rtt(inflight, service_us);
        out.push(limiter.on_update(Sample {
            inflight,
            rtt_us: rtt,
        }));
    }
    out
}

#[test]
fn every_limiter_kind_is_trace_deterministic() {
    for kind in [LimiterKind::Aimd, LimiterKind::Vegas, LimiterKind::Gradient] {
        let mut a = kind.build(25_000, 256);
        let mut b = kind.build(25_000, 256);
        let seq_a = drive(a.as_mut(), 1_290, 400);
        let seq_b = drive(b.as_mut(), 1_290, 400);
        assert_eq!(seq_a, seq_b, "{} diverged on identical traces", a.name());
    }
}

#[test]
fn aimd_converges_to_a_fixed_oscillation_band() {
    let mut l = LimiterKind::Aimd.build(25_000, 256);
    let seq = drive(l.as_mut(), 1_290, 600);
    let tail = &seq[400..];
    let lo = *tail.iter().min().unwrap();
    let hi = *tail.iter().max().unwrap();
    // Budget 25 ms at ~1.29 ms/slot: the sawtooth lives well inside
    // [4, 20] and must keep oscillating (not flatline at min or max).
    assert!(lo >= 4 && hi <= 20, "band [{lo}, {hi}] escaped");
    assert!(hi > lo, "AIMD stopped oscillating");
    // Once converged the sawtooth is periodic: take the distance
    // between the first two minima as the period and check the whole
    // tail repeats with it.
    let first = tail.iter().position(|&v| v == lo).unwrap();
    let period = 1 + tail[first + 1..].iter().position(|&v| v == lo).unwrap();
    assert!(period >= 2, "degenerate sawtooth period");
    for i in 0..tail.len() - period {
        assert_eq!(tail[i], tail[i + period], "tail is not periodic at {i}");
    }
}

#[test]
fn vegas_and_gradient_hold_bounded_limits_under_feedback() {
    for kind in [LimiterKind::Vegas, LimiterKind::Gradient] {
        let mut l = kind.build(25_000, 256);
        let seq = drive(l.as_mut(), 1_290, 600);
        let tail = &seq[400..];
        let hi = *tail.iter().max().unwrap();
        assert!(
            hi < 256,
            "{} pinned at its cap under loaded feedback",
            l.name()
        );
        assert!(tail.iter().all(|&v| v >= 1));
    }
}

#[test]
fn controller_replays_identically_from_the_same_event_trace() {
    let run = || {
        let mut c = AdmissionController::new(
            LimiterKind::Vegas,
            RejectPolicy::DelayedShed { delay_ticks: 250 },
            25_000,
            128,
        );
        let mut outcomes = Vec::new();
        // A fixed interleaving of arrivals, completions and updates --
        // no RNG anywhere, mimicking one saturation-run schedule.
        for step in 0u64..2_000 {
            let class = if step % 5 == 4 {
                RequestClass::Bulk
            } else {
                RequestClass::Interactive
            };
            let admitted = c.try_admit(class) == Decision::Admit;
            outcomes.push(u64::from(admitted));
            if admitted && step % 3 != 0 {
                c.on_complete(class, 700 + (step % 7) * 300);
            }
            if step % 50 == 49 {
                c.update_limits(step * 1_000);
                outcomes.push(c.limit(RequestClass::Interactive));
                outcomes.push(c.limit(RequestClass::Bulk));
            }
        }
        outcomes
    };
    assert_eq!(run(), run());
}
