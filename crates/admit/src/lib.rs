//! Adaptive overload control as a soft-timer client.
//!
//! The paper proves that µs-granularity *periodic* work is nearly free
//! when it runs from trigger states (sections 3 and 5.2). This crate
//! builds the admission layer that ROADMAP open item 3 asks for on top
//! of that observation: concurrency limits are re-evaluated by a
//! periodic timed event — soft-timer driven at µs granularity, or a
//! 1 kHz hardware timer for the cost contrast — never by per-request
//! bookkeeping. The per-request fast path ([`AdmissionController::try_admit`])
//! is one counter compare; everything adaptive (EWMAs, limit math,
//! pinned-connection reaping) happens in the update event.
//!
//! Three limiter families are provided, all integer-only (the st-lint
//! `no-float-in-bounds` rule is enforced on this crate, exactly like
//! the facility's bound math):
//!
//! - [`AimdLimiter`] — additive increase, multiplicative decrease on a
//!   latency threshold breach;
//! - [`VegasLimiter`] — queue-occupancy estimate from the RTT above its
//!   observed base, held inside an `[alpha, beta]` band;
//! - [`GradientLimiter`] — long-window RTT EWMA against the current
//!   sample; the limit scales by the clamped ratio.
//!
//! Rejection is deterministic ([`RejectPolicy`]): an immediate 503, or
//! soft-timer-delayed shedding where the reply goes out from a timed
//! event some ticks later. Admission is partitioned per request class
//! ([`RequestClass`]) so a hostile bulk/slow mix cannot poison the
//! interactive class's latency signal.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod controller;
pub mod ewma;
pub mod limiter;

pub use controller::{AdmissionController, ClassStats, Decision, RejectPolicy};
pub use ewma::FixedEwma;
pub use limiter::{AimdLimiter, GradientLimiter, Limiter, LimiterKind, Sample, VegasLimiter};

/// Which service class a request belongs to.
///
/// Classes get independent limiters and latency EWMAs: a heavy-tailed
/// bulk mix (or a slowloris client that finally sends its request)
/// inflates only its own partition's RTT signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RequestClass {
    /// Short interactive requests (the paper's 6 KB HTTP responses).
    Interactive,
    /// Large or streaming responses (the RealPlayer-like mix).
    Bulk,
}

impl RequestClass {
    /// Both classes, in partition-index order.
    pub const ALL: [RequestClass; 2] = [RequestClass::Interactive, RequestClass::Bulk];

    /// Dense partition index.
    pub fn index(self) -> usize {
        match self {
            RequestClass::Interactive => 0,
            RequestClass::Bulk => 1,
        }
    }

    /// Stable lower-case label for reports and trace events.
    pub fn label(self) -> &'static str {
        match self {
            RequestClass::Interactive => "interactive",
            RequestClass::Bulk => "bulk",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_indices_are_dense_and_labels_unique() {
        for (i, c) in RequestClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        assert_ne!(
            RequestClass::Interactive.label(),
            RequestClass::Bulk.label()
        );
    }
}
