//! Fixed-point exponentially weighted moving averages.
//!
//! Same idiom as the RTO estimator's scaled SRTT/RTTVAR (PR 5,
//! `st_tcp::recovery`): the accumulator keeps the average scaled by
//! `2^shift`, each update folds in one sample with integer shifts only,
//! and the visible value is the accumulator shifted back down. No
//! floats anywhere — the st-lint `no-float-in-bounds` rule watches this
//! crate.

/// An integer EWMA with gain `1 / 2^shift`.
///
/// # Examples
///
/// ```
/// use st_admit::FixedEwma;
///
/// let mut e = FixedEwma::new(3); // gain 1/8
/// e.update(800);
/// assert_eq!(e.value(), 800); // first sample seeds the average
/// for _ in 0..100 {
///     e.update(1600);
/// }
/// assert!(e.value() > 1500); // converges toward the new level
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedEwma {
    /// Average scaled by `2^shift`; zero means unseeded.
    scaled: u64,
    shift: u32,
    seeded: bool,
}

impl FixedEwma {
    /// Creates an empty EWMA with gain `1 / 2^shift`.
    ///
    /// # Panics
    ///
    /// Panics when `shift` is zero or large enough to overflow the
    /// scaled accumulator for microsecond-range samples.
    pub fn new(shift: u32) -> Self {
        assert!((1..=16).contains(&shift), "shift {shift} out of range");
        FixedEwma {
            scaled: 0,
            shift,
            seeded: false,
        }
    }

    /// Folds one sample in. The first sample seeds the average exactly.
    pub fn update(&mut self, sample: u64) {
        if !self.seeded {
            self.scaled = sample << self.shift;
            self.seeded = true;
            return;
        }
        // scaled += sample - scaled/2^shift, in saturating form so a
        // hostile sample cannot wrap the accumulator.
        self.scaled = self
            .scaled
            .saturating_sub(self.scaled >> self.shift)
            .saturating_add(sample);
    }

    /// Current average (rounded down); zero before any sample.
    pub fn value(&self) -> u64 {
        self.scaled >> self.shift
    }

    /// Whether any sample has been folded in.
    pub fn seeded(&self) -> bool {
        self.seeded
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_seeds_exactly() {
        let mut e = FixedEwma::new(4);
        assert_eq!(e.value(), 0);
        assert!(!e.seeded());
        e.update(12_345);
        assert_eq!(e.value(), 12_345);
        assert!(e.seeded());
    }

    #[test]
    fn converges_to_constant_input() {
        let mut e = FixedEwma::new(3);
        e.update(100);
        for _ in 0..200 {
            e.update(4_000);
        }
        let v = e.value();
        assert!((3_900..=4_000).contains(&v), "value {v}");
    }

    #[test]
    fn larger_shift_reacts_slower() {
        let mut fast = FixedEwma::new(2);
        let mut slow = FixedEwma::new(6);
        fast.update(0);
        slow.update(0);
        for _ in 0..8 {
            fast.update(1_000);
            slow.update(1_000);
        }
        assert!(fast.value() > slow.value());
    }

    #[test]
    fn hostile_sample_does_not_wrap() {
        let mut e = FixedEwma::new(1);
        e.update(u64::MAX);
        e.update(u64::MAX);
        assert!(e.value() > 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_shift_rejected() {
        let _ = FixedEwma::new(0);
    }
}
