//! Adaptive concurrency limiters.
//!
//! A limiter owns one number — the concurrency limit — and re-derives
//! it from periodic samples of `(inflight, rtt)`. The sampling cadence
//! is the caller's business: in the saturation model the sample arrives
//! from a soft-timer event (or the 1 kHz hardware-timer variant for the
//! paper's cost contrast); the limiter itself is pure integer state so
//! the same trace of samples always yields the same limit sequence.
//!
//! The three families mirror the classic TCP congestion-control trio
//! restated for request concurrency:
//!
//! - [`AimdLimiter`]: loss-based — a latency budget breach is the
//!   congestion signal; multiplicative decrease, additive increase.
//! - [`VegasLimiter`]: delay-based — estimate how many requests are
//!   *queued* (not being served) from the RTT above its observed base,
//!   and hold that estimate inside an `[alpha, beta]` band.
//! - [`GradientLimiter`]: trend-based — compare the current RTT to a
//!   long-window EWMA; a rising short-term RTT shrinks the limit
//!   multiplicatively before the queue is deep.

use crate::ewma::FixedEwma;

/// One periodic observation handed to a limiter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sample {
    /// Requests admitted and not yet completed at the sample instant.
    pub inflight: u64,
    /// Smoothed request latency in microseconds (zero = no signal yet).
    pub rtt_us: u64,
}

/// An adaptive concurrency limiter: a stream of samples in, a limit out.
pub trait Limiter {
    /// Folds one sample in and returns the new limit.
    fn on_update(&mut self, sample: Sample) -> u64;

    /// The current limit.
    fn limit(&self) -> u64;

    /// Stable lower-case name for reports.
    fn name(&self) -> &'static str;
}

/// Which limiter family to build — plain data, so experiment configs
/// stay `Copy` and serializable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LimiterKind {
    /// [`AimdLimiter`] with the given latency budget.
    Aimd,
    /// [`VegasLimiter`].
    Vegas,
    /// [`GradientLimiter`].
    Gradient,
}

impl LimiterKind {
    /// Builds the limiter with defaults tuned for `rtt_budget_us` (the
    /// latency the caller wants to stay under) and a hard `max` limit.
    pub fn build(self, rtt_budget_us: u64, max: u64) -> Box<dyn Limiter> {
        match self {
            LimiterKind::Aimd => Box::new(AimdLimiter::new(rtt_budget_us, max)),
            LimiterKind::Vegas => Box::new(VegasLimiter::new(max)),
            LimiterKind::Gradient => Box::new(GradientLimiter::new(max)),
        }
    }

    /// Stable lower-case name (matches [`Limiter::name`]).
    pub fn label(self) -> &'static str {
        match self {
            LimiterKind::Aimd => "aimd",
            LimiterKind::Vegas => "vegas",
            LimiterKind::Gradient => "gradient",
        }
    }
}

fn clamp(v: u64, lo: u64, hi: u64) -> u64 {
    v.max(lo).min(hi)
}

/// Additive-increase / multiplicative-decrease on a latency budget.
///
/// While the smoothed RTT stays under the budget the limit grows by one
/// per update — but only when the window is actually utilized, so an
/// idle server does not inflate its limit to the ceiling. A budget
/// breach halves the limit (floor 1).
#[derive(Debug, Clone)]
pub struct AimdLimiter {
    limit: u64,
    min: u64,
    max: u64,
    /// Latency budget in microseconds; above this is "congestion".
    budget_us: u64,
}

impl AimdLimiter {
    /// A limiter starting at `min = 1` with the given budget and cap.
    pub fn new(budget_us: u64, max: u64) -> Self {
        assert!(budget_us > 0, "latency budget must be positive");
        assert!(max >= 1, "max limit must admit at least one request");
        AimdLimiter {
            limit: 1,
            min: 1,
            max,
            budget_us,
        }
    }
}

impl Limiter for AimdLimiter {
    fn on_update(&mut self, s: Sample) -> u64 {
        if s.rtt_us > self.budget_us {
            self.limit = clamp(self.limit / 2, self.min, self.max);
        } else if s.inflight.saturating_mul(2) >= self.limit {
            // Additive increase only under utilization pressure.
            self.limit = clamp(self.limit + 1, self.min, self.max);
        }
        self.limit
    }

    fn limit(&self) -> u64 {
        self.limit
    }

    fn name(&self) -> &'static str {
        "aimd"
    }
}

/// Vegas-style queue-delay limiter.
///
/// `queued ≈ limit · (rtt − base) / rtt` estimates how many of the
/// admitted requests are waiting rather than being served (`base` is
/// the smallest RTT ever observed — pure service time). The limit
/// creeps up while the estimate sits under `alpha` and backs off while
/// it exceeds `beta`, converging to a few requests' worth of queue.
#[derive(Debug, Clone)]
pub struct VegasLimiter {
    limit: u64,
    min: u64,
    max: u64,
    /// Smallest RTT observed, µs (zero = unseeded).
    base_rtt_us: u64,
    /// Grow below this many estimated queued requests.
    alpha: u64,
    /// Shrink above this many estimated queued requests.
    beta: u64,
}

impl VegasLimiter {
    /// A limiter with the classic `alpha = 3`, `beta = 6` band.
    pub fn new(max: u64) -> Self {
        assert!(max >= 1, "max limit must admit at least one request");
        VegasLimiter {
            limit: 1,
            min: 1,
            max,
            base_rtt_us: 0,
            alpha: 3,
            beta: 6,
        }
    }

    /// Estimated queued requests for one sample.
    fn queue_estimate(&self, rtt_us: u64) -> u64 {
        if rtt_us == 0 || self.base_rtt_us == 0 {
            return 0;
        }
        let excess = rtt_us.saturating_sub(self.base_rtt_us);
        self.limit.saturating_mul(excess) / rtt_us
    }
}

impl Limiter for VegasLimiter {
    fn on_update(&mut self, s: Sample) -> u64 {
        if s.rtt_us > 0 && (self.base_rtt_us == 0 || s.rtt_us < self.base_rtt_us) {
            self.base_rtt_us = s.rtt_us;
        }
        let queued = self.queue_estimate(s.rtt_us);
        if queued > self.beta {
            self.limit = clamp(self.limit.saturating_sub(1), self.min, self.max);
        } else if queued < self.alpha && s.inflight.saturating_mul(2) >= self.limit {
            self.limit = clamp(self.limit + 1, self.min, self.max);
        }
        self.limit
    }

    fn limit(&self) -> u64 {
        self.limit
    }

    fn name(&self) -> &'static str {
        "vegas"
    }
}

/// Gradient scale in fixed-point: 1024 = 1.0.
const GRAD_ONE: u64 = 1024;
/// Shrink floor per update: 0.5 in fixed-point.
const GRAD_FLOOR: u64 = 512;
/// Tolerance headroom: the limit only shrinks when the current RTT
/// exceeds the long-window average by more than 1024/`GRAD_TOL` ≈ 10 %.
const GRAD_TOL: u64 = 1126;

/// Windowed gradient limiter.
///
/// Keeps a long-window EWMA of the RTT and compares each fresh sample
/// against it: `gradient = long · tol / short`, clamped to
/// `[0.5, 1.0]` in fixed-point. The limit is multiplied by the gradient
/// (fast multiplicative shrink when latency trends up) and earns one
/// additive credit per update while utilized (recovery).
#[derive(Debug, Clone)]
pub struct GradientLimiter {
    limit: u64,
    min: u64,
    max: u64,
    /// Long-window RTT average (gain 1/64).
    long_rtt: FixedEwma,
}

impl GradientLimiter {
    /// A limiter with a 1/64-gain long window.
    pub fn new(max: u64) -> Self {
        assert!(max >= 1, "max limit must admit at least one request");
        GradientLimiter {
            limit: 1,
            min: 1,
            max,
            long_rtt: FixedEwma::new(6),
        }
    }
}

impl Limiter for GradientLimiter {
    fn on_update(&mut self, s: Sample) -> u64 {
        if s.rtt_us == 0 {
            return self.limit;
        }
        self.long_rtt.update(s.rtt_us);
        let long = self.long_rtt.value().max(1);
        let gradient = clamp(
            long.saturating_mul(GRAD_TOL) / s.rtt_us.max(1),
            GRAD_FLOOR,
            GRAD_ONE,
        );
        let scaled = self.limit.saturating_mul(gradient) / GRAD_ONE;
        let credit = u64::from(s.inflight.saturating_mul(2) >= self.limit);
        self.limit = clamp(scaled + credit, self.min, self.max);
        self.limit
    }

    fn limit(&self) -> u64 {
        self.limit
    }

    fn name(&self) -> &'static str {
        "gradient"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Replays the same synthetic closed-feedback trace into a fresh
    /// limiter: at every step the server is saturated (inflight equals
    /// the limit) and the RTT is service time plus queueing that grows
    /// with the limit — the shape an overloaded FIFO server produces.
    fn drive(l: &mut dyn Limiter, steps: usize, service_us: u64) -> Vec<u64> {
        let mut out = Vec::with_capacity(steps);
        for _ in 0..steps {
            let inflight = l.limit();
            let rtt_us = service_us + inflight * service_us;
            out.push(l.on_update(Sample { inflight, rtt_us }));
        }
        out
    }

    #[test]
    fn same_trace_same_limit_sequence() {
        let budget = 25_000;
        let mk: [fn() -> Box<dyn Limiter>; 3] = [
            || Box::new(AimdLimiter::new(25_000, 1_000)),
            || Box::new(VegasLimiter::new(1_000)),
            || Box::new(GradientLimiter::new(1_000)),
        ];
        let _ = budget;
        for f in mk {
            let a = drive(f().as_mut(), 500, 1_290);
            let b = drive(f().as_mut(), 500, 1_290);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn aimd_converges_to_a_fixed_band() {
        let mut l = AimdLimiter::new(25_000, 1_000);
        let seq = drive(&mut l, 400, 1_290);
        // Under the feedback rtt = (1 + limit) * 1.29 ms and a 25 ms
        // budget, the breach point is limit ≈ 18: AIMD must oscillate
        // in a band below that and never collapse to the floor.
        let tail = &seq[100..];
        let lo = *tail.iter().min().unwrap();
        let hi = *tail.iter().max().unwrap();
        assert!(lo >= 4, "tail low {lo}");
        assert!(hi <= 20, "tail high {hi}");
        assert!(hi > lo, "AIMD should keep probing, not freeze");
        // And the band repeats: the last value reappears earlier in the
        // tail (a cycle, i.e. converged oscillation).
        let last = *seq.last().unwrap();
        assert!(tail[..tail.len() - 1].contains(&last));
    }

    #[test]
    fn vegas_holds_queue_in_band() {
        let mut l = VegasLimiter::new(1_000);
        let seq = drive(&mut l, 400, 1_290);
        let tail = &seq[200..];
        // queued ≈ limit²/(limit+1): alpha=3/beta=6 pins the limit
        // to single digits under this feedback.
        for v in tail {
            assert!((2..=9).contains(v), "limit {v} left the Vegas band");
        }
    }

    #[test]
    fn gradient_shrinks_on_rising_rtt() {
        let mut l = GradientLimiter::new(1_000);
        // Flat RTT: the limit grows on utilization credits.
        for _ in 0..50 {
            l.on_update(Sample {
                inflight: l.limit(),
                rtt_us: 2_000,
            });
        }
        let grown = l.limit();
        assert!(grown >= 10, "grew only to {grown}");
        // RTT doubles: multiplicative shrink beats the +1 credit.
        for _ in 0..10 {
            l.on_update(Sample {
                inflight: l.limit(),
                rtt_us: 40_000,
            });
        }
        assert!(l.limit() < grown / 2, "no shrink: {} vs {grown}", l.limit());
    }

    #[test]
    fn idle_server_does_not_inflate_limits() {
        for mut l in [
            Box::new(AimdLimiter::new(25_000, 100)) as Box<dyn Limiter>,
            Box::new(VegasLimiter::new(100)),
        ] {
            for _ in 0..100 {
                l.on_update(Sample {
                    inflight: 0,
                    rtt_us: 1_000,
                });
            }
            assert!(l.limit() <= 2, "{} inflated idle: {}", l.name(), l.limit());
        }
    }

    #[test]
    fn limits_respect_caps() {
        let mut a = AimdLimiter::new(1_000_000, 7);
        for _ in 0..100 {
            a.on_update(Sample {
                inflight: 100,
                rtt_us: 10,
            });
        }
        assert_eq!(a.limit(), 7);
        // Vegas: grow on a near-base RTT, then a deep queue signal
        // (rtt far above base) walks the limit back down.
        let mut v = VegasLimiter::new(1_000);
        v.on_update(Sample {
            inflight: 1,
            rtt_us: 1_000,
        });
        for _ in 0..30 {
            v.on_update(Sample {
                inflight: v.limit(),
                rtt_us: 1_100,
            });
        }
        let grown = v.limit();
        assert!(grown > 10, "grew only to {grown}");
        for _ in 0..40 {
            v.on_update(Sample {
                inflight: v.limit(),
                rtt_us: 200_000,
            });
        }
        assert!(v.limit() < grown / 2, "no shrink: {}", v.limit());
    }

    #[test]
    fn kind_builds_matching_names() {
        for kind in [LimiterKind::Aimd, LimiterKind::Vegas, LimiterKind::Gradient] {
            let l = kind.build(25_000, 100);
            assert_eq!(l.name(), kind.label());
        }
    }
}
