//! The admission controller: per-class partitions, a one-compare fast
//! path, and soft-timer-driven limit updates.
//!
//! The split of work is the whole point (and mirrors the paper's
//! trigger-state economics):
//!
//! - [`AdmissionController::try_admit`] runs on *every* request and is
//!   one counter compare plus an increment — no EWMA math, no limiter
//!   state, nothing the paper would call "real work";
//! - [`AdmissionController::update_limits`] runs from a periodic timed
//!   event (a soft-timer event in the saturation model) and does all
//!   the adaptive work: fold the latency EWMA sample, run the limiter,
//!   emit provenance trace events.
//!
//! Partitions are per [`RequestClass`]: each class owns its limiter
//! and its latency EWMA, so bulk or slow-client latency cannot poison
//! the interactive class's signal.

use crate::ewma::FixedEwma;
use crate::limiter::{Limiter, LimiterKind, Sample};
use crate::RequestClass;

/// What happens to a request the limiter refuses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectPolicy {
    /// Send the 503 immediately on the admission path.
    Immediate,
    /// Shed from a soft-timer event `delay_ticks` later (the reply
    /// batch-drains with other timed work; the connection holds its
    /// slot until then, which is deliberate backpressure).
    DelayedShed {
        /// Ticks (µs at the default 1 MHz) until the shed reply.
        delay_ticks: u64,
    },
}

/// The admission verdict for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Admitted: the caller must later report completion or abandon.
    Admit,
    /// Refused: apply the carried policy.
    Reject(RejectPolicy),
}

/// Per-class counters, readable at any time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClassStats {
    /// Requests admitted.
    pub admitted: u64,
    /// Requests refused by the limiter.
    pub rejected: u64,
    /// Admitted requests that completed.
    pub completed: u64,
    /// Admitted requests abandoned (shed pins, client resets).
    pub abandoned: u64,
    /// Smallest limit the updater ever set.
    pub limit_min: u64,
    /// Largest limit the updater ever set.
    pub limit_max: u64,
    /// The limit after the most recent update.
    pub limit_last: u64,
}

struct Partition {
    limiter: Box<dyn Limiter>,
    inflight: u64,
    rtt_ewma: FixedEwma,
    stats: ClassStats,
    trace_name: &'static str,
}

/// The per-class admission state machine.
pub struct AdmissionController {
    parts: [Partition; 2],
    policy: RejectPolicy,
    updates: u64,
}

impl AdmissionController {
    /// Builds a controller with one `kind` limiter per class.
    ///
    /// `rtt_budget_us` is the latency the AIMD family treats as its
    /// congestion threshold; `max_limit` caps every class's limit.
    pub fn new(
        kind: LimiterKind,
        policy: RejectPolicy,
        rtt_budget_us: u64,
        max_limit: u64,
    ) -> Self {
        let part = |class: RequestClass| Partition {
            limiter: kind.build(rtt_budget_us, max_limit),
            inflight: 0,
            rtt_ewma: FixedEwma::new(3),
            stats: ClassStats {
                limit_min: u64::MAX,
                ..ClassStats::default()
            },
            trace_name: match class {
                RequestClass::Interactive => "admit.limit.interactive",
                RequestClass::Bulk => "admit.limit.bulk",
            },
        };
        AdmissionController {
            parts: [part(RequestClass::Interactive), part(RequestClass::Bulk)],
            policy,
            updates: 0,
        }
    }

    fn part(&mut self, class: RequestClass) -> &mut Partition {
        &mut self.parts[class.index()]
    }

    /// The per-request fast path: one compare, one increment.
    // st-lint: hot-path
    pub fn try_admit(&mut self, class: RequestClass) -> Decision {
        let policy = self.policy;
        let p = self.part(class);
        if p.inflight < p.limiter.limit() {
            p.inflight += 1;
            p.stats.admitted += 1;
            Decision::Admit
        } else {
            p.stats.rejected += 1;
            Decision::Reject(policy)
        }
    }

    /// An admitted request finished after `rtt_us` of wall time.
    pub fn on_complete(&mut self, class: RequestClass, rtt_us: u64) {
        let p = self.part(class);
        p.inflight = p.inflight.saturating_sub(1);
        p.stats.completed += 1;
        p.rtt_ewma.update(rtt_us.max(1));
    }

    /// An admitted request went away without completing (a shed pinned
    /// connection, a client reset). Frees the slot without feeding the
    /// latency signal.
    pub fn on_abandon(&mut self, class: RequestClass) {
        let p = self.part(class);
        p.inflight = p.inflight.saturating_sub(1);
        p.stats.abandoned += 1;
    }

    /// The periodic update: runs every class's limiter over the current
    /// `(inflight, rtt)` sample. `now_us` stamps the provenance trace
    /// events. This is the *only* place limits change.
    pub fn update_limits(&mut self, now_us: u64) {
        self.updates += 1;
        let tracing = st_trace::active();
        for p in &mut self.parts {
            let limit = p.limiter.on_update(Sample {
                inflight: p.inflight,
                rtt_us: p.rtt_ewma.value(),
            });
            p.stats.limit_last = limit;
            p.stats.limit_min = p.stats.limit_min.min(limit);
            p.stats.limit_max = p.stats.limit_max.max(limit);
            // st-lint: allow(no-float-in-bounds) -- observability export;
            // the limiter step above stays in integer request counts
            st_scope::gauge(now_us, p.trace_name, limit as f64);
            if tracing {
                st_trace::emit(
                    st_trace::Category::Admit,
                    p.trace_name,
                    now_us,
                    limit,
                    p.inflight,
                );
            }
        }
    }

    /// The rejection policy this controller applies.
    pub fn policy(&self) -> RejectPolicy {
        self.policy
    }

    /// Updates performed so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Current limit for one class.
    pub fn limit(&self, class: RequestClass) -> u64 {
        self.parts[class.index()].limiter.limit()
    }

    /// Requests currently admitted and incomplete in one class.
    pub fn inflight(&self, class: RequestClass) -> u64 {
        self.parts[class.index()].inflight
    }

    /// Counters for one class.
    pub fn stats(&self, class: RequestClass) -> ClassStats {
        self.parts[class.index()].stats
    }

    /// Smoothed latency signal for one class, µs.
    pub fn rtt_us(&self, class: RequestClass) -> u64 {
        self.parts[class.index()].rtt_ewma.value()
    }
}

impl std::fmt::Debug for AdmissionController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionController")
            .field("policy", &self.policy)
            .field("updates", &self.updates)
            .field("interactive", &self.stats(RequestClass::Interactive))
            .field("bulk", &self.stats(RequestClass::Bulk))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> AdmissionController {
        AdmissionController::new(LimiterKind::Aimd, RejectPolicy::Immediate, 25_000, 100)
    }

    #[test]
    fn fast_path_enforces_the_limit() {
        let mut c = controller();
        // Fresh AIMD limit is 1: first admit passes, second bounces.
        assert_eq!(c.try_admit(RequestClass::Interactive), Decision::Admit);
        assert_eq!(
            c.try_admit(RequestClass::Interactive),
            Decision::Reject(RejectPolicy::Immediate)
        );
        // Completion frees the slot.
        c.on_complete(RequestClass::Interactive, 1_000);
        assert_eq!(c.try_admit(RequestClass::Interactive), Decision::Admit);
        let s = c.stats(RequestClass::Interactive);
        assert_eq!((s.admitted, s.rejected, s.completed), (2, 1, 1));
    }

    #[test]
    fn classes_are_partitioned() {
        let mut c = controller();
        assert_eq!(c.try_admit(RequestClass::Interactive), Decision::Admit);
        // Interactive is full; bulk still has its own slot.
        assert_eq!(c.try_admit(RequestClass::Bulk), Decision::Admit);
        assert_eq!(c.inflight(RequestClass::Interactive), 1);
        assert_eq!(c.inflight(RequestClass::Bulk), 1);
        // Bulk latency cannot move the interactive signal.
        c.on_complete(RequestClass::Bulk, 9_000_000);
        assert_eq!(c.rtt_us(RequestClass::Interactive), 0);
    }

    #[test]
    fn limits_only_change_in_updates() {
        let mut c = controller();
        for _ in 0..10 {
            if c.try_admit(RequestClass::Interactive) == Decision::Admit {
                c.on_complete(RequestClass::Interactive, 500);
            }
        }
        assert_eq!(c.limit(RequestClass::Interactive), 1);
        // One saturated, low-latency update grows the limit.
        let _ = c.try_admit(RequestClass::Interactive);
        c.update_limits(1_000);
        assert_eq!(c.limit(RequestClass::Interactive), 2);
        let s = c.stats(RequestClass::Interactive);
        assert_eq!((s.limit_min, s.limit_max, s.limit_last), (2, 2, 2));
        assert_eq!(c.updates(), 1);
    }

    #[test]
    fn abandon_frees_without_feeding_latency() {
        let mut c = controller();
        assert_eq!(c.try_admit(RequestClass::Bulk), Decision::Admit);
        c.on_abandon(RequestClass::Bulk);
        assert_eq!(c.inflight(RequestClass::Bulk), 0);
        assert_eq!(c.rtt_us(RequestClass::Bulk), 0);
        assert_eq!(c.stats(RequestClass::Bulk).abandoned, 1);
    }

    #[test]
    fn delayed_shed_policy_is_carried_in_the_decision() {
        let mut c = AdmissionController::new(
            LimiterKind::Vegas,
            RejectPolicy::DelayedShed { delay_ticks: 500 },
            25_000,
            1,
        );
        let _ = c.try_admit(RequestClass::Interactive);
        assert_eq!(
            c.try_admit(RequestClass::Interactive),
            Decision::Reject(RejectPolicy::DelayedShed { delay_ticks: 500 })
        );
    }
}
