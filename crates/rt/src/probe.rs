//! Microbenchmark probes: fit the machine's timing constants.
//!
//! The simulator charges every trigger check and event dispatch a cost
//! from `st_kernel::CostModel` — constants transcribed from the paper's
//! 1999 hardware. These probes measure the same quantities on the machine
//! the reproduction actually runs on, so `repro rt_calibration` can build
//! a calibrated model and quantify the sim-vs-reality gap:
//!
//! - cost of reading the clock,
//! - cost of an empty trigger-state check (`poll` finding nothing due),
//! - marginal cost of dispatching a due event,
//! - wake-up precision of `thread::sleep` vs spinning (the Metronome-style
//!   question: how much slack does the OS add to a requested µs delay?).
//!
//! Cost probes report the **minimum over batches** — the canonical
//! noise-rejection estimator for "how fast can this go", since scheduler
//! preemption and cache misses only ever add time. A minimum is only
//! trusted when a *second*, independent batch lands within
//! [`CORROBORATION_FACTOR`] of it; an uncorroborated minimum (one freak
//! batch, e.g. the timer interrupt coalescing reads) triggers a bounded
//! retry of the whole batch set, and every retry is surfaced in
//! [`Calibration::probe_retries`] so a noisy calibration is visible in
//! the report instead of silently wrong.

use std::time::Duration;

use st_core::{Config, Expired, SoftTimerCore};
use st_stats::HdrHistogram;
use st_trace::json::ObjectBuilder;

use crate::clock::NanoClock;

/// Fitted host timing constants plus wake-up precision distributions.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// Cost of one clock read (ns).
    pub clock_read_ns: f64,
    /// Cost of one empty trigger-state check: clock read + `poll` with
    /// nothing due (ns). The paper's `soft_check`.
    pub trigger_check_ns: f64,
    /// Marginal cost of dispatching one due event through `poll` (ns),
    /// check cost subtracted. The paper's `soft_dispatch`.
    pub fire_dispatch_ns: f64,
    /// Achievable idle-loop trigger density (checks per second) implied by
    /// the check cost: `1e9 / trigger_check_ns`.
    pub max_idle_density_hz: f64,
    /// Overshoot of `thread::sleep(1 ms)` past the requested delay (ns):
    /// what a timer facility built on OS sleeps would pay per wake-up.
    pub sleep_slack_ns: HdrHistogram,
    /// Overshoot of a spin-wait past its deadline (ns): the precision
    /// floor trigger states can reach.
    pub spin_slack_ns: HdrHistogram,
    /// Batch-set retries the cost probes needed before their minima were
    /// corroborated by a second batch (0 on a quiet machine). A high
    /// count means the constants above were fitted under load — treat
    /// the calibration with suspicion.
    pub probe_retries: u64,
}

/// A second batch must land within this factor of the best batch for the
/// minimum to count as corroborated.
pub const CORROBORATION_FACTOR: f64 = 1.5;

/// Whole-batch-set retries allowed per probe before the (possibly
/// uncorroborated) minimum is reported anyway.
pub const MAX_RETRY_ROUNDS: u32 = 4;

/// Minimum per-iteration time over `batches` batches of `iters` calls of
/// `body` (ns), with an outlier guard: the minimum must be corroborated
/// by a second batch within [`CORROBORATION_FACTOR`], else the whole
/// batch set is retried (up to [`MAX_RETRY_ROUNDS`] extra rounds, each
/// counted into `retries`). Batching amortizes the two boundary clock
/// reads.
fn min_per_iter_guarded(
    clock: &NanoClock,
    batches: usize,
    iters: u64,
    retries: &mut u64,
    mut body: impl FnMut(),
) -> f64 {
    let mut best = f64::INFINITY;
    let mut second = f64::INFINITY;
    for round in 0..=MAX_RETRY_ROUNDS {
        for _ in 0..batches {
            let t0 = clock.now_ns();
            for _ in 0..iters {
                body();
            }
            let elapsed = clock.now_ns() - t0;
            let mean = elapsed as f64 / iters as f64;
            if mean < best {
                second = best;
                best = mean;
            } else if mean < second {
                second = mean;
            }
        }
        if second <= best * CORROBORATION_FACTOR {
            break;
        }
        if round < MAX_RETRY_ROUNDS {
            *retries += 1;
        }
    }
    best
}

/// Cost of one clock read (ns). Batch retries forced by the outlier
/// guard accumulate into `retries`.
pub fn clock_read_cost_tracked(clock: &NanoClock, retries: &mut u64) -> f64 {
    min_per_iter_guarded(clock, 32, 10_000, retries, || {
        std::hint::black_box(clock.now_ns());
    })
}

/// Cost of one clock read (ns).
pub fn clock_read_cost(clock: &NanoClock) -> f64 {
    clock_read_cost_tracked(clock, &mut 0)
}

/// Cost of one empty trigger-state check (ns): a clock read plus a `poll`
/// on a core holding one far-future event (the common case — events are
/// pending but none is due). Batch retries accumulate into `retries`.
pub fn trigger_check_cost_tracked(clock: &NanoClock, retries: &mut u64) -> f64 {
    let mut core: SoftTimerCore<u32> = SoftTimerCore::new(Config::default());
    // One pending event a long way out, so `poll` takes its real
    // earliest-deadline path instead of the empty-wheel shortcut.
    core.schedule(0, u32::MAX as u64, 0);
    let mut buf: Vec<Expired<u32>> = Vec::new();
    let mut now = 1u64;
    min_per_iter_guarded(clock, 32, 10_000, retries, || {
        now += 1;
        core.poll(std::hint::black_box(now), &mut buf);
        std::hint::black_box(&buf);
    }) + clock_read_cost_tracked(clock, retries)
}

/// Cost of one empty trigger-state check (ns).
pub fn trigger_check_cost(clock: &NanoClock) -> f64 {
    trigger_check_cost_tracked(clock, &mut 0)
}

/// Marginal cost of dispatching one due event (ns): schedule-and-fire in
/// a tight loop, minus the empty-check cost measured the same way. Batch
/// retries accumulate into `retries`.
pub fn fire_dispatch_cost_tracked(clock: &NanoClock, retries: &mut u64) -> f64 {
    let check = {
        // Empty-check baseline *without* the clock-read add-on: the
        // subtraction below must compare like with like.
        let mut core: SoftTimerCore<u32> = SoftTimerCore::new(Config::default());
        core.schedule(0, u32::MAX as u64, 0);
        let mut buf: Vec<Expired<u32>> = Vec::new();
        let mut now = 1u64;
        min_per_iter_guarded(clock, 32, 10_000, retries, || {
            now += 1;
            core.poll(std::hint::black_box(now), &mut buf);
        })
    };
    let mut core: SoftTimerCore<u32> = SoftTimerCore::new(Config::default());
    let mut buf: Vec<Expired<u32>> = Vec::new();
    let mut now = 1u64;
    let with_fire = min_per_iter_guarded(clock, 32, 5_000, retries, || {
        // Deadline is now+1; advancing two ticks makes it due, so every
        // iteration is one schedule + one firing poll.
        core.schedule(now, 0, 7);
        now += 2;
        core.poll(std::hint::black_box(now), &mut buf);
        std::hint::black_box(&buf);
    });
    // The loop also pays one `schedule`; attribute half the remainder to
    // dispatch (schedule and dispatch both touch one wheel slot and are
    // within ~2x of each other on every machine we have seen).
    ((with_fire - check) / 2.0).max(1.0)
}

/// Marginal cost of dispatching one due event (ns).
pub fn fire_dispatch_cost(clock: &NanoClock) -> f64 {
    fire_dispatch_cost_tracked(clock, &mut 0)
}

/// Overshoot distribution of `thread::sleep(requested)` (ns).
pub fn sleep_slack(clock: &NanoClock, requested: Duration, samples: usize) -> HdrHistogram {
    let req_ns = u64::try_from(requested.as_nanos()).unwrap_or(u64::MAX);
    let mut h = HdrHistogram::new(7);
    for _ in 0..samples {
        let t0 = clock.now_ns();
        std::thread::sleep(requested);
        let actual = clock.now_ns() - t0;
        h.record(actual.saturating_sub(req_ns));
    }
    h
}

/// Overshoot distribution of a spin-wait past its deadline (ns).
pub fn spin_slack(clock: &NanoClock, requested: Duration, samples: usize) -> HdrHistogram {
    let req_ns = u64::try_from(requested.as_nanos()).unwrap_or(u64::MAX);
    let mut h = HdrHistogram::new(7);
    for _ in 0..samples {
        let t0 = clock.now_ns();
        let reached = clock.spin_until(t0 + req_ns);
        h.record(reached - (t0 + req_ns));
    }
    h
}

/// Runs every probe within roughly `budget` wall-clock time. The cost
/// probes are fast (tens of ms); the budget mostly controls how many
/// sleep-slack samples are taken (each pays a ~1 ms sleep).
pub fn calibrate(budget: Duration) -> Calibration {
    let clock = NanoClock::new();
    let mut probe_retries = 0u64;
    let clock_read_ns = clock_read_cost_tracked(&clock, &mut probe_retries);
    let trigger_check_ns = trigger_check_cost_tracked(&clock, &mut probe_retries);
    let fire_dispatch_ns = fire_dispatch_cost_tracked(&clock, &mut probe_retries);
    let sleep_req = Duration::from_millis(1);
    // Leave half the budget for sleeps; each sample costs ~1 ms + slack.
    let sleep_samples = (budget.as_millis() / 2).clamp(8, 200) as usize;
    let sleep_slack_ns = sleep_slack(&clock, sleep_req, sleep_samples);
    let spin_slack_ns = spin_slack(&clock, Duration::from_micros(50), 200);
    Calibration {
        clock_read_ns,
        trigger_check_ns,
        fire_dispatch_ns,
        max_idle_density_hz: 1e9 / trigger_check_ns.max(1.0),
        sleep_slack_ns,
        spin_slack_ns,
        probe_retries,
    }
}

impl Calibration {
    /// Single-line JSON document (schema `st-rt-calibration-v1`).
    pub fn to_json(&self) -> String {
        let hist = |h: &HdrHistogram| {
            let q = |p: f64| h.quantile(p).unwrap_or(0);
            ObjectBuilder::new()
                .u64("count", h.count())
                .u64("min", h.min().unwrap_or(0))
                .u64("p50", q(0.5))
                .u64("p99", q(0.99))
                .u64("max", h.max().unwrap_or(0))
                .build()
        };
        ObjectBuilder::new()
            .str("schema", "st-rt-calibration-v1")
            .f64("clock_read_ns", self.clock_read_ns)
            .f64("trigger_check_ns", self.trigger_check_ns)
            .f64("fire_dispatch_ns", self.fire_dispatch_ns)
            .f64("max_idle_density_hz", self.max_idle_density_hz)
            .raw("sleep_slack_ns", &hist(&self.sleep_slack_ns))
            .raw("spin_slack_ns", &hist(&self.spin_slack_ns))
            .u64("probe_retries", self.probe_retries)
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_costs_are_positive_and_sanely_ordered() {
        let clock = NanoClock::new();
        let read = clock_read_cost(&clock);
        let check = trigger_check_cost(&clock);
        // Load-tolerant: bounds are orders of magnitude, not values.
        assert!(read > 0.0 && read < 100_000.0, "clock read {read} ns");
        assert!(check > read, "check ({check}) must include a read ({read})");
        assert!(check < 1_000_000.0, "check {check} ns");
        let dispatch = fire_dispatch_cost(&clock);
        assert!((1.0..10_000_000.0).contains(&dispatch), "{dispatch}");
    }

    #[test]
    fn sleep_sleeps_longer_than_spin_spins() {
        let clock = NanoClock::new();
        let sleep = sleep_slack(&clock, Duration::from_millis(1), 10);
        let spin = spin_slack(&clock, Duration::from_micros(50), 50);
        assert_eq!(sleep.count(), 10);
        assert_eq!(spin.count(), 50);
        // The central claim behind trigger states: an OS sleep's median
        // slack dwarfs a spin's median slack.
        let sleep_p50 = sleep.quantile(0.5).unwrap();
        let spin_p50 = spin.quantile(0.5).unwrap();
        assert!(
            sleep_p50 > spin_p50,
            "sleep slack {sleep_p50} ns <= spin slack {spin_p50} ns"
        );
    }

    #[test]
    fn calibrate_emits_valid_json_within_budget() {
        let cal = calibrate(Duration::from_millis(100));
        let json = cal.to_json();
        st_trace::json::validate(&json).expect("invalid calibration JSON");
        assert!(json.contains("\"schema\":\"st-rt-calibration-v1\""));
        assert!(json.contains("\"probe_retries\""));
        assert!(cal.max_idle_density_hz > 1_000.0);
        assert!(cal.sleep_slack_ns.count() >= 8);
        // Five guarded batch sets run under calibrate (clock read, check
        // + its read baseline, dispatch + its check baseline), each
        // bounded at MAX_RETRY_ROUNDS.
        assert!(cal.probe_retries <= 5 * MAX_RETRY_ROUNDS as u64);
    }

    #[test]
    fn uncorroborated_minimum_triggers_bounded_retry() {
        // First round: batch 0 is fast, batch 1 spins 200 µs per call —
        // the minimum has no corroborating batch within the factor, so
        // the guard must retry. Later rounds are all fast, so the
        // retried minimum corroborates and the loop stops early.
        let clock = NanoClock::new();
        let mut calls = 0u64;
        let mut retries = 0u64;
        let iters = 200u64;
        let v = min_per_iter_guarded(&clock, 2, iters, &mut retries, || {
            calls += 1;
            if calls > iters && calls <= 2 * iters {
                let t = clock.now_ns();
                clock.spin_until(t + 1_000);
            }
        });
        assert!(retries >= 1, "outlier minimum must force a retry");
        assert!(
            retries <= MAX_RETRY_ROUNDS as u64,
            "retries {retries} unbounded"
        );
        assert!(v < 1_000.0, "estimate {v} ns should come from fast batches");
    }

    #[test]
    fn quiet_batches_need_no_retry() {
        // A body whose batches all behave identically corroborates
        // immediately: retries stays 0.
        let clock = NanoClock::new();
        let mut retries = 0u64;
        let v = min_per_iter_guarded(&clock, 8, 5_000, &mut retries, || {
            std::hint::black_box(clock.now_ns());
        });
        assert_eq!(retries, 0, "uniform batches must corroborate in round 0");
        assert!(v > 0.0);
    }
}
