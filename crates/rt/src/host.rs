//! Host runtime: `SoftTimerCore` on OS threads with real trigger states.
//!
//! The paper instruments kernel trigger states (syscall returns, trap
//! returns, the idle loop) and reports how often they occur and how late
//! soft-timer events fire through them (Tables 1-2). Userspace has no trap
//! returns, but an event-driven server has the same structure: a worker
//! pool whose **task-return points** are its syscall-return shims, plus an
//! **idle thread** polling the facility in a tight loop, plus a periodic
//! **backup sweep** thread playing the hardware interrupt. This module
//! runs the *same* `SoftTimerCore` the simulator uses over those three
//! real trigger sources and measures, in wall-clock nanoseconds:
//!
//! - the trigger-*interval* distribution per source (the paper's Table 1),
//! - the fire-*delay* distribution per fire origin (the paper's Table 2),
//! - the share of fires rescued by the backup sweep, and
//! - the facility's in-situ CPU fraction (check + dispatch time over busy
//!   thread time).
//!
//! All distributions are [`HdrHistogram`]s: host spans cover ~20 ns checks
//! to ~10 ms scheduler stalls, far beyond what the simulator's linear tick
//! histograms represent.
//!
//! The check fast path mirrors the paper's cost argument: a trigger-state
//! check is one clock read plus one compare against a cached
//! earliest-deadline word; the shared core lock is taken only when an
//! event is actually due, so check cost stays at probe scale instead of
//! being dominated by cross-thread lock contention.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use st_core::{Config, Expired, FireOrigin, SoftTimerCore};
use st_stats::HdrHistogram;
use st_trace::json::ObjectBuilder;

use crate::chaos::{ChaosState, FaultClock};
use crate::guard::Heartbeat;

/// A real trigger source in the host runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriggerSource {
    /// A worker thread finishing one task — the syscall-return shim.
    TaskReturn,
    /// The dedicated polling thread — the kernel idle loop.
    IdlePoll,
    /// The periodic sweep thread — the backup hardware interrupt.
    BackupSweep,
}

impl TriggerSource {
    /// Stable lowercase name used in JSON and metric keys.
    pub fn name(self) -> &'static str {
        match self {
            TriggerSource::TaskReturn => "task_return",
            TriggerSource::IdlePoll => "idle_poll",
            TriggerSource::BackupSweep => "backup_sweep",
        }
    }
}

/// Host runtime configuration.
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// Worker threads running the synthetic task loop.
    pub workers: usize,
    /// Wall-clock measurement duration.
    pub duration: Duration,
    /// Busy-work per synthetic task; the task-return trigger interval is
    /// roughly this plus one check. ~30 µs models the paper's server
    /// (Table 1 measures a 32-64 µs mean trigger interval under load).
    pub task_work: Duration,
    /// Whether to run the idle-loop polling thread.
    pub idle_poller: bool,
    /// Pause between idle polls (0 = poll flat out). A small pause
    /// decouples achievable idle density from core-lock contention.
    pub idle_pause: Duration,
    /// Backup sweep period — the "hardware interrupt clock".
    pub backup_period: Duration,
    /// Periods of the periodic soft-timer events kept armed for the whole
    /// run (the measured workload; each firing is a real dispatch).
    pub timer_periods: Vec<Duration>,
    /// Histogram precision (sub-bucket bits; 7 => <= ~1.6 % error).
    pub sub_bucket_bits: u32,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            workers: 2,
            duration: Duration::from_millis(300),
            task_work: Duration::from_micros(30),
            idle_poller: true,
            idle_pause: Duration::from_micros(1),
            backup_period: Duration::from_millis(1),
            timer_periods: vec![
                Duration::from_micros(100),
                Duration::from_micros(500),
                Duration::from_millis(1),
                Duration::from_millis(5),
            ],
            sub_bucket_bits: 7,
        }
    }
}

/// A periodic event armed in the host core; the payload carries what the
/// dispatcher needs to reschedule it drift-free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct PeriodicEvent {
    pub(crate) period_ns: u64,
}

/// Per-origin fire accounting shared by all dispatching threads. Fires are
/// orders of magnitude rarer than checks, so a mutex is fine here; the
/// check fast path never touches it.
pub(crate) struct FireAccum {
    pub(crate) trigger_delay: HdrHistogram,
    pub(crate) backup_delay: HdrHistogram,
    pub(crate) handler_runs: u64,
    /// Fire delays recorded while the supervisor held the runtime in
    /// degraded mode — the population the predicted envelope bounds.
    pub(crate) degraded_delay: HdrHistogram,
    /// Injected handler panics caught by the dispatcher.
    pub(crate) panics: u64,
}

pub(crate) struct Shared {
    pub(crate) core: Mutex<SoftTimerCore<PeriodicEvent>>,
    /// Cached earliest armed deadline (ns; `u64::MAX` when none). The
    /// trigger-check fast path compares the clock against this atomic and
    /// only takes the core lock when an event is actually due — the
    /// paper's point that a trigger check is a read + compare, not a
    /// synchronized queue operation. Refreshed under the core lock after
    /// every mutation; a stale value only delays one fire to the next
    /// check or backup sweep, which the facility already tolerates.
    pub(crate) earliest: AtomicU64,
    /// Host clock; healthy runs use [`FaultClock::healthy`], which reads
    /// the raw clock plus one relaxed load.
    pub(crate) clock: FaultClock,
    pub(crate) stop: AtomicBool,
    pub(crate) fires: Mutex<FireAccum>,
    /// Backup-sweep period the backup lane re-reads every cycle; the
    /// supervisor tightens it while degraded and restores on recovery.
    pub(crate) backup_period_ns: AtomicU64,
    /// Whether the supervisor currently holds the runtime in degraded
    /// mode (fires recorded into `FireAccum::degraded_delay`).
    pub(crate) degraded: AtomicBool,
    /// Panic-injection decisions for chaos runs; `None` on healthy runs.
    pub(crate) chaos: Option<ChaosState>,
}

impl Shared {
    /// Refreshes the cached earliest deadline. Call with the core lock
    /// held (the `core` borrow proves it).
    pub(crate) fn refresh_earliest(&self, core: &SoftTimerCore<PeriodicEvent>) {
        self.earliest.store(
            core.earliest_deadline().unwrap_or(u64::MAX),
            Ordering::Release,
        );
    }

    /// Builds the shared runtime state with the periodic workload armed,
    /// ready for lanes to start measuring. Healthy runs pass
    /// [`FaultClock::healthy`] and no chaos state.
    pub(crate) fn build(
        config: &HostConfig,
        clock: FaultClock,
        chaos: Option<ChaosState>,
    ) -> Arc<Shared> {
        let bits = config.sub_bucket_bits;
        let backup_period_ns =
            u64::try_from(config.backup_period.as_nanos().max(1)).unwrap_or(u64::MAX);
        let shared = Arc::new(Shared {
            core: Mutex::new(SoftTimerCore::new(Config {
                measure_hz: 1_000_000_000,
                interrupt_hz: (1_000_000_000 / backup_period_ns).max(1),
                record_stats: true,
            })),
            earliest: AtomicU64::new(u64::MAX),
            clock,
            stop: AtomicBool::new(false),
            fires: Mutex::new(FireAccum {
                trigger_delay: HdrHistogram::new(bits),
                backup_delay: HdrHistogram::new(bits),
                handler_runs: 0,
                degraded_delay: HdrHistogram::new(bits),
                panics: 0,
            }),
            backup_period_ns: AtomicU64::new(backup_period_ns),
            degraded: AtomicBool::new(false),
            chaos,
        });
        // Arm the periodic workload before any thread starts measuring.
        {
            let mut core = lock_recover(&shared.core);
            let now = shared.clock.now_ns();
            for period in &config.timer_periods {
                let period_ns = u64::try_from(period.as_nanos()).unwrap_or(u64::MAX).max(1);
                core.schedule(
                    now,
                    period_ns.saturating_sub(1),
                    PeriodicEvent { period_ns },
                );
            }
            shared.refresh_earliest(&core);
        }
        shared
    }
}

/// Process-wide count of poisoned-lock recoveries (see
/// [`lock_recoveries`]).
static LOCK_RECOVERIES: AtomicU64 = AtomicU64::new(0);

/// How many times a host-runtime lock was acquired through poison
/// recovery process-wide. A panicking handler (st-guard injects them
/// deliberately) poisons whichever mutex it unwound through; the runtime
/// keeps going because facility state stays consistent under its own
/// methods — but recovery must be audible, not silent, so each one is
/// counted here and in the `rt.lock_recoveries` trace counter.
pub fn lock_recoveries() -> u64 {
    LOCK_RECOVERIES.load(Ordering::Relaxed)
}

/// Locks a mutex, recovering the data if a previous holder panicked (same
/// rationale as `st_core::rt`: state kept consistent by its own methods).
/// Recoveries are counted — see [`lock_recoveries`].
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| {
        LOCK_RECOVERIES.fetch_add(1, Ordering::Relaxed);
        if st_trace::active() {
            st_trace::count("rt.lock_recoveries", 1);
        }
        poisoned.into_inner()
    })
}

/// What one measuring thread (worker or idle poller) brings home.
pub(crate) struct ThreadOut {
    pub(crate) intervals: HdrHistogram,
    /// Wall-clock cost of each individual trigger check (ns), including
    /// any dispatches it performed — the in-situ counterpart of the
    /// probe's uncontended check cost.
    pub(crate) check_ns: HdrHistogram,
    pub(crate) checks: u64,
    pub(crate) facility_ns: u64,
    pub(crate) busy_ns: u64,
}

impl ThreadOut {
    pub(crate) fn empty(bits: u32) -> Self {
        ThreadOut {
            intervals: HdrHistogram::new(bits),
            check_ns: HdrHistogram::new(bits),
            checks: 0,
            facility_ns: 0,
            busy_ns: 0,
        }
    }
}

/// Sum of a cost histogram excluding samples at or above the p99.9
/// cutoff. On an oversubscribed host (this container has one core for
/// four runtime threads) a scheduler preemption landing inside the
/// measured window adds *milliseconds* to a ~100 ns check; those few
/// windows would otherwise dominate the total and report scheduler
/// behaviour, not facility cost. Bucket midpoints keep the estimate
/// within the histogram's relative-error bound.
fn trimmed_sum_ns(h: &HdrHistogram) -> u64 {
    let Some(cutoff) = h.quantile(0.999) else {
        return 0;
    };
    let mut sum = 0u64;
    for (lo, hi, count) in h.buckets() {
        if lo > cutoff {
            continue;
        }
        let mid = lo / 2 + hi / 2;
        sum = sum.saturating_add(mid.saturating_mul(count));
    }
    sum
}

/// One trigger source's measured behaviour.
#[derive(Debug, Clone)]
pub struct SourceReport {
    /// Which source this is.
    pub source: TriggerSource,
    /// Total trigger-state checks performed.
    pub checks: u64,
    /// Checks per second of wall-clock run time.
    pub density_hz: f64,
    /// Distribution of intervals between consecutive checks (ns), merged
    /// across the source's threads (intervals are within-thread).
    pub intervals: HdrHistogram,
}

/// One fire origin's measured behaviour.
#[derive(Debug, Clone)]
pub struct FireReport {
    /// How many events fired through this origin.
    pub count: u64,
    /// Distribution of fire delays past the earliest legal tick (ns).
    pub delay_ns: HdrHistogram,
}

/// Everything the host runtime measured in one run.
#[derive(Debug, Clone)]
pub struct HostReport {
    /// Actual wall-clock duration of the measuring phase (ns).
    pub duration_ns: u64,
    /// Worker thread count.
    pub workers: usize,
    /// Task-return trigger source (always present).
    pub task_return: SourceReport,
    /// Idle-poll trigger source (when configured).
    pub idle_poll: Option<SourceReport>,
    /// Backup-sweep source.
    pub backup_sweep: SourceReport,
    /// Events fired from trigger-state checks.
    pub fired_trigger: FireReport,
    /// Events rescued by the backup sweep.
    pub fired_backup: FireReport,
    /// Handler bodies actually run.
    pub handler_runs: u64,
    /// Fraction of fires that needed the backup sweep.
    pub backup_share: f64,
    /// Per-check wall-clock cost distribution (ns) merged across worker
    /// and idle threads; dispatches performed by a check are included in
    /// its window. Compare its p50 against the probe's uncontended check
    /// cost to see what sharing the facility actually costs in situ.
    pub check_cost: HdrHistogram,
    /// Facility time (checks + dispatches) over busy thread time for the
    /// worker/idle threads — the soft-timer facility's in-situ CPU share.
    /// Computed from the 99.9 %-trimmed check-cost sum so that scheduler
    /// preemptions landing inside a measured window (milliseconds against
    /// a ~100 ns check on this one-core container) do not masquerade as
    /// facility cost; the untrimmed value is
    /// [`facility_cpu_fraction_raw`](Self::facility_cpu_fraction_raw).
    pub facility_cpu_fraction: f64,
    /// Untrimmed facility fraction: every nanosecond between check start
    /// and check end, preemptions included. The gap between this and the
    /// trimmed value measures how much the host scheduler perturbs the
    /// measurement, not the facility.
    pub facility_cpu_fraction_raw: f64,
    /// Backup thread's facility time over the run duration — the cost the
    /// "hardware interrupt" side contributes, kept separate as the paper
    /// separates interrupt cost from trigger-state cost.
    pub backup_cpu_fraction: f64,
    /// Final facility statistics snapshot (tick units are nanoseconds).
    pub stats: st_core::FacilityStats,
}

/// Runs one due-event batch through the dispatcher: records the fire
/// delay, runs the (possibly chaos-panicking) handler body isolated
/// under `catch_unwind`, and reschedules the periodic event drift-free
/// from its previous deadline.
fn dispatch(shared: &Shared, ev: Expired<PeriodicEvent>) {
    let delay = ev.delay();
    // The handler body. The measured workload's real handler is trivial;
    // a chaos run makes some of them panic, and the dispatcher must
    // contain that to the one fire — not the lane, not the runtime.
    let panicked = match &shared.chaos {
        Some(chaos) if chaos.should_panic() => {
            let r = catch_unwind(AssertUnwindSafe(|| {
                panic!("injected handler panic (due {})", ev.due)
            }));
            debug_assert!(r.is_err());
            true
        }
        _ => false,
    };
    {
        let mut fires = lock_recover(&shared.fires);
        match ev.origin {
            FireOrigin::TriggerState => fires.trigger_delay.record(delay),
            FireOrigin::BackupInterrupt => fires.backup_delay.record(delay),
        }
        if shared.degraded.load(Ordering::Relaxed) {
            fires.degraded_delay.record(delay);
        }
        fires.handler_runs += 1;
        if panicked {
            fires.panics += 1;
        }
    }
    // Sealed telemetry: visible to a trace/scope session on the
    // dispatching thread, a no-op otherwise (same contract as the sim).
    if st_trace::active() {
        st_trace::count("rt.host.fires", 1);
        st_trace::emit(
            st_trace::Category::Rt,
            "rt.host.fire",
            ev.fired_at,
            ev.due,
            delay,
        );
    }
    match ev.origin {
        FireOrigin::TriggerState => st_scope::fire_delay("rt.host.trigger", delay, 0),
        FireOrigin::BackupInterrupt => st_scope::fire_delay("rt.host.backup", delay, 0),
    }
    // Drift-free rearm: next deadline from the previous deadline, skipping
    // missed periods arithmetically if the run stalled.
    let period = ev.payload.period_ns.max(1);
    let now = shared.clock.now_ns();
    let mut next = ev.due.saturating_add(period);
    if next <= now {
        let behind = now - next;
        next += (behind / period + 1) * period;
    }
    let mut core = lock_recover(&shared.core);
    if panicked {
        core.note_handler_panic();
    }
    // `schedule(now, delta)` arms deadline `now + delta + 1`.
    core.schedule(now, next - now - 1, ev.payload);
    shared.refresh_earliest(&core);
}

/// Per-lane control block threaded through the measuring loops: the
/// heartbeat to beat, the generation cell that supersedes this thread
/// when the supervisor restarts the lane, and the chaos stall windows
/// this lane must execute. [`LaneCtl::none`] (plain runs) costs two
/// predictable branches per loop iteration.
pub(crate) struct LaneCtl {
    pub(crate) hb: Option<Heartbeat>,
    /// `(cell, my_generation)`: when the cell moves past my generation a
    /// replacement lane thread is running and this one must exit.
    pub(crate) gen: Option<(Arc<AtomicU64>, u64)>,
    /// Absolute `(at_ns, duration_ns)` stall windows, sorted ascending.
    pub(crate) stalls: Vec<(u64, u64)>,
    stall_idx: usize,
}

impl LaneCtl {
    /// No supervision, no chaos: the plain `run()` configuration.
    pub(crate) fn none() -> Self {
        LaneCtl {
            hb: None,
            gen: None,
            stalls: Vec::new(),
            stall_idx: 0,
        }
    }

    /// A supervised lane, optionally with stall windows to execute.
    pub(crate) fn supervised(
        hb: Heartbeat,
        gen: Arc<AtomicU64>,
        my_gen: u64,
        stalls: Vec<(u64, u64)>,
    ) -> Self {
        LaneCtl {
            hb: Some(hb),
            gen: Some((gen, my_gen)),
            stalls,
            stall_idx: 0,
        }
    }

    /// True when the supervisor has spawned a replacement for this lane
    /// thread and it must exit.
    fn superseded(&self) -> bool {
        match &self.gen {
            Some((cell, mine)) => cell.load(Ordering::Relaxed) != *mine,
            None => false,
        }
    }

    /// One loop-top bookkeeping step: exits a superseded thread, beats
    /// the heartbeat, and executes any due stall window as a
    /// heartbeat-silent spin (in ~1 ms slices so stop/supersede still
    /// terminate a wedged lane promptly — the *heartbeat* is what goes
    /// silent, not the process). Returns `false` when the lane thread
    /// should exit.
    fn tick(&mut self, shared: &Shared) -> bool {
        if self.superseded() {
            return false;
        }
        let now = shared.clock.now_ns();
        if let Some(hb) = &self.hb {
            hb.beat(now);
        }
        if let Some(&(at, dur)) = self.stalls.get(self.stall_idx) {
            if now >= at {
                self.stall_idx += 1;
                let until = now.saturating_add(dur);
                while shared.clock.now_ns() < until {
                    if shared.stop.load(Ordering::Relaxed) || self.superseded() {
                        return false;
                    }
                    let slice = shared.clock.now_ns().saturating_add(1_000_000).min(until);
                    shared.clock.spin_until(slice);
                }
            }
        }
        true
    }
}

/// One trigger-state check (or backup sweep). The check fast path is a
/// clock read plus a compare against the cached earliest deadline; the
/// core lock is taken only when an event is due (or on a sweep). Due
/// events are polled under the lock and dispatched outside it. Returns
/// the number of events fired.
fn trigger_check(shared: &Shared, buf: &mut Vec<Expired<PeriodicEvent>>, sweep: bool) -> usize {
    if !sweep {
        let due = shared.earliest.load(Ordering::Acquire);
        if shared.clock.now_ns() < due {
            return 0;
        }
    }
    buf.clear();
    {
        let mut core = lock_recover(&shared.core);
        let now = shared.clock.now_ns();
        if sweep {
            core.interrupt_sweep(now, buf);
        } else {
            core.poll(now, buf);
        }
        shared.refresh_earliest(&core);
    }
    let n = buf.len();
    for ev in buf.drain(..) {
        dispatch(shared, ev);
    }
    n
}

/// The measuring loop shared by workers and the idle poller: do
/// `work_ns` of busy work (0 for the idle loop), hit a trigger state,
/// time the check, record the inter-check interval. `ctl` carries the
/// lane's supervision hooks (heartbeat, supersede, chaos stalls).
pub(crate) fn measure_loop(
    shared: &Shared,
    work_ns: u64,
    pause_ns: u64,
    bits: u32,
    mut ctl: LaneCtl,
) -> ThreadOut {
    let mut out = ThreadOut::empty(bits);
    let mut buf: Vec<Expired<PeriodicEvent>> = Vec::new();
    let mut last_check: Option<u64> = None;
    let started = shared.clock.now_ns();
    while !shared.stop.load(Ordering::Relaxed) {
        if !ctl.tick(shared) {
            break;
        }
        if work_ns > 0 {
            let t = shared.clock.now_ns();
            shared.clock.spin_until(t + work_ns);
        } else if pause_ns > 0 {
            let t = shared.clock.now_ns();
            shared.clock.spin_until(t + pause_ns);
        }
        let t0 = shared.clock.now_ns();
        if let Some(last) = last_check {
            out.intervals.record(t0 - last);
        }
        last_check = Some(t0);
        trigger_check(shared, &mut buf, false);
        let elapsed = shared.clock.now_ns() - t0;
        out.check_ns.record(elapsed);
        out.facility_ns += elapsed;
        out.checks += 1;
    }
    out.busy_ns = shared.clock.now_ns() - started;
    out
}

/// The backup-sweep loop: sleep one period (re-read every cycle so the
/// supervisor's degradation retunes take effect immediately), then sweep.
pub(crate) fn backup_loop(shared: &Shared, bits: u32, mut ctl: LaneCtl) -> ThreadOut {
    let mut out = ThreadOut::empty(bits);
    let mut buf = Vec::new();
    let mut last: Option<u64> = None;
    while !shared.stop.load(Ordering::Relaxed) {
        if !ctl.tick(shared) {
            break;
        }
        let period_ns = shared.backup_period_ns.load(Ordering::Relaxed);
        std::thread::sleep(Duration::from_nanos(period_ns));
        let t0 = shared.clock.now_ns();
        if let Some(l) = last {
            out.intervals.record(t0 - l);
        }
        last = Some(t0);
        trigger_check(shared, &mut buf, true);
        out.facility_ns += shared.clock.now_ns() - t0;
        out.checks += 1;
    }
    out
}

/// Runs the host runtime for `config.duration` and reports what the real
/// machine did. Spawns `workers + idle_poller + 1` threads; the calling
/// thread sleeps for the duration and then joins them.
pub fn run(config: &HostConfig) -> HostReport {
    let bits = config.sub_bucket_bits;
    let shared = Shared::build(config, FaultClock::healthy(), None);

    let work_ns = u64::try_from(config.task_work.as_nanos()).unwrap_or(u64::MAX);
    let pause_ns = u64::try_from(config.idle_pause.as_nanos()).unwrap_or(u64::MAX);
    let mut worker_handles = Vec::new();
    for i in 0..config.workers {
        let s = Arc::clone(&shared);
        worker_handles.push(
            std::thread::Builder::new()
                .name(format!("st-rt-worker-{i}"))
                .spawn(move || measure_loop(&s, work_ns.max(1), 0, bits, LaneCtl::none()))
                // One-time startup: a host that cannot spawn threads
                // cannot run the runtime at all.
                .expect("failed to spawn worker thread"),
        );
    }
    let idle_handle = config.idle_poller.then(|| {
        let s = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("st-rt-idle".into())
            .spawn(move || measure_loop(&s, 0, pause_ns, bits, LaneCtl::none()))
            .expect("failed to spawn idle thread")
    });
    let backup_handle = {
        let s = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("st-rt-backup".into())
            .spawn(move || backup_loop(&s, bits, LaneCtl::none()))
            .expect("failed to spawn backup thread")
    };

    let started = shared.clock.now_ns();
    std::thread::sleep(config.duration);
    shared.stop.store(true, Ordering::Relaxed);
    let duration_ns = (shared.clock.now_ns() - started).max(1);

    let worker_outs: Vec<ThreadOut> = worker_handles
        .into_iter()
        .filter_map(|h| h.join().ok())
        .collect();
    let idle_outs: Vec<ThreadOut> = idle_handle
        .and_then(|h| h.join().ok())
        .into_iter()
        .collect();
    let backup_outs: Vec<ThreadOut> = backup_handle.join().into_iter().collect();
    finish_report(
        &shared,
        config.workers,
        duration_ns,
        bits,
        worker_outs,
        idle_outs,
        backup_outs,
    )
}

/// Folds the per-thread measurements into a [`HostReport`]. A supervised
/// run hands in several [`ThreadOut`]s per lane (one per restart
/// generation); they merge the same way one does.
pub(crate) fn finish_report(
    shared: &Shared,
    workers: usize,
    duration_ns: u64,
    bits: u32,
    worker_outs: Vec<ThreadOut>,
    idle_outs: Vec<ThreadOut>,
    backup_outs: Vec<ThreadOut>,
) -> HostReport {
    let secs = duration_ns as f64 / 1e9;
    let mut task_return = SourceReport {
        source: TriggerSource::TaskReturn,
        checks: 0,
        density_hz: 0.0,
        intervals: HdrHistogram::new(bits),
    };
    let mut facility_ns_total = 0u64;
    let mut busy_ns_total = 0u64;
    let mut check_cost = HdrHistogram::new(bits);
    for out in &worker_outs {
        task_return.checks += out.checks;
        task_return.intervals.merge(&out.intervals);
        check_cost.merge(&out.check_ns);
        facility_ns_total += out.facility_ns;
        busy_ns_total += out.busy_ns;
    }
    task_return.density_hz = task_return.checks as f64 / secs;

    let idle_poll = (!idle_outs.is_empty()).then(|| {
        let mut idle = SourceReport {
            source: TriggerSource::IdlePoll,
            checks: 0,
            density_hz: 0.0,
            intervals: HdrHistogram::new(bits),
        };
        for out in &idle_outs {
            idle.checks += out.checks;
            idle.intervals.merge(&out.intervals);
            check_cost.merge(&out.check_ns);
            facility_ns_total += out.facility_ns;
            busy_ns_total += out.busy_ns;
        }
        idle.density_hz = idle.checks as f64 / secs;
        idle
    });

    let mut backup_sweep = SourceReport {
        source: TriggerSource::BackupSweep,
        checks: 0,
        density_hz: 0.0,
        intervals: HdrHistogram::new(bits),
    };
    let mut backup_facility_ns = 0u64;
    for out in &backup_outs {
        backup_sweep.checks += out.checks;
        backup_sweep.intervals.merge(&out.intervals);
        backup_facility_ns += out.facility_ns;
    }
    backup_sweep.density_hz = backup_sweep.checks as f64 / secs;

    let fires = lock_recover(&shared.fires);
    let stats = lock_recover(&shared.core).stats().clone();
    let fired_total = fires.trigger_delay.count() + fires.backup_delay.count();
    HostReport {
        duration_ns,
        workers,
        fired_trigger: FireReport {
            count: fires.trigger_delay.count(),
            delay_ns: fires.trigger_delay.clone(),
        },
        fired_backup: FireReport {
            count: fires.backup_delay.count(),
            delay_ns: fires.backup_delay.clone(),
        },
        handler_runs: fires.handler_runs,
        backup_share: if fired_total > 0 {
            fires.backup_delay.count() as f64 / fired_total as f64
        } else {
            0.0
        },
        facility_cpu_fraction: if busy_ns_total > 0 {
            trimmed_sum_ns(&check_cost) as f64 / busy_ns_total as f64
        } else {
            0.0
        },
        facility_cpu_fraction_raw: if busy_ns_total > 0 {
            facility_ns_total as f64 / busy_ns_total as f64
        } else {
            0.0
        },
        check_cost,
        backup_cpu_fraction: backup_facility_ns as f64 / duration_ns as f64,
        task_return,
        idle_poll,
        backup_sweep,
        stats,
    }
}

/// Serializes an [`HdrHistogram`] summary as a JSON object string.
fn hist_json(h: &HdrHistogram) -> String {
    let q = |p: f64| h.quantile(p).unwrap_or(0);
    ObjectBuilder::new()
        .u64("count", h.count())
        .u64("min", h.min().unwrap_or(0))
        .u64("p50", q(0.5))
        .u64("p90", q(0.9))
        .u64("p99", q(0.99))
        .u64("max", h.max().unwrap_or(0))
        .f64("mean", h.mean())
        .build()
}

fn source_json(s: &SourceReport) -> String {
    ObjectBuilder::new()
        .str("source", s.source.name())
        .u64("checks", s.checks)
        .f64("density_hz", s.density_hz)
        .raw("interval_ns", &hist_json(&s.intervals))
        .build()
}

impl HostReport {
    /// Mean trigger interval of a source in nanoseconds (0 when the
    /// source recorded nothing).
    pub fn mean_interval_ns(&self, source: TriggerSource) -> f64 {
        let report = match source {
            TriggerSource::TaskReturn => Some(&self.task_return),
            TriggerSource::IdlePoll => self.idle_poll.as_ref(),
            TriggerSource::BackupSweep => Some(&self.backup_sweep),
        };
        report.map_or(0.0, |r| r.intervals.mean())
    }

    /// Single-line JSON document (schema `st-rt-host-v1`).
    pub fn to_json(&self) -> String {
        let mut sources = vec![source_json(&self.task_return)];
        if let Some(idle) = &self.idle_poll {
            sources.push(source_json(idle));
        }
        sources.push(source_json(&self.backup_sweep));
        let fires = [
            ObjectBuilder::new()
                .str("origin", "trigger")
                .u64("count", self.fired_trigger.count)
                .raw("delay_ns", &hist_json(&self.fired_trigger.delay_ns))
                .build(),
            ObjectBuilder::new()
                .str("origin", "backup")
                .u64("count", self.fired_backup.count)
                .raw("delay_ns", &hist_json(&self.fired_backup.delay_ns))
                .build(),
        ];
        ObjectBuilder::new()
            .str("schema", "st-rt-host-v1")
            .u64("duration_ns", self.duration_ns)
            .u64("workers", self.workers as u64)
            .raw("sources", &format!("[{}]", sources.join(",")))
            .raw("fires", &format!("[{}]", fires.join(",")))
            .u64("handler_runs", self.handler_runs)
            .f64("backup_share", self.backup_share)
            .raw("check_cost_ns", &hist_json(&self.check_cost))
            .f64("facility_cpu_fraction", self.facility_cpu_fraction)
            .f64("facility_cpu_fraction_raw", self.facility_cpu_fraction_raw)
            .f64("backup_cpu_fraction", self.backup_cpu_fraction)
            .u64("clock_regressions", self.stats.clock_regressions)
            .build()
    }

    /// Pushes the measured aggregates through the sealed st-trace/st-scope
    /// telemetry channel of the *calling* thread, so an active session's
    /// existing export paths (chrome trace, scope JSONL) carry host data.
    /// A no-op when no session is active — safe to call unconditionally.
    pub fn emit_telemetry(&self) {
        if st_trace::active() {
            st_trace::count("rt.host.checks.task_return", self.task_return.checks);
            if let Some(idle) = &self.idle_poll {
                st_trace::count("rt.host.checks.idle_poll", idle.checks);
            }
            st_trace::count("rt.host.checks.backup_sweep", self.backup_sweep.checks);
            st_trace::count("rt.host.fired.trigger", self.fired_trigger.count);
            st_trace::count("rt.host.fired.backup", self.fired_backup.count);
            st_trace::observe("rt.host.backup_share", self.backup_share);
            st_trace::observe("rt.host.facility_cpu_fraction", self.facility_cpu_fraction);
            if let Some(p50) = self.check_cost.quantile(0.5) {
                st_trace::observe("rt.host.check_cost_p50_ns", p50 as f64);
            }
            if let Some(p99) = self.fired_trigger.delay_ns.quantile(0.99) {
                st_trace::observe("rt.host.trigger_fire_delay_p99_ns", p99 as f64);
            }
        }
        st_scope::observe("rt.host.backup_share", self.backup_share);
        st_scope::observe("rt.host.facility_cpu_fraction", self.facility_cpu_fraction);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> HostConfig {
        HostConfig {
            workers: 1,
            duration: Duration::from_millis(60),
            task_work: Duration::from_micros(20),
            idle_poller: true,
            idle_pause: Duration::from_micros(2),
            backup_period: Duration::from_millis(2),
            timer_periods: vec![Duration::from_micros(200), Duration::from_millis(1)],
            sub_bucket_bits: 7,
        }
    }

    #[test]
    fn host_run_measures_all_sources_and_fires_events() {
        let report = run(&quick_config());
        // Generous load-tolerant bounds: the machine is real.
        assert!(
            report.task_return.checks > 50,
            "{}",
            report.task_return.checks
        );
        let idle = report.idle_poll.as_ref().expect("idle poller configured");
        assert!(idle.checks > 100, "{}", idle.checks);
        assert!(report.backup_sweep.checks >= 1);
        // A 200 µs periodic timer over ~60 ms must fire many times.
        assert!(report.handler_runs > 20, "{}", report.handler_runs);
        let fired = report.fired_trigger.count + report.fired_backup.count;
        assert_eq!(fired, report.handler_runs);
        // With an idle poller at ~µs cadence almost everything should
        // fire from a trigger state, but only assert the soft bound.
        assert!(report.backup_share <= 1.0);
        assert!(report.facility_cpu_fraction > 0.0);
        assert!(report.facility_cpu_fraction < 1.0);
        // Delay distributions recorded in ns and plausible (< 1 s).
        if let Some(p99) = report.fired_trigger.delay_ns.quantile(0.99) {
            assert!(p99 < 1_000_000_000, "p99 delay {p99} ns");
        }
    }

    #[test]
    fn host_report_json_is_valid_and_carries_the_schema() {
        let report = run(&HostConfig {
            duration: Duration::from_millis(30),
            ..quick_config()
        });
        let json = report.to_json();
        st_trace::json::validate(&json).expect("invalid host report JSON");
        assert!(json.contains("\"schema\":\"st-rt-host-v1\""));
        assert!(json.contains("task_return"));
        assert!(json.contains("idle_poll"));
        assert!(json.contains("backup_sweep"));
    }

    #[test]
    fn emit_telemetry_feeds_an_active_trace_session() {
        let report = run(&HostConfig {
            duration: Duration::from_millis(30),
            idle_poller: false,
            ..quick_config()
        });
        let session = st_trace::TraceSession::start(st_trace::TraceConfig::default());
        report.emit_telemetry();
        let snapshot = session.finish();
        assert_eq!(
            snapshot.counter("rt.host.checks.task_return"),
            report.task_return.checks
        );
        assert_eq!(snapshot.counter("rt.host.checks.idle_poll"), 0);
    }

    #[test]
    fn lock_recovery_is_counted_not_silent() {
        let m = std::sync::Mutex::new(7u64);
        let before = lock_recoveries();
        // Poison the lock: a thread panics while holding the guard.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = m.lock().unwrap();
            panic!("poison the lock");
        }));
        assert!(r.is_err());
        assert!(m.is_poisoned());
        // A healthy lock doesn't count.
        let healthy = std::sync::Mutex::new(1u64);
        drop(lock_recover(&healthy));
        assert_eq!(lock_recoveries(), before);
        // Recovery yields the data, still consistent, and is counted.
        {
            let mut g = lock_recover(&m);
            assert_eq!(*g, 7);
            *g = 8;
        }
        assert_eq!(lock_recoveries(), before + 1);
        // The recovered mutex stays poisoned (std semantics), so every
        // subsequent recovery is also audible.
        drop(lock_recover(&m));
        assert_eq!(lock_recoveries(), before + 2);
    }

    #[test]
    fn no_idle_poller_leans_on_the_backup_sweep() {
        // With sparse trigger states (no idle thread, long tasks) and a
        // short timer, the backup sweep must rescue some fires — the
        // paper's delay-bound mechanism, observed on the real machine.
        let report = run(&HostConfig {
            workers: 1,
            duration: Duration::from_millis(80),
            task_work: Duration::from_millis(8),
            idle_poller: false,
            idle_pause: Duration::ZERO,
            backup_period: Duration::from_millis(1),
            timer_periods: vec![Duration::from_micros(500)],
            sub_bucket_bits: 7,
        });
        assert!(
            report.fired_backup.count > 0,
            "8 ms tasks cannot hit 500 µs deadlines from task returns"
        );
        assert!(report.backup_share > 0.0);
    }
}
