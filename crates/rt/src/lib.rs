//! st-rt: run the soft-timer facility on the real machine and measure it.
//!
//! Everything else in this workspace observes the *simulator*; the paper's
//! central claims (Tables 1-2) are about distributions measured on real
//! hardware. This crate closes that loop in userspace:
//!
//! - [`clock::NanoClock`] — nanosecond monotonic clock implementing
//!   [`st_core::Clock`], so `SoftTimerCore` arithmetic runs directly in
//!   wall-clock ns.
//! - [`host`] — a worker-pool runtime whose task-return points act as
//!   syscall-return shims, plus an idle-polling thread and a backup-sweep
//!   thread; measures trigger-interval and fire-delay distributions per
//!   source and the facility's in-situ CPU share.
//! - [`probe`] — microbenchmarks fitting the machine's trigger-check /
//!   dispatch / clock-read costs and sleep-vs-spin wake-up precision, the
//!   inputs to `CostModel::calibrated_host` and `repro rt_calibration`.
//! - [`guard`] — supervision and self-healing: per-lane heartbeats, a
//!   pure supervisor core detecting stalls and restarting lanes under a
//!   backoff budget, and graceful degradation that tightens the backup
//!   sweep to a predicted fire-delay envelope when the trigger stream
//!   starves.
//! - [`chaos`] — deterministic host-side fault injection (thread stalls,
//!   handler panics, clock jumps) scheduled up front from the st-fault
//!   plan's seed, so every chaos run has a seed-replayable sim twin.
//!
//! This is, deliberately, the **only** crate outside `core/src/rt.rs`
//! allowed to read wall-clock time — the `no-wall-clock` lint pins host
//! time here; the simulator stays deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod clock;
pub mod guard;
pub mod host;
pub mod probe;

pub use chaos::{ChaosSchedule, ChaosState, FaultClock};
pub use clock::NanoClock;
pub use guard::{
    lane_classes, plan_lane_stalls, run_guarded, Action, ChaosConfig, GuardConfig, GuardReport,
    Heartbeat, LaneClass, SupervisorConfig, SupervisorCore,
};
pub use host::{lock_recoveries, FireReport, HostConfig, HostReport, SourceReport, TriggerSource};
pub use probe::Calibration;
