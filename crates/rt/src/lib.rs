//! st-rt: run the soft-timer facility on the real machine and measure it.
//!
//! Everything else in this workspace observes the *simulator*; the paper's
//! central claims (Tables 1-2) are about distributions measured on real
//! hardware. This crate closes that loop in userspace:
//!
//! - [`clock::NanoClock`] — nanosecond monotonic clock implementing
//!   [`st_core::Clock`], so `SoftTimerCore` arithmetic runs directly in
//!   wall-clock ns.
//! - [`host`] — a worker-pool runtime whose task-return points act as
//!   syscall-return shims, plus an idle-polling thread and a backup-sweep
//!   thread; measures trigger-interval and fire-delay distributions per
//!   source and the facility's in-situ CPU share.
//! - [`probe`] — microbenchmarks fitting the machine's trigger-check /
//!   dispatch / clock-read costs and sleep-vs-spin wake-up precision, the
//!   inputs to `CostModel::calibrated_host` and `repro rt_calibration`.
//!
//! This is, deliberately, the **only** crate outside `core/src/rt.rs`
//! allowed to read wall-clock time — the `no-wall-clock` lint pins host
//! time here; the simulator stays deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod host;
pub mod probe;

pub use clock::NanoClock;
pub use host::{FireReport, HostConfig, HostReport, SourceReport, TriggerSource};
pub use probe::Calibration;
