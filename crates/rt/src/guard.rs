//! st-guard: supervision and self-healing for the host runtime.
//!
//! The paper's bound assumes the machinery that performs checks keeps
//! running. On a real machine it doesn't: threads wedge (scheduler
//! pathology, runaway callbacks), handlers panic, clocks step. This
//! module wraps the `host` runtime in a supervisor that makes those
//! failures *detected, bounded, and audible* instead of silent:
//!
//! - every lane (worker shims, idle poller, backup sweep) beats a
//!   [`Heartbeat`] — one relaxed atomic store — at the top of its loop;
//! - a supervisor thread scans heartbeat ages every `scan_period` with a
//!   pure [`SupervisorCore`], detecting stalls older than
//!   `stall_window`, restarting dead lanes under an exponential-backoff
//!   restart budget, and giving up audibly when the budget is spent;
//! - when the idle-poll lane (the trigger stream that makes fire delays
//!   small) starves, the supervisor **degrades**: it tightens the
//!   backup-sweep period to `degraded_backup_period` via
//!   [`st_core::SoftTimerCore::set_interrupt_hz`], so the fire-delay
//!   bound collapses to a *predicted* envelope — degraded period plus
//!   wake-up slack — instead of widening silently; recovery restores
//!   the configured period;
//! - panicking handlers are isolated in the dispatcher (`host::dispatch`
//!   runs them under `catch_unwind`) and poisoned locks recover
//!   *counted* ([`crate::host::lock_recoveries`]).
//!
//! The [`SupervisorCore`] is pure — time in, actions out — so the
//! `rt_chaos` experiment drives the identical policy code in virtual
//! time as its deterministic sim twin.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use st_fault::HostFaults;
use st_stats::HdrHistogram;
use st_trace::json::ObjectBuilder;

use crate::chaos::{ChaosSchedule, ChaosState, FaultClock};
use crate::host::{
    self, backup_loop, finish_report, lock_recoveries, measure_loop, HostConfig, HostReport,
    LaneCtl, Shared, ThreadOut,
};

/// A lane's liveness signal: the owning thread stores the current clock
/// reading at the top of every loop iteration; the supervisor compares
/// against it. One relaxed store — cheap enough for a µs-cadence idle
/// loop (`guard.heartbeat_beat` in the bench suite pins it).
#[derive(Debug, Clone, Default)]
pub struct Heartbeat(Arc<AtomicU64>);

impl Heartbeat {
    /// A heartbeat whose last beat is `now_ns` (so a freshly spawned
    /// lane is not instantly stalled).
    pub fn starting_at(now_ns: u64) -> Self {
        Heartbeat(Arc::new(AtomicU64::new(now_ns)))
    }

    /// Records liveness. // st-lint: hot-path
    #[inline]
    pub fn beat(&self, now_ns: u64) {
        self.0.store(now_ns, Ordering::Relaxed);
    }

    /// The last recorded beat (ns).
    pub fn last(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// What kind of trigger source a supervised lane is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneClass {
    /// A worker running the synthetic task loop.
    Worker,
    /// The idle polling thread — the trigger stream whose starvation
    /// triggers degradation.
    IdlePoll,
    /// The periodic backup sweep.
    Backup,
}

impl LaneClass {
    /// Stable lowercase name for telemetry and JSON.
    pub fn name(self) -> &'static str {
        match self {
            LaneClass::Worker => "worker",
            LaneClass::IdlePoll => "idle_poll",
            LaneClass::Backup => "backup",
        }
    }
}

/// Pure supervision policy parameters (all in nanoseconds, so the sim
/// twin can drive the same core in virtual time).
#[derive(Debug, Clone, Copy)]
pub struct SupervisorConfig {
    /// A lane whose heartbeat is older than this is stalled.
    pub stall_window_ns: u64,
    /// Restarts allowed per lane before the supervisor gives up on it.
    pub restart_budget: u32,
    /// Base restart backoff; doubles with each restart of the same lane.
    pub restart_backoff_ns: u64,
}

/// One decision the supervisor made during a scan. Pure data: the host
/// executor spawns threads and retunes the facility; the sim twin just
/// records the sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// A lane's heartbeat crossed the stall window.
    Detected {
        /// Lane index.
        lane: usize,
        /// Heartbeat age at detection (ns).
        age_ns: u64,
    },
    /// Spawn a replacement thread for a stalled lane.
    Restart {
        /// Lane index.
        lane: usize,
        /// 1-based restart attempt for this lane.
        attempt: u32,
    },
    /// A stalled lane is beating again.
    Recovered {
        /// Lane index.
        lane: usize,
    },
    /// The lane's restart budget is exhausted; it stays down.
    GiveUp {
        /// Lane index.
        lane: usize,
    },
    /// Enter degraded mode: tighten the backup period.
    Degrade,
    /// Leave degraded mode: restore the configured backup period.
    Restore,
}

#[derive(Debug, Clone, Copy)]
struct LaneState {
    stalled: bool,
    restarts: u32,
    next_restart_at: u64,
    gave_up: bool,
}

/// The pure supervision state machine: heartbeat ages in, [`Action`]s
/// out. No clocks, no threads, no allocation on the healthy path — the
/// host supervisor thread and the `rt_chaos` sim twin both run exactly
/// this code, which is what makes the twin's predictions binding.
#[derive(Debug, Clone)]
pub struct SupervisorCore {
    config: SupervisorConfig,
    classes: Vec<LaneClass>,
    lanes: Vec<LaneState>,
    degraded: bool,
}

impl SupervisorCore {
    /// A supervisor over `classes.len()` lanes, all healthy.
    pub fn new(config: SupervisorConfig, classes: Vec<LaneClass>) -> Self {
        let lanes = vec![
            LaneState {
                stalled: false,
                restarts: 0,
                next_restart_at: 0,
                gave_up: false,
            };
            classes.len()
        ];
        SupervisorCore {
            config,
            classes,
            lanes,
            degraded: false,
        }
    }

    /// Whether the supervisor currently holds the runtime degraded.
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// Total restarts issued for `lane` so far.
    pub fn restarts(&self, lane: usize) -> u32 {
        self.lanes[lane].restarts
    }

    /// One scan: compare each lane's last beat against `now_ns`, append
    /// the resulting actions to `out` (not cleared here; a healthy scan
    /// appends nothing and allocates nothing). // st-lint: hot-path
    pub fn scan(&mut self, now_ns: u64, last_beats: &[u64], out: &mut Vec<Action>) {
        debug_assert_eq!(last_beats.len(), self.lanes.len());
        for (i, lane) in self.lanes.iter_mut().enumerate() {
            let age = now_ns.saturating_sub(last_beats[i]);
            if age > self.config.stall_window_ns {
                if !lane.stalled {
                    lane.stalled = true;
                    out.push(Action::Detected {
                        lane: i,
                        age_ns: age,
                    });
                }
                if lane.restarts < self.config.restart_budget {
                    if now_ns >= lane.next_restart_at {
                        lane.restarts += 1;
                        out.push(Action::Restart {
                            lane: i,
                            attempt: lane.restarts,
                        });
                        // Exponential backoff before the *next* restart
                        // of this lane (shift capped well below overflow).
                        let backoff = self
                            .config
                            .restart_backoff_ns
                            .saturating_mul(1u64 << lane.restarts.min(20));
                        lane.next_restart_at = now_ns.saturating_add(backoff);
                    }
                } else if !lane.gave_up {
                    lane.gave_up = true;
                    out.push(Action::GiveUp { lane: i });
                }
            } else if lane.stalled {
                lane.stalled = false;
                out.push(Action::Recovered { lane: i });
            }
        }
        // Degradation tracks the idle-poll trigger stream: while any
        // idle lane is stalled the fire-delay bound rests entirely on
        // the backup grid, so tighten it; restore once the stream is
        // back. Runs with no idle lane configured never degrade (the
        // backup grid already is the bound).
        let idle_starved = self
            .classes
            .iter()
            .zip(&self.lanes)
            .any(|(c, l)| *c == LaneClass::IdlePoll && l.stalled);
        if idle_starved && !self.degraded {
            self.degraded = true;
            out.push(Action::Degrade);
        } else if !idle_starved && self.degraded {
            self.degraded = false;
            out.push(Action::Restore);
        }
    }
}

/// Chaos injection settings for a supervised run.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Fault magnitudes/probabilities (tick units, like the sim).
    pub faults: HostFaults,
    /// Seed for the schedule (fork label 10 of this seed's master rng).
    pub seed: u64,
    /// Inject stall windows into worker lanes.
    pub stall_workers: bool,
    /// Inject stall windows into the idle-poll lane.
    pub stall_idle: bool,
    /// Give every stalled lane the *same* windows (full trigger-stream
    /// starvation) instead of independent per-lane draws.
    pub synchronized_stalls: bool,
}

/// Configuration for a supervised (and optionally chaos-injected) run.
#[derive(Debug, Clone)]
pub struct GuardConfig {
    /// The underlying host runtime configuration.
    pub host: HostConfig,
    /// Heartbeat age past which a lane counts as stalled.
    pub stall_window: Duration,
    /// Supervisor scan cadence.
    pub scan_period: Duration,
    /// Restarts allowed per lane.
    pub restart_budget: u32,
    /// Base backoff between restarts of one lane (doubles each time).
    pub restart_backoff: Duration,
    /// Backup period while degraded (must be tighter than the
    /// configured one to mean anything).
    pub degraded_backup_period: Duration,
    /// Wake-up slack allowance added to the degraded period to form the
    /// predicted envelope (measure with the probes; sleep p99 plus
    /// scheduler margin).
    pub envelope_slack: Duration,
    /// Fault injection; `None` supervises a healthy run.
    pub chaos: Option<ChaosConfig>,
}

impl GuardConfig {
    /// Supervision defaults around a given host config: 25 ms stall
    /// window, 5 ms scans, 3 restarts per lane at 10 ms base backoff,
    /// 250 µs degraded backup period, 2 ms envelope slack.
    pub fn new(host: HostConfig) -> Self {
        GuardConfig {
            host,
            stall_window: Duration::from_millis(25),
            scan_period: Duration::from_millis(5),
            restart_budget: 3,
            restart_backoff: Duration::from_millis(10),
            degraded_backup_period: Duration::from_micros(250),
            envelope_slack: Duration::from_millis(2),
            chaos: None,
        }
    }
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig::new(HostConfig::default())
    }
}

/// Everything a supervised run measured: the inner host report plus the
/// supervision/chaos story.
#[derive(Debug, Clone)]
pub struct GuardReport {
    /// The host runtime's own measurements (all generations merged).
    pub host: HostReport,
    /// Supervised lane count.
    pub lanes: usize,
    /// Supervisor scans performed.
    pub scans: u64,
    /// Stall windows scheduled by the chaos plan.
    pub stalls_injected: u64,
    /// Forward clock jumps actually applied during the run.
    pub clock_jumps_applied: u64,
    /// Handler panics injected by the chaos plan.
    pub panics_injected: u64,
    /// Handler panics the dispatcher caught (must equal injected).
    pub panics_caught: u64,
    /// Stalls detected (heartbeat age crossed the window).
    pub detections: u64,
    /// Heartbeat age at each detection (ns): detection latency.
    pub detect_age_ns: HdrHistogram,
    /// Lane restarts issued.
    pub restarts: u64,
    /// Stalled lanes that came back (restart or natural recovery).
    pub recoveries: u64,
    /// Lanes whose restart budget was exhausted.
    pub giveups: u64,
    /// Degraded-mode windows entered.
    pub degraded_windows: u64,
    /// Duration of each degraded window (ns); `sum()` is total degraded
    /// time.
    pub degraded_window_ns: HdrHistogram,
    /// Fire delays recorded while degraded (ns) — the population the
    /// envelope bounds.
    pub degraded_delay_ns: HdrHistogram,
    /// Predicted degraded-mode fire-delay envelope (ns): degraded backup
    /// period + envelope slack.
    pub envelope_ns: u64,
    /// Poisoned-lock recoveries during this run (process-wide delta).
    pub lock_recoveries: u64,
    /// Stall window the run used (ns), echoed for analysis.
    pub stall_window_ns: u64,
    /// Scan period the run used (ns), echoed for analysis.
    pub scan_period_ns: u64,
}

/// Everything the supervisor thread accumulates and hands back.
struct SupervisorOut {
    scans: u64,
    detections: u64,
    detect_age_ns: HdrHistogram,
    restarts: u64,
    recoveries: u64,
    giveups: u64,
    degraded_windows: u64,
    degraded_window_ns: HdrHistogram,
    lane_outs: Vec<(LaneClass, ThreadOut)>,
}

struct LaneRuntime {
    class: LaneClass,
    hb: Heartbeat,
    gen: Arc<AtomicU64>,
    stalls: Vec<(u64, u64)>,
    handles: Vec<std::thread::JoinHandle<ThreadOut>>,
}

fn spawn_lane(
    shared: &Arc<Shared>,
    class: LaneClass,
    work_ns: u64,
    pause_ns: u64,
    bits: u32,
    ctl: LaneCtl,
    generation: u64,
) -> std::thread::JoinHandle<ThreadOut> {
    let s = Arc::clone(shared);
    let name = format!("st-guard-{}-g{generation}", class.name());
    std::thread::Builder::new()
        .name(name)
        .spawn(move || match class {
            LaneClass::Worker => measure_loop(&s, work_ns.max(1), 0, bits, ctl),
            LaneClass::IdlePoll => measure_loop(&s, 0, pause_ns, bits, ctl),
            LaneClass::Backup => backup_loop(&s, bits, ctl),
        })
        // Same one-time startup contract as the plain runtime.
        .expect("failed to spawn lane thread")
}

/// The supervised lane layout for a host configuration: workers, then
/// the idle poller (when configured), then the backup sweep. Shared with
/// the `rt_chaos` sim twin so both sides supervise the same lane set.
pub fn lane_classes(host: &HostConfig) -> Vec<LaneClass> {
    let mut classes: Vec<LaneClass> = vec![LaneClass::Worker; host.workers];
    if host.idle_poller {
        classes.push(LaneClass::IdlePoll);
    }
    classes.push(LaneClass::Backup);
    classes
}

/// Expands a [`ChaosConfig`] into per-lane stall windows plus the full
/// [`ChaosSchedule`], deterministically. Backup lanes never stall (the
/// backup sweep is the safety net under test, not the fault surface);
/// `synchronized_stalls` hands every targeted lane the same windows.
/// Pure in `(classes, chaos, duration_ns)` — the host run and the sim
/// twin both call exactly this, so the twin predicts the same injections
/// the host executes.
pub fn plan_lane_stalls(
    classes: &[LaneClass],
    chaos: &ChaosConfig,
    duration_ns: u64,
) -> (Vec<Vec<(u64, u64)>>, ChaosSchedule) {
    let mut lane_stalls: Vec<Vec<(u64, u64)>> = vec![Vec::new(); classes.len()];
    let targets: Vec<usize> = classes
        .iter()
        .enumerate()
        .filter(|(_, c)| match c {
            LaneClass::Worker => chaos.stall_workers,
            LaneClass::IdlePoll => chaos.stall_idle,
            LaneClass::Backup => false,
        })
        .map(|(i, _)| i)
        .collect();
    let schedule = if chaos.synchronized_stalls {
        let one = ChaosSchedule::generate(&chaos.faults, chaos.seed, duration_ns, 1);
        ChaosSchedule {
            stalls: vec![one.stalls.first().cloned().unwrap_or_default(); targets.len()],
            ..one
        }
    } else {
        ChaosSchedule::generate(&chaos.faults, chaos.seed, duration_ns, targets.len())
    };
    for (slot, lane) in targets.into_iter().enumerate() {
        lane_stalls[lane] = schedule.stalls.get(slot).cloned().unwrap_or_default();
    }
    (lane_stalls, schedule)
}

/// Runs the host runtime under supervision for `config.host.duration`
/// and reports what happened: the host measurements plus detections,
/// restarts, degraded windows, and the chaos actually injected.
pub fn run_guarded(config: &GuardConfig) -> GuardReport {
    let bits = config.host.sub_bucket_bits;
    let duration_ns = u64::try_from(config.host.duration.as_nanos()).unwrap_or(u64::MAX);
    let degraded_period_ns =
        u64::try_from(config.degraded_backup_period.as_nanos().max(1)).unwrap_or(u64::MAX);
    let normal_period_ns =
        u64::try_from(config.host.backup_period.as_nanos().max(1)).unwrap_or(u64::MAX);

    let classes = lane_classes(&config.host);

    // Fix the whole chaos run up front from the plan's seed.
    let mut lane_stalls: Vec<Vec<(u64, u64)>> = vec![Vec::new(); classes.len()];
    let mut jumps = Vec::new();
    let mut chaos_state = None;
    let mut stalls_injected = 0u64;
    if let Some(ch) = &config.chaos {
        let (stalls, schedule) = plan_lane_stalls(&classes, ch, duration_ns);
        lane_stalls = stalls;
        stalls_injected = schedule.stall_count();
        jumps = schedule.jumps.clone();
        chaos_state = Some(ChaosState::new(schedule.panic_chance, schedule.panic_seed));
    }

    let lock_recoveries_before = lock_recoveries();
    let shared = Shared::build(&config.host, FaultClock::with_jumps(jumps), chaos_state);
    let work_ns = u64::try_from(config.host.task_work.as_nanos()).unwrap_or(u64::MAX);
    let pause_ns = u64::try_from(config.host.idle_pause.as_nanos()).unwrap_or(u64::MAX);

    let now0 = shared.clock.now_ns();
    let mut lanes: Vec<LaneRuntime> = Vec::with_capacity(classes.len());
    for (i, class) in classes.iter().enumerate() {
        let hb = Heartbeat::starting_at(now0);
        let gen = Arc::new(AtomicU64::new(0));
        let ctl = LaneCtl::supervised(hb.clone(), Arc::clone(&gen), 0, lane_stalls[i].clone());
        let handle = spawn_lane(&shared, *class, work_ns, pause_ns, bits, ctl, 0);
        lanes.push(LaneRuntime {
            class: *class,
            hb,
            gen,
            stalls: lane_stalls[i].clone(),
            handles: vec![handle],
        });
    }

    let supervisor = {
        let shared = Arc::clone(&shared);
        let sup_config = SupervisorConfig {
            stall_window_ns: u64::try_from(config.stall_window.as_nanos()).unwrap_or(u64::MAX),
            restart_budget: config.restart_budget,
            restart_backoff_ns: u64::try_from(config.restart_backoff.as_nanos())
                .unwrap_or(u64::MAX),
        };
        let scan_period = config.scan_period;
        let classes = classes.clone();
        std::thread::Builder::new()
            .name("st-guard-supervisor".into())
            .spawn(move || {
                let mut core = SupervisorCore::new(sup_config, classes);
                let mut out = SupervisorOut {
                    scans: 0,
                    detections: 0,
                    detect_age_ns: HdrHistogram::new(bits),
                    restarts: 0,
                    recoveries: 0,
                    giveups: 0,
                    degraded_windows: 0,
                    degraded_window_ns: HdrHistogram::new(bits),
                    lane_outs: Vec::new(),
                };
                let mut actions: Vec<Action> = Vec::new();
                let mut beats: Vec<u64> = vec![0; lanes.len()];
                let mut degraded_since: Option<u64> = None;
                let mut lanes = lanes;
                while !shared.stop.load(Ordering::Relaxed) {
                    std::thread::sleep(scan_period);
                    let now = shared.clock.now_ns();
                    for (b, lane) in beats.iter_mut().zip(&lanes) {
                        *b = lane.hb.last();
                    }
                    actions.clear();
                    core.scan(now, &beats, &mut actions);
                    out.scans += 1;
                    for action in &actions {
                        match *action {
                            Action::Detected { age_ns, .. } => {
                                out.detections += 1;
                                out.detect_age_ns.record(age_ns);
                                if st_trace::active() {
                                    st_trace::count("rt.guard.detections", 1);
                                }
                                st_scope::observe("rt.guard.detect_age_ns", age_ns as f64);
                            }
                            Action::Restart { lane, attempt } => {
                                out.restarts += 1;
                                let l = &mut lanes[lane];
                                // Supersede the wedged generation, reset
                                // the heartbeat so the replacement gets a
                                // full window, and skip stall windows
                                // already begun — the replacement models
                                // a fresh thread, not a re-wedged one.
                                let generation = l.gen.fetch_add(1, Ordering::Relaxed) + 1;
                                l.hb.beat(now);
                                let remaining: Vec<(u64, u64)> = l
                                    .stalls
                                    .iter()
                                    .copied()
                                    .filter(|&(at, _)| at > now)
                                    .collect();
                                let ctl = LaneCtl::supervised(
                                    l.hb.clone(),
                                    Arc::clone(&l.gen),
                                    generation,
                                    remaining,
                                );
                                l.handles.push(spawn_lane(
                                    &shared, l.class, work_ns, pause_ns, bits, ctl, generation,
                                ));
                                if st_trace::active() {
                                    st_trace::count("rt.guard.restarts", 1);
                                }
                                st_scope::observe("rt.guard.restart_attempt", attempt as f64);
                            }
                            Action::Recovered { .. } => out.recoveries += 1,
                            Action::GiveUp { .. } => {
                                out.giveups += 1;
                                if st_trace::active() {
                                    st_trace::count("rt.guard.giveups", 1);
                                }
                            }
                            Action::Degrade => {
                                out.degraded_windows += 1;
                                degraded_since = Some(now);
                                shared
                                    .backup_period_ns
                                    .store(degraded_period_ns, Ordering::Relaxed);
                                {
                                    let mut fac = host::lock_recover(&shared.core);
                                    fac.set_interrupt_hz(
                                        (1_000_000_000 / degraded_period_ns).max(1),
                                    );
                                    shared.refresh_earliest(&fac);
                                }
                                shared.degraded.store(true, Ordering::Relaxed);
                                st_scope::gauge(now, "rt.guard.degraded", 1.0);
                            }
                            Action::Restore => {
                                shared.degraded.store(false, Ordering::Relaxed);
                                shared
                                    .backup_period_ns
                                    .store(normal_period_ns, Ordering::Relaxed);
                                {
                                    let mut fac = host::lock_recover(&shared.core);
                                    fac.set_interrupt_hz((1_000_000_000 / normal_period_ns).max(1));
                                }
                                if let Some(start) = degraded_since.take() {
                                    out.degraded_window_ns.record(now.saturating_sub(start));
                                }
                                st_scope::gauge(now, "rt.guard.degraded", 0.0);
                            }
                        }
                    }
                }
                // A window still open at shutdown closes at stop time.
                if let Some(start) = degraded_since.take() {
                    let now = shared.clock.now_ns();
                    out.degraded_window_ns.record(now.saturating_sub(start));
                }
                for lane in lanes {
                    for handle in lane.handles {
                        if let Ok(t) = handle.join() {
                            out.lane_outs.push((lane.class, t));
                        }
                    }
                }
                out
            })
            .expect("failed to spawn supervisor thread")
    };

    let started = shared.clock.now_ns();
    std::thread::sleep(config.host.duration);
    shared.stop.store(true, Ordering::Relaxed);
    let measured_ns = shared.clock.now_ns().saturating_sub(started).max(1);
    let sup = supervisor.join().unwrap_or_else(|_| SupervisorOut {
        scans: 0,
        detections: 0,
        detect_age_ns: HdrHistogram::new(bits),
        restarts: 0,
        recoveries: 0,
        giveups: 0,
        degraded_windows: 0,
        degraded_window_ns: HdrHistogram::new(bits),
        lane_outs: Vec::new(),
    });

    let mut worker_outs = Vec::new();
    let mut idle_outs = Vec::new();
    let mut backup_outs = Vec::new();
    for (class, t) in sup.lane_outs {
        match class {
            LaneClass::Worker => worker_outs.push(t),
            LaneClass::IdlePoll => idle_outs.push(t),
            LaneClass::Backup => backup_outs.push(t),
        }
    }
    let lanes_total = classes.len();
    let host_report = finish_report(
        &shared,
        config.host.workers,
        measured_ns,
        bits,
        worker_outs,
        idle_outs,
        backup_outs,
    );
    let fires = host::lock_recover(&shared.fires);
    let (panics_injected, clock_jumps_applied) = (
        shared.chaos.as_ref().map_or(0, |c| c.panics_injected()),
        shared.clock.jumps_applied(),
    );
    GuardReport {
        degraded_delay_ns: fires.degraded_delay.clone(),
        panics_caught: fires.panics,
        host: host_report,
        lanes: lanes_total,
        scans: sup.scans,
        stalls_injected,
        clock_jumps_applied,
        panics_injected,
        detections: sup.detections,
        detect_age_ns: sup.detect_age_ns,
        restarts: sup.restarts,
        recoveries: sup.recoveries,
        giveups: sup.giveups,
        degraded_windows: sup.degraded_windows,
        degraded_window_ns: sup.degraded_window_ns,
        envelope_ns: degraded_period_ns
            .saturating_add(u64::try_from(config.envelope_slack.as_nanos()).unwrap_or(u64::MAX)),
        lock_recoveries: lock_recoveries().saturating_sub(lock_recoveries_before),
        stall_window_ns: u64::try_from(config.stall_window.as_nanos()).unwrap_or(u64::MAX),
        scan_period_ns: u64::try_from(config.scan_period.as_nanos()).unwrap_or(u64::MAX),
    }
}

impl GuardReport {
    /// Total time spent degraded (ns) — exact sum of the window
    /// durations.
    pub fn degraded_total_ns(&self) -> u64 {
        u64::try_from(self.degraded_window_ns.sum()).unwrap_or(u64::MAX)
    }

    /// Fraction of degraded-mode fires whose delay exceeded the
    /// predicted envelope (0.0 when none were recorded).
    pub fn envelope_excess_fraction(&self) -> f64 {
        if self.degraded_delay_ns.count() == 0 {
            return 0.0;
        }
        self.degraded_delay_ns.fraction_above(self.envelope_ns)
    }

    /// Single-line JSON document (schema `st-rt-guard-v1`); the inner
    /// host report nests under `"host"`.
    pub fn to_json(&self) -> String {
        let hist = |h: &HdrHistogram| {
            let q = |p: f64| h.quantile(p).unwrap_or(0);
            ObjectBuilder::new()
                .u64("count", h.count())
                .u64("min", h.min().unwrap_or(0))
                .u64("p50", q(0.5))
                .u64("p99", q(0.99))
                .u64("max", h.max().unwrap_or(0))
                .build()
        };
        ObjectBuilder::new()
            .str("schema", "st-rt-guard-v1")
            .u64("lanes", self.lanes as u64)
            .u64("scans", self.scans)
            .u64("stall_window_ns", self.stall_window_ns)
            .u64("scan_period_ns", self.scan_period_ns)
            .u64("stalls_injected", self.stalls_injected)
            .u64("clock_jumps_applied", self.clock_jumps_applied)
            .u64("panics_injected", self.panics_injected)
            .u64("panics_caught", self.panics_caught)
            .u64("detections", self.detections)
            .raw("detect_age_ns", &hist(&self.detect_age_ns))
            .u64("restarts", self.restarts)
            .u64("recoveries", self.recoveries)
            .u64("giveups", self.giveups)
            .u64("degraded_windows", self.degraded_windows)
            .u64("degraded_total_ns", self.degraded_total_ns())
            .raw("degraded_delay_ns", &hist(&self.degraded_delay_ns))
            .u64("envelope_ns", self.envelope_ns)
            .f64("envelope_excess_fraction", self.envelope_excess_fraction())
            .u64("lock_recoveries", self.lock_recoveries)
            .raw("host", &self.host.to_json())
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    fn sup_config() -> SupervisorConfig {
        SupervisorConfig {
            stall_window_ns: 25 * MS,
            restart_budget: 2,
            restart_backoff_ns: 10 * MS,
        }
    }

    #[test]
    fn supervisor_detects_restarts_and_gives_up_in_virtual_time() {
        let mut core = SupervisorCore::new(
            sup_config(),
            vec![LaneClass::Worker, LaneClass::IdlePoll, LaneClass::Backup],
        );
        let mut out = Vec::new();

        // All lanes beating: silence.
        core.scan(30 * MS, &[29 * MS, 29 * MS, 29 * MS], &mut out);
        assert!(out.is_empty(), "{out:?}");

        // Worker (lane 0) last beat at 10 ms, now 40 ms: age 30 ms > 25.
        core.scan(40 * MS, &[10 * MS, 39 * MS, 39 * MS], &mut out);
        assert_eq!(
            out,
            vec![
                Action::Detected {
                    lane: 0,
                    age_ns: 30 * MS
                },
                Action::Restart {
                    lane: 0,
                    attempt: 1
                }
            ]
        );
        assert_eq!(core.restarts(0), 1);

        // Still stalled next scan (restart didn't cure it): backoff
        // (10 ms * 2^1 = 20 ms from t=40) blocks a second restart at 45,
        // allows it at 65.
        out.clear();
        core.scan(45 * MS, &[10 * MS, 44 * MS, 44 * MS], &mut out);
        assert!(out.is_empty(), "backoff must hold: {out:?}");
        out.clear();
        core.scan(65 * MS, &[10 * MS, 64 * MS, 64 * MS], &mut out);
        assert_eq!(
            out,
            vec![Action::Restart {
                lane: 0,
                attempt: 2
            }]
        );

        // Budget (2) exhausted: give up once, audibly, and only once.
        out.clear();
        core.scan(200 * MS, &[10 * MS, 199 * MS, 199 * MS], &mut out);
        assert_eq!(out, vec![Action::GiveUp { lane: 0 }]);
        out.clear();
        core.scan(210 * MS, &[10 * MS, 209 * MS, 209 * MS], &mut out);
        assert!(out.is_empty());

        // The lane comes back (e.g. the wedge cleared): recovered.
        out.clear();
        core.scan(220 * MS, &[219 * MS, 219 * MS, 219 * MS], &mut out);
        assert_eq!(out, vec![Action::Recovered { lane: 0 }]);
    }

    #[test]
    fn idle_starvation_degrades_and_recovery_restores() {
        let mut core =
            SupervisorCore::new(sup_config(), vec![LaneClass::Worker, LaneClass::IdlePoll]);
        let mut out = Vec::new();
        // Idle lane (1) stalls: detect, restart, and degrade.
        core.scan(40 * MS, &[39 * MS, 5 * MS], &mut out);
        assert!(out.contains(&Action::Detected {
            lane: 1,
            age_ns: 35 * MS
        }));
        assert!(out.contains(&Action::Degrade));
        assert!(core.degraded());
        // Worker stalls do NOT degrade further or restore.
        out.clear();
        core.scan(80 * MS, &[10 * MS, 5 * MS], &mut out);
        assert!(!out.contains(&Action::Degrade) && !out.contains(&Action::Restore));
        // Idle beats again: restore.
        out.clear();
        core.scan(100 * MS, &[99 * MS, 99 * MS], &mut out);
        assert!(out.contains(&Action::Restore));
        assert!(!core.degraded());
    }

    #[test]
    fn guarded_healthy_run_stays_quiet() {
        let config = GuardConfig {
            host: HostConfig {
                workers: 1,
                duration: Duration::from_millis(80),
                ..HostConfig::default()
            },
            ..GuardConfig::default()
        };
        let report = run_guarded(&config);
        assert_eq!(report.detections, 0, "healthy lanes must not trip");
        assert_eq!(report.restarts, 0);
        assert_eq!(report.degraded_windows, 0);
        assert_eq!(report.panics_caught, 0);
        assert!(report.scans > 0);
        assert_eq!(report.lanes, 3); // 1 worker + idle + backup
        assert!(report.host.handler_runs > 0, "workload still fires");
        let json = report.to_json();
        st_trace::json::validate(&json).expect("invalid guard JSON");
        assert!(json.contains("\"schema\":\"st-rt-guard-v1\""));
        assert!(json.contains("\"schema\":\"st-rt-host-v1\""));
    }

    #[test]
    fn injected_idle_stall_is_detected_restarted_and_degrades() {
        // One long idle-lane stall early in a 400 ms run: the supervisor
        // must detect it within the window, restart the lane, enter and
        // leave degraded mode, and the workload must keep firing.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let config = GuardConfig {
            host: HostConfig {
                workers: 1,
                duration: Duration::from_millis(400),
                ..HostConfig::default()
            },
            chaos: Some(ChaosConfig {
                faults: HostFaults {
                    stall_chance: 0.002, // ~1 window in 400 ms (floor: >= 1)
                    min_stall: 60_000,   // 60-80 ms: several stall windows
                    max_stall: 80_000,
                    panic_chance: 0.05,
                    jump_chance: 0.0,
                    max_jump: 0,
                },
                seed: 42,
                stall_workers: false,
                stall_idle: true,
                synchronized_stalls: false,
            }),
            ..GuardConfig::default()
        };
        let report = run_guarded(&config);
        std::panic::set_hook(hook);

        assert!(report.stalls_injected >= 1);
        assert!(report.detections >= 1, "stall never detected");
        assert!(report.restarts >= 1, "stalled idle lane never restarted");
        assert!(
            report.restarts <= (report.lanes as u64) * 3,
            "restarts {} blew the budget",
            report.restarts
        );
        assert!(report.recoveries >= 1, "lane never recovered");
        assert!(report.degraded_windows >= 1, "idle starvation must degrade");
        assert!(report.degraded_total_ns() > 0);
        // Degradation retuned the facility's backup grid and back.
        assert!(report.host.stats.backup_retunes >= 2);
        // Injected panics were all caught and accounted.
        assert_eq!(report.panics_caught, report.panics_injected);
        assert_eq!(report.host.stats.handler_panics, report.panics_caught);
        assert!(report.panics_injected > 0, "5% of many fires must panic");
        // Detection latency: age at detection sits near the stall window
        // (window + scan jitter), far below the stall length itself.
        let p50 = report.detect_age_ns.quantile(0.5).unwrap();
        assert!(
            p50 >= report.stall_window_ns,
            "detected before the window elapsed?"
        );
        assert!(report.host.handler_runs > 0);
    }
}
