//! Host-side chaos: deterministic fault injection for the real runtime.
//!
//! The sim harness (`st-fault`) injects faults into a simulated CPU; this
//! module injects the *same plan* into real OS threads. Everything a run
//! will do to the host is decided up front by [`ChaosSchedule::generate`]
//! from the host fork (label 10) of the plan's seeded `SimRng`, so a
//! `(HostFaults, seed)` pair names one reproducible chaos run: the sim
//! twin in `repro rt_chaos` replays the identical schedule in virtual
//! time and must agree byte-for-byte with itself across replays.
//!
//! Units: [`st_fault::HostFaults`] speaks measurement ticks (µs, the
//! sim's 1 MHz clock); the host runs in nanoseconds, so the schedule
//! multiplies by 1 000 on the way out.
//!
//! Three injection mechanisms:
//!
//! - **thread stalls** — absolute `(at_ns, duration_ns)` windows a lane
//!   executes as heartbeat-silent busy spins ([`LaneCtl`] in `host`),
//!   modeling a wedged or preempted runtime thread;
//! - **callback panics** — per-fire decisions from a hash of the fire
//!   sequence number ([`ChaosState::should_panic`]), caught by the
//!   dispatcher exactly like the sim harness catches them;
//! - **clock jumps** — [`FaultClock`], a `NanoClock` wrapper that applies
//!   scheduled forward jumps; the healthy path costs one extra atomic
//!   load per read.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use st_core::Clock;
use st_fault::HostFaults;
use st_sim::SimRng;

use crate::clock::NanoClock;

/// Measurement ticks (µs) to host nanoseconds.
const TICK_NS: u64 = 1_000;

/// A [`NanoClock`] that applies scheduled forward jumps.
///
/// Jumps are fixed at construction as `(at_raw_ns, jump_ns)` pairs sorted
/// by raw (un-jumped) time. Readers advance a shared index with a CAS
/// when raw time passes the next jump and add the cumulative jump total
/// to every read. With no jumps scheduled the read path is the raw clock
/// plus one relaxed atomic load — cheap enough for the check fast path.
///
/// A reader racing the index advance can observe one pre-jump value
/// after another thread saw the post-jump value; `SoftTimerCore` clamps
/// exactly that (`FacilityStats::clock_regressions`), which is the
/// behaviour a real stepped clock forces on the facility anyway.
#[derive(Debug)]
pub struct FaultClock {
    inner: NanoClock,
    /// `(at_raw_ns, cumulative_jump_ns_after)` — cumulative totals so one
    /// index load names the whole offset.
    jumps: Vec<(u64, u64)>,
    applied: AtomicUsize,
}

impl FaultClock {
    /// A clock with no scheduled jumps: reads match the raw clock.
    pub fn healthy() -> Self {
        FaultClock::with_jumps(Vec::new())
    }

    /// A clock that jumps forward by `jumps[i].1` ns when raw time passes
    /// `jumps[i].0` ns. Pairs need not be sorted; zero-size jumps are
    /// dropped.
    pub fn with_jumps(mut jumps: Vec<(u64, u64)>) -> Self {
        jumps.retain(|&(_, j)| j > 0);
        jumps.sort_unstable();
        let mut cum = 0u64;
        let jumps = jumps
            .into_iter()
            .map(|(at, j)| {
                cum = cum.saturating_add(j);
                (at, cum)
            })
            .collect();
        FaultClock {
            inner: NanoClock::new(),
            jumps,
            applied: AtomicUsize::new(0),
        }
    }

    /// Nanoseconds since construction, jumps applied.
    pub fn now_ns(&self) -> u64 {
        let raw = self.inner.now_ns();
        let mut k = self.applied.load(Ordering::Acquire);
        while k < self.jumps.len() && raw >= self.jumps[k].0 {
            // Only the winner advances; losers re-read and retry.
            match self
                .applied
                .compare_exchange(k, k + 1, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => k += 1,
                Err(cur) => k = cur,
            }
        }
        let offset = if k == 0 { 0 } else { self.jumps[k - 1].1 };
        raw.saturating_add(offset)
    }

    /// Busy-waits until the (jumped) clock reads at least `deadline_ns`,
    /// returning the first reading at or past it.
    pub fn spin_until(&self, deadline_ns: u64) -> u64 {
        loop {
            let now = self.now_ns();
            if now >= deadline_ns {
                return now;
            }
            std::hint::spin_loop();
        }
    }

    /// How many scheduled jumps have been applied so far.
    pub fn jumps_applied(&self) -> u64 {
        self.applied.load(Ordering::Relaxed) as u64
    }

    /// Total jumps scheduled.
    pub fn jumps_scheduled(&self) -> u64 {
        self.jumps.len() as u64
    }
}

impl Clock for FaultClock {
    fn measure_time(&self) -> u64 {
        self.now_ns()
    }

    fn measure_resolution(&self) -> u64 {
        1_000_000_000
    }
}

const SPLITMIX_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// SplitMix64 finalizer: a well-mixed hash of one word.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(SPLITMIX_GAMMA);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Shared per-run chaos decisions that cannot be scheduled by wall time:
/// panic injection is keyed on the global fire sequence number, so the
/// decision stream is deterministic per run regardless of which thread
/// dispatches which fire.
#[derive(Debug)]
pub struct ChaosState {
    /// `should_panic` fires when `hash < threshold`; `threshold / 2^64`
    /// is the panic probability.
    panic_threshold: u64,
    panic_seed: u64,
    fire_seq: AtomicU64,
    panics_injected: AtomicU64,
}

impl ChaosState {
    /// Decision state drawing panic verdicts at `panic_chance` per fire.
    pub fn new(panic_chance: f64, panic_seed: u64) -> Self {
        let p = panic_chance.clamp(0.0, 1.0);
        ChaosState {
            panic_threshold: (p * u64::MAX as f64) as u64,
            panic_seed,
            fire_seq: AtomicU64::new(0),
            panics_injected: AtomicU64::new(0),
        }
    }

    /// Whether the next dispatched fire should panic. Consumes one fire
    /// sequence number either way.
    pub fn should_panic(&self) -> bool {
        let idx = self.fire_seq.fetch_add(1, Ordering::Relaxed);
        if self.panic_threshold == 0 {
            return false;
        }
        let hit = splitmix64(self.panic_seed ^ idx) < self.panic_threshold;
        if hit {
            self.panics_injected.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Panics injected so far.
    pub fn panics_injected(&self) -> u64 {
        self.panics_injected.load(Ordering::Relaxed)
    }
}

/// Everything a chaos run will do to the host, fixed before any thread
/// starts: per-lane stall windows, clock jumps, and the panic-decision
/// key. Pure function of `(faults, seed, duration, lanes)`.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSchedule {
    /// Per stalled lane: absolute `(at_ns, duration_ns)` windows, sorted.
    pub stalls: Vec<Vec<(u64, u64)>>,
    /// Forward clock jumps `(at_raw_ns, jump_ns)`, sorted.
    pub jumps: Vec<(u64, u64)>,
    /// Per-fire panic probability carried through to [`ChaosState`].
    pub panic_chance: f64,
    /// Panic-decision hash key.
    pub panic_seed: u64,
}

impl ChaosSchedule {
    /// Builds the schedule for a run of `duration_ns` with `stall_lanes`
    /// lanes receiving stalls. Derived from fork label 10 of the seeded
    /// master rng — the same label the sim harness reserves for the host
    /// class, so host chaos never perturbs the sim classes' streams.
    ///
    /// Guaranteed-injection floor: any class with a nonzero chance gets
    /// at least one occurrence, scaled up by the expected count over the
    /// run — a 400 ms smoke run must still exercise every configured
    /// fault, not just flip coins and usually lose.
    pub fn generate(faults: &HostFaults, seed: u64, duration_ns: u64, stall_lanes: usize) -> Self {
        let mut master = SimRng::seed(seed);
        let mut host = master.fork(10);
        let quanta_ms = (duration_ns / 1_000_000).max(1);

        let mut stalls = Vec::with_capacity(stall_lanes);
        for lane in 0..stall_lanes {
            let mut rng = host.fork(lane as u64 + 1);
            let mut windows = Vec::new();
            if faults.stall_chance > 0.0 && faults.max_stall > 0 {
                let expected = quanta_ms as f64 * faults.stall_chance;
                let count = (expected.round() as u64).max(1);
                for _ in 0..count {
                    // Land inside [10%, 70%] of the run so detection and
                    // recovery both fit before the stop flag.
                    let at = rng.range_u64(duration_ns / 10, duration_ns * 7 / 10);
                    let dur = rng
                        .range_u64(faults.min_stall, faults.max_stall.max(faults.min_stall) + 1)
                        .saturating_mul(TICK_NS)
                        .min(duration_ns / 3);
                    windows.push((at, dur));
                }
                windows.sort_unstable();
            }
            stalls.push(windows);
        }

        let mut jump_rng = host.fork(100);
        let mut jumps = Vec::new();
        if faults.jump_chance > 0.0 && faults.max_jump > 0 {
            let expected = quanta_ms as f64 * faults.jump_chance;
            let count = (expected.round() as u64).max(1);
            for _ in 0..count {
                let at = jump_rng.range_u64(duration_ns / 10, duration_ns * 8 / 10);
                let jump = jump_rng
                    .range_u64(1, faults.max_jump + 1)
                    .saturating_mul(TICK_NS);
                jumps.push((at, jump));
            }
            jumps.sort_unstable();
        }

        ChaosSchedule {
            stalls,
            jumps,
            panic_chance: faults.panic_chance,
            panic_seed: host.fork(101).next_u64(),
        }
    }

    /// Total stall windows across all lanes.
    pub fn stall_count(&self) -> u64 {
        self.stalls.iter().map(|l| l.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn faults() -> HostFaults {
        HostFaults {
            stall_chance: 0.01,
            min_stall: 30_000,
            max_stall: 60_000,
            panic_chance: 0.2,
            jump_chance: 0.005,
            max_jump: 5_000,
        }
    }

    #[test]
    fn schedules_are_deterministic_and_nonempty() {
        let a = ChaosSchedule::generate(&faults(), 42, 400_000_000, 2);
        let b = ChaosSchedule::generate(&faults(), 42, 400_000_000, 2);
        assert_eq!(a, b, "same (faults, seed) must produce one schedule");
        assert!(a.stall_count() >= 2, "guaranteed floor: one per lane");
        assert!(!a.jumps.is_empty());
        let c = ChaosSchedule::generate(&faults(), 43, 400_000_000, 2);
        assert_ne!(a, c, "different seeds must diverge");
        // Zeroed chances inject nothing.
        let none = ChaosSchedule::generate(
            &HostFaults {
                stall_chance: 0.0,
                min_stall: 0,
                max_stall: 0,
                panic_chance: 0.0,
                jump_chance: 0.0,
                max_jump: 0,
            },
            42,
            400_000_000,
            2,
        );
        assert_eq!(none.stall_count(), 0);
        assert!(none.jumps.is_empty());
    }

    #[test]
    fn stall_windows_fit_the_run() {
        let s = ChaosSchedule::generate(&faults(), 7, 300_000_000, 3);
        for lane in &s.stalls {
            for &(at, dur) in lane {
                assert!((30_000_000..=210_000_000).contains(&at), "at {at}");
                assert!(dur <= 100_000_000, "dur {dur}");
                assert!(dur >= 30_000_000, "dur {dur} below min_stall");
            }
        }
    }

    #[test]
    fn fault_clock_applies_jumps_monotonically_per_reader() {
        // Two jumps well in the past fire immediately; total 3 ms.
        let c = FaultClock::with_jumps(vec![(0, 1_000_000), (1, 2_000_000)]);
        let t = c.now_ns();
        assert!(t >= 3_000_000, "both jumps must apply: {t}");
        assert_eq!(c.jumps_applied(), 2);
        let t2 = c.now_ns();
        assert!(t2 >= t);
        // Healthy clock applies nothing and stays near raw time.
        let h = FaultClock::healthy();
        assert_eq!(h.jumps_applied(), 0);
        assert!(h.now_ns() < 1_000_000_000);
    }

    #[test]
    fn panic_decisions_are_deterministic_and_roughly_calibrated() {
        let a = ChaosState::new(0.2, 99);
        let b = ChaosState::new(0.2, 99);
        let hits_a: Vec<bool> = (0..1000).map(|_| a.should_panic()).collect();
        let hits_b: Vec<bool> = (0..1000).map(|_| b.should_panic()).collect();
        assert_eq!(hits_a, hits_b);
        let hits = hits_a.iter().filter(|&&h| h).count();
        assert!((100..400).contains(&hits), "20% of 1000 ~ {hits}");
        assert_eq!(a.panics_injected(), hits as u64);
        let never = ChaosState::new(0.0, 99);
        assert!((0..1000).all(|_| !never.should_panic()));
    }
}
