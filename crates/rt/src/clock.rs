//! Nanosecond-resolution monotonic clock for host measurements.
//!
//! `st_core::MonotonicClock` deliberately runs at the paper's 1 MHz
//! measurement resolution; host-runtime telemetry needs to resolve a
//! ~20 ns trigger check, so this clock runs the same [`Clock`] contract at
//! 1 GHz (ticks are nanoseconds).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use st_core::Clock;

/// Process-wide count of nanosecond conversions that saturated (see
/// [`saturations`]).
static SATURATIONS: AtomicU64 = AtomicU64::new(0);

/// How many nanosecond conversions have pinned at `u64::MAX` process-wide.
/// `u64` nanoseconds overflow after ~584 years of uptime, so nonzero here
/// means a wildly wrong `Instant` — surfaced rather than silently treated
/// as "time stopped" (the same audibility rule as
/// [`st_core::rt::saturations`]).
pub fn saturations() -> u64 {
    SATURATIONS.load(Ordering::Relaxed)
}

fn saturating_nanos(nanos: u128) -> u64 {
    match u64::try_from(nanos) {
        Ok(v) => v,
        Err(_) => {
            SATURATIONS.fetch_add(1, Ordering::Relaxed);
            if st_trace::active() {
                st_trace::count("rt.time_saturations", 1);
                st_trace::emit(st_trace::Category::Rt, "rt.nanos_saturated", u64::MAX, 0, 0);
            }
            u64::MAX
        }
    }
}

/// Wall-clock measurement via [`Instant`] in nanosecond ticks (1 GHz).
///
/// Tick 0 is the moment of construction. Implements [`st_core::Clock`], so
/// a `SoftTimerCore` driven by this clock does all of its arithmetic —
/// deadlines, fire delays, the backup bound `X` — directly in wall-clock
/// nanoseconds.
#[derive(Debug, Clone)]
pub struct NanoClock {
    start: Instant,
}

impl NanoClock {
    /// Creates a clock whose tick 0 is "now".
    pub fn new() -> Self {
        NanoClock {
            start: Instant::now(),
        }
    }

    /// Nanoseconds since construction (convenience alias of
    /// [`Clock::measure_time`]).
    pub fn now_ns(&self) -> u64 {
        saturating_nanos(self.start.elapsed().as_nanos())
    }

    /// Busy-waits until the clock reads at least `deadline_ns`, returning
    /// the first reading at or past it. This is the "spin" arm of the
    /// wake-up precision comparison and also serves as calibrated
    /// busy-work in the host runtime's synthetic tasks.
    pub fn spin_until(&self, deadline_ns: u64) -> u64 {
        loop {
            let now = self.now_ns();
            if now >= deadline_ns {
                return now;
            }
            std::hint::spin_loop();
        }
    }
}

impl Default for NanoClock {
    fn default() -> Self {
        NanoClock::new()
    }
}

impl Clock for NanoClock {
    fn measure_time(&self) -> u64 {
        self.now_ns()
    }

    fn measure_resolution(&self) -> u64 {
        1_000_000_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nano_clock_is_monotone_and_advances() {
        let c = NanoClock::new();
        let a = c.measure_time();
        std::thread::sleep(std::time::Duration::from_millis(1));
        let b = c.measure_time();
        assert!(b > a, "1 ms sleep must advance a ns clock");
        assert!(b - a >= 500_000, "1 ms sleep advanced only {} ns", b - a);
        assert_eq!(c.measure_resolution(), 1_000_000_000);
    }

    #[test]
    fn spin_until_reaches_the_deadline() {
        let c = NanoClock::new();
        let deadline = c.now_ns() + 50_000;
        let reached = c.spin_until(deadline);
        assert!(reached >= deadline);
        // Overshoot is bounded by scheduler noise, not by sleep quanta:
        // even a loaded machine spins past by far less than a timeslice.
        assert!(reached - deadline < 100_000_000);
    }
}
