//! Arrival processes: the closed saturation loop and open-loop hostile
//! scenarios.
//!
//! The paper's §5 server experiments keep the server saturated with
//! identical requests — a *closed* loop where the next request enters
//! as the previous one finishes. Overload behaviour needs the opposite:
//! an *open* loop where clients arrive on their own clock, indifferent
//! to how far behind the server is. Both are expressed through one
//! trait, [`ArrivalProcess`], so the saturation core in
//! [`crate::saturation`] serves either without forking its event loop:
//!
//! - [`ClosedLoop`] — seed one request at boot, re-enter on completion
//!   (byte-identical to the pre-open-loop harness);
//! - [`OpenLoop`] — Poisson arrivals at a scenario-controlled rate with
//!   per-arrival class/size/slow-client draws.
//!
//! The [`Scenario`]s are the hostile-client suite: a flash crowd (step
//! surge), heavy-tailed file sizes (bounded Pareto), slowloris clients
//! that pin connection slots, and a RealPlayer-like streaming mix.

use st_admit::{LimiterKind, RejectPolicy, RequestClass};
use st_sim::dist::{Exp, Pareto, SampleDist};
use st_sim::{SimDuration, SimRng, SimTime};

/// One client request arriving at the server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arrival {
    /// Admission class (partitioned limiters).
    pub class: RequestClass,
    /// Response size relative to the base 6 KB document.
    pub size_scale: f64,
    /// Slowloris: the connection opens on arrival but the request body
    /// trickles in only after this long; the slot is pinned meanwhile.
    pub pinned_us: Option<u64>,
}

impl Arrival {
    /// The paper's standard request: interactive, base-size, well-behaved.
    pub fn interactive() -> Self {
        Arrival {
            class: RequestClass::Interactive,
            size_scale: 1.0,
            pinned_us: None,
        }
    }
}

/// How requests enter the server.
///
/// The saturation core calls these three hooks and nothing else, so a
/// process controls *when* work appears but never *how* it runs.
pub trait ArrivalProcess {
    /// Arrivals to seed at boot, as `(delay from t=0, arrival)` pairs.
    fn at_boot(&mut self, rng: &mut SimRng) -> Vec<(SimDuration, Arrival)>;

    /// Closed-loop hook: the arrival (if any) triggered by a request
    /// completing at `now`. Open-loop processes return `None` — clients
    /// do not wait for the server.
    fn on_completion(&mut self, now: SimTime, rng: &mut SimRng) -> Option<Arrival>;

    /// Open-loop hook: the gap to the next timed arrival after `now`.
    /// Closed-loop processes return `None` — there is no external clock.
    fn next_timed(&mut self, now: SimTime, rng: &mut SimRng) -> Option<(SimDuration, Arrival)>;
}

/// The saturating closed loop: always another identical request.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClosedLoop;

impl ArrivalProcess for ClosedLoop {
    fn at_boot(&mut self, _rng: &mut SimRng) -> Vec<(SimDuration, Arrival)> {
        vec![(SimDuration::ZERO, Arrival::interactive())]
    }

    fn on_completion(&mut self, _now: SimTime, _rng: &mut SimRng) -> Option<Arrival> {
        Some(Arrival::interactive())
    }

    fn next_timed(&mut self, _now: SimTime, _rng: &mut SimRng) -> Option<(SimDuration, Arrival)> {
        None
    }
}

/// A hostile-client traffic pattern (open loop).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scenario {
    /// A step surge: `base_rps` outside the window, `base_rps *
    /// surge_factor` inside `[surge_start, surge_end)`.
    FlashCrowd {
        /// Pre/post-surge arrival rate, requests per second.
        base_rps: f64,
        /// Rate multiplier during the surge (the issue's 10x step).
        surge_factor: f64,
        /// Surge window start, offset from boot.
        surge_start: SimDuration,
        /// Surge window end, offset from boot.
        surge_end: SimDuration,
    },
    /// Bounded-Pareto response sizes on `[1, max_scale]`.
    HeavyTail {
        /// Arrival rate, requests per second.
        rps: f64,
        /// Pareto tail index (heavier below 2.0).
        alpha: f64,
        /// Largest response, as a multiple of the base document.
        max_scale: f64,
    },
    /// Slow clients that open a connection and then stall before
    /// sending the request, pinning the slot.
    Slowloris {
        /// Arrival rate, requests per second (slow and normal together).
        rps: f64,
        /// Fraction of arrivals that are slow clients.
        slow_frac: f64,
        /// How long a slow client stalls before its body arrives.
        pin_us: u64,
    },
    /// RealPlayer-like mix: mostly interactive requests plus a bulk
    /// streaming fraction with large responses.
    Streaming {
        /// Arrival rate, requests per second.
        rps: f64,
        /// Fraction of arrivals in the bulk class.
        bulk_frac: f64,
        /// Response size of a bulk request, relative to the base.
        bulk_scale: f64,
    },
}

impl Scenario {
    /// Stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Scenario::FlashCrowd { .. } => "flash_crowd",
            Scenario::HeavyTail { .. } => "heavy_tail",
            Scenario::Slowloris { .. } => "slowloris",
            Scenario::Streaming { .. } => "streaming",
        }
    }

    /// Arrival rate in force at `now`.
    fn rate_at(&self, now: SimTime) -> f64 {
        match *self {
            Scenario::FlashCrowd {
                base_rps,
                surge_factor,
                surge_start,
                surge_end,
            } => {
                let t = now.since(SimTime::ZERO);
                if t >= surge_start && t < surge_end {
                    base_rps * surge_factor
                } else {
                    base_rps
                }
            }
            Scenario::HeavyTail { rps, .. }
            | Scenario::Slowloris { rps, .. }
            | Scenario::Streaming { rps, .. } => rps,
        }
    }

    /// Per-arrival class/size/slow-client draws. Draw order is part of
    /// the replay contract: gap first (in the caller), then this.
    fn classify(&self, rng: &mut SimRng) -> Arrival {
        match *self {
            Scenario::FlashCrowd { .. } => Arrival::interactive(),
            Scenario::HeavyTail {
                alpha, max_scale, ..
            } => {
                let scale = Pareto::bounded(1.0, max_scale, alpha).sample(rng);
                Arrival {
                    // Big documents compete in the bulk partition so the
                    // tail cannot poison the interactive latency signal.
                    class: if scale >= 4.0 {
                        RequestClass::Bulk
                    } else {
                        RequestClass::Interactive
                    },
                    size_scale: scale,
                    pinned_us: None,
                }
            }
            Scenario::Slowloris {
                slow_frac, pin_us, ..
            } => {
                let slow = rng.chance(slow_frac);
                Arrival {
                    class: RequestClass::Interactive,
                    size_scale: 1.0,
                    pinned_us: if slow { Some(pin_us) } else { None },
                }
            }
            Scenario::Streaming {
                bulk_frac,
                bulk_scale,
                ..
            } => {
                if rng.chance(bulk_frac) {
                    Arrival {
                        class: RequestClass::Bulk,
                        size_scale: bulk_scale,
                        pinned_us: None,
                    }
                } else {
                    Arrival::interactive()
                }
            }
        }
    }
}

/// Open-loop Poisson arrivals driven by a [`Scenario`].
#[derive(Debug, Clone, Copy)]
pub struct OpenLoop {
    scenario: Scenario,
}

impl OpenLoop {
    /// Creates the process for one scenario.
    pub fn new(scenario: Scenario) -> Self {
        OpenLoop { scenario }
    }

    fn draw(&self, now: SimTime, rng: &mut SimRng) -> (SimDuration, Arrival) {
        // Exponential gap at the rate in force now (the step boundary is
        // honoured to within one inter-arrival gap), then the class draw.
        let rate = self.scenario.rate_at(now).max(1e-6);
        let mean_gap_us = 1_000_000.0 / rate;
        let gap = Exp::with_mean(mean_gap_us)
            .sample_micros(rng)
            .max_one_tick();
        let arrival = self.scenario.classify(rng);
        (gap, arrival)
    }
}

/// Extension: clamp a gap to at least one microsecond tick so arrival
/// chains always advance simulated time.
trait MaxOneTick {
    fn max_one_tick(self) -> SimDuration;
}

impl MaxOneTick for SimDuration {
    fn max_one_tick(self) -> SimDuration {
        self.max(SimDuration::from_micros(1))
    }
}

impl ArrivalProcess for OpenLoop {
    fn at_boot(&mut self, rng: &mut SimRng) -> Vec<(SimDuration, Arrival)> {
        let (gap, arrival) = self.draw(SimTime::ZERO, rng);
        vec![(gap, arrival)]
    }

    fn on_completion(&mut self, _now: SimTime, _rng: &mut SimRng) -> Option<Arrival> {
        None
    }

    fn next_timed(&mut self, now: SimTime, rng: &mut SimRng) -> Option<(SimDuration, Arrival)> {
        Some(self.draw(now, rng))
    }
}

/// What drives the periodic limit-update event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateDriver {
    /// A soft-timer event on a µs grid: fires at trigger states, swept
    /// by the existing 1 kHz backup — no extra interrupts.
    Soft {
        /// Update period in µs ticks.
        period_us: u64,
    },
    /// A dedicated periodic hardware timer interrupt (the cost
    /// contrast the acceptance criteria ask for).
    Hardware {
        /// Interrupt frequency in Hz.
        freq_hz: u64,
    },
}

/// Admission-control configuration for an open-loop run.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionMode {
    /// Limiter family (one instance per class).
    pub kind: LimiterKind,
    /// What happens to refused requests.
    pub policy: RejectPolicy,
    /// Latency budget fed to the limiters, µs.
    pub rtt_budget_us: u64,
    /// Hard cap on any class's limit.
    pub max_limit: u64,
    /// What fires the periodic limit update.
    pub driver: UpdateDriver,
    /// Pinned connections older than this are reaped at update time —
    /// the soft-timer-driven slowloris defense.
    pub pin_budget_us: u64,
}

impl AdmissionMode {
    /// Standard soft-timer-driven admission at 1 kHz updates.
    pub fn soft(kind: LimiterKind) -> Self {
        AdmissionMode {
            kind,
            policy: RejectPolicy::Immediate,
            rtt_budget_us: 25_000,
            max_limit: 256,
            driver: UpdateDriver::Soft { period_us: 1_000 },
            pin_budget_us: 250_000,
        }
    }

    /// The same controller updated from a 1 kHz hardware timer.
    pub fn hardware(kind: LimiterKind) -> Self {
        AdmissionMode {
            driver: UpdateDriver::Hardware { freq_hz: 1_000 },
            ..AdmissionMode::soft(kind)
        }
    }
}

/// Open-loop serving-path configuration.
#[derive(Debug, Clone, Copy)]
pub struct OpenLoopConfig {
    /// The traffic pattern.
    pub scenario: Scenario,
    /// Admission control; `None` is the undefended baseline.
    pub admission: Option<AdmissionMode>,
    /// Connection-table size: arrivals beyond it are dropped at accept.
    pub max_connections: u64,
    /// A completion within this latency counts toward goodput, µs.
    pub slo_us: u64,
}

impl OpenLoopConfig {
    /// A scenario with the default table size and a 100 ms SLO.
    pub fn new(scenario: Scenario, admission: Option<AdmissionMode>) -> Self {
        OpenLoopConfig {
            scenario,
            admission,
            max_connections: 1_024,
            slo_us: 100_000,
        }
    }
}

/// Which arrival model a saturation run uses.
#[derive(Debug, Clone, Copy)]
pub enum ArrivalModel {
    /// The paper's saturating closed loop.
    Closed,
    /// Open-loop arrivals with optional admission control.
    Open(OpenLoopConfig),
}

impl ArrivalModel {
    /// Builds the boxed process the saturation core drives.
    pub fn build(&self) -> Box<dyn ArrivalProcess> {
        match *self {
            ArrivalModel::Closed => Box::new(ClosedLoop),
            ArrivalModel::Open(cfg) => Box::new(OpenLoop::new(cfg.scenario)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_loop_seeds_one_request_and_reenters() {
        let mut p = ClosedLoop;
        let mut rng = SimRng::seed(1);
        let boot = p.at_boot(&mut rng);
        assert_eq!(boot, vec![(SimDuration::ZERO, Arrival::interactive())]);
        assert_eq!(
            p.on_completion(SimTime::ZERO, &mut rng),
            Some(Arrival::interactive())
        );
        assert_eq!(p.next_timed(SimTime::ZERO, &mut rng), None);
    }

    #[test]
    fn flash_crowd_surges_inside_the_window() {
        let s = Scenario::FlashCrowd {
            base_rps: 100.0,
            surge_factor: 10.0,
            surge_start: SimDuration::from_secs(1),
            surge_end: SimDuration::from_secs(2),
        };
        let at = |us: u64| s.rate_at(SimTime::ZERO + SimDuration::from_micros(us));
        assert_eq!(at(500_000), 100.0);
        assert_eq!(at(1_500_000), 1_000.0);
        assert_eq!(at(2_500_000), 100.0);
    }

    #[test]
    fn open_loop_gap_scales_with_rate() {
        let fast = Scenario::FlashCrowd {
            base_rps: 10_000.0,
            surge_factor: 1.0,
            surge_start: SimDuration::ZERO,
            surge_end: SimDuration::ZERO,
        };
        let mut p = OpenLoop::new(fast);
        let mut rng = SimRng::seed(3);
        let mut total = SimDuration::ZERO;
        let n = 2_000;
        for _ in 0..n {
            let (gap, _) = p.next_timed(SimTime::ZERO, &mut rng).unwrap();
            total += gap;
        }
        let mean_us = total.as_micros_f64() / n as f64;
        assert!((80.0..130.0).contains(&mean_us), "mean gap {mean_us} µs");
    }

    #[test]
    fn heavy_tail_sizes_are_bounded_and_classed() {
        let s = Scenario::HeavyTail {
            rps: 100.0,
            alpha: 1.3,
            max_scale: 50.0,
        };
        let mut rng = SimRng::seed(4);
        let mut saw_bulk = false;
        for _ in 0..500 {
            let a = s.classify(&mut rng);
            assert!((1.0..=50.0).contains(&a.size_scale), "{}", a.size_scale);
            assert_eq!(a.class == RequestClass::Bulk, a.size_scale >= 4.0);
            saw_bulk |= a.class == RequestClass::Bulk;
        }
        assert!(saw_bulk, "tail never produced a bulk document");
    }

    #[test]
    fn slowloris_pins_the_configured_fraction() {
        let s = Scenario::Slowloris {
            rps: 100.0,
            slow_frac: 0.5,
            pin_us: 10_000_000,
        };
        let mut rng = SimRng::seed(5);
        let pinned = (0..1_000)
            .filter(|_| s.classify(&mut rng).pinned_us.is_some())
            .count();
        assert!((400..600).contains(&pinned), "pinned {pinned}/1000");
    }

    #[test]
    fn arrival_draws_replay_identically() {
        let s = Scenario::Streaming {
            rps: 500.0,
            bulk_frac: 0.3,
            bulk_scale: 4.0,
        };
        let run = || {
            let mut p = OpenLoop::new(s);
            let mut rng = SimRng::seed(6);
            let mut out = Vec::new();
            let mut now = SimTime::ZERO;
            for _ in 0..200 {
                let (gap, a) = p.next_timed(now, &mut rng).unwrap();
                now += gap;
                out.push((gap.as_nanos(), a.class.index(), a.size_scale.to_bits()));
            }
            out
        };
        assert_eq!(run(), run());
    }
}
