//! Receive livelock under open-loop overload.
//!
//! The paper's related work (§6) positions soft-timer polling against
//! Mogul & Ramakrishnan's hybrid scheme, whose motivation is *receive
//! livelock*: in an interrupt-driven kernel, packet arrivals beyond the
//! service capacity consume the CPU in (higher-priority) interrupt
//! dispatch, starving the protocol work that would actually deliver
//! packets — goodput collapses as offered load grows. Polling schemes
//! (hybrid, pure, soft-timer) bound the dispatch work and plateau at
//! capacity instead.
//!
//! This module is an *extension* beyond the paper's own evaluation: an
//! open-loop packet-processing server where frames arrive at a configured
//! rate regardless of completions, under each dispatch policy.

use std::collections::VecDeque;

use st_kernel::cpu::{CpuAccountant, CpuCategory};
use st_kernel::CostModel;
use st_net::driver::{DriverPolicy, DriverStrategy};
use st_sim::{Ctx, Engine, Exp, SampleDist, SimDuration, SimRng, SimTime, World};
use st_stats::Summary;

/// Livelock experiment configuration.
#[derive(Debug, Clone)]
pub struct LivelockConfig {
    /// Machine cost model.
    pub machine: CostModel,
    /// Dispatch policy under test.
    pub driver: DriverStrategy,
    /// Offered load: mean packet arrivals per second (Poisson).
    pub offered_pps: f64,
    /// CPU work to fully process one delivered packet (protocol + app).
    pub per_packet_work: SimDuration,
    /// Capacity of the post-dispatch protocol queue (the "IP input
    /// queue"); overflow drops.
    pub queue_capacity: usize,
    /// Capacity of the NIC receive ring; overflow drops.
    pub ring_capacity: usize,
    /// Simulated duration.
    pub duration: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl LivelockConfig {
    /// A PII-300 processing 13 µs packets (capacity ≈ 50-70k pps
    /// depending on dispatch overhead).
    pub fn baseline(driver: DriverStrategy, offered_pps: f64, seed: u64) -> Self {
        LivelockConfig {
            machine: CostModel::pentium_ii_300(),
            driver,
            offered_pps,
            per_packet_work: SimDuration::from_micros(13),
            queue_capacity: 256,
            ring_capacity: 256,
            duration: SimDuration::from_secs(1),
            seed,
        }
    }
}

/// Livelock experiment results.
#[derive(Debug)]
pub struct LivelockResult {
    /// Packets fully processed per second (goodput).
    pub delivered_pps: f64,
    /// Packets dropped at the NIC ring or protocol queue.
    pub dropped: u64,
    /// Packets that arrived.
    pub arrived: u64,
    /// CPU breakdown.
    pub cpu: CpuAccountant,
    /// Arrival-to-completion latency of delivered packets, µs. At light
    /// load this is §4.2's trade-off made visible: interrupts and
    /// soft-timer polling (whose idle rule re-enables interrupts) give
    /// dispatch-cost latency, while pure polling pays half its period.
    pub latency_us: Summary,
}

#[derive(Debug)]
enum Ev {
    /// A frame arrives at the NIC (open-loop Poisson process).
    Arrival,
    /// The NIC's interrupt-moderation timer expires (coalesced mode).
    ItrFire,
    /// Protocol work on one frame completes.
    WorkDone { gen: u64 },
    /// A scheduled poll (pure / soft-timer polling policies).
    PollDue,
    /// Interrupt dispatch finishes.
    IntrReturn,
}

struct LlWorld {
    config: LivelockConfig,
    rng: SimRng,
    gap: Exp,
    cpu: CpuAccountant,
    policy: DriverPolicy,
    /// Frames in the NIC ring, not yet dispatched (arrival times).
    ring: VecDeque<SimTime>,
    ring_capacity: usize,
    /// Frames dispatched into the protocol queue (arrival times).
    queue: VecDeque<SimTime>,
    /// Interrupt dispatch in progress (latch).
    intr_busy: bool,
    /// Interrupt-moderation timer armed (coalesced mode).
    itr_armed: bool,
    /// In-progress protocol work: `(generation, end_time, arrival)`.
    cur: Option<(u64, SimTime, SimTime)>,
    gen: u64,
    done_event: Option<st_sim::EventId>,
    delivered: u64,
    dropped: u64,
    arrived: u64,
    latency_us: Summary,
    deadline: SimTime,
}

impl LlWorld {
    /// Moves everything in the ring into the protocol queue (drops on
    /// overflow). Returns frames moved.
    fn drain_ring(&mut self) -> usize {
        let mut moved = 0;
        while let Some(arrived) = self.ring.pop_front() {
            if self.queue.len() >= self.config.queue_capacity {
                self.dropped += 1;
            } else {
                self.queue.push_back(arrived);
                moved += 1;
            }
        }
        moved
    }

    /// Starts protocol work on the next queued frame, if idle. When there
    /// is nothing to do, a soft-timer-polling machine enters idle mode:
    /// polling stops and NIC interrupts come back on (§5.9's rule, which
    /// is what keeps latency low on a lightly loaded machine).
    fn start_work(&mut self, now: SimTime, ctx: &mut Ctx<'_, Ev>) {
        if self.cur.is_some() {
            return;
        }
        let Some(arrived) = self.queue.pop_front() else {
            if self.ring.is_empty() {
                self.policy.on_idle_enter();
            } else if self.policy.on_idle_enter() && !self.intr_busy {
                // Entering idle re-enables NIC interrupts; a latched
                // frame fires one immediately (and the next arrival's
                // idle-exit path will restart polling).
                self.take_interrupt(now, ctx);
            }
            return;
        };
        self.gen += 1;
        let end = now + self.config.per_packet_work;
        self.cur = Some((self.gen, end, arrived));
        self.cpu
            .charge(CpuCategory::Kernel, self.config.per_packet_work);
        self.done_event = Some(ctx.schedule_at(end, Ev::WorkDone { gen: self.gen }));
    }

    /// Higher-priority work (interrupt or poll) preempts: charge its cost
    /// and push the in-progress protocol work's completion out by it.
    fn preempt(&mut self, cost: SimDuration, category: CpuCategory, ctx: &mut Ctx<'_, Ev>) {
        self.cpu.charge(category, cost);
        if let Some((_, end, arrived)) = self.cur {
            if let Some(old) = self.done_event.take() {
                ctx.cancel(old);
            }
            self.gen += 1;
            let end = end + cost;
            self.cur = Some((self.gen, end, arrived));
            self.done_event = Some(ctx.schedule_at(end, Ev::WorkDone { gen: self.gen }));
        }
    }

    fn take_interrupt(&mut self, now: SimTime, ctx: &mut Ctx<'_, Ev>) {
        self.intr_busy = true;
        self.drain_ring();
        let cost = self.config.machine.nic_interrupt;
        self.preempt(cost, CpuCategory::Interrupt, ctx);
        ctx.schedule_at(now + cost, Ev::IntrReturn);
    }
}

impl World for LlWorld {
    type Event = Ev;

    fn handle(&mut self, ev: Ev, ctx: &mut Ctx<'_, Ev>) {
        let now = ctx.now();
        match ev {
            Ev::Arrival => {
                self.arrived += 1;
                if now < self.deadline {
                    let gap = self.gap.sample(&mut self.rng).max(0.05);
                    ctx.schedule_in(SimDuration::from_micros_f64(gap), Ev::Arrival);
                }
                if self.ring.len() >= self.ring_capacity {
                    self.dropped += 1;
                    return;
                }
                self.ring.push_back(now);
                match self.config.driver {
                    DriverStrategy::InterruptDriven => {
                        // Dispatch always outranks protocol work — the
                        // livelock mechanism. The latch coalesces frames
                        // arriving during a dispatch.
                        if !self.intr_busy {
                            self.take_interrupt(now, ctx);
                        }
                    }
                    DriverStrategy::Hybrid => {
                        // Interrupts only when the system is idle w.r.t.
                        // packet work; otherwise frames wait in the ring
                        // for the post-processing poll.
                        if !self.intr_busy && self.cur.is_none() && self.queue.is_empty() {
                            self.take_interrupt(now, ctx);
                        }
                    }
                    DriverStrategy::SoftTimerPolling { .. } => {
                        // Idle mode: interrupts are on; this arrival takes
                        // one and polling resumes (§5.9).
                        if self.policy.idle_mode() {
                            self.policy.on_idle_exit();
                            if let Some(interval) = self.policy.next_poll_interval(0) {
                                ctx.schedule_in(
                                    SimDuration::from_micros(interval.max(1)),
                                    Ev::PollDue,
                                );
                            }
                            if !self.intr_busy {
                                self.take_interrupt(now, ctx);
                            }
                        }
                    }
                    DriverStrategy::CoalescedInterrupts { delay } => {
                        // First frame arms the NIC's moderation timer; the
                        // interrupt covers everything arriving before it
                        // fires.
                        if !self.itr_armed {
                            self.itr_armed = true;
                            ctx.schedule_in(SimDuration::from_micros(delay), Ev::ItrFire);
                        }
                    }
                    DriverStrategy::PurePolling { .. } => {}
                }
            }
            Ev::ItrFire => {
                self.itr_armed = false;
                if !self.intr_busy && !self.ring.is_empty() {
                    self.take_interrupt(now, ctx);
                }
            }
            Ev::IntrReturn => {
                self.intr_busy = false;
                // The latch re-asserts for frames that arrived during the
                // dispatch: take another interrupt immediately (interrupt
                // mode only — the hybrid deliberately leaves them for its
                // post-processing poll, and polled modes never interrupt
                // while busy).
                if matches!(self.config.driver, DriverStrategy::InterruptDriven)
                    && !self.ring.is_empty()
                {
                    self.take_interrupt(now, ctx);
                }
                self.start_work(now, ctx);
            }
            Ev::WorkDone { gen } => {
                let arrived = match self.cur {
                    Some((g, _, arrived)) if g == gen => arrived,
                    _ => return, // Superseded by a preemption.
                };
                self.cur = None;
                self.done_event = None;
                self.delivered += 1;
                self.latency_us.record(now.since(arrived).as_micros_f64());
                // Hybrid: after finishing a packet, pull more from the
                // ring directly (no interrupt cost) before interrupts are
                // re-enabled.
                if matches!(self.config.driver, DriverStrategy::Hybrid) {
                    self.drain_ring();
                }
                self.start_work(now, ctx);
            }
            Ev::PollDue => {
                if self.policy.idle_mode() {
                    // A stale poll from before the machine idled.
                    return;
                }
                let found = self.drain_ring();
                let cost = self.config.machine.nic_poll_empty
                    + SimDuration::from_nanos(500) * found as u64;
                self.preempt(cost, CpuCategory::Polling, ctx);
                if let Some(interval) = self.policy.next_poll_interval(found as u64) {
                    if now < self.deadline {
                        ctx.schedule_in(SimDuration::from_micros(interval.max(1)), Ev::PollDue);
                    }
                }
                self.start_work(now, ctx);
            }
        }
    }
}

/// Runs one livelock configuration.
pub fn run_livelock(config: LivelockConfig) -> LivelockResult {
    let duration = config.duration;
    let polls = matches!(
        config.driver,
        DriverStrategy::PurePolling { .. } | DriverStrategy::SoftTimerPolling { .. }
    );
    let world = LlWorld {
        rng: SimRng::seed(config.seed),
        gap: Exp::with_mean(1e6 / config.offered_pps),
        cpu: CpuAccountant::new(),
        policy: DriverPolicy::new(config.driver),
        ring: VecDeque::new(),
        ring_capacity: config.ring_capacity,
        queue: VecDeque::new(),
        intr_busy: false,
        itr_armed: false,
        cur: None,
        gen: 0,
        done_event: None,
        delivered: 0,
        dropped: 0,
        arrived: 0,
        latency_us: Summary::new(),
        deadline: SimTime::ZERO + duration,
        config,
    };
    let mut engine = Engine::new(world);
    engine.schedule_at(SimTime::from_micros(1), Ev::Arrival);
    if polls {
        engine.schedule_at(SimTime::from_micros(50), Ev::PollDue);
    }
    engine.run_until(SimTime::ZERO + duration);
    let world = engine.into_world();
    LivelockResult {
        delivered_pps: world.delivered as f64 / duration.as_secs_f64(),
        dropped: world.dropped,
        arrived: world.arrived,
        cpu: world.cpu,
        latency_us: world.latency_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn goodput(driver: DriverStrategy, pps: f64, seed: u64) -> f64 {
        run_livelock(LivelockConfig::baseline(driver, pps, seed)).delivered_pps
    }

    #[test]
    fn below_capacity_all_policies_deliver_everything() {
        for driver in [
            DriverStrategy::InterruptDriven,
            DriverStrategy::Hybrid,
            DriverStrategy::SoftTimerPolling { quota: 1.0 },
        ] {
            let g = goodput(driver, 20_000.0, 1);
            assert!(
                (19_000.0..21_000.0).contains(&g),
                "{driver:?}: goodput {g} at 20k offered"
            );
        }
    }

    #[test]
    fn interrupts_livelock_under_overload() {
        let at_capacity = goodput(DriverStrategy::InterruptDriven, 40_000.0, 2);
        let overloaded = goodput(DriverStrategy::InterruptDriven, 250_000.0, 2);
        assert!(
            overloaded < at_capacity * 0.75,
            "goodput should collapse: {at_capacity} -> {overloaded}"
        );
    }

    #[test]
    fn hybrid_and_soft_polling_plateau() {
        for driver in [
            DriverStrategy::Hybrid,
            DriverStrategy::SoftTimerPolling { quota: 5.0 },
        ] {
            let at_capacity = goodput(driver, 40_000.0, 3);
            let overloaded = goodput(driver, 250_000.0, 3);
            assert!(
                overloaded > at_capacity * 0.9,
                "{driver:?} should plateau: {at_capacity} -> {overloaded}"
            );
        }
    }

    #[test]
    fn drops_accounted_under_overload() {
        let r = run_livelock(LivelockConfig::baseline(
            DriverStrategy::SoftTimerPolling { quota: 5.0 },
            250_000.0,
            4,
        ));
        assert!(r.dropped > 0, "overload must drop");
        assert!(r.arrived > 200_000);
        // Conservation: every arrival is delivered, dropped, or still
        // queued (bounded by ring + queue capacity).
        let cfg = LivelockConfig::baseline(
            DriverStrategy::SoftTimerPolling { quota: 5.0 },
            250_000.0,
            4,
        );
        let outstanding = r.arrived - r.dropped - (r.delivered_pps.round() as u64);
        assert!(outstanding <= (cfg.ring_capacity + cfg.queue_capacity + 1) as u64);
    }
}
