//! The saturated-server discrete-event simulation.
//!
//! One CPU serves an endless backlog of identical requests (the paper's
//! clients keep the server saturated). Each request is a schedule of work
//! items ending in trigger states; interrupts preempt the current item
//! (extending its completion); soft-timer events fire at trigger states
//! and their handlers run for their modeled cost. Everything the §5
//! server experiments vary is a configuration switch here:
//!
//! - an added periodic hardware timer with a null handler (Figures 2-3);
//! - a maximal-rate null soft event (§5.2);
//! - rate-based clocking of transmitted packets via soft timers or a
//!   50 kHz hardware timer (Table 3);
//! - the packet dispatch policy: per-packet interrupts, pure polling,
//!   hybrid, or soft-timer polling with an aggregation quota (Table 8).
//!
//! The kernel's ordinary 1 kHz clock interrupt exists in the baseline and
//! its cost is part of the calibrated budget; the simulation models only
//! its backup-sweep role for soft timers and charges no extra CPU for it.

use std::collections::VecDeque;

use st_admit::{AdmissionController, Decision, RejectPolicy, RequestClass};
use st_core::facility::Expired;
use st_kernel::cpu::{CpuAccountant, CpuCategory};
use st_kernel::softclock::SoftClock;
use st_kernel::trigger::TriggerSource;
use st_kernel::CostModel;
use st_net::driver::{DriverPolicy, DriverStrategy};
use st_sim::{Ctx, Engine, EventId, SimDuration, SimRng, SimTime, World};
use st_stats::Summary;

use crate::arrival::{Arrival, ArrivalModel, ArrivalProcess, UpdateDriver};
use crate::model::ServerModel;

/// Rate-based clocking configuration (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RateClocking {
    /// Packets transmitted inline on the ip-output path (baseline).
    Off,
    /// Transmissions moved into soft-timer events firing at every
    /// trigger state (the paper's "maximal frequency possible").
    Soft,
    /// Transmissions from a periodic hardware timer at this frequency
    /// (the paper programs the 8253 at 50 kHz).
    Hardware {
        /// Interrupt frequency in Hz.
        freq_hz: u64,
    },
}

/// An added periodic hardware timer with a null handler (Figures 2-3).
#[derive(Debug, Clone, Copy)]
pub struct TimerLoad {
    /// Interrupt frequency in Hz.
    pub freq_hz: u64,
}

/// A soft-timer statistical-profiler load: a periodic sampling event that
/// fires from trigger states (the `st-prof` application). Each fire costs
/// [`CostModel::prof_sample`] and the event rearms on a fixed grid so the
/// *effective* sampling rate matches `freq_hz` even when individual fires
/// are delayed past one or more periods.
#[derive(Debug, Clone, Copy)]
pub struct SamplerLoad {
    /// Target sampling frequency in Hz.
    pub freq_hz: u64,
}

/// Telemetry sampling load (the `st-scope` application).
///
/// `Soft` flushes the timeline from a periodic soft-timer event (cost:
/// `soft_dispatch + scope_sample` per fire, grid-aligned rearm like the
/// profiler); `Hardware` dedicates a periodic hardware timer to the same
/// job (cost: a full interrupt + handler pollution + the sample body) —
/// the `timeline_overhead` contrast. Both also feed the ambient
/// [`st_scope`] session when one is active. `Off` models no sampling at
/// all; an active scope session then observes through zero-cost
/// bookkeeping events that leave every modeled quantity untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScopeSampling {
    /// No modeled telemetry sampling (default).
    Off,
    /// Samples taken by a periodic soft-timer event at `freq_hz`.
    Soft {
        /// Target sampling frequency in Hz.
        freq_hz: u64,
    },
    /// Samples taken by a dedicated hardware timer at `freq_hz`.
    Hardware {
        /// Interrupt frequency in Hz.
        freq_hz: u64,
    },
}

/// Saturation experiment configuration.
#[derive(Debug, Clone)]
pub struct SaturationConfig {
    /// Machine cost model.
    pub machine: CostModel,
    /// Server model (calibrated).
    pub server: ServerModel,
    /// Simulated run length.
    pub duration: SimDuration,
    /// RNG seed.
    pub seed: u64,
    /// Added null-handler hardware timer (Figures 2-3).
    pub extra_timer: Option<TimerLoad>,
    /// Soft-timer profiling sampler (the `profiler_overhead` experiment).
    pub soft_sampler: Option<SamplerLoad>,
    /// Maximal-rate null soft event (§5.2).
    pub soft_null_event: bool,
    /// Rate-based clocking mode (Table 3).
    pub rate_clocking: RateClocking,
    /// Packet dispatch policy (Table 8).
    pub driver: DriverStrategy,
    /// Keep the raw tagged trigger sequence (Figures 5-6).
    pub keep_raw_triggers: bool,
    /// How requests enter: the paper's saturating closed loop, or an
    /// open-loop hostile scenario with optional admission control.
    pub arrivals: ArrivalModel,
    /// Modeled telemetry sampling (the `timeline` experiment).
    pub scope_sampling: ScopeSampling,
}

impl SaturationConfig {
    /// A plain interrupt-driven baseline run.
    pub fn baseline(machine: CostModel, server: ServerModel, seed: u64) -> Self {
        SaturationConfig {
            machine,
            server,
            duration: SimDuration::from_secs(5),
            seed,
            extra_timer: None,
            soft_sampler: None,
            soft_null_event: false,
            rate_clocking: RateClocking::Off,
            driver: DriverStrategy::InterruptDriven,
            keep_raw_triggers: false,
            arrivals: ArrivalModel::Closed,
            scope_sampling: ScopeSampling::Off,
        }
    }
}

/// Overload metrics of one open-loop run.
#[derive(Debug, Clone)]
pub struct OverloadStats {
    /// Arrivals offered by the clients (including slow clients).
    pub offered: u64,
    /// Requests admitted into the work queue.
    pub admitted: u64,
    /// Requests refused by the limiter (503s, immediate or delayed).
    pub shed: u64,
    /// Arrivals refused at accept because the connection table was full.
    pub dropped: u64,
    /// Pinned slowloris connections reaped by the limit-update event.
    pub reaped_pins: u64,
    /// Completions within the SLO.
    pub completed_ok: u64,
    /// Completions past the SLO.
    pub completed_late: u64,
    /// Completions within SLO per second — the headline metric.
    pub goodput: f64,
    /// Fraction of offered requests shed.
    pub shed_rate: f64,
    /// Median completion latency, µs.
    pub p50_us: u64,
    /// 99th-percentile completion latency, µs.
    pub p99_us: u64,
    /// 99.9th-percentile completion latency, µs.
    pub p999_us: u64,
    /// Worst completion latency, µs.
    pub max_us: u64,
    /// Limit-update events that ran.
    pub update_fires: u64,
    /// CPU spent on limit updates, percent of the run.
    pub update_cpu_pct: f64,
    /// Final interactive-class limit.
    pub limit_interactive: u64,
    /// Final bulk-class limit.
    pub limit_bulk: u64,
}

/// Results of one saturation run.
#[derive(Debug)]
pub struct SaturationResult {
    /// Completed requests.
    pub requests: u64,
    /// Simulated elapsed time.
    pub elapsed: SimTime,
    /// Requests per second.
    pub throughput: f64,
    /// CPU time breakdown.
    pub cpu: CpuAccountant,
    /// Mean trigger-state interval, µs.
    pub trigger_mean_us: f64,
    /// Median trigger-state interval, µs.
    pub trigger_median_us: f64,
    /// Soft-timer events fired.
    pub soft_fires: u64,
    /// Profiler samples taken (soft-timer sampler fires).
    pub sampler_fires: u64,
    /// Profiler grid points skipped because the fire lagged past them
    /// (one sample per trigger state; missed grid points are lost, the
    /// soft-timer profiler's inherent delay cost).
    pub sampler_skipped: u64,
    /// Added hardware-timer interrupts actually taken (Figures 2-3 load).
    pub extra_timer_ticks: u64,
    /// Mean interval between soft-event fires, µs (§5.2's 31.5 µs).
    pub soft_fire_interval_us: f64,
    /// Within-train packet transmission intervals, µs (Table 3).
    pub tx_intervals: Summary,
    /// Average packets found per poll (soft-timer polling).
    pub avg_found_per_poll: Option<f64>,
    /// Raw tagged triggers when requested.
    pub raw_triggers: Option<Vec<(SimTime, TriggerSource)>>,
    /// Overload metrics (open-loop runs only).
    pub overload: Option<OverloadStats>,
    /// Telemetry samples taken ([`ScopeSampling`] fires).
    pub scope_fires: u64,
    /// CPU spent on telemetry sampling, percent of the run.
    pub scope_cpu_pct: f64,
    /// Soft-timer facility fires (every payload, every origin).
    pub facility_fires: u64,
    /// Exact integer sum of all facility fire delays, in ticks — the
    /// reconciliation anchor for st-scope's delay-attribution waterfall.
    pub facility_delay_ticks: u64,
}

/// Soft-timer event payloads used by the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SoftEv {
    /// The §5.2 null handler.
    Null,
    /// Rate-based clocking: transmit one pending packet if any.
    TxPace,
    /// Network poll (pure-polling and soft-timer polling).
    PollNic,
    /// One statistical-profiler sample (the `st-prof` application).
    Sample,
    /// Periodic admission limit update (st-admit, soft-timer driven).
    LimitUpdate,
    /// A soft-timer-delayed 503 going out for a rejected request.
    ShedReply,
    /// One telemetry sample ([`ScopeSampling::Soft`], the st-scope
    /// application): flush gauges and counter deltas to the timeline.
    ScopeSample,
    /// Zero-cost observation hook: when an [`st_scope`] session is
    /// active but no sampling is *modeled* ([`ScopeSampling::Off`]),
    /// this event reads world state into the timeline without charging
    /// CPU, touching the RNG, or perturbing any exported metric.
    ScopeObserve,
}

#[derive(Debug, Clone, Copy)]
enum WorkKind {
    /// A request schedule item ending in a trigger state.
    Request { source: TriggerSource, last: bool },
    /// A process context switch (no trigger).
    ContextSwitch,
    /// Deferred overhead (handler or poll cost) with no trigger.
    Overhead(CpuCategory),
}

#[derive(Debug)]
enum Ev {
    /// Starts the request pipeline at t = 0.
    Boot,
    /// Current work item completes.
    WorkDone { gen: u64 },
    /// Added null-handler timer tick (Figures 2-3).
    ExtraTimer,
    /// Rate-based-clocking hardware timer tick (Table 3).
    RbcTimer,
    /// The kernel's 1 kHz clock: backup sweep for soft timers.
    BackupTimer,
    /// A frame arrives at the NIC.
    RxArrival,
    /// The NIC finished serializing a transmitted frame.
    TxComplete,
    /// Return path of a hardware interrupt: a trigger state.
    IntrReturn { source: TriggerSource },
    /// An open-loop client arrival.
    NewRequest(Arrival),
    /// A pinned (slowloris) connection finally produced its request.
    PinBody { id: u64 },
    /// The hardware-timer variant of the admission limit update.
    AdmitHwTimer,
    /// The hardware-timer variant of telemetry sampling
    /// ([`ScopeSampling::Hardware`], the `timeline_overhead` contrast).
    ScopeHwTimer,
}

struct Current {
    end: SimTime,
    gen: u64,
    kind: WorkKind,
}

/// A slowloris connection holding a slot while its body trickles in.
struct Pin {
    id: u64,
    arrived: SimTime,
    class: RequestClass,
    size_scale: f64,
}

/// An admitted request in the work queue (completions pop in FIFO
/// order because each request's schedule is enqueued contiguously).
struct PendingReq {
    class: RequestClass,
    arrived: SimTime,
}

#[derive(Debug, Default)]
struct OverloadCounters {
    offered: u64,
    admitted: u64,
    shed: u64,
    dropped: u64,
    reaped_pins: u64,
    completed_ok: u64,
    completed_late: u64,
}

/// Open-loop serving-path state (absent in closed-loop runs).
struct OpenState {
    cfg: crate::arrival::OpenLoopConfig,
    /// Occupied connection slots: queued + inflight + pinned + sheds
    /// awaiting their delayed 503.
    conns: u64,
    pending: VecDeque<PendingReq>,
    pins: VecDeque<Pin>,
    next_pin_id: u64,
    /// Pins with an id below this were reaped; their body events are
    /// stale when they fire.
    pins_reaped_below: u64,
    /// Rejected requests waiting for their soft-timer-delayed 503.
    pending_sheds: u64,
    latencies_us: Vec<u64>,
    counters: OverloadCounters,
    update_cpu: SimDuration,
    update_fires: u64,
}

impl OpenState {
    fn new(cfg: crate::arrival::OpenLoopConfig) -> Self {
        OpenState {
            cfg,
            conns: 0,
            pending: VecDeque::new(),
            pins: VecDeque::new(),
            next_pin_id: 0,
            pins_reaped_below: 0,
            pending_sheds: 0,
            latencies_us: Vec::new(),
            counters: OverloadCounters::default(),
            update_cpu: SimDuration::ZERO,
            update_fires: 0,
        }
    }
}

/// Cost of a 503 response: headers only, roughly a third of a full
/// data-frame transmission.
fn shed_reply_cost(server: &ServerModel) -> SimDuration {
    SimDuration::from_nanos(server.tx_cost.as_nanos() / 3)
}

fn percentile_us(sorted: &[u64], num: u64, den: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as u64 * num) / den).min(sorted.len() as u64 - 1);
    sorted[usize::try_from(rank).expect("rank bounded by len")]
}

struct SatWorld {
    config: SaturationConfig,
    soft: SoftClock<SoftEv>,
    cpu: CpuAccountant,
    rng: SimRng,
    policy: DriverPolicy,
    arrivals: Box<dyn ArrivalProcess>,
    arr_rng: SimRng,
    admit: Option<AdmissionController>,
    open: Option<OpenState>,

    queue: VecDeque<(SimDuration, WorkKind)>,
    cur: Option<Current>,
    gen: u64,
    done_event: Option<EventId>,

    /// Frames waiting in the NIC ring.
    ring: usize,
    /// Transmit-completion descriptors waiting to be reaped.
    tx_reap: usize,
    /// Whether an rx interrupt is latched/in progress (interrupt modes):
    /// frames arriving meanwhile coalesce into the next drain.
    rx_busy: bool,
    /// When the previous NIC interrupt ran (cache-residency discount).
    last_nic_intr: Option<SimTime>,
    /// Packets awaiting paced transmission (rate-based clocking).
    pending_tx: u64,
    last_tx: Option<SimTime>,
    /// Whether the previous transmission left more packets queued (the
    /// next gap is then a within-train interval, which is what Table 3's
    /// "avg xmit intvl" reports).
    tx_in_train: bool,
    tx_intervals: Summary,

    completed: u64,
    expected_req: SimDuration,
    /// Whether an st-scope session was active when the world was built;
    /// all observation and attribution work is gated on this so the
    /// disabled path stays a sealed no-op.
    scope_on: bool,
    /// Timed-work execution spans for fire-delay attribution.
    ledger: st_scope::ExecLedger,
    scope_fires: u64,
    scope_cpu: SimDuration,
    soft_fires: u64,
    sampler_fires: u64,
    sampler_skipped: u64,
    extra_timer_ticks: u64,
    last_soft_fire: Option<SimTime>,
    soft_fire_gaps: Summary,
    fired: Vec<Expired<SoftEv>>,
    deadline: SimTime,
}

impl SatWorld {
    fn new(config: SaturationConfig) -> Self {
        let soft = SoftClock::new(config.keep_raw_triggers);
        let budget =
            config.server.app_work + config.server.fixed_cost_interrupt_mode(&config.machine);
        let mut rng = SimRng::seed(config.seed);
        // The arrival stream gets its own forked RNG *only* in open-loop
        // mode: closed-loop draws must stay byte-identical to the
        // pre-open-loop harness, and forking mutates the master.
        let (arr_rng, open, admit) = match &config.arrivals {
            ArrivalModel::Closed => (SimRng::seed(config.seed), None, None),
            ArrivalModel::Open(cfg) => {
                let arr_rng = rng.fork(0xA11CE);
                let admit = cfg.admission.map(|m| {
                    AdmissionController::new(m.kind, m.policy, m.rtt_budget_us, m.max_limit)
                });
                (arr_rng, Some(OpenState::new(*cfg)), admit)
            }
        };
        let arrivals = config.arrivals.build();
        SatWorld {
            soft,
            cpu: CpuAccountant::new(),
            rng,
            policy: DriverPolicy::new(config.driver),
            arrivals,
            arr_rng,
            admit,
            open,
            queue: VecDeque::new(),
            cur: None,
            gen: 0,
            done_event: None,
            ring: 0,
            tx_reap: 0,
            rx_busy: false,
            last_nic_intr: None,
            pending_tx: 0,
            last_tx: None,
            tx_in_train: false,
            tx_intervals: Summary::new(),
            completed: 0,
            expected_req: budget,
            scope_on: st_scope::active(),
            ledger: st_scope::ExecLedger::new(),
            scope_fires: 0,
            scope_cpu: SimDuration::ZERO,
            soft_fires: 0,
            sampler_fires: 0,
            sampler_skipped: 0,
            extra_timer_ticks: 0,
            last_soft_fire: None,
            soft_fire_gaps: Summary::new(),
            fired: Vec::new(),
            deadline: SimTime::ZERO + config.duration,
            config,
        }
    }

    /// Enqueues the next request's schedule and its rx arrivals.
    fn enqueue_request(&mut self, now: SimTime, ctx: &mut Ctx<'_, Ev>) {
        self.enqueue_request_scaled(now, 1.0, ctx);
    }

    /// [`SatWorld::enqueue_request`] for a response `size_scale` times
    /// the base document. At 1.0 the draws and schedule are identical.
    fn enqueue_request_scaled(&mut self, now: SimTime, size_scale: f64, ctx: &mut Ctx<'_, Ev>) {
        let server = self.config.server.clone();
        let machine = self.config.machine;
        let rbc = self.config.rate_clocking != RateClocking::Off;

        for _ in 0..server.context_switches {
            self.queue
                .push_back((machine.context_switch, WorkKind::ContextSwitch));
        }
        let schedule = server.request_schedule_scaled(&machine, &mut self.rng, size_scale);
        let n = schedule.len();
        for (i, (cost, source)) in schedule.into_iter().enumerate() {
            if rbc && source == TriggerSource::IpOutput {
                // Rate-based clocking: the packet is queued for paced
                // transmission instead of going out inline; reaching this
                // point of the request "generates" the packet, and the
                // ip-output cost is charged later in the pacing handler.
                self.pending_tx_markers(i, n);
                self.queue.push_back((
                    SimDuration::from_nanos(200),
                    WorkKind::Request {
                        source: TriggerSource::TcpipOther,
                        last: i + 1 == n,
                    },
                ));
                continue;
            }
            self.queue.push_back((
                cost,
                WorkKind::Request {
                    source,
                    last: i + 1 == n,
                },
            ));
        }

        // Client frames for this request arrive over its expected span,
        // in clusters of two (the client's back-to-back ACK behaviour) —
        // clustering is what lets one interrupt drain several frames on
        // fast servers.
        let mut remaining = server.scaled_rx_packets(size_scale);
        while remaining > 0 {
            let in_cluster = remaining.min(2);
            let frac = self.rng.uniform01();
            let base = now
                + SimDuration::from_nanos(
                    (self.expected_req.as_nanos() as f64 * size_scale * frac).round() as u64,
                );
            for j in 0..in_cluster {
                ctx.schedule_at(base + SimDuration::from_micros(4 * j as u64), Ev::RxArrival);
            }
            remaining -= in_cluster;
        }
    }

    /// Credits one packet to the pacing queue (rate-based clocking).
    fn pending_tx_markers(&mut self, _i: usize, _n: usize) {
        self.pending_tx += 1;
    }

    fn start_next(&mut self, now: SimTime, ctx: &mut Ctx<'_, Ev>) {
        if self.cur.is_some() {
            return;
        }
        let Some((cost, kind)) = self.queue.pop_front() else {
            return;
        };
        self.gen += 1;
        let end = now + cost;
        let category = match kind {
            WorkKind::Request { .. } => CpuCategory::Kernel,
            WorkKind::ContextSwitch => CpuCategory::ContextSwitch,
            WorkKind::Overhead(c) => c,
        };
        self.cpu.charge(category, cost);
        self.cur = Some(Current {
            end,
            gen: self.gen,
            kind,
        });
        self.done_event = Some(ctx.schedule_at(end, Ev::WorkDone { gen: self.gen }));
    }

    /// Charges `cost` as an immediate insertion: extends the current item
    /// or, between items, runs as a front-of-queue overhead item (charged
    /// when it starts).
    ///
    /// Timed-work categories (soft-timer dispatch, polling) are also
    /// noted in the attribution ledger as executing at `now`, so a later
    /// fire can see how much of its lateness this work covered.
    fn insert_cost(
        &mut self,
        now: SimTime,
        cost: SimDuration,
        category: CpuCategory,
        ctx: &mut Ctx<'_, Ev>,
    ) {
        if cost == SimDuration::ZERO {
            return;
        }
        if self.scope_on && matches!(category, CpuCategory::SoftTimer | CpuCategory::Polling) {
            let start = now.since(SimTime::ZERO).as_nanos();
            self.ledger.note(start, start + cost.as_nanos());
        }
        if let Some(cur) = &mut self.cur {
            self.cpu.charge(category, cost);
            cur.end += cost;
            self.gen += 1;
            cur.gen = self.gen;
            if let Some(old) = self.done_event.take() {
                ctx.cancel(old);
            }
            self.done_event = Some(ctx.schedule_at(cur.end, Ev::WorkDone { gen: self.gen }));
        } else {
            self.queue.push_front((cost, WorkKind::Overhead(category)));
        }
    }

    /// A trigger state at `now`: record, poll the facility, run fired
    /// handlers.
    fn trigger(&mut self, now: SimTime, source: TriggerSource, ctx: &mut Ctx<'_, Ev>) {
        let mut fired = std::mem::take(&mut self.fired);
        fired.clear();
        self.soft.trigger(now, source, &mut fired);
        // The check itself costs a clock read + compare.
        self.insert_cost(
            now,
            self.config.machine.soft_check,
            CpuCategory::SoftTimer,
            ctx,
        );
        for ev in &fired {
            self.attribute_fire(ev, source.label());
            self.run_soft_handler(now, ev, ctx);
        }
        self.fired = fired;
    }

    /// Backup sweep from the kernel clock tick.
    fn backup(&mut self, now: SimTime, ctx: &mut Ctx<'_, Ev>) {
        let mut fired = std::mem::take(&mut self.fired);
        fired.clear();
        self.soft.backup_tick(now, &mut fired);
        for ev in &fired {
            self.attribute_fire(ev, "backup");
            self.run_soft_handler(now, ev, ctx);
        }
        self.fired = fired;
    }

    /// Decomposes one fire's lateness into trigger-wait vs. cascade and
    /// records it on the waterfall lane of the firing trigger source.
    /// The two components sum exactly to the delay the facility itself
    /// recorded (`fired_at - due`), so per-lane sums reconcile against
    /// `FacilityStats::delay_sum_ticks` with no rounding slack.
    fn attribute_fire(&mut self, ev: &Expired<SoftEv>, lane: &'static str) {
        if !self.scope_on {
            return;
        }
        let (wait, cascade) = self.ledger.split(ev.due, ev.fired_at);
        st_scope::fire_delay(lane, wait, cascade);
    }

    fn note_soft_fire(&mut self, now: SimTime) {
        self.soft_fires += 1;
        if let Some(last) = self.last_soft_fire {
            self.soft_fire_gaps.record(now.since(last).as_micros_f64());
        }
        self.last_soft_fire = Some(now);
    }

    fn run_soft_handler(&mut self, now: SimTime, ev: &Expired<SoftEv>, ctx: &mut Ctx<'_, Ev>) {
        if ev.payload == SoftEv::ScopeObserve {
            // Observation only: no cost, no fire accounting, no RNG —
            // a run with an active scope session stays byte-identical
            // to one without. Rearm on the 1 kHz observation grid.
            self.scope_observe(now);
            let lag = ev.fired_at.saturating_sub(ev.due);
            let delta = 999u64.saturating_sub(lag % 1_000);
            self.soft.schedule(now, delta, SoftEv::ScopeObserve);
            return;
        }
        self.note_soft_fire(now);
        match ev.payload {
            SoftEv::Null => {
                self.insert_cost(
                    now,
                    self.config.machine.soft_dispatch,
                    CpuCategory::SoftTimer,
                    ctx,
                );
                // Maximal rate: rearm for the very next trigger state.
                self.soft.schedule(now, 0, SoftEv::Null);
            }
            SoftEv::TxPace => {
                if self.pending_tx > 0 {
                    self.pending_tx -= 1;
                    self.record_tx(now);
                    ctx.schedule_in(SimDuration::from_micros(120), Ev::TxComplete);
                    let cost = self.config.server.tx_cost + self.config.server.soft_handler_cost;
                    self.insert_cost(now, cost, CpuCategory::SoftTimer, ctx);
                } else {
                    self.insert_cost(
                        now,
                        self.config.machine.soft_dispatch,
                        CpuCategory::SoftTimer,
                        ctx,
                    );
                }
                self.soft.schedule(now, 0, SoftEv::TxPace);
            }
            SoftEv::PollNic => {
                let found = self.ring;
                self.ring = 0;
                let reaped = self.tx_reap;
                self.tx_reap = 0;
                let cost = self.poll_cost(found) + self.config.server.tx_reap_cost * reaped as u64;
                self.insert_cost(now, cost, CpuCategory::Polling, ctx);
                if let Some(interval) = self.policy.next_poll_interval(found as u64) {
                    self.soft.schedule(now, interval.max(1), SoftEv::PollNic);
                }
            }
            SoftEv::LimitUpdate => {
                let m = self.config.machine;
                let cost = m.soft_dispatch + m.admit_update;
                self.insert_cost(now, cost, CpuCategory::SoftTimer, ctx);
                if let Some(open) = self.open.as_mut() {
                    open.update_cpu += cost;
                    open.update_fires += 1;
                }
                self.run_limit_update(now);
                if let Some(period) = self.update_period_us() {
                    // Grid-aligned rearm, same pattern as the profiler
                    // sampler: the update rate must not drift down under
                    // exactly the load that makes admission matter.
                    let lag = ev.fired_at.saturating_sub(ev.due);
                    let delta = (period - 1).saturating_sub(lag % period);
                    self.soft.schedule(now, delta, SoftEv::LimitUpdate);
                }
            }
            SoftEv::ShedReply => {
                let cost = shed_reply_cost(&self.config.server);
                self.insert_cost(now, cost, CpuCategory::SoftTimer, ctx);
                if let Some(open) = self.open.as_mut() {
                    if open.pending_sheds > 0 {
                        open.pending_sheds -= 1;
                        open.conns = open.conns.saturating_sub(1);
                    }
                }
            }
            SoftEv::Sample => {
                self.sampler_fires += 1;
                self.insert_cost(
                    now,
                    self.config.machine.prof_sample,
                    CpuCategory::SoftTimer,
                    ctx,
                );
                if let Some(load) = self.config.soft_sampler {
                    // Grid-aligned rearm: the next due tick stays on the
                    // original `period` grid regardless of how late this
                    // fire was, so the effective rate does not drift down
                    // under load. The facility fires at schedule + T + 1,
                    // hence the -1.
                    let period = (1_000_000 / load.freq_hz.max(1)).max(1);
                    let lag = ev.fired_at.saturating_sub(ev.due);
                    self.sampler_skipped += lag / period;
                    let delta = (period - 1).saturating_sub(lag % period);
                    self.soft.schedule(now, delta, SoftEv::Sample);
                }
            }
            SoftEv::ScopeSample => {
                let m = self.config.machine;
                let cost = m.soft_dispatch + m.scope_sample;
                self.insert_cost(now, cost, CpuCategory::SoftTimer, ctx);
                self.scope_fires += 1;
                self.scope_cpu += cost;
                self.scope_observe(now);
                if let ScopeSampling::Soft { freq_hz } = self.config.scope_sampling {
                    // Grid-aligned rearm, same pattern as the profiler
                    // sampler: the effective sampling rate must not
                    // drift down under exactly the load a timeline is
                    // meant to explain.
                    let period = (1_000_000 / freq_hz.max(1)).max(1);
                    let lag = ev.fired_at.saturating_sub(ev.due);
                    let delta = (period - 1).saturating_sub(lag % period);
                    self.soft.schedule(now, delta, SoftEv::ScopeSample);
                }
            }
            SoftEv::ScopeObserve => unreachable!("handled before fire accounting"),
        }
    }

    /// Reads the world into the ambient st-scope session: gauges for the
    /// serving path and admission limits, plus a timeline sample pulling
    /// counter deltas from the st-trace registry. Sealed no-op without an
    /// active session; charges nothing to the simulation either way.
    fn scope_observe(&mut self, now: SimTime) {
        let tick = self.soft.ticks(now);
        if let Some(open) = self.open.as_ref() {
            st_scope::gauge(tick, "http.conns", open.conns as f64);
            st_scope::gauge(tick, "http.queue", open.pending.len() as f64);
            st_scope::gauge(tick, "http.pins", open.pins.len() as f64);
        }
        // Admission limits are NOT gauged here: the controller gauges
        // `admit.limit.*` itself at each update, the only place limits
        // change, so sampling them again would only duplicate series.
        st_scope::gauge(tick, "nic.ring", self.ring as f64);
        st_scope::sample(tick);
    }

    /// CPU cost of a poll finding `found` frames: register read, per-frame
    /// driver work, protocol processing with aggregation savings for
    /// frames after the first in a batch.
    fn poll_cost(&self, found: usize) -> SimDuration {
        let m = &self.config.machine;
        let s = &self.config.server;
        let mut cost = m.nic_poll_empty;
        if found > 0 {
            cost += s.rx_poll_driver_cost * found as u64;
            let proto = s.rx_protocol_cost.as_nanos() as f64;
            let saving = m.aggregation_saving;
            let first = proto;
            let rest = proto * (1.0 - saving) * (found as u64 - 1) as f64;
            cost += SimDuration::from_nanos((first + rest).round() as u64);
        }
        cost
    }

    fn record_tx(&mut self, now: SimTime) {
        if let Some(last) = self.last_tx {
            if self.tx_in_train {
                self.tx_intervals.record(now.since(last).as_micros_f64());
            }
        }
        self.last_tx = Some(now);
        // A train continues while more packets wait behind this one.
        self.tx_in_train = self.pending_tx > 0;
    }

    /// Starts a NIC interrupt that drains everything pending: received
    /// frames (protocol work per frame) and transmit completions (reap
    /// per descriptor); interrupt entry/exit and pollution are paid once
    /// per interrupt — the latch's natural coalescing.
    fn begin_rx_interrupt(&mut self, now: SimTime, ctx: &mut Ctx<'_, Ev>) {
        self.rx_busy = true;
        let rx_found = self.ring as u64;
        self.ring = 0;
        let tx_found = self.tx_reap as u64;
        self.tx_reap = 0;
        // Cache residency: an interrupt soon after the previous one finds
        // the handler still cached and pays less pollution.
        let tau = self.config.machine.intr_cache_residency_us;
        let residency = match self.last_nic_intr {
            Some(prev) => {
                let gap_us = now.since(prev).as_micros_f64();
                1.0 - (-gap_us / tau.max(1e-9)).exp()
            }
            None => 1.0,
        };
        self.last_nic_intr = Some(now);
        // Everything above the dispatch floor is cache effects and gets
        // the residency discount (most of the 6.3 us base interrupt cost
        // is state save/restore misses and handler-code refetch).
        let floor = self.config.machine.nic_intr_floor;
        let cacheable = (self.config.machine.nic_interrupt - floor
            + self.config.server.nic_intr_pollution)
            .as_nanos() as f64;
        let intr_cost = floor + SimDuration::from_nanos((cacheable * residency).round() as u64);
        let cost = intr_cost
            + self.config.server.rx_protocol_cost * rx_found
            + self.config.server.tx_reap_cost * tx_found;
        self.hardware_interrupt(now, cost, TriggerSource::IpIntr, ctx);
    }

    /// A hardware interrupt at `now` costing `cost`; the return path (a
    /// trigger state) happens after the cost is absorbed.
    fn hardware_interrupt(
        &mut self,
        now: SimTime,
        cost: SimDuration,
        ret_source: TriggerSource,
        ctx: &mut Ctx<'_, Ev>,
    ) {
        // Charge directly (interrupts always preempt, even between items).
        self.cpu.charge(CpuCategory::Interrupt, cost);
        if self.scope_on {
            let start = now.since(SimTime::ZERO).as_nanos();
            self.ledger.note(start, start + cost.as_nanos());
        }
        if let Some(cur) = &mut self.cur {
            cur.end += cost;
            self.gen += 1;
            cur.gen = self.gen;
            if let Some(old) = self.done_event.take() {
                ctx.cancel(old);
            }
            self.done_event = Some(ctx.schedule_at(cur.end, Ev::WorkDone { gen: self.gen }));
        }
        ctx.schedule_at(now + cost, Ev::IntrReturn { source: ret_source });
    }

    /// One arrival reaches the accept path. Closed loop: straight into
    /// the work queue. Open loop: connection table, pinning, admission.
    fn accept_arrival(&mut self, now: SimTime, arr: Arrival, ctx: &mut Ctx<'_, Ev>) {
        let Some(open) = self.open.as_mut() else {
            self.enqueue_request(now, ctx);
            return;
        };
        open.counters.offered += 1;
        if open.conns >= open.cfg.max_connections {
            open.counters.dropped += 1;
            return;
        }
        open.conns += 1;
        if let Some(pin) = arr.pinned_us {
            let id = open.next_pin_id;
            open.next_pin_id += 1;
            open.pins.push_back(Pin {
                id,
                arrived: now,
                class: arr.class,
                size_scale: arr.size_scale,
            });
            ctx.schedule_at(now + SimDuration::from_micros(pin), Ev::PinBody { id });
            return;
        }
        self.admit_body(now, arr.class, arr.size_scale, now, ctx);
    }

    /// The request body is present: run the admission fast path (one
    /// compare), then enqueue or shed per the rejection policy.
    fn admit_body(
        &mut self,
        now: SimTime,
        class: RequestClass,
        size_scale: f64,
        arrived: SimTime,
        ctx: &mut Ctx<'_, Ev>,
    ) {
        if let Some(c) = self.admit.as_mut() {
            let decision = c.try_admit(class);
            self.insert_cost(
                now,
                self.config.machine.admit_check,
                CpuCategory::Kernel,
                ctx,
            );
            match decision {
                Decision::Admit => {}
                Decision::Reject(RejectPolicy::Immediate) => {
                    let open = self.open.as_mut().expect("admission implies open loop");
                    open.counters.shed += 1;
                    open.conns = open.conns.saturating_sub(1);
                    let cost = shed_reply_cost(&self.config.server);
                    self.insert_cost(now, cost, CpuCategory::Kernel, ctx);
                    return;
                }
                Decision::Reject(RejectPolicy::DelayedShed { delay_ticks }) => {
                    let open = self.open.as_mut().expect("admission implies open loop");
                    open.counters.shed += 1;
                    open.pending_sheds += 1;
                    self.soft.schedule(now, delay_ticks, SoftEv::ShedReply);
                    return;
                }
            }
        }
        let open = self.open.as_mut().expect("open loop");
        open.counters.admitted += 1;
        open.pending.push_back(PendingReq { class, arrived });
        self.enqueue_request_scaled(now, size_scale, ctx);
    }

    /// An open-loop request's last work item finished: record latency,
    /// free the slot, feed the admission signal.
    fn finish_open_request(&mut self, now: SimTime) {
        let Some(open) = self.open.as_mut() else {
            return;
        };
        let Some(req) = open.pending.pop_front() else {
            return;
        };
        let lat_us = now.since(req.arrived).as_nanos() / 1_000;
        open.latencies_us.push(lat_us);
        if lat_us <= open.cfg.slo_us {
            open.counters.completed_ok += 1;
        } else {
            open.counters.completed_late += 1;
        }
        st_scope::observe("http.latency_us", lat_us as f64);
        st_trace::count("http.completed", 1);
        open.conns = open.conns.saturating_sub(1);
        let class = req.class;
        if let Some(c) = self.admit.as_mut() {
            c.on_complete(class, lat_us);
        }
    }

    /// The periodic limit update: limiter math plus pinned-connection
    /// reaping — all the adaptive work the fast path defers.
    fn run_limit_update(&mut self, now: SimTime) {
        let now_us = now.since(SimTime::ZERO).as_nanos() / 1_000;
        if let Some(c) = self.admit.as_mut() {
            c.update_limits(now_us);
        }
        let Some(open) = self.open.as_mut() else {
            return;
        };
        let Some(mode) = open.cfg.admission else {
            return;
        };
        while let Some(front) = open.pins.front() {
            if now.since(front.arrived).as_nanos() / 1_000 < mode.pin_budget_us {
                break;
            }
            let p = open.pins.pop_front().expect("front exists");
            open.pins_reaped_below = p.id + 1;
            open.conns = open.conns.saturating_sub(1);
            open.counters.reaped_pins += 1;
        }
    }

    /// The soft-timer limit-update grid period, when configured.
    fn update_period_us(&self) -> Option<u64> {
        let ArrivalModel::Open(cfg) = &self.config.arrivals else {
            return None;
        };
        match cfg.admission?.driver {
            UpdateDriver::Soft { period_us } => Some(period_us.max(1)),
            UpdateDriver::Hardware { .. } => None,
        }
    }

    /// The hardware limit-update frequency, when configured.
    fn hw_update_freq(&self) -> Option<u64> {
        let ArrivalModel::Open(cfg) = &self.config.arrivals else {
            return None;
        };
        match cfg.admission?.driver {
            UpdateDriver::Soft { .. } => None,
            UpdateDriver::Hardware { freq_hz } => Some(freq_hz),
        }
    }
}

impl World for SatWorld {
    type Event = Ev;

    fn handle(&mut self, ev: Ev, ctx: &mut Ctx<'_, Ev>) {
        let now = ctx.now();
        match ev {
            Ev::Boot => {
                let boots = self.arrivals.at_boot(&mut self.arr_rng);
                for (delay, arr) in boots {
                    if delay == SimDuration::ZERO {
                        self.accept_arrival(now, arr, ctx);
                    } else {
                        ctx.schedule_at(now + delay, Ev::NewRequest(arr));
                    }
                }
                self.start_next(now, ctx);
            }
            Ev::WorkDone { gen } => {
                let Some(cur) = &self.cur else { return };
                if cur.gen != gen {
                    return; // Superseded by an insertion.
                }
                let kind = cur.kind;
                self.cur = None;
                self.done_event = None;
                match kind {
                    WorkKind::Request { source, last } => {
                        if source == TriggerSource::IpOutput
                            && self.config.rate_clocking == RateClocking::Off
                        {
                            // Inline transmission completes here; the NIC
                            // signals completion after serialization
                            // (120 us for a full frame at 100 Mbps).
                            self.record_tx(now);
                            ctx.schedule_in(SimDuration::from_micros(120), Ev::TxComplete);
                        }
                        self.trigger(now, source, ctx);
                        if last {
                            self.completed += 1;
                            self.finish_open_request(now);
                            if now < self.deadline {
                                if let Some(arr) =
                                    self.arrivals.on_completion(now, &mut self.arr_rng)
                                {
                                    self.accept_arrival(now, arr, ctx);
                                }
                            }
                        }
                    }
                    WorkKind::ContextSwitch | WorkKind::Overhead(_) => {}
                }
                self.start_next(now, ctx);
            }
            Ev::ExtraTimer => {
                if now >= self.deadline {
                    return;
                }
                let load = self.config.extra_timer.expect("event implies config");
                self.extra_timer_ticks += 1;
                self.hardware_interrupt(
                    now,
                    self.config.machine.hw_interrupt,
                    TriggerSource::OtherIntr,
                    ctx,
                );
                ctx.schedule_in(SimDuration::from_hz(load.freq_hz), Ev::ExtraTimer);
            }
            Ev::RbcTimer => {
                if now >= self.deadline {
                    return;
                }
                let RateClocking::Hardware { freq_hz } = self.config.rate_clocking else {
                    return;
                };
                // The handler runs on every tick (checks the queue, touches
                // TCP state), so its cache pollution is paid per interrupt
                // whether or not a packet goes out — this is Table 3's
                // extra 6 % / 14 % beyond the null-handler base.
                let mut cost =
                    self.config.machine.hw_interrupt + self.config.server.hw_handler_pollution;
                if self.pending_tx > 0 {
                    self.pending_tx -= 1;
                    self.record_tx(now);
                    ctx.schedule_in(SimDuration::from_micros(120), Ev::TxComplete);
                    cost += self.config.server.tx_cost;
                }
                self.hardware_interrupt(now, cost, TriggerSource::OtherIntr, ctx);
                ctx.schedule_in(SimDuration::from_hz(freq_hz), Ev::RbcTimer);
            }
            Ev::BackupTimer => {
                if now >= self.deadline {
                    return;
                }
                if self.scope_on {
                    // The attribution window never reaches further back
                    // than the worst fire delay; 16 ms is far past it.
                    let now_ns = now.since(SimTime::ZERO).as_nanos();
                    self.ledger.prune(now_ns.saturating_sub(16_000_000));
                }
                self.backup(now, ctx);
                ctx.schedule_in(SimDuration::from_millis(1), Ev::BackupTimer);
                self.start_next(now, ctx);
            }
            Ev::RxArrival => match self.config.driver {
                DriverStrategy::InterruptDriven
                | DriverStrategy::Hybrid
                | DriverStrategy::CoalescedInterrupts { .. } => {
                    self.ring += 1;
                    if !self.rx_busy {
                        self.begin_rx_interrupt(now, ctx);
                    }
                    // Otherwise the frame coalesces into the in-progress
                    // interrupt's follow-up drain (the NIC latch).
                }
                DriverStrategy::PurePolling { .. } | DriverStrategy::SoftTimerPolling { .. } => {
                    self.ring += 1;
                }
            },
            Ev::TxComplete => match self.config.driver {
                DriverStrategy::InterruptDriven
                | DriverStrategy::Hybrid
                | DriverStrategy::CoalescedInterrupts { .. } => {
                    self.tx_reap += 1;
                    if !self.rx_busy {
                        self.begin_rx_interrupt(now, ctx);
                    }
                }
                DriverStrategy::PurePolling { .. } | DriverStrategy::SoftTimerPolling { .. } => {
                    self.tx_reap += 1;
                }
            },
            Ev::IntrReturn { source } => {
                self.trigger(now, source, ctx);
                if source == TriggerSource::IpIntr {
                    if self.ring > 0 || self.tx_reap > 0 {
                        // The latch was re-asserted while we processed:
                        // take another interrupt immediately.
                        self.begin_rx_interrupt(now, ctx);
                    } else {
                        self.rx_busy = false;
                    }
                }
                self.start_next(now, ctx);
            }
            Ev::NewRequest(arr) => {
                if now >= self.deadline {
                    return;
                }
                // Keep the open-loop chain alive first: clients arrive on
                // their own clock whatever happens to this request.
                if let Some((gap, next)) = self.arrivals.next_timed(now, &mut self.arr_rng) {
                    ctx.schedule_at(now + gap, Ev::NewRequest(next));
                }
                self.accept_arrival(now, arr, ctx);
                self.start_next(now, ctx);
            }
            Ev::PinBody { id } => {
                if now >= self.deadline {
                    return;
                }
                let Some(open) = self.open.as_mut() else {
                    return;
                };
                if id < open.pins_reaped_below {
                    return; // Reaped before the body arrived.
                }
                let Some(pos) = open.pins.iter().position(|p| p.id == id) else {
                    return;
                };
                let p = open.pins.remove(pos).expect("position just found");
                let (class, scale, arrived) = (p.class, p.size_scale, p.arrived);
                self.admit_body(now, class, scale, arrived, ctx);
                self.start_next(now, ctx);
            }
            Ev::AdmitHwTimer => {
                if now >= self.deadline {
                    return;
                }
                let m = self.config.machine;
                let cost =
                    m.hw_interrupt + self.config.server.hw_handler_pollution + m.admit_update;
                if let Some(open) = self.open.as_mut() {
                    open.update_cpu += cost;
                    open.update_fires += 1;
                }
                self.run_limit_update(now);
                self.hardware_interrupt(now, cost, TriggerSource::OtherIntr, ctx);
                if let Some(freq) = self.hw_update_freq() {
                    ctx.schedule_in(SimDuration::from_hz(freq), Ev::AdmitHwTimer);
                }
            }
            Ev::ScopeHwTimer => {
                if now >= self.deadline {
                    return;
                }
                let ScopeSampling::Hardware { freq_hz } = self.config.scope_sampling else {
                    return;
                };
                // A dedicated sampling interrupt pays the full price the
                // paper measures for periodic hardware timers: entry/exit
                // plus handler pollution, then the sample body itself.
                let m = self.config.machine;
                let cost =
                    m.hw_interrupt + self.config.server.hw_handler_pollution + m.scope_sample;
                self.scope_fires += 1;
                self.scope_cpu += cost;
                self.scope_observe(now);
                self.hardware_interrupt(now, cost, TriggerSource::OtherIntr, ctx);
                ctx.schedule_in(SimDuration::from_hz(freq_hz), Ev::ScopeHwTimer);
            }
        }
    }
}

/// Runs saturation experiments.
#[derive(Debug)]
pub struct SaturationSim;

impl SaturationSim {
    /// Executes one run and reports results.
    ///
    /// # Panics
    ///
    /// Panics on [`DriverStrategy::CoalescedInterrupts`]: hardware
    /// interrupt moderation is modeled only by the open-loop simulator
    /// (`crate::livelock`); running it here would silently behave like
    /// plain interrupts.
    pub fn run(config: SaturationConfig) -> SaturationResult {
        assert!(
            !matches!(config.driver, DriverStrategy::CoalescedInterrupts { .. }),
            "CoalescedInterrupts is not modeled by the saturation sim;              use st_http::livelock for the interrupt-moderation ablation"
        );
        let duration = config.duration;
        let mut engine = Engine::new(SatWorld::new(config));

        // Boot: pending soft events, timers, first request.
        {
            let w = engine.world_mut();
            let now = SimTime::ZERO;
            if w.config.soft_null_event {
                w.soft.schedule(now, 0, SoftEv::Null);
            }
            if w.config.rate_clocking == RateClocking::Soft {
                w.soft.schedule(now, 0, SoftEv::TxPace);
            }
            if w.policy.polls() {
                let first = w.policy.next_poll_interval(0).expect("polling policy");
                w.soft.schedule(now, first, SoftEv::PollNic);
            }
            if let Some(load) = w.config.soft_sampler {
                let period = (1_000_000 / load.freq_hz.max(1)).max(1);
                w.soft.schedule(now, period - 1, SoftEv::Sample);
            }
            if let Some(period) = w.update_period_us() {
                w.soft.schedule(now, period - 1, SoftEv::LimitUpdate);
            }
            if let ScopeSampling::Soft { freq_hz } = w.config.scope_sampling {
                // Mid-phase start: a sampling grid sharing the backup
                // sweep's phase would be scooped by the 1 kHz backup at
                // exactly zero delay on every period — the samples must
                // ride trigger states to be soft-timer-driven at all.
                // The grid-aligned rearm preserves this phase for the
                // rest of the run.
                let period = (1_000_000 / freq_hz.max(1)).max(1);
                w.soft.schedule(now, period / 2, SoftEv::ScopeSample);
            }
            if w.scope_on && w.config.scope_sampling == ScopeSampling::Off {
                // Pure observation at 1 kHz (mid-phase, like the modeled
                // sampler): the event is free and leaves the modeled run
                // byte-identical, so an outer `--timeline` session can
                // watch any experiment without perturbing it.
                w.soft.schedule(now, 499, SoftEv::ScopeObserve);
            }
        }
        engine.schedule_at(SimTime::ZERO, Ev::Boot);
        engine.schedule_at(SimTime::from_millis(1), Ev::BackupTimer);
        if let Some(load) = engine.world().config.extra_timer {
            engine.schedule_at(
                SimTime::ZERO + SimDuration::from_hz(load.freq_hz),
                Ev::ExtraTimer,
            );
        }
        if let RateClocking::Hardware { freq_hz } = engine.world().config.rate_clocking {
            engine.schedule_at(SimTime::ZERO + SimDuration::from_hz(freq_hz), Ev::RbcTimer);
        }
        if let Some(freq) = engine.world().hw_update_freq() {
            engine.schedule_at(SimTime::ZERO + SimDuration::from_hz(freq), Ev::AdmitHwTimer);
        }
        if let ScopeSampling::Hardware { freq_hz } = engine.world().config.scope_sampling {
            engine.schedule_at(
                SimTime::ZERO + SimDuration::from_hz(freq_hz),
                Ev::ScopeHwTimer,
            );
        }

        let deadline = SimTime::ZERO + duration;
        engine.run_until(deadline);
        let elapsed = engine.now();
        let world = engine.into_world();

        let overload = world.open.as_ref().map(|open| {
            let mut lat = open.latencies_us.clone();
            lat.sort_unstable();
            let secs = elapsed.as_secs_f64().max(1e-9);
            let c = &open.counters;
            let run_ns = elapsed.since(SimTime::ZERO).as_nanos().max(1);
            let (li, lb) = match &world.admit {
                Some(a) => (
                    a.limit(RequestClass::Interactive),
                    a.limit(RequestClass::Bulk),
                ),
                None => (0, 0),
            };
            OverloadStats {
                offered: c.offered,
                admitted: c.admitted,
                shed: c.shed,
                dropped: c.dropped,
                reaped_pins: c.reaped_pins,
                completed_ok: c.completed_ok,
                completed_late: c.completed_late,
                goodput: c.completed_ok as f64 / secs,
                shed_rate: c.shed as f64 / (c.offered as f64).max(1.0),
                p50_us: percentile_us(&lat, 50, 100),
                p99_us: percentile_us(&lat, 99, 100),
                p999_us: percentile_us(&lat, 999, 1_000),
                max_us: lat.last().copied().unwrap_or(0),
                update_fires: open.update_fires,
                update_cpu_pct: 100.0 * open.update_cpu.as_nanos() as f64 / run_ns as f64,
                limit_interactive: li,
                limit_bulk: lb,
            }
        });

        let run_ns = elapsed.since(SimTime::ZERO).as_nanos().max(1);
        let fstats = world.soft.core().stats();
        let facility_fires = fstats.fired();
        let facility_delay_ticks = fstats.delay_sum_ticks();
        let recorder = world.soft.recorder();
        SaturationResult {
            requests: world.completed,
            elapsed,
            throughput: world.completed as f64 / elapsed.as_secs_f64(),
            trigger_mean_us: recorder.all.mean(),
            trigger_median_us: recorder.median_us(),
            soft_fires: world.soft_fires,
            sampler_fires: world.sampler_fires,
            sampler_skipped: world.sampler_skipped,
            extra_timer_ticks: world.extra_timer_ticks,
            soft_fire_interval_us: world.soft_fire_gaps.mean(),
            avg_found_per_poll: world.policy.average_found(),
            raw_triggers: recorder.raw().map(|r| r.to_vec()),
            tx_intervals: world.tx_intervals.clone(),
            cpu: world.cpu.clone(),
            overload,
            scope_fires: world.scope_fires,
            scope_cpu_pct: 100.0 * world.scope_cpu.as_nanos() as f64 / run_ns as f64,
            facility_fires,
            facility_delay_ticks,
        }
    }
}

impl SaturationSim {
    /// Calibrates a server model's `app_work` so that the *simulated*
    /// interrupt-driven baseline hits `target` requests/s.
    ///
    /// Unlike [`ServerModel::calibrated`]'s closed form, this accounts
    /// for NIC-latch coalescing: at high request rates many rx frames and
    /// tx completions share one interrupt, so the per-request interrupt
    /// overhead is lower than the per-frame sum. Binary-searches
    /// `app_work` with short probe runs (monotone: more work = less
    /// throughput).
    ///
    /// # Panics
    ///
    /// Panics when `target` is unreachable even with zero residual work.
    pub fn calibrate_app_work(
        machine: CostModel,
        mut server: ServerModel,
        target: f64,
        probe: SimDuration,
        seed: u64,
    ) -> ServerModel {
        let probe_tput = |server: &ServerModel, seed: u64| {
            let mut cfg = SaturationConfig::baseline(machine, server.clone(), seed);
            cfg.duration = probe;
            SaturationSim::run(cfg).throughput
        };
        server.app_work = SimDuration::ZERO;
        let max = probe_tput(&server, seed);
        assert!(
            max >= target * 0.995,
            "target {target}/s unreachable: fixed costs cap throughput at {max}/s"
        );
        let mut lo = 0u64;
        let mut hi = (1e9 / target) as u64; // A full budget of extra work.
        for i in 0..24 {
            let mid = (lo + hi) / 2;
            server.app_work = SimDuration::from_nanos(mid);
            let t = probe_tput(&server, seed + i);
            if t > target {
                lo = mid;
            } else {
                hi = mid;
            }
            if (t - target).abs() / target < 0.003 {
                break;
            }
        }
        server.app_work = SimDuration::from_nanos((lo + hi) / 2);
        server
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{HttpMode, ServerKind};

    fn apache_cfg(seed: u64) -> SaturationConfig {
        let machine = CostModel::pentium_ii_300();
        let server = ServerModel::calibrated(ServerKind::Apache, HttpMode::Http, &machine, 774.0);
        let mut c = SaturationConfig::baseline(machine, server, seed);
        c.duration = SimDuration::from_secs(2);
        c
    }

    #[test]
    fn baseline_throughput_matches_calibration() {
        let r = SaturationSim::run(apache_cfg(1));
        assert!(
            (r.throughput - 774.0).abs() / 774.0 < 0.05,
            "baseline throughput {}",
            r.throughput
        );
    }

    #[test]
    fn trigger_mean_is_tens_of_microseconds() {
        let r = SaturationSim::run(apache_cfg(2));
        assert!(
            (20.0..45.0).contains(&r.trigger_mean_us),
            "trigger mean {}",
            r.trigger_mean_us
        );
    }

    #[test]
    fn extra_timer_at_100khz_costs_about_45_percent() {
        let base = SaturationSim::run(apache_cfg(3));
        let mut cfg = apache_cfg(3);
        cfg.extra_timer = Some(TimerLoad { freq_hz: 100_000 });
        let loaded = SaturationSim::run(cfg);
        let overhead = 1.0 - loaded.throughput / base.throughput;
        assert!(
            (0.40..0.50).contains(&overhead),
            "overhead at 100 kHz: {overhead}"
        );
    }

    #[test]
    fn extra_timer_overhead_is_linear_in_frequency() {
        let base = SaturationSim::run(apache_cfg(4));
        let at = |hz: u64| {
            let mut cfg = apache_cfg(4);
            cfg.extra_timer = Some(TimerLoad { freq_hz: hz });
            1.0 - SaturationSim::run(cfg).throughput / base.throughput
        };
        let o25 = at(25_000);
        let o50 = at(50_000);
        assert!((o50 / o25 - 2.0).abs() < 0.2, "o25={o25} o50={o50}");
    }

    #[test]
    fn null_soft_event_has_negligible_overhead() {
        // §5.2: "no observable difference in the Web server's throughput".
        let base = SaturationSim::run(apache_cfg(5));
        let mut cfg = apache_cfg(5);
        cfg.soft_null_event = true;
        let soft = SaturationSim::run(cfg);
        let overhead = 1.0 - soft.throughput / base.throughput;
        assert!(overhead < 0.02, "soft null overhead {overhead}");
        // And the handler ran at trigger-state granularity.
        assert!(
            (20.0..45.0).contains(&soft.soft_fire_interval_us),
            "fire interval {}",
            soft.soft_fire_interval_us
        );
    }

    #[test]
    fn soft_rate_clocking_is_much_cheaper_than_hardware() {
        let base = SaturationSim::run(apache_cfg(6));
        let mut cfg = apache_cfg(6);
        cfg.rate_clocking = RateClocking::Soft;
        let soft = SaturationSim::run(cfg);
        let mut cfg = apache_cfg(6);
        cfg.rate_clocking = RateClocking::Hardware { freq_hz: 50_000 };
        let hw = SaturationSim::run(cfg);
        let soft_ovh = 1.0 - soft.throughput / base.throughput;
        let hw_ovh = 1.0 - hw.throughput / base.throughput;
        assert!(soft_ovh < 0.08, "soft overhead {soft_ovh}");
        assert!(hw_ovh > 0.20, "hw overhead {hw_ovh}");
        assert!(hw_ovh > 3.0 * soft_ovh, "soft {soft_ovh} vs hw {hw_ovh}");
    }

    #[test]
    fn soft_polling_beats_interrupts() {
        let base = SaturationSim::run(apache_cfg(7));
        let mut cfg = apache_cfg(7);
        cfg.driver = DriverStrategy::SoftTimerPolling { quota: 1.0 };
        let polled = SaturationSim::run(cfg);
        assert!(
            polled.throughput > base.throughput * 1.02,
            "polling {} vs base {}",
            polled.throughput,
            base.throughput
        );
    }

    #[test]
    fn higher_quota_aggregates_more() {
        let mut cfg = apache_cfg(8);
        cfg.driver = DriverStrategy::SoftTimerPolling { quota: 10.0 };
        let r = SaturationSim::run(cfg);
        let found = r.avg_found_per_poll.unwrap();
        assert!(found > 2.0, "avg found {found}");
    }

    #[test]
    fn soft_sampler_tracks_target_rate_and_stays_cheap() {
        let base = SaturationSim::run(apache_cfg(10));
        let mut cfg = apache_cfg(10);
        cfg.soft_sampler = Some(SamplerLoad { freq_hz: 20_000 });
        let sampled = SaturationSim::run(cfg);
        // Grid-aligned rearm conserves grid points: every period either
        // yields a sample or is counted as skipped (fires can lag past
        // grid points but the grid itself never drifts).
        let expected = 20_000.0 * sampled.elapsed.as_secs_f64();
        let covered = (sampled.sampler_fires + sampled.sampler_skipped) as f64;
        let ratio = covered / expected;
        assert!((0.99..=1.005).contains(&ratio), "grid ratio {ratio}");
        // Most grid points land on a trigger state in time.
        let hit = sampled.sampler_fires as f64 / expected;
        assert!(hit > 0.75, "hit fraction {hit}");
        // And sampling costs well under 1 % of throughput.
        let overhead = 1.0 - sampled.throughput / base.throughput;
        assert!(overhead < 0.01, "sampler overhead {overhead}");
    }

    #[test]
    fn extra_timer_tick_count_matches_frequency() {
        let mut cfg = apache_cfg(11);
        cfg.extra_timer = Some(TimerLoad { freq_hz: 10_000 });
        let r = SaturationSim::run(cfg);
        let expected = 10_000.0 * r.elapsed.as_secs_f64();
        let ratio = r.extra_timer_ticks as f64 / expected;
        assert!((0.99..=1.01).contains(&ratio), "tick ratio {ratio}");
    }

    #[test]
    fn deterministic_under_seed() {
        let a = SaturationSim::run(apache_cfg(9));
        let b = SaturationSim::run(apache_cfg(9));
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.soft_fires, b.soft_fires);
    }

    use crate::arrival::{AdmissionMode, ArrivalModel, OpenLoopConfig, Scenario};
    use st_admit::LimiterKind;

    fn flash_cfg(seed: u64, admission: Option<AdmissionMode>) -> SaturationConfig {
        let scenario = Scenario::FlashCrowd {
            base_rps: 735.0,
            surge_factor: 10.0,
            surge_start: SimDuration::from_millis(500),
            surge_end: SimDuration::from_millis(1_500),
        };
        let mut c = apache_cfg(seed);
        c.arrivals = ArrivalModel::Open(OpenLoopConfig::new(scenario, admission));
        c
    }

    #[test]
    fn flash_crowd_collapses_without_admission() {
        let r = SaturationSim::run(flash_cfg(20, None));
        let o = r.overload.expect("open loop");
        // A full connection table of 1024 queued requests means every
        // completion waited far past the 100 ms SLO: goodput collapses
        // below half the server's single-server capacity and the tail
        // latency is unbounded (whole seconds).
        assert!(o.goodput < 0.5 * 774.0, "goodput {}", o.goodput);
        assert!(o.p999_us > 500_000, "p99.9 {} µs", o.p999_us);
        assert!(o.dropped > 0, "table never filled");
        assert_eq!(o.shed, 0);
    }

    #[test]
    fn soft_timer_admission_holds_goodput_through_the_surge() {
        let r = SaturationSim::run(flash_cfg(20, Some(AdmissionMode::soft(LimiterKind::Aimd))));
        let o = r.overload.expect("open loop");
        assert!(o.goodput >= 0.9 * 774.0, "goodput {}", o.goodput);
        assert!(o.p999_us < 100_000, "p99.9 {} µs", o.p999_us);
        assert!(o.shed > 0, "surge was never shed");
        // Periodic 1 kHz updates from trigger states stay well under 1 %.
        assert!(o.update_cpu_pct < 1.0, "update cpu {} %", o.update_cpu_pct);
        assert!(o.update_fires > 0);
    }

    #[test]
    fn hardware_updates_cost_more_than_soft() {
        let soft = SaturationSim::run(flash_cfg(21, Some(AdmissionMode::soft(LimiterKind::Aimd))));
        let hw = SaturationSim::run(flash_cfg(
            21,
            Some(AdmissionMode::hardware(LimiterKind::Aimd)),
        ));
        let so = soft.overload.expect("open loop");
        let ho = hw.overload.expect("open loop");
        assert!(
            so.update_cpu_pct < ho.update_cpu_pct,
            "soft {} % vs hw {} %",
            so.update_cpu_pct,
            ho.update_cpu_pct
        );
        assert!(
            ho.update_cpu_pct < 1.0,
            "hw update cpu {} %",
            ho.update_cpu_pct
        );
    }

    #[test]
    fn slowloris_exhausts_slots_without_the_reaper() {
        let scenario = Scenario::Slowloris {
            rps: 900.0,
            slow_frac: 0.5,
            pin_us: 10_000_000,
        };
        let mut none = apache_cfg(22);
        let mut open = OpenLoopConfig::new(scenario, None);
        open.max_connections = 512;
        none.arrivals = ArrivalModel::Open(open);
        let r = SaturationSim::run(none);
        let o = r.overload.expect("open loop");
        // Pinned connections are never reaped: the table fills and good
        // clients get refused at accept.
        assert_eq!(o.reaped_pins, 0);
        assert!(o.dropped > 100, "dropped {}", o.dropped);

        let mut defended = apache_cfg(22);
        let mut open = OpenLoopConfig::new(scenario, Some(AdmissionMode::soft(LimiterKind::Vegas)));
        open.max_connections = 512;
        defended.arrivals = ArrivalModel::Open(open);
        let d = SaturationSim::run(defended);
        let od = d.overload.expect("open loop");
        assert!(od.reaped_pins > 0, "reaper never ran");
        // The undefended run got ~1.1 s of service before the table
        // filled; the defended run serves the whole window (the gap
        // widens with run length — at this 2 s test length it is ~1.7x).
        assert!(
            2 * od.completed_ok > 3 * o.completed_ok,
            "defended {} vs undefended {}",
            od.completed_ok,
            o.completed_ok
        );
    }

    #[test]
    fn open_loop_replays_identically() {
        let run = || {
            let r = SaturationSim::run(flash_cfg(
                23,
                Some(AdmissionMode::soft(LimiterKind::Gradient)),
            ));
            let o = r.overload.expect("open loop");
            (
                o.offered,
                o.admitted,
                o.shed,
                o.dropped,
                o.completed_ok,
                o.completed_late,
                o.p999_us,
                o.goodput.to_bits(),
                o.limit_interactive,
            )
        };
        assert_eq!(run(), run());
    }

    fn fingerprint(r: &SaturationResult) -> Vec<u64> {
        let o = r.overload.as_ref().expect("open loop");
        vec![
            r.requests,
            r.throughput.to_bits(),
            r.trigger_mean_us.to_bits(),
            r.soft_fires,
            r.soft_fire_interval_us.to_bits(),
            o.offered,
            o.admitted,
            o.shed,
            o.completed_ok,
            o.completed_late,
            o.p50_us,
            o.p99_us,
            o.goodput.to_bits(),
            o.limit_interactive,
            o.limit_bulk,
        ]
    }

    #[test]
    fn scope_session_leaves_the_modeled_run_byte_identical() {
        let cfg = || flash_cfg(29, Some(AdmissionMode::soft(LimiterKind::Aimd)));
        let bare = SaturationSim::run(cfg());
        let (observed, report) = {
            let s = st_scope::ScopeSession::start(st_scope::ScopeConfig::default());
            let r = SaturationSim::run(cfg());
            (r, s.finish())
        };
        assert_eq!(fingerprint(&bare), fingerprint(&observed));
        // The observation was real, not a no-op that trivially matched:
        // gauges flowed into the timeline and every fire was attributed.
        assert!(report.timeline.samples() > 1_000, "1 kHz over 2 s");
        assert!(report.timeline.get("http.conns").is_some());
        assert!(report.waterfall.fires() > 0);
        assert_eq!(report.waterfall.fires(), observed.facility_fires);
    }

    #[test]
    fn delay_attribution_reconciles_exactly_with_the_facility() {
        let s = st_scope::ScopeSession::start(st_scope::ScopeConfig::default());
        let mut cfg = flash_cfg(31, Some(AdmissionMode::soft(LimiterKind::Aimd)));
        cfg.scope_sampling = ScopeSampling::Soft { freq_hz: 1_000 };
        let r = SaturationSim::run(cfg);
        let report = s.finish();
        // Integer-exact reconciliation: every fire landed on some lane,
        // and the per-lane (wait + cascade) sums rebuild the facility's
        // own delay total with no rounding slack.
        assert_eq!(report.waterfall.fires(), r.facility_fires);
        assert_eq!(report.waterfall.delay_sum(), r.facility_delay_ticks);
        // Under a flash crowd both components are genuinely present.
        assert!(report.waterfall.trigger_wait_sum() > 0, "no trigger-wait");
        assert!(report.waterfall.cascade_sum() > 0, "no cascade");
        // The backup lane exists (some fires always need the sweep) next
        // to trigger-source lanes.
        assert!(report.waterfall.lane("backup").is_some());
        assert!(report.waterfall.lanes().count() >= 2);
    }

    #[test]
    fn soft_timeline_sampling_is_far_cheaper_than_hardware() {
        let run = |sampling| {
            let mut cfg = flash_cfg(33, Some(AdmissionMode::soft(LimiterKind::Aimd)));
            cfg.scope_sampling = sampling;
            SaturationSim::run(cfg)
        };
        let soft = run(ScopeSampling::Soft { freq_hz: 1_000 });
        let hw = run(ScopeSampling::Hardware { freq_hz: 1_000 });
        // Both achieve the target rate (2 s at 1 kHz, grid-aligned).
        assert!(soft.scope_fires > 1_900, "soft fired {}", soft.scope_fires);
        assert!(hw.scope_fires > 1_900, "hw fired {}", hw.scope_fires);
        // The soft sampler rides trigger states (dispatch + sample body);
        // the hardware sampler pays a full interrupt per sample — an
        // order of magnitude more CPU for the same telemetry.
        assert!(soft.scope_cpu_pct > 0.0);
        assert!(
            hw.scope_cpu_pct > 5.0 * soft.scope_cpu_pct,
            "hw {} % vs soft {} %",
            hw.scope_cpu_pct,
            soft.scope_cpu_pct
        );
        assert!(soft.scope_cpu_pct < 0.1, "soft sampling must stay cheap");
    }
}
