//! Web-server workload models and the saturated-server simulation.
//!
//! The paper's Figures 2-3 and Tables 3 and 8 all measure a *saturated*
//! web server's throughput while varying the timer/polling machinery
//! around it. This crate models the two servers (multi-process Apache,
//! event-driven Flash) as per-request CPU work schedules with per-source
//! trigger states, and runs them on the simulated kernel:
//!
//! - [`model`] — server models: event counts and CPU costs per request,
//!   calibrated to the paper's measured baseline throughputs; HTTP and
//!   persistent-HTTP (P-HTTP) variants.
//! - [`saturation`] — the discrete-event saturation harness: one CPU,
//!   interrupts preempt request work, trigger states fire soft timers.
//!   Options cover every §5 server experiment: an added hardware timer at
//!   a chosen frequency (Figures 2-3), a maximal-rate null soft event
//!   (§5.2), rate-based clocking via soft or hardware timers (Table 3),
//!   and the four packet-dispatch policies with aggregation quotas
//!   (Table 8).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrival;
pub mod livelock;
pub mod model;
pub mod saturation;

pub use arrival::{
    AdmissionMode, Arrival, ArrivalModel, ArrivalProcess, ClosedLoop, OpenLoop, OpenLoopConfig,
    Scenario, UpdateDriver,
};
pub use livelock::{run_livelock, LivelockConfig, LivelockResult};
pub use model::{HttpMode, ServerKind, ServerModel};
pub use saturation::{
    OverloadStats, RateClocking, SaturationConfig, SaturationResult, SaturationSim, ScopeSampling,
    TimerLoad,
};
