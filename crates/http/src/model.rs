//! Server models: per-request event counts and CPU costs.
//!
//! A request is modeled as a linear schedule of CPU work items, each
//! ending in a trigger state of a given source — the syscalls the server
//! makes, the packets it transmits (ip-output), the packets it receives
//! (ip-intr, arriving as NIC interrupts or found by polls), TCP timer
//! work (tcpip-others) and page faults (traps). The *counts* follow the
//! protocol (a 6 KB HTTP response is 4-5 data frames; a handshake is two
//! more rx/tx; P-HTTP skips the handshake) and their mix reproduces
//! Table 2; the residual user/kernel work is solved so that the base
//! (interrupt-driven, no extra timers) throughput matches the paper's
//! measured baseline for that server and machine.

use st_kernel::costs::CostModel;
use st_kernel::trigger::TriggerSource;
use st_sim::dist::{LogNormal, SampleDist};
use st_sim::{SimDuration, SimRng};

/// Which server program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServerKind {
    /// Apache 1.3.3: one process per connection, frequent context
    /// switches, relatively poor locality.
    Apache,
    /// Flash: single-process event-driven, good locality — and therefore
    /// *more* sensitive to cache pollution from interrupts (Table 3).
    Flash,
}

/// Connection handling mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HttpMode {
    /// One TCP connection per request (connection setup each time).
    Http,
    /// Persistent connections: the handshake amortizes away (Table 8's
    /// P-HTTP rows).
    PHttp,
}

/// A per-request server model.
#[derive(Debug, Clone)]
pub struct ServerModel {
    /// Which server.
    pub kind: ServerKind,
    /// Connection mode.
    pub mode: HttpMode,
    /// Syscall-bounded work items per request.
    pub syscalls: u32,
    /// Frames transmitted per request (data + control).
    pub tx_packets: u32,
    /// Frames received per request (request + ACKs + control).
    pub rx_packets: u32,
    /// TCP-timer / other network loop items.
    pub tcpip_others: u32,
    /// Page faults / traps per request.
    pub traps: u32,
    /// Process context switches per request (Apache's fork-pool model).
    pub context_switches: u32,
    /// CPU cost of the ip-output path per transmitted frame.
    pub tx_cost: SimDuration,
    /// Protocol (IP+TCP input) cost per received frame, excluding the
    /// interrupt/poll dispatch overhead.
    pub rx_protocol_cost: SimDuration,
    /// Per-frame driver cost when received via polling (ring handling
    /// without interrupt entry/exit or its pollution).
    pub rx_poll_driver_cost: SimDuration,
    /// Cost of reaping one transmit-completion descriptor (freeing the
    /// frame buffer), charged inside the interrupt or poll that finds it.
    pub tx_reap_cost: SimDuration,
    /// Residual user+kernel work per request, spread over the syscall
    /// items (solved from the baseline throughput).
    pub app_work: SimDuration,
    /// Extra cache pollution per *hardware timer* interrupt whose handler
    /// does real work (Table 3: ~1.2 µs Apache, ~2.8 µs Flash).
    pub hw_handler_pollution: SimDuration,
    /// Extra cache pollution the server suffers per *NIC* interrupt
    /// (beyond the machine's base interrupt cost). Flash's tight working
    /// set makes this larger — the paper's explanation for why polling
    /// helps Flash more (§5.9).
    pub nic_intr_pollution: SimDuration,
    /// Cost of one soft-timer handler dispatch doing real work on this
    /// server (procedure call + its locality effect; Table 3's 2 % vs
    /// 6 % overheads).
    pub soft_handler_cost: SimDuration,
}

impl ServerModel {
    /// Builds a model for `kind`/`mode` on `machine`, solving
    /// `app_work` so the baseline (interrupt-driven) request cost equals
    /// `1 / base_throughput`.
    ///
    /// # Panics
    ///
    /// Panics when the target throughput is not achievable (fixed
    /// per-request costs alone already exceed the budget).
    pub fn calibrated(
        kind: ServerKind,
        mode: HttpMode,
        machine: &CostModel,
        base_throughput: f64,
    ) -> Self {
        assert!(base_throughput > 0.0, "throughput must be positive");
        let mut m = ServerModel::skeleton(kind, mode, machine);
        let budget = SimDuration::from_nanos((1e9 / base_throughput).round() as u64);
        let fixed = m.fixed_cost_interrupt_mode(machine);
        assert!(
            budget > fixed,
            "base throughput {base_throughput}/s impossible: fixed costs {fixed} exceed budget {budget}"
        );
        m.app_work = budget - fixed;
        m
    }

    /// Event counts and path costs with `app_work` still zero — feed to
    /// [`crate::saturation::SaturationSim::calibrate_app_work`] for
    /// simulation-accurate calibration (which accounts for interrupt
    /// coalescing that the closed form in [`ServerModel::calibrated`]
    /// cannot).
    pub fn uncalibrated(kind: ServerKind, mode: HttpMode, machine: &CostModel) -> Self {
        ServerModel::skeleton(kind, mode, machine)
    }

    /// Event counts and path costs before calibration.
    fn skeleton(kind: ServerKind, mode: HttpMode, machine: &CostModel) -> Self {
        // A 6 KB response is 5 x 1448 B segments (incl. headers). With
        // HTTP add SYN/SYN-ACK/FIN exchanges; ACKs from the client arrive
        // every other frame.
        let (tx, rx) = match mode {
            HttpMode::Http => (9, 6),
            // Pipelined persistent connections: no handshake frames and
            // fewer client ACKs per response.
            HttpMode::PHttp => (5, 3),
        };
        let (syscalls, traps, ctx) = match (kind, mode) {
            // Apache: accept/read/stat/open/read/writev/log/close + more.
            (ServerKind::Apache, HttpMode::Http) => (17, 1, 4),
            (ServerKind::Apache, HttpMode::PHttp) => (12, 1, 3),
            // Flash: event-driven, fewer syscalls, no per-request
            // switches, no page faults in steady state.
            (ServerKind::Flash, HttpMode::Http) => (12, 0, 0),
            (ServerKind::Flash, HttpMode::PHttp) => (8, 0, 0),
        };
        let (hw_pollution, soft_cost, nic_pollution) = match kind {
            ServerKind::Apache => (
                SimDuration::from_nanos(1_200),
                SimDuration::from_nanos(700),
                SimDuration::from_nanos(2_000),
            ),
            // Flash's tight locality makes pollution relatively costlier
            // (Table 3: 36-22=14 % extra vs Apache's 28-22=6 %).
            ServerKind::Flash => (
                SimDuration::from_nanos(2_800),
                SimDuration::from_nanos(1_350),
                SimDuration::from_nanos(3_500),
            ),
        };
        ServerModel {
            kind,
            mode,
            syscalls,
            tx_packets: tx,
            rx_packets: rx,
            tcpip_others: 2,
            traps,
            context_switches: ctx,
            tx_cost: machine.scale_compute(SimDuration::from_nanos(15_000)),
            rx_protocol_cost: machine.scale_compute(SimDuration::from_nanos(13_000)),
            rx_poll_driver_cost: machine.scale_compute(SimDuration::from_nanos(2_500)),
            tx_reap_cost: machine.scale_compute(SimDuration::from_nanos(300)),
            app_work: SimDuration::ZERO,
            hw_handler_pollution: hw_pollution,
            soft_handler_cost: soft_cost,
            nic_intr_pollution: nic_pollution,
        }
    }

    /// Per-request cost that does not depend on `app_work`, in the
    /// baseline interrupt-driven configuration.
    pub fn fixed_cost_interrupt_mode(&self, machine: &CostModel) -> SimDuration {
        self.tx_cost * self.tx_packets as u64
            + (machine.nic_interrupt + self.nic_intr_pollution + self.rx_protocol_cost)
                * self.rx_packets as u64
            + (machine.nic_interrupt + self.nic_intr_pollution + self.tx_reap_cost)
                * self.tx_packets as u64
            + machine.scale_compute(SimDuration::from_nanos(4_000)) * self.tcpip_others as u64
            + machine.scale_compute(SimDuration::from_nanos(5_000)) * self.traps as u64
            + machine.context_switch * self.context_switches as u64
            + machine.syscall_entry_exit * self.syscalls as u64
    }

    /// Total trigger states per request (all sources).
    pub fn triggers_per_request(&self) -> u32 {
        self.syscalls + self.tx_packets + self.rx_packets + self.tcpip_others + self.traps
    }

    /// Expands one request into its work schedule: `(cost, source)` items
    /// in an interleaved order, with `app_work` spread log-normally over
    /// the syscall items (matching the skew of the measured trigger
    /// intervals).
    pub fn request_schedule(
        &self,
        machine: &CostModel,
        rng: &mut SimRng,
    ) -> Vec<(SimDuration, TriggerSource)> {
        self.request_schedule_scaled(machine, rng, 1.0)
    }

    /// Scaled frame count for a response `size_scale` times the base
    /// document (at least one frame).
    pub fn scaled_tx_packets(&self, size_scale: f64) -> u32 {
        ((self.tx_packets as f64) * size_scale).round().max(1.0) as u32
    }

    /// Scaled received-frame count (client ACKs track the data frames).
    pub fn scaled_rx_packets(&self, size_scale: f64) -> u32 {
        ((self.rx_packets as f64) * size_scale).round().max(1.0) as u32
    }

    /// [`ServerModel::request_schedule`] for a response `size_scale`
    /// times the base document: application work and transmitted frames
    /// scale, the syscall/trap structure does not (a larger file is more
    /// `writev` payload and more segments, not more opens). At scale 1.0
    /// the RNG draw sequence and output are identical to the unscaled
    /// schedule, which keeps closed-loop runs byte-stable.
    pub fn request_schedule_scaled(
        &self,
        machine: &CostModel,
        rng: &mut SimRng,
        size_scale: f64,
    ) -> Vec<(SimDuration, TriggerSource)> {
        let tx_packets = self.scaled_tx_packets(size_scale);
        let mut items: Vec<(SimDuration, TriggerSource)> = Vec::with_capacity(
            self.triggers_per_request() as usize + self.context_switches as usize,
        );
        // Draw relative weights for the syscall work items.
        let shape = LogNormal::with_median(1.0, 0.8);
        let weights: Vec<f64> = (0..self.syscalls).map(|_| shape.sample(rng)).collect();
        let total_w: f64 = weights.iter().sum();
        let app_ns = self.app_work.as_nanos() as f64 * size_scale;
        for w in &weights {
            let ns = (app_ns * w / total_w.max(1e-9)).round() as u64;
            items.push((
                SimDuration::from_nanos(ns) + machine.syscall_entry_exit,
                TriggerSource::Syscall,
            ));
        }
        for _ in 0..tx_packets {
            items.push((self.tx_cost, TriggerSource::IpOutput));
        }
        for _ in 0..self.tcpip_others {
            items.push((
                machine.scale_compute(SimDuration::from_nanos(4_000)),
                TriggerSource::TcpipOther,
            ));
        }
        for _ in 0..self.traps {
            items.push((
                machine.scale_compute(SimDuration::from_nanos(5_000)),
                TriggerSource::Trap,
            ));
        }
        // Interleave deterministically-pseudorandomly: shuffle by rng.
        for i in (1..items.len()).rev() {
            let j = rng.index(i + 1);
            items.swap(i, j);
        }
        items
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> CostModel {
        CostModel::pentium_ii_300()
    }

    #[test]
    fn calibration_hits_base_throughput() {
        let m = ServerModel::calibrated(ServerKind::Apache, HttpMode::Http, &machine(), 774.0);
        let total = m.app_work + m.fixed_cost_interrupt_mode(&machine());
        let tput = 1e9 / total.as_nanos() as f64;
        assert!((tput - 774.0).abs() < 1.0, "calibrated tput {tput}");
    }

    #[test]
    fn trigger_mean_is_tens_of_microseconds() {
        // Apache at 774 conn/s with ~35 triggers per request gives a mean
        // trigger interval in the right range (Table 1: 31.5 µs).
        let m = ServerModel::calibrated(ServerKind::Apache, HttpMode::Http, &machine(), 774.0);
        let per_req_us = 1e6 / 774.0;
        let mean = per_req_us / m.triggers_per_request() as f64;
        assert!((25.0..45.0).contains(&mean), "mean trigger interval {mean}");
    }

    #[test]
    fn schedule_costs_sum_to_budget() {
        let m = ServerModel::calibrated(ServerKind::Flash, HttpMode::Http, &machine(), 1303.0);
        let mut rng = SimRng::seed(3);
        let sched = m.request_schedule(&machine(), &mut rng);
        let sum: u64 = sched.iter().map(|&(c, _)| c.as_nanos()).sum();
        // The schedule omits rx packets (they arrive as interrupts or
        // polls) and context switches (charged by the scheduler); what it
        // does contain must at least cover the app work plus the syscall
        // and tx path costs (rounding can only trim sub-microsecond
        // amounts per item).
        let mach = machine();
        let lower = m.app_work.as_nanos()
            + mach.syscall_entry_exit.as_nanos() * m.syscalls as u64
            + m.tx_cost.as_nanos() * m.tx_packets as u64;
        assert!(
            sum + m.syscalls as u64 >= lower,
            "sum {sum} below lower bound {lower}"
        );
        // Every source appears.
        let has = |s| sched.iter().any(|&(_, src)| src == s);
        assert!(has(TriggerSource::Syscall));
        assert!(has(TriggerSource::IpOutput));
        assert!(has(TriggerSource::TcpipOther));
    }

    #[test]
    fn scaled_schedule_at_unity_matches_unscaled() {
        let m = ServerModel::calibrated(ServerKind::Apache, HttpMode::Http, &machine(), 774.0);
        let mut a = SimRng::seed(7);
        let mut b = SimRng::seed(7);
        let plain = m.request_schedule(&machine(), &mut a);
        let scaled = m.request_schedule_scaled(&machine(), &mut b, 1.0);
        assert_eq!(plain, scaled);
        assert_eq!(a.next_u64(), b.next_u64(), "RNG streams diverged");
    }

    #[test]
    fn scaled_schedule_grows_tx_and_app_work() {
        let m = ServerModel::calibrated(ServerKind::Apache, HttpMode::Http, &machine(), 774.0);
        assert_eq!(m.scaled_tx_packets(4.0), 4 * m.tx_packets);
        assert_eq!(m.scaled_rx_packets(1.0), m.rx_packets);
        assert_eq!(m.scaled_tx_packets(0.01), 1, "at least one frame");
        let mut rng = SimRng::seed(9);
        let big = m.request_schedule_scaled(&machine(), &mut rng, 4.0);
        let mut rng = SimRng::seed(9);
        let base = m.request_schedule(&machine(), &mut rng);
        let sum = |s: &[(SimDuration, TriggerSource)]| -> u64 {
            s.iter().map(|&(c, _)| c.as_nanos()).sum()
        };
        assert!(sum(&big) > 3 * sum(&base), "scaled schedule too cheap");
    }

    #[test]
    fn phttp_needs_less_work_than_http() {
        let mach = machine();
        let http = ServerModel::skeleton(ServerKind::Flash, HttpMode::Http, &mach);
        let phttp = ServerModel::skeleton(ServerKind::Flash, HttpMode::PHttp, &mach);
        assert!(phttp.fixed_cost_interrupt_mode(&mach) < http.fixed_cost_interrupt_mode(&mach));
        assert!(phttp.rx_packets < http.rx_packets);
    }

    #[test]
    #[should_panic(expected = "impossible")]
    fn impossible_calibration_panics() {
        let _ = ServerModel::calibrated(ServerKind::Apache, HttpMode::Http, &machine(), 1e9);
    }

    #[test]
    fn flash_is_more_pollution_sensitive() {
        let mach = machine();
        let a = ServerModel::skeleton(ServerKind::Apache, HttpMode::Http, &mach);
        let f = ServerKind::Flash;
        let f = ServerModel::skeleton(f, HttpMode::Http, &mach);
        assert!(f.hw_handler_pollution > a.hw_handler_pollution);
        assert!(f.soft_handler_cost > a.soft_handler_cost);
    }
}
