//! Per-source fire-delay attribution: the waterfall half of `st-scope`.
//!
//! The facility records *how late* each soft-timer event fired
//! (`FacilityStats`' delay summary); the waterfall records *why*.  Each
//! fire's lateness — `fired_at - due`, in measurement ticks, exactly the
//! quantity the facility recorded — is split into two components:
//!
//! - **trigger-wait**: ticks spent waiting for the kernel to reach a
//!   trigger state, the paper's Fig 4 story — lateness inherited from
//!   the trigger-interval distribution;
//! - **cascade**: ticks during which the CPU was already executing
//!   timed-work overhead (soft-timer handler dispatch, interrupt
//!   handling, poll work) — lateness caused by *other* timed work
//!   serializing ahead of this event's trigger state.
//!
//! The split is integer-exact by construction: `trigger_wait + cascade
//! == fired_at - due` for every fire, so per-lane sums reconcile against
//! the facility's own recorded delay totals with no float in between.
//! Lanes are keyed by the trigger source that fired the event (or the
//! 1 kHz backup sweep), matching the per-source trigger accounting.

use std::collections::BTreeMap;

use st_stats::Histogram;

/// Geometry shared with `FacilityStats`' delay histogram: 1-tick
/// buckets, overflow past 2048 ticks (2x the backup bound).
const DELAY_BUCKETS: usize = 2048;

/// Attribution for one fire lane (one trigger source, or the backup
/// sweep).
#[derive(Debug)]
pub struct Lane {
    fires: u64,
    trigger_wait_sum: u64,
    cascade_sum: u64,
    trigger_wait: Histogram,
    cascade: Histogram,
}

impl Lane {
    fn new() -> Lane {
        Lane {
            fires: 0,
            trigger_wait_sum: 0,
            cascade_sum: 0,
            trigger_wait: Histogram::new(1.0, DELAY_BUCKETS),
            cascade: Histogram::new(1.0, DELAY_BUCKETS),
        }
    }

    /// Fires recorded on this lane.
    pub fn fires(&self) -> u64 {
        self.fires
    }

    /// Exact sum of trigger-wait ticks.
    pub fn trigger_wait_sum(&self) -> u64 {
        self.trigger_wait_sum
    }

    /// Exact sum of cascade ticks.
    pub fn cascade_sum(&self) -> u64 {
        self.cascade_sum
    }

    /// Exact sum of recorded lateness: trigger-wait plus cascade.
    pub fn delay_sum(&self) -> u64 {
        self.trigger_wait_sum + self.cascade_sum
    }

    /// Distribution of the trigger-wait component, 1-tick buckets.
    pub fn trigger_wait_hist(&self) -> &Histogram {
        &self.trigger_wait
    }

    /// Distribution of the cascade component, 1-tick buckets.
    pub fn cascade_hist(&self) -> &Histogram {
        &self.cascade
    }
}

/// All lanes of the fire-delay attribution.
#[derive(Debug, Default)]
pub struct Waterfall {
    lanes: BTreeMap<&'static str, Lane>,
}

impl Waterfall {
    /// An empty waterfall.
    pub fn new() -> Waterfall {
        Waterfall::default()
    }

    /// Records one fire on `lane`, already decomposed.
    pub fn record(&mut self, lane: &'static str, trigger_wait: u64, cascade: u64) {
        let l = self.lanes.entry(lane).or_insert_with(Lane::new);
        l.fires += 1;
        l.trigger_wait_sum += trigger_wait;
        l.cascade_sum += cascade;
        l.trigger_wait.record(trigger_wait as f64);
        l.cascade.record(cascade as f64);
    }

    /// Lanes in name order.
    pub fn lanes(&self) -> impl Iterator<Item = (&'static str, &Lane)> {
        self.lanes.iter().map(|(k, v)| (*k, v))
    }

    /// Looks up one lane.
    pub fn lane(&self, name: &str) -> Option<&Lane> {
        self.lanes.get(name)
    }

    /// Total fires across lanes.
    pub fn fires(&self) -> u64 {
        self.lanes.values().map(Lane::fires).sum()
    }

    /// Exact total recorded lateness across lanes, in ticks — the number
    /// that must equal the facility's delay sum when every fire was
    /// attributed.
    pub fn delay_sum(&self) -> u64 {
        self.lanes.values().map(Lane::delay_sum).sum()
    }

    /// Exact total cascade ticks across lanes.
    pub fn cascade_sum(&self) -> u64 {
        self.lanes.values().map(Lane::cascade_sum).sum()
    }

    /// Exact total trigger-wait ticks across lanes.
    pub fn trigger_wait_sum(&self) -> u64 {
        self.lanes.values().map(Lane::trigger_wait_sum).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_partition_exactly() {
        let mut w = Waterfall::new();
        w.record("ip_output", 10, 2);
        w.record("ip_output", 0, 0);
        w.record("backup", 900, 101);
        assert_eq!(w.fires(), 3);
        assert_eq!(w.trigger_wait_sum(), 910);
        assert_eq!(w.cascade_sum(), 103);
        assert_eq!(w.delay_sum(), 1_013);
        let lane = w.lane("ip_output").unwrap();
        assert_eq!(lane.fires(), 2);
        assert_eq!(lane.delay_sum(), 12);
        assert_eq!(lane.trigger_wait_hist().count(), 2);
    }

    #[test]
    fn lanes_iterate_in_name_order() {
        let mut w = Waterfall::new();
        w.record("zz", 1, 0);
        w.record("aa", 1, 0);
        let names: Vec<_> = w.lanes().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["aa", "zz"]);
    }
}
