//! The thread-local scope session and the sealed emit-side API.
//!
//! Mirrors `st-trace`'s tracer: instrumentation sites call the free
//! functions [`gauge`], [`observe`], [`sample`] and [`fire_delay`];
//! with no active session each is a sealed no-op — one thread-local
//! load and a branch, no locks, no allocation — so the telemetry layer
//! costs nothing when disabled.  A [`ScopeSession`] installs recording
//! state for its thread only; [`suspend`]/[`resume`] nest sessions the
//! same way self-measuring experiments nest trace recordings.

use std::cell::RefCell;

use crate::timeline::Timeline;
use crate::waterfall::Waterfall;

/// Configuration for a [`ScopeSession`].
#[derive(Debug, Clone, Copy)]
pub struct ScopeConfig {
    /// Maximum points retained per series; older points are evicted
    /// (and counted as dropped) beyond this.
    pub series_capacity: usize,
}

impl Default for ScopeConfig {
    fn default() -> Self {
        ScopeConfig {
            series_capacity: 1 << 12,
        }
    }
}

#[derive(Debug)]
struct Inner {
    timeline: Timeline,
    waterfall: Waterfall,
}

thread_local! {
    // st-lint: allow(shared-state) -- owner: each thread owns its private
    // scope session; thread_local is the per-CPU pattern the SMP roadmap
    // item calls for, never cross-thread
    static SCOPE: RefCell<Option<Inner>> = const { RefCell::new(None) };
}

/// Everything one session captured.
#[derive(Debug)]
pub struct ScopeReport {
    /// The time-series half.
    pub timeline: Timeline,
    /// The fire-delay attribution half.
    pub waterfall: Waterfall,
}

/// An active scope recording on the current thread.
#[derive(Debug)]
pub struct ScopeSession {
    finished: bool,
    // !Send: the session must be finished on the thread that started it.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl ScopeSession {
    /// Starts recording on the current thread.
    ///
    /// # Panics
    ///
    /// Panics if a session is already active on this thread; use
    /// [`suspend`]/[`resume`] to nest recordings.
    pub fn start(config: ScopeConfig) -> ScopeSession {
        SCOPE.with(|t| {
            let mut slot = t.borrow_mut();
            assert!(
                slot.is_none(),
                "a ScopeSession is already active on this thread"
            );
            *slot = Some(Inner {
                timeline: Timeline::new(config.series_capacity),
                waterfall: Waterfall::new(),
            });
        });
        ScopeSession {
            finished: false,
            _not_send: std::marker::PhantomData,
        }
    }

    /// Stops recording and returns everything captured.
    pub fn finish(mut self) -> ScopeReport {
        self.finished = true;
        SCOPE.with(|t| {
            let inner = t
                .borrow_mut()
                .take()
                .expect("session state missing at finish");
            ScopeReport {
                timeline: inner.timeline,
                waterfall: inner.waterfall,
            }
        })
    }
}

impl Drop for ScopeSession {
    fn drop(&mut self) {
        if !self.finished {
            SCOPE.with(|t| {
                t.borrow_mut().take();
            });
        }
    }
}

/// A recording lifted off the current thread by [`suspend`].
#[derive(Debug, Default)]
pub struct Suspended(Option<Inner>);

/// Detaches any active recording from the current thread.
pub fn suspend() -> Suspended {
    SCOPE.with(|t| Suspended(t.borrow_mut().take()))
}

/// Re-attaches a recording previously lifted by [`suspend`].
///
/// # Panics
///
/// Panics if another session became active in the meantime and `s`
/// carries a recording (nothing would be lost silently).
pub fn resume(s: Suspended) {
    if let Suspended(Some(inner)) = s {
        SCOPE.with(|t| {
            let mut slot = t.borrow_mut();
            assert!(slot.is_none(), "cannot resume over an active ScopeSession");
            *slot = Some(inner);
        });
    }
}

/// True when a session is recording on the current thread.
///
/// Worlds may check this once at construction to skip attribution
/// bookkeeping entirely when nobody is watching.
pub fn active() -> bool {
    SCOPE.with(|t| t.borrow().is_some())
}

/// Appends a gauge point (no-op without an active session).
// st-lint: hot-path
pub fn gauge(tick: u64, name: &'static str, value: f64) {
    SCOPE.with(|t| {
        if let Some(inner) = t.borrow_mut().as_mut() {
            inner.timeline.gauge(tick, name, value);
        }
    });
}

/// Records a windowed observation (no-op without an active session).
// st-lint: hot-path
pub fn observe(name: &'static str, value: f64) {
    SCOPE.with(|t| {
        if let Some(inner) = t.borrow_mut().as_mut() {
            inner.timeline.observe(name, value);
        }
    });
}

/// One sample tick: flushes counter deltas from the live st-trace
/// registry plus every observation window's quantiles (no-op without an
/// active session).
pub fn sample(tick: u64) {
    SCOPE.with(|t| {
        if let Some(inner) = t.borrow_mut().as_mut() {
            let counters = st_trace::counters_snapshot();
            inner.timeline.sample(tick, &counters);
        }
    });
}

/// Records one fire's decomposed lateness on `lane` (no-op without an
/// active session).
// st-lint: hot-path
pub fn fire_delay(lane: &'static str, trigger_wait: u64, cascade: u64) {
    SCOPE.with(|t| {
        if let Some(inner) = t.borrow_mut().as_mut() {
            inner.waterfall.record(lane, trigger_wait, cascade);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_session_means_sealed_noop() {
        assert!(!active());
        gauge(1, "ignored", 1.0);
        observe("ignored", 2.0);
        sample(3);
        fire_delay("ignored", 4, 5);
        let s = ScopeSession::start(ScopeConfig::default());
        let r = s.finish();
        assert_eq!(r.timeline.series_count(), 0);
        assert_eq!(r.waterfall.fires(), 0);
    }

    #[test]
    fn session_captures_all_three_streams() {
        let s = ScopeSession::start(ScopeConfig::default());
        assert!(active());
        gauge(10, "http.conns", 42.0);
        observe("http.latency_us", 900.0);
        sample(1_000);
        fire_delay("ip_output", 12, 3);
        let r = s.finish();
        assert!(!active());
        assert_eq!(r.timeline.get("http.conns").unwrap().len(), 1);
        assert_eq!(r.timeline.samples(), 1);
        assert!(r.timeline.get("http.latency_us.p99").is_some());
        assert_eq!(r.waterfall.delay_sum(), 15);
    }

    #[test]
    fn sample_pulls_counter_deltas_from_the_trace_registry() {
        let trace = st_trace::TraceSession::start(st_trace::TraceConfig::default());
        let s = ScopeSession::start(ScopeConfig::default());
        st_trace::count("facility.fired.trigger", 4);
        sample(100);
        st_trace::count("facility.fired.trigger", 3);
        sample(200);
        let r = s.finish();
        drop(trace.finish());
        let pts: Vec<_> = r
            .timeline
            .get("facility.fired.trigger")
            .unwrap()
            .points()
            .collect();
        assert_eq!(pts, vec![(100, 4.0), (200, 3.0)]);
    }

    #[test]
    fn suspend_and_resume_nest_sessions() {
        let outer = ScopeSession::start(ScopeConfig::default());
        gauge(1, "outer", 1.0);
        let held = suspend();
        assert!(!active());
        {
            let inner = ScopeSession::start(ScopeConfig::default());
            gauge(2, "inner", 2.0);
            let r = inner.finish();
            assert!(r.timeline.get("outer").is_none());
            assert!(r.timeline.get("inner").is_some());
        }
        resume(held);
        let r = outer.finish();
        assert!(r.timeline.get("inner").is_none());
        assert!(r.timeline.get("outer").is_some());
    }

    #[test]
    #[should_panic(expected = "already active")]
    fn nested_start_panics() {
        let _outer = ScopeSession::start(ScopeConfig::default());
        let _inner = ScopeSession::start(ScopeConfig::default());
    }
}
