//! `st-scope`: soft-timer-driven time-series telemetry and fire-delay
//! attribution.
//!
//! The paper's evidence is distributional *and temporal* — trigger
//! intervals (Fig 1), fire-delay CDFs (Fig 4) — but end-of-run
//! aggregates flatten the story: a flash crowd's collapse-and-recovery
//! trajectory, or the moment an admission limit dips, is invisible in a
//! run total.  This crate is the fifth soft-timer application in the
//! repository: observability whose own flush cadence is a periodic
//! soft-timer event, riding trigger states like the pacer, the poller,
//! the profiler and the admission controller before it.
//!
//! Two halves:
//!
//! - [`Timeline`] — fixed-capacity ring-buffered series (gauges,
//!   st-trace counter deltas, windowed quantile snapshots) flushed by
//!   [`sample`] from a periodic soft-timer event.  The sampling cost is
//!   a first-class `CostModel` entry (`scope_sample`) so simulations
//!   charge for it honestly, and the `timeline_overhead` measurement
//!   contrasts it with an equivalent 1 kHz hardware-timer sampler —
//!   the paper's Fig 2/3 argument applied to telemetry itself.
//! - [`Waterfall`] — per-source fire-delay attribution.  Each fire's
//!   lateness is decomposed, integer-exactly, into **trigger-wait**
//!   (ticks spent waiting for the kernel to reach a trigger state) and
//!   **cascade** (ticks covered by other timed work executing — handler
//!   dispatch, interrupts, polls — as measured by an [`ExecLedger`]).
//!   Per-lane sums reconcile exactly against `FacilityStats`' recorded
//!   delay totals.
//!
//! Like `st-trace`, the emit side ([`gauge`], [`observe`], [`sample`],
//! [`fire_delay`]) is a sealed no-op without an active [`ScopeSession`]
//! on the current thread: one thread-local load and a branch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod ledger;
pub mod session;
pub mod timeline;
pub mod waterfall;

pub use export::{to_jsonl, SCHEMA};
pub use ledger::ExecLedger;
pub use session::{
    active, fire_delay, gauge, observe, resume, sample, suspend, ScopeConfig, ScopeReport,
    ScopeSession, Suspended,
};
pub use timeline::{Series, SeriesKind, Timeline};
pub use waterfall::{Lane, Waterfall};
