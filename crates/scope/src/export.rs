//! JSONL export of a [`ScopeReport`], validated by st-trace's JSON
//! machinery.
//!
//! One line per object, schema `st-scope-timeline-v1`:
//!
//! - a header: `{"type":"timeline","schema":...,"series":N,
//!   "samples":K,"lanes":L,"points_dropped":D}`;
//! - one line per series: `{"type":"series","name":...,"kind":
//!   "gauge"|"counter_delta"|"quantile","dropped":D,
//!   "points":[[tick,value],...]}`;
//! - one line per waterfall lane: `{"type":"waterfall","lane":...,
//!   "fires":N,"trigger_wait_ticks":S,"cascade_ticks":S,
//!   "wait_p50":...,"wait_p99":...,"cascade_p99":...}`.
//!
//! Every line is built by [`st_trace::json::ObjectBuilder`] and passed
//! through [`st_trace::json::validate`] before it is returned, so a
//! malformed export fails at the writer, never at a reader.

use st_trace::json::{number, validate, ObjectBuilder};

use crate::session::ScopeReport;

/// Schema tag carried in the header line.
pub const SCHEMA: &str = "st-scope-timeline-v1";

fn points_json(points: impl Iterator<Item = (u64, f64)>) -> String {
    let mut out = String::from("[");
    for (i, (tick, value)) in points.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        out.push_str(&tick.to_string());
        out.push(',');
        out.push_str(&number(value));
        out.push(']');
    }
    out.push(']');
    out
}

fn quantile_or_zero(h: &st_stats::Histogram, q: f64) -> f64 {
    h.quantile(q).unwrap_or(0.0)
}

/// Renders the report as validated JSON lines.
///
/// # Panics
///
/// Panics if a rendered line fails validation — that is a bug in the
/// writer, not a data error.
pub fn to_jsonl(report: &ScopeReport) -> Vec<String> {
    let mut lines = Vec::new();
    let dropped: u64 = report.timeline.series().map(|(_, s)| s.dropped()).sum();
    lines.push(
        ObjectBuilder::new()
            .str("type", "timeline")
            .str("schema", SCHEMA)
            .u64("series", report.timeline.series_count() as u64)
            .u64("samples", report.timeline.samples())
            .u64("lanes", report.waterfall.lanes().count() as u64)
            .u64("points_dropped", dropped)
            .build(),
    );
    for (name, series) in report.timeline.series() {
        lines.push(
            ObjectBuilder::new()
                .str("type", "series")
                .str("name", name)
                .str("kind", series.kind().label())
                .u64("dropped", series.dropped())
                .raw("points", &points_json(series.points()))
                .build(),
        );
    }
    for (lane, l) in report.waterfall.lanes() {
        lines.push(
            ObjectBuilder::new()
                .str("type", "waterfall")
                .str("lane", lane)
                .u64("fires", l.fires())
                .u64("trigger_wait_ticks", l.trigger_wait_sum())
                .u64("cascade_ticks", l.cascade_sum())
                .f64("wait_p50", quantile_or_zero(l.trigger_wait_hist(), 0.50))
                .f64("wait_p99", quantile_or_zero(l.trigger_wait_hist(), 0.99))
                .f64("cascade_p99", quantile_or_zero(l.cascade_hist(), 0.99))
                .build(),
        );
    }
    for line in &lines {
        validate(line).expect("st-scope export emitted invalid JSON");
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{fire_delay, gauge, observe, sample, ScopeConfig, ScopeSession};
    use st_trace::json::parse;

    fn sample_report() -> ScopeReport {
        let s = ScopeSession::start(ScopeConfig { series_capacity: 4 });
        gauge(100, "http.conns", 7.0);
        gauge(200, "http.conns", 9.0);
        observe("http.latency_us", 1_500.0);
        observe("http.latency_us", 900.0);
        sample(1_000);
        fire_delay("ip_output", 14, 3);
        fire_delay("backup", 950, 40);
        s.finish()
    }

    #[test]
    fn every_line_validates_and_round_trips() {
        let report = sample_report();
        let lines = to_jsonl(&report);
        assert!(lines.len() >= 3, "header + series + lanes");
        for line in &lines {
            validate(line).unwrap();
        }
        let header = parse(&lines[0]).unwrap();
        assert_eq!(header.get("type").unwrap().as_str().unwrap(), "timeline");
        assert_eq!(header.get("schema").unwrap().as_str().unwrap(), SCHEMA);
        assert_eq!(header.get("samples").unwrap().as_f64().unwrap(), 1.0);

        // Find the gauge series and reconstruct its points exactly.
        let conns = lines
            .iter()
            .map(|l| parse(l).unwrap())
            .find(|v| v.get("name").and_then(|n| n.as_str()) == Some("http.conns"))
            .expect("http.conns series exported");
        assert_eq!(conns.get("kind").unwrap().as_str().unwrap(), "gauge");
        let pts = conns.get("points").unwrap().as_arr().unwrap();
        assert_eq!(pts.len(), 2);
        let first = pts[0].as_arr().unwrap();
        assert_eq!(first[0].as_f64().unwrap(), 100.0);
        assert_eq!(first[1].as_f64().unwrap(), 7.0);

        // The waterfall lane carries its exact integer sums.
        let lane = lines
            .iter()
            .map(|l| parse(l).unwrap())
            .find(|v| v.get("lane").and_then(|n| n.as_str()) == Some("backup"))
            .expect("backup lane exported");
        assert_eq!(
            lane.get("trigger_wait_ticks").unwrap().as_f64().unwrap(),
            950.0
        );
        assert_eq!(lane.get("cascade_ticks").unwrap().as_f64().unwrap(), 40.0);
    }

    #[test]
    fn ring_truncation_is_surfaced_in_the_header() {
        let s = ScopeSession::start(ScopeConfig { series_capacity: 2 });
        for i in 0..5u64 {
            gauge(i, "g", i as f64);
        }
        let report = s.finish();
        let header = parse(&to_jsonl(&report)[0]).unwrap();
        assert_eq!(header.get("points_dropped").unwrap().as_f64().unwrap(), 3.0);
    }
}
