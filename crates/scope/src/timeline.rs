//! Ring-buffered time series: the over-time half of `st-scope`.
//!
//! A [`Timeline`] holds a set of named [`Series`], each a fixed-capacity
//! ring of `(tick, value)` points.  Three kinds of series exist:
//!
//! - **gauges** — instantaneous values appended directly by the caller
//!   (connection counts, admission limits, congestion windows);
//! - **counter deltas** — per-sample-window increments of the st-trace
//!   registry's monotone counters, computed against the previous sample;
//! - **quantile snapshots** — p50/p99/p99.9 of a windowed histogram of
//!   observations, flushed and reset at each sample tick.
//!
//! The sampling *cadence* is not the timeline's business: callers drive
//! [`Timeline::sample`] from a periodic soft-timer event so that the
//! telemetry flush itself rides trigger states, the same economics as
//! every other soft-timer application in this repository.

use std::collections::{BTreeMap, VecDeque};

use st_stats::Histogram;

/// What a series' points mean.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// Instantaneous values appended by the caller.
    Gauge,
    /// Per-window increments of a monotone counter.
    CounterDelta,
    /// A quantile of a windowed observation histogram.
    Quantile,
}

impl SeriesKind {
    /// Stable label used by the JSONL export.
    pub fn label(self) -> &'static str {
        match self {
            SeriesKind::Gauge => "gauge",
            SeriesKind::CounterDelta => "counter_delta",
            SeriesKind::Quantile => "quantile",
        }
    }
}

/// One named, fixed-capacity ring of `(tick, value)` points.
#[derive(Debug)]
pub struct Series {
    kind: SeriesKind,
    capacity: usize,
    points: VecDeque<(u64, f64)>,
    dropped: u64,
}

impl Series {
    fn new(kind: SeriesKind, capacity: usize) -> Series {
        Series {
            kind,
            capacity: capacity.max(1),
            points: VecDeque::new(), // st-lint: allow(hot-path-cost) -- enabled path: built once per series name, and only while a scope session is recording
            dropped: 0,
        }
    }

    fn push(&mut self, tick: u64, value: f64) {
        if self.points.len() == self.capacity {
            self.points.pop_front();
            self.dropped += 1;
        }
        self.points.push_back((tick, value));
    }

    /// The series kind.
    pub fn kind(&self) -> SeriesKind {
        self.kind
    }

    /// Retained points, oldest first.
    pub fn points(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.points.iter().copied()
    }

    /// Number of retained points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no points are retained.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Points evicted because the ring was full — never silent.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Geometry of the windowed observation histograms; matches the
/// facility's delay histogram so tick-valued observations share a
/// resolution.
const WINDOW_BUCKETS: usize = 4096;

/// Quantiles flushed per windowed-observation series at each sample.
const QUANTILES: [(&str, f64); 3] = [("p50", 0.50), ("p99", 0.99), ("p999", 0.999)];

/// The full set of series plus the sampling state feeding them.
#[derive(Debug)]
pub struct Timeline {
    capacity: usize,
    series: BTreeMap<String, Series>,
    last_counters: BTreeMap<&'static str, u64>,
    windows: BTreeMap<&'static str, (f64, Histogram)>,
    samples: u64,
}

impl Timeline {
    /// An empty timeline whose series each retain at most `capacity`
    /// points.
    pub fn new(capacity: usize) -> Timeline {
        Timeline {
            capacity: capacity.max(1),
            series: BTreeMap::new(),
            last_counters: BTreeMap::new(),
            windows: BTreeMap::new(),
            samples: 0,
        }
    }

    fn series_mut(&mut self, name: &str, kind: SeriesKind) -> &mut Series {
        let capacity = self.capacity;
        self.series
            .entry(name.to_string()) // st-lint: allow(hot-path-cost) -- enabled path: interns a first-seen series name while a scope session is recording
            .or_insert_with(|| Series::new(kind, capacity))
    }

    /// Appends an instantaneous gauge point.
    pub fn gauge(&mut self, tick: u64, name: &'static str, value: f64) {
        self.series_mut(name, SeriesKind::Gauge).push(tick, value);
    }

    /// Records one observation into `name`'s current sample window.
    ///
    /// Windowed observations are tick-valued (latencies, delays); the
    /// window histogram starts at a 1-unit bucket width, so quantile
    /// estimates resolve to one tick.  A value beyond the window's
    /// range doubles the bucket width (re-bucketing what the window
    /// already holds) until it fits, so overload-scale tails are never
    /// silently clamped to the range edge — a collapsed run's p99 reads
    /// in seconds, not at the 4096-tick ceiling.
    pub fn observe(&mut self, name: &'static str, value: f64) {
        let (width, h) = self
            .windows
            .entry(name)
            .or_insert_with(|| (1.0, Histogram::new(1.0, WINDOW_BUCKETS)));
        if value >= *width * WINDOW_BUCKETS as f64 {
            while value >= *width * WINDOW_BUCKETS as f64 {
                *width *= 2.0;
            }
            let mut wider = Histogram::new(*width, WINDOW_BUCKETS);
            for (edge, count) in h.buckets() {
                wider.record_n(edge, count);
            }
            *h = wider;
        }
        h.record(value);
    }

    /// One sample tick at `tick`: counter deltas against `counters`
    /// (typically the live st-trace registry) and quantile flushes of
    /// every observation window, which then reset.
    pub fn sample(&mut self, tick: u64, counters: &[(&'static str, u64)]) {
        self.samples += 1;
        for &(name, total) in counters {
            let prev = self.last_counters.insert(name, total).unwrap_or(0);
            let delta = total.saturating_sub(prev);
            self.series_mut(name, SeriesKind::CounterDelta)
                .push(tick, delta as f64);
        }
        let mut flushed: Vec<(String, f64)> = Vec::new();
        for (name, (width, h)) in &mut self.windows {
            if h.count() == 0 {
                continue;
            }
            let snap = h.quantile_snapshot();
            for (suffix, _) in QUANTILES {
                let value = match suffix {
                    "p50" => snap.p50,
                    "p99" => snap.p99,
                    _ => snap.p999,
                };
                flushed.push((format!("{name}.{suffix}"), value));
            }
            // Each window starts back at 1-tick resolution; the next
            // overflow re-widens it if the tail is still there.
            *width = 1.0;
            *h = Histogram::new(1.0, WINDOW_BUCKETS);
        }
        for (name, value) in flushed {
            self.series_mut(&name, SeriesKind::Quantile)
                .push(tick, value);
        }
    }

    /// Sample ticks taken so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// All series in name order.
    pub fn series(&self) -> impl Iterator<Item = (&str, &Series)> {
        self.series.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Looks up one series by name.
    pub fn get(&self, name: &str) -> Option<&Series> {
        self.series.get(name)
    }

    /// Number of distinct series.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauge_points_ride_a_bounded_ring() {
        let mut t = Timeline::new(3);
        for i in 0..5u64 {
            t.gauge(i, "x", i as f64);
        }
        let s = t.get("x").unwrap();
        assert_eq!(s.kind(), SeriesKind::Gauge);
        assert_eq!(s.len(), 3);
        assert_eq!(s.dropped(), 2);
        let pts: Vec<_> = s.points().collect();
        assert_eq!(pts, vec![(2, 2.0), (3, 3.0), (4, 4.0)]);
    }

    #[test]
    fn counter_deltas_difference_successive_samples() {
        let mut t = Timeline::new(8);
        t.sample(100, &[("c", 10)]);
        t.sample(200, &[("c", 25)]);
        t.sample(300, &[("c", 25)]);
        let pts: Vec<_> = t.get("c").unwrap().points().collect();
        assert_eq!(pts, vec![(100, 10.0), (200, 15.0), (300, 0.0)]);
        assert_eq!(t.samples(), 3);
    }

    #[test]
    fn observation_windows_widen_instead_of_clamping() {
        let mut t = Timeline::new(8);
        // 99 small values then one overload-scale outlier: a fixed
        // 4096x1 window would clamp the tail to 4096.
        for _ in 0..99 {
            t.observe("lat", 100.0);
        }
        t.observe("lat", 1_200_000.0);
        t.sample(1_000, &[]);
        let p999 = t.get("lat.p999").unwrap().points().next().unwrap().1;
        assert!(p999 > 1_000_000.0, "tail clamped: p999 {p999}");
        // The median survives re-bucketing at its coarser resolution.
        let p50 = t.get("lat.p50").unwrap().points().next().unwrap().1;
        assert!(p50 < 1_000.0, "median distorted: p50 {p50}");
        // The next window starts back at 1-tick resolution.
        t.observe("lat", 10.0);
        t.observe("lat", 12.0);
        t.sample(2_000, &[]);
        let pts: Vec<_> = t.get("lat.p50").unwrap().points().collect();
        assert!(pts[1].1 >= 10.0 && pts[1].1 <= 13.0, "p50 {}", pts[1].1);
    }

    #[test]
    fn observation_windows_flush_quantiles_and_reset() {
        let mut t = Timeline::new(8);
        for v in 1..=100 {
            t.observe("lat", v as f64);
        }
        t.sample(1_000, &[]);
        let p99 = t.get("lat.p99").unwrap().points().next().unwrap().1;
        assert!((95.0..=101.0).contains(&p99), "p99 {p99}");
        // The window reset: an empty window flushes nothing.
        t.sample(2_000, &[]);
        assert_eq!(t.get("lat.p99").unwrap().len(), 1);
        assert!(t.get("lat.p50").is_some());
        assert!(t.get("lat.p999").is_some());
    }
}
