//! The overhead ledger: who held the CPU while a timer was late.
//!
//! Simulation worlds record every *timed-work* execution span —
//! soft-timer handler dispatch, interrupt handling, poll work — as a
//! `[start, end)` nanosecond segment.  When an event fires `delay`
//! ticks late, the ledger answers: of the window between the due tick
//! and the fire, how much was covered by timed-work overhead?  That
//! covered portion is the fire's **cascade** component; the remainder
//! is **trigger-wait**.  The split is computed in integer nanoseconds
//! and floored to ticks, then clamped so the two components always sum
//! exactly to the recorded delay.
//!
//! Segments arrive with non-decreasing start times (simulation time is
//! monotone) and may overlap (an interrupt preempting a handler); the
//! query walks their union, so overlap never double-counts.

use std::collections::VecDeque;

/// Nanoseconds per measurement tick (the 1 MHz soft-timer clock).
const NS_PER_TICK: u64 = 1_000;

/// A bounded history of timed-work execution segments.
#[derive(Debug, Default)]
pub struct ExecLedger {
    /// `[start_ns, end_ns)` spans, start times non-decreasing.
    segs: VecDeque<(u64, u64)>,
}

impl ExecLedger {
    /// An empty ledger.
    pub fn new() -> ExecLedger {
        ExecLedger::default()
    }

    /// Records one timed-work span.  `start_ns` must be no earlier than
    /// any previously recorded start (simulation time is monotone);
    /// empty spans are ignored.
    pub fn note(&mut self, start_ns: u64, end_ns: u64) {
        if end_ns > start_ns {
            debug_assert!(
                self.segs.back().is_none_or(|&(s, _)| s <= start_ns),
                "ledger segments must start in order"
            );
            self.segs.push_back((start_ns, end_ns));
        }
    }

    /// Drops segments that end before `before_ns`; call periodically so
    /// the history stays bounded by the maximum attribution window.
    pub fn prune(&mut self, before_ns: u64) {
        while let Some(&(_, end)) = self.segs.front() {
            if end >= before_ns {
                break;
            }
            self.segs.pop_front();
        }
    }

    /// Union length of recorded spans intersected with `[lo_ns, hi_ns)`.
    pub fn overhead_within(&self, lo_ns: u64, hi_ns: u64) -> u64 {
        let mut covered = 0u64;
        let mut cursor = lo_ns;
        for &(s, e) in &self.segs {
            if s >= hi_ns {
                break;
            }
            if e <= cursor {
                continue;
            }
            let from = s.max(cursor);
            let to = e.min(hi_ns);
            if to > from {
                covered += to - from;
                cursor = to;
            }
        }
        covered
    }

    /// Decomposes one fire's lateness: the event was due at tick
    /// `due_tick` and fired at `fired_tick`.  Returns `(trigger_wait,
    /// cascade)` in ticks with `trigger_wait + cascade == fired_tick -
    /// due_tick` exactly.
    pub fn split(&self, due_tick: u64, fired_tick: u64) -> (u64, u64) {
        let total = fired_tick.saturating_sub(due_tick);
        if total == 0 {
            return (0, 0);
        }
        let lo = due_tick * NS_PER_TICK;
        let hi = fired_tick * NS_PER_TICK;
        let cascade = (self.overhead_within(lo, hi) / NS_PER_TICK).min(total);
        (total - cascade, cascade)
    }

    /// Retained segments (for tests and diagnostics).
    pub fn len(&self) -> usize {
        self.segs.len()
    }

    /// Whether the ledger holds no segments.
    pub fn is_empty(&self) -> bool {
        self.segs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_clips_overlap_and_window() {
        let mut l = ExecLedger::new();
        l.note(100, 200);
        l.note(150, 250); // Overlaps the first.
        l.note(400, 500);
        assert_eq!(l.overhead_within(0, 1_000), 250);
        assert_eq!(l.overhead_within(120, 220), 100);
        assert_eq!(l.overhead_within(260, 390), 0);
    }

    #[test]
    fn split_partitions_exactly() {
        let mut l = ExecLedger::new();
        // 40 µs of overhead inside a 100-tick window.
        l.note(10_000, 50_000);
        let (wait, cascade) = l.split(0, 100);
        assert_eq!(cascade, 40);
        assert_eq!(wait + cascade, 100);
        // Zero-delay fires decompose to nothing.
        assert_eq!(l.split(7, 7), (0, 0));
        // Cascade clamps to the total even if overhead covers more.
        let (w2, c2) = l.split(15, 20);
        assert_eq!(w2 + c2, 5);
    }

    #[test]
    fn prune_keeps_spans_that_still_matter() {
        let mut l = ExecLedger::new();
        l.note(0, 10);
        l.note(20, 30);
        l.note(40, 50);
        l.prune(25);
        assert_eq!(l.len(), 2);
        assert_eq!(l.overhead_within(0, 100), 20);
    }
}
