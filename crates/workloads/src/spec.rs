//! Workload specifications: interval mixtures and source mixes.

use st_kernel::trigger::TriggerSource;

/// One component of a workload's trigger-interval mixture.
///
/// All times in microseconds. Components are sampled by weight; the
/// drawn interval is clamped to the workload's maximum (the paper's
/// distributions are bounded by the 1 ms backup interrupt).
#[derive(Debug, Clone, Copy)]
pub enum IntervalComponent {
    /// Log-normal bulk: the ordinary run of short kernel activity gaps.
    LogNormal {
        /// Median of the component, µs.
        median: f64,
        /// Shape (sigma of the underlying normal).
        sigma: f64,
    },
    /// A uniform band, e.g. the 100-150 µs packet-processing blackouts
    /// visible in the ST-Apache CDF between its knee and its tail.
    Band {
        /// Lower edge, µs.
        lo: f64,
        /// Upper edge, µs.
        hi: f64,
    },
    /// Exponential component (memoryless device-interrupt gaps).
    Exponential {
        /// Mean, µs.
        mean: f64,
    },
}

/// A complete workload model.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Human-readable name, as in Table 1 ("ST-Apache", ...).
    pub name: &'static str,
    /// Mixture components with sampling weights.
    pub components: Vec<(f64, IntervalComponent)>,
    /// Per-source sampling weights (Table 2's mix for ST-Apache; modeled
    /// mixes for the others).
    pub sources: Vec<(f64, TriggerSource)>,
    /// Hard upper clamp on intervals, µs (the backup interrupt bound).
    pub max_interval: f64,
    /// Time scale applied to every drawn interval. 1.0 for the PII-300;
    /// 0.6 for the PIII-500 Xeon row of Table 1 (compute gaps shrink with
    /// clock speed — the paper's scaling observation).
    pub time_scale: f64,
}

impl WorkloadSpec {
    /// Total component weight (sampling normalizes by this).
    pub fn total_weight(&self) -> f64 {
        self.components.iter().map(|&(w, _)| w).sum()
    }

    /// Expected mean of the mixture before clamping, µs (calibration
    /// aid; the clamp only trims the rare extreme tail).
    pub fn analytic_mean(&self) -> f64 {
        let total = self.total_weight();
        let mut mean = 0.0;
        for &(w, c) in &self.components {
            let m = match c {
                IntervalComponent::LogNormal { median, sigma } => {
                    median * (sigma * sigma / 2.0).exp()
                }
                IntervalComponent::Band { lo, hi } => (lo + hi) / 2.0,
                IntervalComponent::Exponential { mean } => mean,
            };
            mean += w / total * m;
        }
        mean * self.time_scale
    }

    /// Returns a copy rescaled in time (used for the Xeon row).
    pub fn scaled(&self, factor: f64, name: &'static str) -> WorkloadSpec {
        WorkloadSpec {
            name,
            time_scale: self.time_scale * factor,
            components: self.components.clone(),
            sources: self.sources.clone(),
            // The backup-interrupt clamp is a property of the OS, not the
            // CPU: it does not scale.
            max_interval: self.max_interval,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            name: "test",
            components: vec![
                (
                    0.5,
                    IntervalComponent::LogNormal {
                        median: 10.0,
                        sigma: 0.0,
                    },
                ),
                (0.5, IntervalComponent::Band { lo: 20.0, hi: 40.0 }),
            ],
            sources: vec![(1.0, TriggerSource::Syscall)],
            max_interval: 1000.0,
            time_scale: 1.0,
        }
    }

    #[test]
    fn analytic_mean_mixes_components() {
        // 0.5 * 10 + 0.5 * 30 = 20.
        assert!((spec().analytic_mean() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn scaling_scales_mean_but_not_clamp() {
        let s = spec().scaled(0.6, "test-xeon");
        assert!((s.analytic_mean() - 12.0).abs() < 1e-9);
        assert_eq!(s.max_interval, 1000.0);
        assert_eq!(s.name, "test-xeon");
    }
}
