//! The seven workloads of Table 1, calibrated to the paper's statistics.
//!
//! Each mixture was derived from the published row of Table 1 (max, mean,
//! median, standard deviation, tail fractions) plus the CDF shape of
//! Figure 4: a log-normal bulk of short kernel-activity gaps, a mid band
//! (longer service stretches), a 100-150 µs band (packet-processing
//! blackouts — section A.3 notes receive processing "can take more than
//! 100 µs" on this CPU), and a thin far tail bounded by the backup
//! interrupt. The calibration tests at the bottom assert each generated
//! stream reproduces its Table 1 row within tolerance.

use st_kernel::trigger::TriggerSource;

use crate::spec::{IntervalComponent, WorkloadSpec};

/// The paper's Table 1 row for a workload (expected values, µs).
#[derive(Debug, Clone, Copy)]
pub struct PaperRow {
    /// Max column.
    pub max: f64,
    /// Mean column.
    pub mean: f64,
    /// Median column.
    pub median: f64,
    /// StdDev column.
    pub stddev: f64,
    /// "> 100 µs" column, as a fraction.
    pub frac_over_100: f64,
    /// "> 150 µs" column, as a fraction.
    pub frac_over_150: f64,
}

/// Identifier for the measured workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadId {
    /// Apache web server, saturated (the paper's primary workload).
    StApache,
    /// Apache plus a compute-bound background process.
    StApacheCompute,
    /// The event-driven Flash web server.
    StFlash,
    /// RealPlayer playing a live audio stream (CPU-saturating).
    StRealAudio,
    /// A saturated but disk-bound NFS server (CPU ~90 % idle).
    StNfs,
    /// Building the FreeBSD kernel from source.
    StKernelBuild,
    /// ST-Apache on the 500 MHz Pentium III Xeon.
    StApacheXeon,
}

impl WorkloadId {
    /// Every workload, in Table 1 order.
    pub const ALL: [WorkloadId; 7] = [
        WorkloadId::StApache,
        WorkloadId::StApacheCompute,
        WorkloadId::StFlash,
        WorkloadId::StRealAudio,
        WorkloadId::StNfs,
        WorkloadId::StKernelBuild,
        WorkloadId::StApacheXeon,
    ];

    /// Table 1's label.
    pub fn label(self) -> &'static str {
        match self {
            WorkloadId::StApache => "ST-Apache",
            WorkloadId::StApacheCompute => "ST-Apache-compute",
            WorkloadId::StFlash => "ST-Flash",
            WorkloadId::StRealAudio => "ST-real-audio",
            WorkloadId::StNfs => "ST-nfs",
            WorkloadId::StKernelBuild => "ST-kernel-build",
            WorkloadId::StApacheXeon => "ST-Apache (Xeon)",
        }
    }

    /// The published Table 1 row.
    pub fn paper_row(self) -> PaperRow {
        match self {
            WorkloadId::StApache => PaperRow {
                max: 476.0,
                mean: 31.52,
                median: 18.0,
                stddev: 32.0,
                frac_over_100: 0.053,
                frac_over_150: 0.0039,
            },
            WorkloadId::StApacheCompute => PaperRow {
                max: 585.0,
                mean: 31.59,
                median: 18.0,
                stddev: 32.1,
                frac_over_100: 0.053,
                frac_over_150: 0.0043,
            },
            WorkloadId::StFlash => PaperRow {
                max: 1000.0,
                mean: 22.53,
                median: 17.0,
                stddev: 20.8,
                frac_over_100: 0.0109,
                frac_over_150: 0.00013,
            },
            WorkloadId::StRealAudio => PaperRow {
                max: 1000.0,
                mean: 8.47,
                median: 6.0,
                stddev: 13.2,
                frac_over_100: 0.00025,
                frac_over_150: 0.00013,
            },
            WorkloadId::StNfs => PaperRow {
                max: 910.0,
                mean: 2.13,
                median: 2.0,
                stddev: 3.3,
                frac_over_100: 0.00021,
                frac_over_150: 0.00011,
            },
            WorkloadId::StKernelBuild => PaperRow {
                max: 1000.0,
                mean: 5.63,
                median: 2.0,
                stddev: 47.9, // Internally inconsistent; see crate docs.
                frac_over_100: 0.00038,
                frac_over_150: 0.00011,
            },
            WorkloadId::StApacheXeon => PaperRow {
                max: 1000.0,
                mean: 19.41,
                median: 11.0,
                stddev: 23.0,
                frac_over_100: 0.0044,
                frac_over_150: 0.0013,
            },
        }
    }

    /// The calibrated generator spec.
    pub fn spec(self) -> WorkloadSpec {
        match self {
            WorkloadId::StApache => st_apache(476.0),
            WorkloadId::StApacheCompute => {
                let mut s = st_apache(585.0);
                s.name = "ST-Apache-compute";
                s
            }
            WorkloadId::StFlash => st_flash(),
            WorkloadId::StRealAudio => st_real_audio(),
            WorkloadId::StNfs => st_nfs(),
            WorkloadId::StKernelBuild => st_kernel_build(),
            WorkloadId::StApacheXeon => {
                // Compute gaps shrink with the 300->500 MHz clock ratio;
                // the paper observes the whole distribution scaling by
                // roughly the clock ratio (section 5.3).
                st_apache(476.0).scaled(300.0 / 500.0, "ST-Apache (Xeon)")
            }
        }
    }
}

/// All workload specs in Table 1 order.
pub fn all_workloads() -> Vec<(WorkloadId, WorkloadSpec)> {
    WorkloadId::ALL.iter().map(|&id| (id, id.spec())).collect()
}

/// Table 2's measured source mix for the Apache workload.
fn apache_sources() -> Vec<(f64, TriggerSource)> {
    vec![
        (0.477, TriggerSource::Syscall),
        (0.280, TriggerSource::IpOutput),
        (0.164, TriggerSource::IpIntr),
        (0.054, TriggerSource::TcpipOther),
        (0.025, TriggerSource::Trap),
    ]
}

fn st_apache(max: f64) -> WorkloadSpec {
    WorkloadSpec {
        name: "ST-Apache",
        components: vec![
            // Bulk of short gaps between syscalls / packet events.
            (
                0.80,
                IntervalComponent::LogNormal {
                    median: 16.0,
                    sigma: 0.6,
                },
            ),
            // Longer uninterrupted service stretches.
            (
                0.15,
                IntervalComponent::Band {
                    lo: 30.0,
                    hi: 100.0,
                },
            ),
            // Packet-processing blackouts (>100 µs receive path, A.3).
            (
                0.046,
                IntervalComponent::Band {
                    lo: 100.0,
                    hi: 150.0,
                },
            ),
            // Rare long stretches, bounded by the measured max.
            (0.004, IntervalComponent::Band { lo: 150.0, hi: max }),
        ],
        sources: apache_sources(),
        max_interval: max,
        time_scale: 1.0,
    }
}

fn st_flash() -> WorkloadSpec {
    WorkloadSpec {
        name: "ST-Flash",
        components: vec![
            (
                0.88,
                IntervalComponent::LogNormal {
                    median: 15.0,
                    sigma: 0.55,
                },
            ),
            (0.11, IntervalComponent::Band { lo: 25.0, hi: 85.0 }),
            (
                0.0095,
                IntervalComponent::Band {
                    lo: 100.0,
                    hi: 150.0,
                },
            ),
            (
                0.00013,
                IntervalComponent::Band {
                    lo: 150.0,
                    hi: 1000.0,
                },
            ),
        ],
        // Flash is a single event-driven process: proportionally more
        // syscalls, almost no traps.
        sources: vec![
            (0.52, TriggerSource::Syscall),
            (0.27, TriggerSource::IpOutput),
            (0.15, TriggerSource::IpIntr),
            (0.045, TriggerSource::TcpipOther),
            (0.015, TriggerSource::Trap),
        ],
        max_interval: 1000.0,
        time_scale: 1.0,
    }
}

fn st_real_audio() -> WorkloadSpec {
    WorkloadSpec {
        name: "ST-real-audio",
        components: vec![
            (
                0.97,
                IntervalComponent::LogNormal {
                    median: 5.6,
                    sigma: 0.75,
                },
            ),
            (0.028, IntervalComponent::Band { lo: 20.0, hi: 60.0 }),
            (
                0.00012,
                IntervalComponent::Band {
                    lo: 100.0,
                    hi: 150.0,
                },
            ),
            (
                0.00013,
                IntervalComponent::Band {
                    lo: 150.0,
                    hi: 1000.0,
                },
            ),
        ],
        // "Mostly user-mode processing ... many system calls" (5.3).
        sources: vec![
            (0.70, TriggerSource::Syscall),
            (0.10, TriggerSource::IpOutput),
            (0.12, TriggerSource::IpIntr),
            (0.03, TriggerSource::TcpipOther),
            (0.05, TriggerSource::Trap),
        ],
        max_interval: 1000.0,
        time_scale: 1.0,
    }
}

fn st_nfs() -> WorkloadSpec {
    WorkloadSpec {
        name: "ST-nfs",
        components: vec![
            // The CPU idles ~90 % of the time; the idle loop checks for
            // events every couple of microseconds.
            (
                0.99,
                IntervalComponent::LogNormal {
                    median: 1.95,
                    sigma: 0.35,
                },
            ),
            (0.01, IntervalComponent::Band { lo: 4.0, hi: 12.0 }),
            (
                0.0001,
                IntervalComponent::Band {
                    lo: 100.0,
                    hi: 150.0,
                },
            ),
            (
                0.00011,
                IntervalComponent::Band {
                    lo: 150.0,
                    hi: 500.0,
                },
            ),
        ],
        sources: vec![
            (0.62, TriggerSource::Idle),
            (0.22, TriggerSource::Syscall),
            (0.08, TriggerSource::OtherIntr),
            (0.04, TriggerSource::IpIntr),
            (0.03, TriggerSource::IpOutput),
            (0.01, TriggerSource::Trap),
        ],
        max_interval: 910.0,
        time_scale: 1.0,
    }
}

fn st_kernel_build() -> WorkloadSpec {
    WorkloadSpec {
        name: "ST-kernel-build",
        components: vec![
            (
                0.85,
                IntervalComponent::LogNormal {
                    median: 2.0,
                    sigma: 0.8,
                },
            ),
            (0.14, IntervalComponent::Band { lo: 5.0, hi: 40.0 }),
            (
                0.00027,
                IntervalComponent::Band {
                    lo: 100.0,
                    hi: 150.0,
                },
            ),
            (
                0.00011,
                IntervalComponent::Band {
                    lo: 150.0,
                    hi: 1000.0,
                },
            ),
        ],
        // Compilation: syscalls and page faults (traps) dominate, disk
        // interrupts and some idle while waiting on I/O.
        sources: vec![
            (0.42, TriggerSource::Syscall),
            (0.32, TriggerSource::Trap),
            (0.12, TriggerSource::OtherIntr),
            (0.08, TriggerSource::Idle),
            (0.03, TriggerSource::IpOutput),
            (0.02, TriggerSource::IpIntr),
            (0.01, TriggerSource::TcpipOther),
        ],
        max_interval: 1000.0,
        time_scale: 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::TriggerStream;
    use st_stats::{Histogram, Samples};

    struct Measured {
        mean: f64,
        median: f64,
        stddev: f64,
        max: f64,
        over_100: f64,
        over_150: f64,
    }

    fn measure(id: WorkloadId, n: usize) -> Measured {
        let mut stream = TriggerStream::new(id.spec(), 20_000 + id as u64);
        let mut samples = Samples::with_capacity(n);
        let mut hist = Histogram::new(1.0, 1001);
        for _ in 0..n {
            let (gap, _) = stream.next_gap();
            samples.record(gap);
            hist.record(gap);
        }
        Measured {
            mean: samples.mean().unwrap(),
            median: samples.median().unwrap(),
            stddev: samples.population_stddev().unwrap(),
            max: samples.max().unwrap(),
            over_100: hist.fraction_above(100.0),
            over_150: hist.fraction_above(150.0),
        }
    }

    fn assert_close(what: &str, got: f64, want: f64, rel_tol: f64) {
        let err = (got - want).abs() / want.max(1e-9);
        assert!(
            err <= rel_tol,
            "{what}: got {got:.3}, want {want:.3} (rel err {err:.2})"
        );
    }

    #[test]
    fn st_apache_matches_table1() {
        let m = measure(WorkloadId::StApache, 400_000);
        let row = WorkloadId::StApache.paper_row();
        assert_close("mean", m.mean, row.mean, 0.10);
        assert_close("median", m.median, row.median, 0.15);
        assert_close("stddev", m.stddev, row.stddev, 0.20);
        assert_close("over100", m.over_100, row.frac_over_100, 0.25);
        assert_close("over150", m.over_150, row.frac_over_150, 0.40);
        assert!(m.max <= row.max + 1.0);
    }

    #[test]
    fn st_flash_matches_table1() {
        let m = measure(WorkloadId::StFlash, 400_000);
        let row = WorkloadId::StFlash.paper_row();
        assert_close("mean", m.mean, row.mean, 0.10);
        assert_close("median", m.median, row.median, 0.15);
        assert_close("stddev", m.stddev, row.stddev, 0.20);
        assert_close("over100", m.over_100, row.frac_over_100, 0.30);
    }

    #[test]
    fn st_real_audio_matches_table1() {
        let m = measure(WorkloadId::StRealAudio, 400_000);
        let row = WorkloadId::StRealAudio.paper_row();
        assert_close("mean", m.mean, row.mean, 0.10);
        assert_close("median", m.median, row.median, 0.15);
        assert_close("stddev", m.stddev, row.stddev, 0.30);
    }

    #[test]
    fn st_nfs_matches_table1() {
        let m = measure(WorkloadId::StNfs, 400_000);
        let row = WorkloadId::StNfs.paper_row();
        assert_close("mean", m.mean, row.mean, 0.10);
        assert_close("median", m.median, row.median, 0.15);
        // The published stddev (3.3) sits between the bulk's ~1 and what
        // the capped tail allows; accept a generous band.
        assert!(m.stddev > 1.0 && m.stddev < 6.0, "stddev {}", m.stddev);
    }

    #[test]
    fn st_kernel_build_matches_table1_where_consistent() {
        let m = measure(WorkloadId::StKernelBuild, 400_000);
        let row = WorkloadId::StKernelBuild.paper_row();
        assert_close("mean", m.mean, row.mean, 0.12);
        assert_close("median", m.median, row.median, 0.30);
        // The published 47.9 stddev is inconsistent with the published
        // tail (see crate docs); sanity-bound ours instead.
        assert!(m.stddev > 3.0 && m.stddev < 47.9, "stddev {}", m.stddev);
    }

    #[test]
    fn xeon_scales_apache_by_clock_ratio() {
        let m = measure(WorkloadId::StApacheXeon, 400_000);
        let row = WorkloadId::StApacheXeon.paper_row();
        assert_close("mean", m.mean, row.mean, 0.12);
        assert_close("median", m.median, row.median, 0.20);
    }

    #[test]
    fn apache_source_mix_matches_table2() {
        let mut stream = TriggerStream::new(WorkloadId::StApache.spec(), 9);
        // Ordered map: even in tests, per-source tallies iterate (and thus
        // fail) in the same order on every run.
        let mut counts = std::collections::BTreeMap::new();
        let n = 200_000;
        for _ in 0..n {
            let (_, src) = stream.next_gap();
            *counts.entry(src).or_insert(0u64) += 1;
        }
        let frac = |s| *counts.get(&s).unwrap_or(&0) as f64 / n as f64;
        assert!((frac(TriggerSource::Syscall) - 0.477).abs() < 0.01);
        assert!((frac(TriggerSource::IpOutput) - 0.280).abs() < 0.01);
        assert!((frac(TriggerSource::IpIntr) - 0.164).abs() < 0.01);
        assert!((frac(TriggerSource::TcpipOther) - 0.054) < 0.01);
        assert!((frac(TriggerSource::Trap) - 0.025).abs() < 0.01);
    }

    #[test]
    fn ordering_of_workload_means_matches_paper() {
        // Table 1 ordering: nfs < kernel-build < real-audio < Xeon <
        // Flash < Apache.
        let means: Vec<f64> = [
            WorkloadId::StNfs,
            WorkloadId::StKernelBuild,
            WorkloadId::StRealAudio,
            WorkloadId::StApacheXeon,
            WorkloadId::StFlash,
            WorkloadId::StApache,
        ]
        .iter()
        .map(|&id| measure(id, 100_000).mean)
        .collect();
        for w in means.windows(2) {
            assert!(w[0] < w[1], "ordering violated: {means:?}");
        }
    }
}
