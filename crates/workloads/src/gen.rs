//! Sampling trigger streams from a workload spec.

use st_kernel::trigger::TriggerSource;
use st_sim::{SimRng, SimTime};

use crate::spec::{IntervalComponent, WorkloadSpec};

/// An infinite stream of tagged trigger states.
///
/// # Examples
///
/// ```
/// use st_workloads::{all_workloads, TriggerStream, WorkloadId};
///
/// let spec = WorkloadId::StApache.spec();
/// let mut stream = TriggerStream::new(spec, 42);
/// let (gap_us, source) = stream.next_gap();
/// assert!(gap_us > 0.0);
/// let _ = source;
/// # let _ = all_workloads();
/// ```
#[derive(Debug)]
pub struct TriggerStream {
    spec: WorkloadSpec,
    rng: SimRng,
    component_cdf: Vec<f64>,
    source_cdf: Vec<f64>,
    now: SimTime,
}

impl TriggerStream {
    /// Creates a stream for `spec` seeded with `seed`.
    ///
    /// # Panics
    ///
    /// Panics when the spec has no components or sources.
    pub fn new(spec: WorkloadSpec, seed: u64) -> Self {
        assert!(!spec.components.is_empty(), "spec needs components");
        assert!(!spec.sources.is_empty(), "spec needs sources");
        let mut component_cdf = Vec::with_capacity(spec.components.len());
        let total_c: f64 = spec.components.iter().map(|&(w, _)| w).sum();
        let mut acc = 0.0;
        for &(w, _) in &spec.components {
            acc += w / total_c;
            component_cdf.push(acc);
        }
        let mut source_cdf = Vec::with_capacity(spec.sources.len());
        let total_s: f64 = spec.sources.iter().map(|&(w, _)| w).sum();
        let mut acc = 0.0;
        for &(w, _) in &spec.sources {
            acc += w / total_s;
            source_cdf.push(acc);
        }
        TriggerStream {
            spec,
            rng: SimRng::seed(seed),
            component_cdf,
            source_cdf,
            now: SimTime::ZERO,
        }
    }

    /// The spec driving this stream.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Draws the next inter-trigger gap (µs) and the source of the
    /// trigger that ends it.
    pub fn next_gap(&mut self) -> (f64, TriggerSource) {
        let u = self.rng.uniform01();
        let idx = self.component_cdf.partition_point(|&c| c < u);
        let (_, comp) = self.spec.components[idx.min(self.spec.components.len() - 1)];
        let raw = match comp {
            IntervalComponent::LogNormal { median, sigma } => {
                (median.ln() + sigma * self.rng.standard_normal()).exp()
            }
            IntervalComponent::Band { lo, hi } => self.rng.uniform(lo, hi),
            IntervalComponent::Exponential { mean } => -mean * (1.0 - self.rng.uniform01()).ln(),
        };
        let gap = (raw * self.spec.time_scale).clamp(0.1, self.spec.max_interval);

        let u = self.rng.uniform01();
        let idx = self.source_cdf.partition_point(|&c| c < u);
        let (_, source) = self.spec.sources[idx.min(self.spec.sources.len() - 1)];
        (gap, source)
    }

    /// Advances internal simulated time by one gap and returns the
    /// absolute trigger time with its source.
    pub fn next_trigger(&mut self) -> (SimTime, TriggerSource) {
        let (gap, source) = self.next_gap();
        self.now += st_sim::SimDuration::from_micros_f64(gap);
        (self.now, source)
    }

    /// Current stream time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Convenience: a closure yielding gaps in whole microsecond ticks,
    /// for APIs like `TransmissionProcess::run_soft`.
    pub fn tick_gap_fn(mut self) -> impl FnMut() -> u64 {
        move || self.next_gap().0.round().max(1.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadSpec;

    fn two_component_spec() -> WorkloadSpec {
        WorkloadSpec {
            name: "t",
            components: vec![
                (
                    0.9,
                    IntervalComponent::LogNormal {
                        median: 10.0,
                        sigma: 0.0,
                    },
                ),
                (
                    0.1,
                    IntervalComponent::Band {
                        lo: 100.0,
                        hi: 100.0,
                    },
                ),
            ],
            sources: vec![(0.75, TriggerSource::Syscall), (0.25, TriggerSource::Trap)],
            max_interval: 1000.0,
            time_scale: 1.0,
        }
    }

    #[test]
    fn component_weights_respected() {
        let mut s = TriggerStream::new(two_component_spec(), 1);
        let n = 50_000;
        let long = (0..n).filter(|_| s.next_gap().0 > 50.0).count();
        let frac = long as f64 / n as f64;
        assert!((frac - 0.1).abs() < 0.01, "band fraction {frac}");
    }

    #[test]
    fn source_weights_respected() {
        let mut s = TriggerStream::new(two_component_spec(), 2);
        let n = 50_000;
        let traps = (0..n)
            .filter(|_| s.next_gap().1 == TriggerSource::Trap)
            .count();
        let frac = traps as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.01, "trap fraction {frac}");
    }

    #[test]
    fn clamping_bounds_gaps() {
        let spec = WorkloadSpec {
            components: vec![(1.0, IntervalComponent::Exponential { mean: 800.0 })],
            ..two_component_spec()
        };
        let mut s = TriggerStream::new(spec, 3);
        for _ in 0..10_000 {
            let (g, _) = s.next_gap();
            assert!((0.1..=1000.0).contains(&g));
        }
    }

    #[test]
    fn absolute_times_are_monotone() {
        let mut s = TriggerStream::new(two_component_spec(), 4);
        let mut last = SimTime::ZERO;
        for _ in 0..1000 {
            let (t, _) = s.next_trigger();
            assert!(t > last);
            last = t;
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = TriggerStream::new(two_component_spec(), 7);
        let mut b = TriggerStream::new(two_component_spec(), 7);
        for _ in 0..100 {
            assert_eq!(a.next_gap(), b.next_gap());
        }
    }
}
