//! Trigger-state stream generators for the paper's measured workloads.
//!
//! Section 5.3 measures the distribution of times between successive
//! trigger states under six workloads (Figure 4, Table 1) and section 5.5
//! breaks trigger states down by source (Table 2, Figure 6). We cannot
//! rerun Apache/Flash/NFS/RealPlayer on FreeBSD-2.2.6; instead each
//! workload is modeled as a tagged renewal process whose interval mixture
//! is *calibrated to the paper's published statistics* (see
//! [`catalog`]) and whose source labels follow Table 2's measured mix.
//! Calibration tolerances are asserted by this crate's tests; the
//! resulting streams drive the Figure 4-6 / Table 1-2 reproductions and
//! supply the trigger processes for the pacing experiments (Tables 4-5).
//!
//! One paper inconsistency is preserved as documented: Table 1 reports
//! ST-kernel-build with a standard deviation of 47.9 µs, a maximum of
//! 1000 µs and only 0.038 % of samples above 100 µs — jointly impossible
//! (the capped tail bounds the deviation near 20 µs). We match mean,
//! median, max and the tail fractions, and let the deviation land where
//! it mathematically must; EXPERIMENTS.md records the discrepancy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod gen;
pub mod spec;

pub use catalog::{all_workloads, WorkloadId};
pub use gen::TriggerStream;
pub use spec::{IntervalComponent, WorkloadSpec};
