//! The discrete-event loop.
//!
//! A classic calendar: events carry a firing time and are dispatched in
//! time order, FIFO among equal times. The [`World`] owns all simulation
//! state; during dispatch it receives a [`Ctx`] through which it can read
//! the clock and schedule or cancel further events. Cancelation is lazy
//! (canceled entries are skipped at pop time), which keeps the hot path a
//! plain binary-heap push/pop.

use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// Identifier of a scheduled event, usable for cancelation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

/// Simulation state that receives events.
pub trait World: Sized {
    /// The event type dispatched to this world.
    type Event;

    /// Handles one event. `ctx` gives access to the clock and scheduler.
    fn handle(&mut self, ev: Self::Event, ctx: &mut Ctx<'_, Self::Event>);
}

struct Entry<E> {
    time: SimTime,
    seq: u64,
    id: EventId,
    ev: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so the BinaryHeap (a max-heap) pops the earliest entry;
        // seq breaks ties FIFO.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Scheduling interface handed to [`World::handle`] during dispatch.
pub struct Ctx<'a, E> {
    now: SimTime,
    queue: &'a mut Queue<E>,
}

struct Queue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Ids of scheduled-but-not-yet-fired-or-canceled events. Heap entries
    /// whose id is absent are skipped at pop time (lazy cancelation).
    /// Ordered set, although only membership is used: the engine is the
    /// root of every seeded simulation, so it carries no unordered
    /// container at all (st-lint: no-unordered-iteration).
    live: BTreeSet<EventId>,
    next_seq: u64,
    next_id: u64,
}

impl<E> Queue<E> {
    fn new() -> Self {
        Queue {
            heap: BinaryHeap::new(),
            live: BTreeSet::new(),
            next_seq: 0,
            next_id: 0,
        }
    }

    fn schedule_at(&mut self, time: SimTime, ev: E) -> EventId {
        let id = EventId(self.next_id);
        self.next_id += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, id, ev });
        self.live.insert(id);
        id
    }

    fn cancel(&mut self, id: EventId) -> bool {
        self.live.remove(&id)
    }

    fn pop_live(&mut self) -> Option<Entry<E>> {
        while let Some(e) = self.heap.pop() {
            if self.live.remove(&e.id) {
                return Some(e);
            }
        }
        None
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(e) = self.heap.peek() {
            if self.live.contains(&e.id) {
                return Some(e.time);
            }
            self.heap.pop();
        }
        None
    }
}

impl<'a, E> Ctx<'a, E> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `ev` to fire at absolute time `time`.
    ///
    /// Scheduling in the past is clamped to "now" (the event fires after
    /// the current dispatch completes, preserving causality).
    pub fn schedule_at(&mut self, time: SimTime, ev: E) -> EventId {
        self.queue.schedule_at(time.max(self.now), ev)
    }

    /// Schedules `ev` to fire `delay` from now.
    pub fn schedule_in(&mut self, delay: SimDuration, ev: E) -> EventId {
        let t = self.now.checked_add(delay).expect("virtual time overflow");
        self.queue.schedule_at(t, ev)
    }

    /// Cancels a previously scheduled event. Returns `false` when the
    /// event already fired or was already canceled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }
}

/// The simulation engine: owns the world and the event queue.
///
/// # Examples
///
/// ```
/// use st_sim::{Ctx, Engine, SimDuration, SimTime, World};
///
/// struct Counter(u32);
/// impl World for Counter {
///     type Event = ();
///     fn handle(&mut self, _ev: (), ctx: &mut Ctx<'_, ()>) {
///         self.0 += 1;
///         if self.0 < 3 {
///             ctx.schedule_in(SimDuration::from_micros(10), ());
///         }
///     }
/// }
///
/// let mut engine = Engine::new(Counter(0));
/// engine.schedule_at(SimTime::ZERO, ());
/// engine.run();
/// assert_eq!(engine.world().0, 3);
/// assert_eq!(engine.now().as_micros(), 20);
/// ```
pub struct Engine<W: World> {
    world: W,
    queue: Queue<W::Event>,
    now: SimTime,
    dispatched: u64,
}

impl<W: World> Engine<W> {
    /// Creates an engine at time zero.
    pub fn new(world: W) -> Self {
        Engine {
            world,
            queue: Queue::new(),
            now: SimTime::ZERO,
            dispatched: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Shared access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Exclusive access to the world (between dispatches).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consumes the engine, returning the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Schedules an event at absolute time `time` (clamped to now).
    pub fn schedule_at(&mut self, time: SimTime, ev: W::Event) -> EventId {
        self.queue.schedule_at(time.max(self.now), ev)
    }

    /// Schedules an event `delay` from now.
    pub fn schedule_in(&mut self, delay: SimDuration, ev: W::Event) -> EventId {
        let t = self.now.checked_add(delay).expect("virtual time overflow");
        self.queue.schedule_at(t, ev)
    }

    /// Cancels a scheduled event.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Time of the next pending event, if any.
    pub fn next_event_time(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Dispatches the next event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(entry) = self.queue.pop_live() else {
            return false;
        };
        debug_assert!(entry.time >= self.now, "time went backwards");
        self.now = entry.time;
        self.dispatched += 1;
        let mut ctx = Ctx {
            now: self.now,
            queue: &mut self.queue,
        };
        self.world.handle(entry.ev, &mut ctx);
        true
    }

    /// Runs until the queue drains.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs until the queue drains or virtual time would pass `deadline`.
    ///
    /// Events scheduled exactly at `deadline` are dispatched; the clock is
    /// left at the later of its current value and `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        loop {
            match self.queue.peek_time() {
                Some(t) if t <= deadline => {
                    self.step();
                }
                _ => break,
            }
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Runs until `pred(world)` becomes true (checked after each event) or
    /// the queue drains. Returns whether the predicate was satisfied.
    pub fn run_while(&mut self, mut keep_going: impl FnMut(&W) -> bool) -> bool {
        loop {
            if !keep_going(&self.world) {
                return true;
            }
            if !self.step() {
                return false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Recorder {
        log: Vec<(u64, u32)>,
        to_cancel: Option<EventId>,
    }

    impl World for Recorder {
        type Event = u32;
        fn handle(&mut self, ev: u32, ctx: &mut Ctx<'_, u32>) {
            self.log.push((ctx.now().as_micros(), ev));
            if ev == 100 {
                // Schedule two children, then cancel one of them.
                let keep = ctx.schedule_in(SimDuration::from_micros(5), 101);
                let kill = ctx.schedule_in(SimDuration::from_micros(5), 102);
                let _ = keep;
                ctx.cancel(kill);
            }
            if let Some(id) = self.to_cancel.take() {
                ctx.cancel(id);
            }
        }
    }

    fn recorder() -> Recorder {
        Recorder {
            log: Vec::new(),
            to_cancel: None,
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut e = Engine::new(recorder());
        e.schedule_at(SimTime::from_micros(30), 3);
        e.schedule_at(SimTime::from_micros(10), 1);
        e.schedule_at(SimTime::from_micros(20), 2);
        e.run();
        assert_eq!(e.world().log, vec![(10, 1), (20, 2), (30, 3)]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut e = Engine::new(recorder());
        for i in 0..10 {
            e.schedule_at(SimTime::from_micros(5), i);
        }
        e.run();
        let order: Vec<u32> = e.world().log.iter().map(|&(_, v)| v).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cancelation_from_outside_and_inside() {
        let mut e = Engine::new(recorder());
        let a = e.schedule_at(SimTime::from_micros(1), 7);
        assert!(e.cancel(a));
        assert!(!e.cancel(a), "double cancel reports false");
        e.schedule_at(SimTime::from_micros(2), 100);
        e.run();
        let evs: Vec<u32> = e.world().log.iter().map(|&(_, v)| v).collect();
        assert_eq!(evs, vec![100, 101], "102 was canceled in-handler");
    }

    #[test]
    fn cancel_after_fire_is_false() {
        let mut e = Engine::new(recorder());
        let a = e.schedule_at(SimTime::from_micros(1), 1);
        e.run();
        assert!(!e.cancel(a));
    }

    #[test]
    fn run_until_stops_and_advances_clock() {
        let mut e = Engine::new(recorder());
        e.schedule_at(SimTime::from_micros(10), 1);
        e.schedule_at(SimTime::from_micros(50), 2);
        e.run_until(SimTime::from_micros(20));
        assert_eq!(e.world().log, vec![(10, 1)]);
        assert_eq!(e.now(), SimTime::from_micros(20));
        e.run_until(SimTime::from_micros(50));
        assert_eq!(e.world().log.len(), 2);
    }

    #[test]
    fn run_until_dispatches_events_at_deadline() {
        let mut e = Engine::new(recorder());
        e.schedule_at(SimTime::from_micros(10), 1);
        e.run_until(SimTime::from_micros(10));
        assert_eq!(e.world().log, vec![(10, 1)]);
    }

    #[test]
    fn past_scheduling_clamps_to_now() {
        let mut e = Engine::new(recorder());
        e.schedule_at(SimTime::from_micros(10), 100);
        e.run_until(SimTime::from_micros(10));
        // Scheduling "at 3" when now is 10 must not rewind time.
        e.schedule_at(SimTime::from_micros(3), 9);
        e.run();
        let (t, _) = *e
            .world()
            .log
            .iter()
            .find(|&&(_, v)| v == 9)
            .expect("event 9 fired");
        assert!(t >= 10, "fired at {t}, before now");
    }

    #[test]
    fn run_while_predicate() {
        let mut e = Engine::new(recorder());
        for i in 0..100 {
            e.schedule_at(SimTime::from_micros(i), i as u32);
        }
        let satisfied = e.run_while(|w| w.log.len() < 5);
        assert!(satisfied);
        assert_eq!(e.world().log.len(), 5);
    }

    #[test]
    fn dispatched_counter() {
        let mut e = Engine::new(recorder());
        e.schedule_at(SimTime::from_micros(1), 1);
        e.schedule_at(SimTime::from_micros(2), 2);
        e.run();
        assert_eq!(e.dispatched(), 2);
    }

    #[test]
    fn next_event_time_skips_canceled() {
        let mut e = Engine::new(recorder());
        let a = e.schedule_at(SimTime::from_micros(5), 1);
        e.schedule_at(SimTime::from_micros(9), 2);
        e.cancel(a);
        assert_eq!(e.next_event_time(), Some(SimTime::from_micros(9)));
    }
}
