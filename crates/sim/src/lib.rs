//! Deterministic discrete-event simulation engine for the soft-timers
//! reproduction.
//!
//! The paper's evaluation runs on real FreeBSD kernels; our substitute is a
//! discrete-event simulation (see `DESIGN.md` section 2). This crate provides
//! the domain-neutral pieces:
//!
//! - [`SimTime`] / [`SimDuration`] — integer-nanosecond virtual time.
//! - [`Bandwidth`] — link and transmission rates with exact serialization
//!   delays.
//! - [`Engine`] — the event loop: a time-ordered queue with FIFO tie-break,
//!   cancelable events and a [`World`] dispatch trait.
//! - [`SimRng`] and distributions — seeded, reproducible randomness
//!   (exponential, log-normal, Pareto, empirical mixtures).
//!
//! Everything is deterministic given a seed: two runs with the same seed
//! produce bit-identical event orders (asserted by integration tests).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bandwidth;
pub mod dist;
pub mod engine;
pub mod rng;
pub mod time;

pub use bandwidth::Bandwidth;
pub use dist::{Empirical, Exp, Fixed, LogNormal, Mix, Pareto, SampleDist, Uniform};
pub use engine::{Ctx, Engine, EventId, World};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
