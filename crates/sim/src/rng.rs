//! Seeded, reproducible random-number generation.
//!
//! The generator is implemented in-repo (xoshiro256** over a splitmix64
//! seed expansion) so the workspace builds with no registry dependencies:
//! determinism across machines and toolchains is a hard requirement — the
//! fault-injection layer (`st-fault`) replays failing runs from a seed,
//! and every experiment must be bit-identical under its seed.

/// The workspace-wide random number generator.
///
/// A small deterministic generator (xoshiro256\*\*) that exposes exactly
/// the operations the simulation needs and nothing else, so that swapping
/// the underlying algorithm can never change the public API. Determinism
/// is a hard requirement: every experiment takes a seed and two runs with
/// the same seed must agree bit-for-bit.
///
/// # Examples
///
/// ```
/// use st_sim::SimRng;
///
/// let mut a = SimRng::seed(7);
/// let mut b = SimRng::seed(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
}

/// One step of splitmix64: the recommended seed expander for xoshiro.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        // Expand the seed through splitmix64 so that nearby seeds yield
        // uncorrelated states (and an all-zero state is unreachable).
        let mut s = seed;
        SimRng {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
        }
    }

    /// Derives an independent child generator; used to give each simulated
    /// component its own stream so that adding a component does not perturb
    /// the draws of the others.
    pub fn fork(&mut self, label: u64) -> SimRng {
        // Mix the label so forks with adjacent labels are uncorrelated.
        let base = self.next_u64();
        SimRng::seed(base ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// A uniformly distributed `u64` (xoshiro256\*\* step).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }

    /// A uniform float in `[0, 1)` (53 high bits of one draw).
    pub fn uniform01(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics when `lo > hi`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "empty uniform range [{lo}, {hi})");
        lo + (hi - lo) * self.uniform01()
    }

    /// A uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty integer range [{lo}, {hi})");
        let span = hi - lo;
        // Debiased multiply-shift (Lemire): rejection keeps the draw
        // uniform without a modulo in the common case.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (span as u128);
            let low = m as u64;
            if low < span {
                let threshold = span.wrapping_neg() % span;
                if low < threshold {
                    continue;
                }
            }
            return lo + (m >> 64) as u64;
        }
    }

    /// A uniform index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot pick from an empty collection");
        self.range_u64(0, n as u64) as usize
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform01() < p.clamp(0.0, 1.0)
    }

    /// A standard normal draw (Box-Muller; one value per call).
    pub fn standard_normal(&mut self) -> f64 {
        // Draw u in (0, 1] to avoid ln(0).
        let u = 1.0 - self.uniform01();
        let v = self.uniform01();
        (-2.0 * u.ln()).sqrt() * (2.0 * std::f64::consts::PI * v).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed(42);
        let mut b = SimRng::seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams should diverge");
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = SimRng::seed(0);
        let a = r.next_u64();
        let b = r.next_u64();
        assert_ne!(a, b, "state must not be stuck");
    }

    #[test]
    fn forks_are_reproducible_and_distinct() {
        let mut root1 = SimRng::seed(9);
        let mut root2 = SimRng::seed(9);
        let mut a1 = root1.fork(1);
        let mut a2 = root2.fork(1);
        assert_eq!(a1.next_u64(), a2.next_u64());

        let mut root3 = SimRng::seed(9);
        let mut b = root3.fork(2);
        // Fork 1 from a fresh root and fork 2 should disagree.
        let mut root4 = SimRng::seed(9);
        let mut a = root4.fork(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_bounds() {
        let mut r = SimRng::seed(3);
        for _ in 0..10_000 {
            let v = r.uniform(2.0, 5.0);
            assert!((2.0..5.0).contains(&v));
            let i = r.range_u64(10, 20);
            assert!((10..20).contains(&i));
        }
    }

    #[test]
    fn uniform01_in_unit_interval() {
        let mut r = SimRng::seed(11);
        let mut sum = 0.0;
        for _ in 0..100_000 {
            let v = r.uniform01();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_u64_covers_all_values() {
        let mut r = SimRng::seed(6);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.range_u64(0, 8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of [0, 8) should appear");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed(4);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-5.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn normal_moments() {
        let mut r = SimRng::seed(5);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sq = 0.0;
        for _ in 0..n {
            let v = r.standard_normal();
            sum += v;
            sq += v * v;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }
}
