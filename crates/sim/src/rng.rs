//! Seeded, reproducible random-number generation.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// The workspace-wide random number generator.
///
/// A thin wrapper over a seeded [`SmallRng`] that exposes exactly the
/// operations the simulation needs and nothing else, so that swapping the
/// underlying generator can never change the public API. Determinism is a
/// hard requirement: every experiment takes a seed and two runs with the
/// same seed must agree bit-for-bit.
///
/// # Examples
///
/// ```
/// use st_sim::SimRng;
///
/// let mut a = SimRng::seed(7);
/// let mut b = SimRng::seed(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator; used to give each simulated
    /// component its own stream so that adding a component does not perturb
    /// the draws of the others.
    pub fn fork(&mut self, label: u64) -> SimRng {
        // Mix the label so forks with adjacent labels are uncorrelated.
        let base = self.next_u64();
        SimRng::seed(base ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// A uniformly distributed `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.random()
    }

    /// A uniform float in `[0, 1)`.
    pub fn uniform01(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// A uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics when `lo > hi`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "empty uniform range [{lo}, {hi})");
        lo + (hi - lo) * self.uniform01()
    }

    /// A uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty integer range [{lo}, {hi})");
        self.inner.random_range(lo..hi)
    }

    /// A uniform index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot pick from an empty collection");
        self.inner.random_range(0..n)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform01() < p.clamp(0.0, 1.0)
    }

    /// A standard normal draw (Box-Muller; one value per call).
    pub fn standard_normal(&mut self) -> f64 {
        // Draw u in (0, 1] to avoid ln(0).
        let u = 1.0 - self.uniform01();
        let v = self.uniform01();
        (-2.0 * u.ln()).sqrt() * (2.0 * std::f64::consts::PI * v).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed(42);
        let mut b = SimRng::seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams should diverge");
    }

    #[test]
    fn forks_are_reproducible_and_distinct() {
        let mut root1 = SimRng::seed(9);
        let mut root2 = SimRng::seed(9);
        let mut a1 = root1.fork(1);
        let mut a2 = root2.fork(1);
        assert_eq!(a1.next_u64(), a2.next_u64());

        let mut root3 = SimRng::seed(9);
        let mut b = root3.fork(2);
        // Fork 1 from a fresh root and fork 2 should disagree.
        let mut root4 = SimRng::seed(9);
        let mut a = root4.fork(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_bounds() {
        let mut r = SimRng::seed(3);
        for _ in 0..10_000 {
            let v = r.uniform(2.0, 5.0);
            assert!((2.0..5.0).contains(&v));
            let i = r.range_u64(10, 20);
            assert!((10..20).contains(&i));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed(4);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-5.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn normal_moments() {
        let mut r = SimRng::seed(5);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sq = 0.0;
        for _ in 0..n {
            let v = r.standard_normal();
            sum += v;
            sq += v * v;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }
}
