//! Link bandwidth and serialization delays.

use crate::time::{SimDuration, NANOS_PER_SEC};

/// A transmission rate in bits per second.
///
/// The paper's key rates: 100 Mbps Fast Ethernet serializes a 1500-byte
/// frame in 120 µs; Gigabit Ethernet in 12 µs (§2).
///
/// # Examples
///
/// ```
/// use st_sim::Bandwidth;
///
/// let fe = Bandwidth::mbps(100);
/// assert_eq!(fe.serialization_time(1500).as_micros(), 120);
/// let ge = Bandwidth::gbps(1);
/// assert_eq!(ge.serialization_time(1500).as_micros(), 12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bandwidth {
    bits_per_sec: u64,
}

impl Bandwidth {
    /// Constructs from bits per second.
    ///
    /// # Panics
    ///
    /// Panics when `bps` is zero — links always have positive capacity; a
    /// "down" link is modeled by not delivering, not by zero bandwidth.
    pub const fn bps(bps: u64) -> Self {
        assert!(bps > 0, "bandwidth must be positive");
        Bandwidth { bits_per_sec: bps }
    }

    /// Constructs from kilobits per second (10^3).
    pub const fn kbps(k: u64) -> Self {
        Bandwidth::bps(k * 1_000)
    }

    /// Constructs from megabits per second (10^6).
    pub const fn mbps(m: u64) -> Self {
        Bandwidth::bps(m * 1_000_000)
    }

    /// Constructs from gigabits per second (10^9).
    pub const fn gbps(g: u64) -> Self {
        Bandwidth::bps(g * 1_000_000_000)
    }

    /// Raw bits per second.
    pub const fn bits_per_sec(self) -> u64 {
        self.bits_per_sec
    }

    /// Megabits per second as a float (for reporting).
    pub fn as_mbps_f64(self) -> f64 {
        self.bits_per_sec as f64 / 1e6
    }

    /// The time to serialize `bytes` onto the wire at this rate.
    ///
    /// Rounds up to the next nanosecond so queueing never under-accounts.
    pub fn serialization_time(self, bytes: u64) -> SimDuration {
        let bits = bytes as u128 * 8;
        // ns = bits * 1e9 / bps; 128-bit intermediate avoids overflow for
        // any realistic byte count.
        let exact = (bits * NANOS_PER_SEC as u128).div_ceil(self.bits_per_sec as u128);
        SimDuration::from_nanos(exact as u64)
    }

    /// The byte count that can be serialized in `d` (truncating).
    pub fn bytes_in(self, d: SimDuration) -> u64 {
        (d.as_nanos() as u128 * self.bits_per_sec as u128 / 8 / NANOS_PER_SEC as u128) as u64
    }

    /// Bandwidth-delay product in bytes for a path with round-trip time
    /// `rtt` (the paper's 5 Mbit / 10 Mbit pipes of Tables 6-7).
    pub fn bdp_bytes(self, rtt: SimDuration) -> u64 {
        self.bytes_in(rtt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_serialization_times() {
        assert_eq!(
            Bandwidth::mbps(100).serialization_time(1500).as_micros(),
            120
        );
        assert_eq!(Bandwidth::gbps(1).serialization_time(1500).as_micros(), 12);
        // 1448-byte TCP payloads from Tables 6-7 ride in 1500-byte frames,
        // but the emulator clocks payload bytes; check that too.
        assert_eq!(
            Bandwidth::mbps(50).serialization_time(1500).as_nanos(),
            240_000
        );
    }

    #[test]
    fn serialization_rounds_up() {
        // 1 byte at 3 bps = 8/3 s = 2.66..s -> rounds up.
        let d = Bandwidth::bps(3).serialization_time(1);
        assert_eq!(d.as_nanos(), 2_666_666_667);
    }

    #[test]
    fn zero_bytes_is_instant() {
        assert_eq!(
            Bandwidth::mbps(100).serialization_time(0),
            SimDuration::ZERO
        );
    }

    #[test]
    fn bytes_in_inverts_serialization() {
        let bw = Bandwidth::mbps(100);
        let d = bw.serialization_time(6_000);
        assert_eq!(bw.bytes_in(d), 6_000);
    }

    #[test]
    fn bdp_matches_paper() {
        // 100 ms RTT at 50 Mbps = 5 Mbit = 625 kB.
        let bdp = Bandwidth::mbps(50).bdp_bytes(SimDuration::from_millis(100));
        assert_eq!(bdp, 625_000);
    }

    #[test]
    fn mbps_reporting() {
        assert!((Bandwidth::mbps(100).as_mbps_f64() - 100.0).abs() < 1e-9);
    }
}
