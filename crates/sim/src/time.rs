//! Integer-nanosecond virtual time.
//!
//! The paper's measurement clock is "usually a CPU register" read at 1 MHz
//! or finer; the simulator keeps virtual time in nanoseconds so that every
//! relevant clock (cycle counter, 1 MHz measurement clock, 1 kHz interrupt
//! clock, link serialization times) can be derived without rounding
//! surprises.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// Nanoseconds per microsecond.
pub const NANOS_PER_MICRO: u64 = 1_000;
/// Nanoseconds per millisecond.
pub const NANOS_PER_MILLI: u64 = 1_000_000;
/// Nanoseconds per second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;
/// Microseconds per second.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// A point in virtual time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A length of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Constructs from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Constructs from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * NANOS_PER_MICRO)
    }

    /// Constructs from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * NANOS_PER_MILLI)
    }

    /// Constructs from seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * NANOS_PER_SEC)
    }

    /// Raw nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds since the epoch (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / NANOS_PER_MICRO
    }

    /// Seconds since the epoch as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }

    /// Number of whole ticks of a clock with `hz` resolution at this time.
    ///
    /// E.g. `ticks(1_000_000)` converts to the paper's 1 MHz measurement
    /// clock.
    pub fn ticks(self, hz: u64) -> u64 {
        // Split to avoid overflow: ns * hz can exceed u64 for long runs.
        let secs = self.0 / NANOS_PER_SEC;
        let rem = self.0 % NANOS_PER_SEC;
        secs * hz + rem * hz / NANOS_PER_SEC
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Constructs from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Constructs from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * NANOS_PER_MICRO)
    }

    /// Constructs from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * NANOS_PER_MILLI)
    }

    /// Constructs from seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * NANOS_PER_SEC)
    }

    /// Constructs from a float number of microseconds (rounds to ns).
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite input.
    pub fn from_micros_f64(us: f64) -> Self {
        assert!(us.is_finite() && us >= 0.0, "invalid duration {us} us");
        SimDuration((us * 1_000.0).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / NANOS_PER_MICRO
    }

    /// Microseconds as a float (for statistics).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Checked multiplication by an integer factor.
    pub fn checked_mul(self, k: u64) -> Option<SimDuration> {
        self.0.checked_mul(k).map(SimDuration)
    }

    /// The period of a clock running at `hz` Hertz.
    ///
    /// # Panics
    ///
    /// Panics when `hz` is zero.
    pub fn from_hz(hz: u64) -> SimDuration {
        assert!(hz > 0, "frequency must be non-zero");
        SimDuration(NANOS_PER_SEC / hz)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0 - d.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0 - other.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 + other.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        self.0 += other.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 - other.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, other: SimDuration) {
        self.0 -= other.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = u64;
    fn div(self, other: SimDuration) -> u64 {
        self.0 / other.0
    }
}

impl Rem<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn rem(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 % other.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= NANOS_PER_SEC {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= NANOS_PER_MILLI {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= NANOS_PER_MICRO {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimTime::from_millis(2).as_micros(), 2_000);
        assert_eq!(SimTime::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_hz(1_000).as_micros(), 1_000);
        assert_eq!(SimDuration::from_hz(1_000_000).as_nanos(), 1_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_micros(10) + SimDuration::from_micros(5);
        assert_eq!(t.as_micros(), 15);
        assert_eq!((t - SimTime::from_micros(10)).as_micros(), 5);
        assert_eq!(t.since(SimTime::from_micros(20)), SimDuration::ZERO);
        assert_eq!(SimDuration::from_micros(9) / SimDuration::from_micros(2), 4);
        assert_eq!(
            SimDuration::from_micros(9) % SimDuration::from_micros(2),
            SimDuration::from_micros(1)
        );
    }

    #[test]
    fn ticks_do_not_overflow_for_long_runs() {
        // One day of virtual time at 1 GHz measurement resolution.
        let t = SimTime::from_secs(86_400);
        assert_eq!(t.ticks(1_000_000_000), 86_400_000_000_000);
        // And at the paper's 1 MHz clock.
        assert_eq!(t.ticks(1_000_000), 86_400_000_000);
    }

    #[test]
    fn ticks_truncate() {
        let t = SimTime::from_nanos(2_500);
        assert_eq!(t.ticks(1_000_000), 2); // 2.5 us -> 2 ticks
    }

    #[test]
    fn display_picks_scale() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }

    #[test]
    fn from_micros_f64_rounds() {
        assert_eq!(SimDuration::from_micros_f64(1.2345).as_nanos(), 1_235);
        assert_eq!(SimDuration::from_micros_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn from_micros_f64_rejects_negative() {
        let _ = SimDuration::from_micros_f64(-1.0);
    }
}
