//! Sampleable distributions for workload modeling.
//!
//! The trigger-state workloads of the paper (Table 1) mix several event
//! processes: Poisson-like syscall streams (exponential gaps), heavy-tailed
//! compute bursts (Pareto), multiplicative service times (log-normal) and
//! recorded empirical mixtures. All distributions sample through
//! [`SimRng`] so that experiments stay deterministic under a seed.

use crate::rng::SimRng;
use crate::time::SimDuration;

/// A distribution over non-negative real values (interpreted by callers as
/// microseconds, bytes, etc.).
pub trait SampleDist {
    /// Draws one sample.
    fn sample(&self, rng: &mut SimRng) -> f64;

    /// Draws one sample interpreted as microseconds and converted to a
    /// duration, clamped to be non-negative.
    fn sample_micros(&self, rng: &mut SimRng) -> SimDuration {
        SimDuration::from_micros_f64(self.sample(rng).max(0.0))
    }
}

/// Exponential distribution with the given mean (inverse-CDF sampling).
#[derive(Debug, Clone, Copy)]
pub struct Exp {
    mean: f64,
}

impl Exp {
    /// Creates an exponential distribution with mean `mean`.
    ///
    /// # Panics
    ///
    /// Panics unless `mean` is finite and positive.
    pub fn with_mean(mean: f64) -> Self {
        assert!(mean.is_finite() && mean > 0.0, "invalid mean {mean}");
        Exp { mean }
    }

    /// Creates from a rate (events per unit time).
    pub fn with_rate(rate: f64) -> Self {
        Exp::with_mean(1.0 / rate)
    }

    /// The configured mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }
}

impl SampleDist for Exp {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        // Inverse CDF; 1 - u in (0, 1] avoids ln(0).
        -self.mean * (1.0 - rng.uniform01()).ln()
    }
}

/// Uniform distribution over `[lo, hi)`.
#[derive(Debug, Clone, Copy)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics when `lo > hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "empty range [{lo}, {hi})");
        Uniform { lo, hi }
    }
}

impl SampleDist for Uniform {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        rng.uniform(self.lo, self.hi)
    }
}

/// Log-normal distribution parameterized by the median and the shape
/// (sigma of the underlying normal).
///
/// Service-time-like quantities — per-request CPU work, disk access times —
/// are well modeled as log-normal: strictly positive with occasional long
/// values.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal with the given median and shape.
    ///
    /// # Panics
    ///
    /// Panics unless `median > 0` and `sigma >= 0`.
    pub fn with_median(median: f64, sigma: f64) -> Self {
        assert!(median > 0.0, "median must be positive");
        assert!(sigma >= 0.0, "sigma must be non-negative");
        LogNormal {
            mu: median.ln(),
            sigma,
        }
    }

    /// Theoretical mean `exp(mu + sigma^2 / 2)`.
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }
}

impl SampleDist for LogNormal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        (self.mu + self.sigma * rng.standard_normal()).exp()
    }
}

/// Bounded Pareto distribution over `[lo, hi]` with tail index `alpha`.
///
/// Heavy-tailed but with a hard cap, matching quantities like compute-burst
/// lengths that are bounded by the scheduler's time slice.
#[derive(Debug, Clone, Copy)]
pub struct Pareto {
    lo: f64,
    hi: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates a bounded Pareto over `[lo, hi]` with tail index `alpha`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < lo < hi` and `alpha > 0`.
    pub fn bounded(lo: f64, hi: f64, alpha: f64) -> Self {
        assert!(lo > 0.0 && lo < hi, "invalid bounds [{lo}, {hi}]");
        assert!(alpha > 0.0, "alpha must be positive");
        Pareto { lo, hi, alpha }
    }
}

impl SampleDist for Pareto {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        // Inverse CDF of the bounded Pareto.
        let u = rng.uniform01();
        let la = self.lo.powf(self.alpha);
        let ha = self.hi.powf(self.alpha);
        let x = -(u * ha - u * la - ha) / (ha * la);
        x.powf(-1.0 / self.alpha)
    }
}

/// A fixed (degenerate) distribution that always returns one value.
#[derive(Debug, Clone, Copy)]
pub struct Fixed(pub f64);

impl SampleDist for Fixed {
    fn sample(&self, _rng: &mut SimRng) -> f64 {
        self.0
    }
}

/// Empirical distribution: samples uniformly from recorded values, or from
/// weighted `(value, weight)` atoms.
#[derive(Debug, Clone)]
pub struct Empirical {
    values: Vec<f64>,
    cumulative: Vec<f64>,
}

impl Empirical {
    /// Builds from raw recorded values, sampled uniformly.
    ///
    /// # Panics
    ///
    /// Panics when `values` is empty.
    pub fn from_values(values: Vec<f64>) -> Self {
        assert!(!values.is_empty(), "empirical distribution needs samples");
        Empirical {
            values,
            cumulative: Vec::new(),
        }
    }

    /// Builds from weighted atoms.
    ///
    /// # Panics
    ///
    /// Panics when `atoms` is empty or total weight is not positive.
    pub fn from_weighted(atoms: &[(f64, f64)]) -> Self {
        assert!(!atoms.is_empty(), "empirical distribution needs atoms");
        let total: f64 = atoms.iter().map(|&(_, w)| w).sum();
        assert!(total > 0.0, "total weight must be positive");
        let mut cum = 0.0;
        let mut values = Vec::with_capacity(atoms.len());
        let mut cumulative = Vec::with_capacity(atoms.len());
        for &(v, w) in atoms {
            assert!(w >= 0.0, "negative weight");
            cum += w / total;
            values.push(v);
            cumulative.push(cum);
        }
        // Guard against floating point drift on the last atom.
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        Empirical { values, cumulative }
    }

    /// Number of atoms or recorded values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the distribution is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl SampleDist for Empirical {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        if self.cumulative.is_empty() {
            self.values[rng.index(self.values.len())]
        } else {
            let u = rng.uniform01();
            let idx = self.cumulative.partition_point(|&c| c < u);
            self.values[idx.min(self.values.len() - 1)]
        }
    }
}

/// A two-component mixture: with probability `p` draw from `a`, else `b`.
#[derive(Debug, Clone)]
pub struct Mix<A, B> {
    /// Probability of drawing from the first component.
    pub p: f64,
    /// First component.
    pub a: A,
    /// Second component.
    pub b: B,
}

impl<A: SampleDist, B: SampleDist> SampleDist for Mix<A, B> {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        if rng.chance(self.p) {
            self.a.sample(rng)
        } else {
            self.b.sample(rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_of(d: &impl SampleDist, n: usize, seed: u64) -> f64 {
        let mut rng = SimRng::seed(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn exponential_mean() {
        let d = Exp::with_mean(30.0);
        let m = mean_of(&d, 200_000, 1);
        assert!((m - 30.0).abs() < 0.5, "mean {m}");
    }

    #[test]
    fn exponential_rate_matches_mean() {
        let d = Exp::with_rate(0.1);
        assert!((d.mean() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_mean() {
        let d = Uniform::new(10.0, 20.0);
        let m = mean_of(&d, 100_000, 2);
        assert!((m - 15.0).abs() < 0.1, "mean {m}");
    }

    #[test]
    fn lognormal_median_and_mean() {
        let d = LogNormal::with_median(18.0, 0.8);
        let mut rng = SimRng::seed(3);
        let mut v: Vec<f64> = (0..100_001).map(|_| d.sample(&mut rng)).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = v[v.len() / 2];
        assert!((med - 18.0).abs() < 0.8, "median {med}");
        let m = v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            (m - d.mean()).abs() / d.mean() < 0.05,
            "mean {m} vs {}",
            d.mean()
        );
    }

    #[test]
    fn pareto_within_bounds() {
        let d = Pareto::bounded(2.0, 1000.0, 1.1);
        let mut rng = SimRng::seed(4);
        for _ in 0..50_000 {
            let v = d.sample(&mut rng);
            assert!((2.0..=1000.0).contains(&v), "out of bounds {v}");
        }
    }

    #[test]
    fn pareto_is_heavy_tailed() {
        let d = Pareto::bounded(2.0, 1000.0, 1.1);
        let mut rng = SimRng::seed(5);
        let n = 100_000;
        let big = (0..n).filter(|_| d.sample(&mut rng) > 100.0).count();
        // P(X > 100) for bounded pareto(2, 1000, 1.1) is about 1.3%.
        let frac = big as f64 / n as f64;
        assert!(frac > 0.005 && frac < 0.05, "tail fraction {frac}");
    }

    #[test]
    fn fixed_is_constant() {
        let mut rng = SimRng::seed(6);
        assert_eq!(Fixed(7.0).sample(&mut rng), 7.0);
        assert_eq!(Fixed(7.0).sample_micros(&mut rng).as_micros(), 7);
    }

    #[test]
    fn empirical_uniform_sampling() {
        let d = Empirical::from_values(vec![1.0, 2.0, 3.0]);
        let mut rng = SimRng::seed(7);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[d.sample(&mut rng) as usize - 1] += 1;
        }
        for c in counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "count {c}");
        }
    }

    #[test]
    fn empirical_weighted_sampling() {
        let d = Empirical::from_weighted(&[(1.0, 9.0), (2.0, 1.0)]);
        let mut rng = SimRng::seed(8);
        let n = 50_000;
        let ones = (0..n).filter(|_| d.sample(&mut rng) == 1.0).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.9).abs() < 0.01, "fraction {frac}");
    }

    #[test]
    fn mixture_blends() {
        let d = Mix {
            p: 0.25,
            a: Fixed(0.0),
            b: Fixed(100.0),
        };
        let m = mean_of(&d, 100_000, 9);
        assert!((m - 75.0).abs() < 1.0, "mean {m}");
    }

    #[test]
    #[should_panic(expected = "needs samples")]
    fn empirical_rejects_empty() {
        let _ = Empirical::from_values(vec![]);
    }

    #[test]
    fn sample_micros_clamps_negative() {
        // A distribution that returns a negative number.
        struct Neg;
        impl SampleDist for Neg {
            fn sample(&self, _rng: &mut SimRng) -> f64 {
                -5.0
            }
        }
        let mut rng = SimRng::seed(10);
        assert_eq!(Neg.sample_micros(&mut rng), SimDuration::ZERO);
    }
}
