//! Exporters: Chrome `trace_event` JSON, JSON-lines metrics, and a
//! human summary.

use std::fmt::Write as _;

use crate::event::Category;
use crate::json::{number, ObjectBuilder};
use crate::snapshot::Snapshot;

/// Renders the snapshot as Chrome `trace_event` JSON.
///
/// Load the result in [Perfetto](https://ui.perfetto.dev) or
/// `chrome://tracing`.  Every event becomes an instant event (`"ph":
/// "i"`), timestamps are interpreted as microseconds, and each
/// [`Category`] maps to its own `tid` so layers render as separate
/// tracks.  Thread-name metadata rows label the tracks.
pub fn chrome_trace_json(snap: &Snapshot) -> String {
    let mut rows: Vec<String> = Vec::with_capacity(snap.events.len() + Category::ALL.len());
    for cat in Category::ALL {
        rows.push(
            ObjectBuilder::new()
                .str("name", "thread_name")
                .str("ph", "M")
                .u64("pid", 1)
                .u64("tid", cat.index() as u64 + 1)
                .raw(
                    "args",
                    &ObjectBuilder::new().str("name", cat.label()).build(),
                )
                .build(),
        );
    }
    for ev in &snap.events {
        rows.push(
            ObjectBuilder::new()
                .str("name", ev.name)
                .str("cat", ev.cat.label())
                .str("ph", "i")
                .str("s", "t")
                .u64("ts", ev.ts)
                .u64("pid", 1)
                .u64("tid", ev.cat.index() as u64 + 1)
                .raw(
                    "args",
                    &ObjectBuilder::new().u64("a", ev.a).u64("b", ev.b).build(),
                )
                .build(),
        );
    }
    format!(
        "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\",\"otherData\":{}}}",
        rows.join(",\n"),
        ObjectBuilder::new()
            .u64("dropped_events", snap.dropped)
            .build()
    )
}

/// Renders the metrics registry as JSON lines.
///
/// One object per line: a `trace` header (event/drop totals), then one
/// `counter` object per counter and one `histogram` object per
/// histogram (count, quantiles, overflow).
pub fn metrics_jsonl(snap: &Snapshot) -> String {
    let mut out = String::new();
    out.push_str(
        &ObjectBuilder::new()
            .str("type", "trace")
            .u64("events", snap.events.len() as u64)
            .u64("dropped", snap.dropped)
            .u64("truncated", u64::from(snap.dropped > 0))
            .build(),
    );
    out.push('\n');
    for (name, value) in snap.registry.counters() {
        out.push_str(
            &ObjectBuilder::new()
                .str("type", "counter")
                .str("name", name)
                .u64("value", value)
                .build(),
        );
        out.push('\n');
    }
    for (name, hist) in snap.registry.histograms() {
        out.push_str(
            &ObjectBuilder::new()
                .str("type", "histogram")
                .str("name", name)
                .u64("count", hist.count())
                .f64("p50", hist.quantile(0.5).unwrap_or(f64::NAN))
                .f64("p90", hist.quantile(0.9).unwrap_or(f64::NAN))
                .f64("p99", hist.quantile(0.99).unwrap_or(f64::NAN))
                .u64("overflow", hist.overflow())
                .build(),
        );
        out.push('\n');
    }
    out
}

/// Renders a short human-readable summary of the recording.
pub fn summary(snap: &Snapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace: {} events retained, {} dropped",
        snap.events.len(),
        snap.dropped
    );
    if snap.dropped > 0 {
        let _ = writeln!(
            out,
            "WARNING: flight recorder truncated — the {} oldest events were \
             evicted; raise TraceConfig.capacity to keep the full run",
            snap.dropped
        );
    }
    let mut per_cat = [0usize; Category::ALL.len()];
    for ev in &snap.events {
        per_cat[ev.cat.index()] += 1;
    }
    for cat in Category::ALL {
        if per_cat[cat.index()] > 0 {
            let _ = writeln!(
                out,
                "  {:<11} {:>8} events",
                cat.label(),
                per_cat[cat.index()]
            );
        }
    }
    let mut counters = snap.registry.counters().peekable();
    if counters.peek().is_some() {
        let _ = writeln!(out, "counters:");
        for (name, value) in counters {
            let _ = writeln!(out, "  {name:<32} {value:>12}");
        }
    }
    let mut hists = snap.registry.histograms().peekable();
    if hists.peek().is_some() {
        let _ = writeln!(out, "histograms (count / p50 / p99 / overflow):");
        for (name, hist) in hists {
            let _ = writeln!(
                out,
                "  {name:<32} {:>8} / {} / {} / {}",
                hist.count(),
                number(hist.quantile(0.5).unwrap_or(f64::NAN)),
                number(hist.quantile(0.99).unwrap_or(f64::NAN)),
                hist.overflow()
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::json::validate;
    use crate::registry::Registry;

    fn sample() -> Snapshot {
        let mut registry = Registry::new();
        registry.count("facility.fired.trigger", 41);
        registry.observe("facility.delay_ticks", 3.0);
        registry.observe("facility.delay_ticks", 1e9);
        Snapshot {
            events: vec![
                Event {
                    ts: 5,
                    cat: Category::Kernel,
                    name: "syscalls",
                    a: 0,
                    b: 12,
                },
                Event {
                    ts: 9,
                    cat: Category::Facility,
                    name: "facility.fire.trigger",
                    a: 8,
                    b: 1,
                },
            ],
            dropped: 2,
            registry,
        }
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_rows() {
        let json = chrome_trace_json(&sample());
        validate(&json).expect("chrome trace must be valid JSON");
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"facility.fire.trigger\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"dropped_events\":2"));
    }

    #[test]
    fn metrics_jsonl_lines_each_validate() {
        let dump = metrics_jsonl(&sample());
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 3); // trace header + 1 counter + 1 histogram
        for line in &lines {
            validate(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        assert!(lines[1].contains("\"facility.fired.trigger\""));
        assert!(lines[2].contains("\"overflow\":1"));
    }

    #[test]
    fn summary_mentions_counts() {
        let text = summary(&sample());
        assert!(text.contains("2 events retained"));
        assert!(text.contains("facility.fired.trigger"));
        assert!(text.contains("kernel"));
    }

    #[test]
    fn truncation_is_never_silent() {
        // The sample snapshot dropped 2 events: the summary warns and
        // the JSONL header flags it.
        let text = summary(&sample());
        assert!(text.contains("WARNING"), "no truncation warning:\n{text}");
        assert!(text.contains("2 oldest events"), "{text}");
        let header = metrics_jsonl(&sample());
        let header = header.lines().next().unwrap().to_string();
        assert!(header.contains("\"truncated\":1"), "{header}");

        // An un-truncated snapshot stays quiet.
        let mut snap = sample();
        snap.dropped = 0;
        assert!(!summary(&snap).contains("WARNING"));
        assert!(metrics_jsonl(&snap)
            .lines()
            .next()
            .unwrap()
            .contains("\"truncated\":0"));
    }
}
