//! Cross-layer tracing and metrics for the soft-timers reproduction.
//!
//! The paper's evidence is measurement: every check and fire must be
//! attributable to its trigger source with microsecond provenance
//! (Figures 2/3, Table 1) and the facility's own cost must be known
//! (Table 2). This crate is the observability substrate that makes
//! those measurements first-class instead of buried in aggregates:
//!
//! - [`TraceSession`] — a thread-local flight recorder; while active,
//!   instrumented code records structured [`Event`]s into a bounded
//!   drop-oldest [`ring::Ring`] and metrics into a [`Registry`].
//! - [`emit`] / [`count`] / [`observe`] — the emit-side API used by
//!   `st-kernel`, `st-core`, `st-net`, `st-tcp` and `st-fault`.  With
//!   no active session these are a sealed no-op (one thread-local load
//!   and a branch), so always-on instrumentation costs hot paths
//!   nearly nothing.
//! - [`Snapshot`] — the captured stream plus registry, exportable as
//!   Chrome `trace_event` JSON (Perfetto-loadable), JSON-lines metric
//!   dumps, or a human summary.
//! - [`json`] — the hand-rolled JSON writer/validator the exporters
//!   (and the `repro --json` flag) are built on; the workspace is
//!   hermetic, so no serde.
//!
//! Sessions are per-thread by design: concurrent tests in one binary
//! cannot pollute each other's recordings, and the emit path needs no
//! synchronization.  The flip side is that activity on *other*
//! threads (e.g. the `rt` backup thread) is invisible to a session;
//! callers that need it must start a session on that thread.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod export;
pub mod json;
pub mod registry;
pub mod ring;
pub mod snapshot;
pub mod tracer;

pub use event::{Category, Event};
pub use registry::Registry;
pub use snapshot::Snapshot;
pub use tracer::{
    active, count, counters_snapshot, emit, observe, resume, suspend, Suspended, TraceConfig,
    TraceSession,
};
