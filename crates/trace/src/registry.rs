//! Named metrics registry: monotonic counters and value histograms.
//!
//! Metric names are `&'static str` so instrumentation sites pay a
//! `BTreeMap` lookup, never an allocation.  Histograms use the
//! `st-stats` linear [`Histogram`] (1-unit buckets, explicit overflow
//! bucket) so quantiles survive into snapshots without keeping raw
//! samples.

use std::collections::BTreeMap;

use st_stats::Histogram;

/// Number of 1-unit buckets in registry histograms; values at or above
/// this land in the histogram's explicit overflow bucket.
pub const HISTOGRAM_BUCKETS: usize = 4096;

/// Counters plus histograms, keyed by static metric name.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Adds `n` to the named counter, creating it at zero first.
    pub fn count(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Records one observation into the named histogram, creating it
    /// with the default geometry first.
    pub fn observe(&mut self, name: &'static str, value: f64) {
        self.histograms
            .entry(name)
            .or_insert_with(|| Histogram::new(1.0, HISTOGRAM_BUCKETS))
            .record(value);
    }

    /// Current value of a counter (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named histogram, when at least one value was observed.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(&k, v)| (k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut r = Registry::new();
        assert_eq!(r.counter("a"), 0);
        r.count("a", 2);
        r.count("a", 3);
        r.count("b", 1);
        assert_eq!(r.counter("a"), 5);
        assert_eq!(r.counter("b"), 1);
        let names: Vec<&str> = r.counters().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn observations_feed_quantiles_and_overflow() {
        let mut r = Registry::new();
        for i in 0..100 {
            r.observe("lat", i as f64);
        }
        r.observe("lat", 1e9); // beyond the bucket range
        let h = r.histogram("lat").expect("histogram exists");
        assert_eq!(h.count(), 101);
        assert_eq!(h.overflow(), 1);
        assert!(h.median().unwrap() < 100.0);
        assert!(r.histogram("missing").is_none());
    }
}
