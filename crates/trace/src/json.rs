//! Minimal JSON writing, validation, and parsing.
//!
//! The workspace is hermetic (no registry dependencies), so exports are
//! built with a small hand-rolled writer and checked with an equally
//! small recursive-descent validator.  The validator exists so tests,
//! the `trace_overhead` experiment, and the `repro` CLI can prove that
//! every export round-trips as syntactically valid JSON without
//! shelling out to an external parser.  [`parse`] builds a [`Value`]
//! tree for consumers that need to *read* exports back — the perf gate
//! compares two `BENCH_*.json` files through it.

/// Escapes a string for embedding inside a JSON string literal
/// (without the surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number token.
///
/// JSON has no NaN/Infinity, so non-finite values render as `null`;
/// integral values render without a fraction part.
pub fn number(v: f64) -> String {
    if !v.is_finite() {
        "null".to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        // `{}` on f64 always yields a valid JSON number token.
        format!("{v}")
    }
}

/// Incremental `{...}` object writer.
#[derive(Debug, Default)]
pub struct ObjectBuilder {
    body: String,
}

impl ObjectBuilder {
    /// Starts an empty object.
    pub fn new() -> ObjectBuilder {
        ObjectBuilder::default()
    }

    fn key(&mut self, key: &str) {
        if !self.body.is_empty() {
            self.body.push(',');
        }
        self.body.push('"');
        self.body.push_str(&escape(key));
        self.body.push_str("\":");
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        self.body.push('"');
        self.body.push_str(&escape(value));
        self.body.push('"');
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, key: &str, value: u64) -> Self {
        self.key(key);
        self.body.push_str(&value.to_string());
        self
    }

    /// Adds a floating-point field (`null` when non-finite).
    pub fn f64(mut self, key: &str, value: f64) -> Self {
        self.key(key);
        self.body.push_str(&number(value));
        self
    }

    /// Adds a field whose value is already-serialized JSON.
    pub fn raw(mut self, key: &str, json: &str) -> Self {
        self.key(key);
        self.body.push_str(json);
        self
    }

    /// Finishes the object.
    pub fn build(self) -> String {
        format!("{{{}}}", self.body)
    }
}

/// Validates that `s` is exactly one well-formed JSON value.
///
/// Returns the byte offset and a message on the first syntax error.
pub fn validate(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut pos = skip_ws(b, 0);
    pos = value(b, pos)?;
    pos = skip_ws(b, pos);
    if pos != b.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], mut pos: usize) -> usize {
    while pos < b.len() && matches!(b[pos], b' ' | b'\t' | b'\n' | b'\r') {
        pos += 1;
    }
    pos
}

fn value(b: &[u8], pos: usize) -> Result<usize, String> {
    match b.get(pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, "true"),
        Some(b'f') => literal(b, pos, "false"),
        Some(b'n') => literal(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => num(b, pos),
        Some(c) => Err(format!("unexpected byte {:?} at {pos}", *c as char)),
        None => Err(format!("unexpected end of input at byte {pos}")),
    }
}

fn literal(b: &[u8], pos: usize, word: &str) -> Result<usize, String> {
    if b[pos..].starts_with(word.as_bytes()) {
        Ok(pos + word.len())
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn num(b: &[u8], mut pos: usize) -> Result<usize, String> {
    let start = pos;
    if b.get(pos) == Some(&b'-') {
        pos += 1;
    }
    let digits = |b: &[u8], mut p: usize| -> (usize, bool) {
        let s = p;
        while p < b.len() && b[p].is_ascii_digit() {
            p += 1;
        }
        (p, p > s)
    };
    let (p, ok) = digits(b, pos);
    if !ok {
        return Err(format!("bad number at byte {start}"));
    }
    pos = p;
    if b.get(pos) == Some(&b'.') {
        let (p, ok) = digits(b, pos + 1);
        if !ok {
            return Err(format!("bad fraction at byte {pos}"));
        }
        pos = p;
    }
    if matches!(b.get(pos), Some(b'e') | Some(b'E')) {
        pos += 1;
        if matches!(b.get(pos), Some(b'+') | Some(b'-')) {
            pos += 1;
        }
        let (p, ok) = digits(b, pos);
        if !ok {
            return Err(format!("bad exponent at byte {pos}"));
        }
        pos = p;
    }
    Ok(pos)
}

fn string(b: &[u8], mut pos: usize) -> Result<usize, String> {
    debug_assert_eq!(b[pos], b'"');
    pos += 1;
    while pos < b.len() {
        match b[pos] {
            b'"' => return Ok(pos + 1),
            b'\\' => match b.get(pos + 1) {
                Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => pos += 2,
                Some(b'u') => {
                    let hex = b
                        .get(pos + 2..pos + 6)
                        .ok_or_else(|| format!("truncated \\u escape at byte {pos}"))?;
                    if !hex.iter().all(u8::is_ascii_hexdigit) {
                        return Err(format!("bad \\u escape at byte {pos}"));
                    }
                    pos += 6;
                }
                _ => return Err(format!("bad escape at byte {pos}")),
            },
            c if c < 0x20 => return Err(format!("raw control byte in string at {pos}")),
            _ => pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn object(b: &[u8], mut pos: usize) -> Result<usize, String> {
    debug_assert_eq!(b[pos], b'{');
    pos = skip_ws(b, pos + 1);
    if b.get(pos) == Some(&b'}') {
        return Ok(pos + 1);
    }
    loop {
        if b.get(pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        pos = string(b, pos)?;
        pos = skip_ws(b, pos);
        if b.get(pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        pos = skip_ws(b, pos + 1);
        pos = value(b, pos)?;
        pos = skip_ws(b, pos);
        match b.get(pos) {
            Some(b',') => pos = skip_ws(b, pos + 1),
            Some(b'}') => return Ok(pos + 1),
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn array(b: &[u8], mut pos: usize) -> Result<usize, String> {
    debug_assert_eq!(b[pos], b'[');
    pos = skip_ws(b, pos + 1);
    if b.get(pos) == Some(&b']') {
        return Ok(pos + 1);
    }
    loop {
        pos = value(b, pos)?;
        pos = skip_ws(b, pos);
        match b.get(pos) {
            Some(b',') => pos = skip_ws(b, pos + 1),
            Some(b']') => return Ok(pos + 1),
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

/// A parsed JSON value.
///
/// Objects keep their fields in document order as a `Vec` of pairs —
/// deterministic, duplicate-preserving, and free of hash-order
/// dependence.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON numbers all fit f64 for our exports).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, fields in document order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object (first match), `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The object fields, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses exactly one JSON value from `s`.
///
/// Accepts the same grammar [`validate`] accepts; returns the first
/// syntax error otherwise.
pub fn parse(s: &str) -> Result<Value, String> {
    let b = s.as_bytes();
    let pos = skip_ws(b, 0);
    let (v, pos) = parse_value(b, pos)?;
    let pos = skip_ws(b, pos);
    if pos != b.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn parse_value(b: &[u8], pos: usize) -> Result<(Value, usize), String> {
    match b.get(pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => {
            let (s, p) = parse_string(b, pos)?;
            Ok((Value::Str(s), p))
        }
        Some(b't') => Ok((Value::Bool(true), literal(b, pos, "true")?)),
        Some(b'f') => Ok((Value::Bool(false), literal(b, pos, "false")?)),
        Some(b'n') => Ok((Value::Null, literal(b, pos, "null")?)),
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let end = num(b, pos)?;
            let text = std::str::from_utf8(&b[pos..end])
                .map_err(|_| format!("non-utf8 number at byte {pos}"))?;
            let n: f64 = text
                .parse()
                .map_err(|_| format!("unparseable number at byte {pos}"))?;
            Ok((Value::Num(n), end))
        }
        Some(c) => Err(format!("unexpected byte {:?} at {pos}", *c as char)),
        None => Err(format!("unexpected end of input at byte {pos}")),
    }
}

fn parse_string(b: &[u8], pos: usize) -> Result<(String, usize), String> {
    let end = string(b, pos)?;
    // The span is validated; decode escapes between the quotes.
    let body = std::str::from_utf8(&b[pos + 1..end - 1])
        .map_err(|_| format!("non-utf8 string at byte {pos}"))?;
    let mut out = String::with_capacity(body.len());
    let mut chars = body.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('/') => out.push('/'),
            Some('b') => out.push('\u{8}'),
            Some('f') => out.push('\u{c}'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                let code = u32::from_str_radix(&hex, 16)
                    .map_err(|_| format!("bad \\u escape in string at byte {pos}"))?;
                // Lone surrogates (and pairs, which our writer never
                // emits) decode to the replacement character.
                out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
            }
            _ => return Err(format!("bad escape in string at byte {pos}")),
        }
    }
    Ok((out, end))
}

fn parse_object(b: &[u8], mut pos: usize) -> Result<(Value, usize), String> {
    pos = skip_ws(b, pos + 1);
    let mut fields = Vec::new();
    if b.get(pos) == Some(&b'}') {
        return Ok((Value::Obj(fields), pos + 1));
    }
    loop {
        if b.get(pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        let (key, p) = parse_string(b, pos)?;
        pos = skip_ws(b, p);
        if b.get(pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        pos = skip_ws(b, pos + 1);
        let (v, p) = parse_value(b, pos)?;
        fields.push((key, v));
        pos = skip_ws(b, p);
        match b.get(pos) {
            Some(b',') => pos = skip_ws(b, pos + 1),
            Some(b'}') => return Ok((Value::Obj(fields), pos + 1)),
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_array(b: &[u8], mut pos: usize) -> Result<(Value, usize), String> {
    pos = skip_ws(b, pos + 1);
    let mut items = Vec::new();
    if b.get(pos) == Some(&b']') {
        return Ok((Value::Arr(items), pos + 1));
    }
    loop {
        let (v, p) = parse_value(b, pos)?;
        items.push(v);
        pos = skip_ws(b, p);
        match b.get(pos) {
            Some(b',') => pos = skip_ws(b, pos + 1),
            Some(b']') => return Ok((Value::Arr(items), pos + 1)),
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn number_formats() {
        assert_eq!(number(3.0), "3");
        assert_eq!(number(-2.5), "-2.5");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn builder_produces_valid_json() {
        let s = ObjectBuilder::new()
            .str("name", "fig\"2\"")
            .u64("seed", 7)
            .f64("value", 0.25)
            .f64("nan", f64::NAN)
            .raw("list", "[1,2,3]")
            .build();
        validate(&s).expect("builder output must validate");
        assert!(s.contains("\"seed\":7"));
        assert!(s.contains("\"nan\":null"));
    }

    #[test]
    fn validator_accepts_good_json() {
        for s in [
            "{}",
            "[]",
            "null",
            "true",
            "-1.5e-3",
            "\"a\\u00e9b\"",
            "{\"a\":[1,{\"b\":null}],\"c\":\"x\"}",
            "  [ 1 , 2 ]  ",
        ] {
            validate(s).unwrap_or_else(|e| panic!("{s}: {e}"));
        }
    }

    #[test]
    fn validator_rejects_bad_json() {
        for s in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "01x",
            "\"unterminated",
            "{} {}",
            "{\"a\":1,}",
            "\"bad\\q\"",
        ] {
            assert!(validate(s).is_err(), "{s} should be rejected");
        }
    }

    #[test]
    fn parse_round_trips_builder_output() {
        let body = ObjectBuilder::new()
            .str("name", "a \"quoted\"\nlabel")
            .u64("count", 42)
            .f64("share", 0.125)
            .raw("rows", "[1,2.5,-3,true,false,null]")
            .build();
        let v = parse(&body).expect("builder output parses");
        assert_eq!(
            v.get("name").and_then(Value::as_str),
            Some("a \"quoted\"\nlabel")
        );
        assert_eq!(v.get("count").and_then(Value::as_f64), Some(42.0));
        assert_eq!(v.get("share").and_then(Value::as_f64), Some(0.125));
        let rows = v.get("rows").and_then(Value::as_arr).expect("rows array");
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[0], Value::Num(1.0));
        assert_eq!(rows[1], Value::Num(2.5));
        assert_eq!(rows[2], Value::Num(-3.0));
        assert_eq!(rows[3], Value::Bool(true));
        assert_eq!(rows[4], Value::Bool(false));
        assert_eq!(rows[5], Value::Null);
    }

    #[test]
    fn parse_preserves_object_field_order() {
        let v = parse(r#"{"z":1,"a":2,"z":3}"#).expect("parses");
        let fields = v.as_obj().expect("object");
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["z", "a", "z"]);
        // get() returns the first match on duplicates.
        assert_eq!(v.get("z").and_then(Value::as_f64), Some(1.0));
    }

    #[test]
    fn parse_decodes_unicode_escapes() {
        let v = parse(r#""\u00e9\tA""#).expect("parses");
        assert_eq!(v.as_str(), Some("\u{e9}\tA"));
    }

    #[test]
    fn parse_rejects_what_validate_rejects() {
        for s in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "{} {}",
            "\"bad\\q\"",
            "1 2",
        ] {
            assert!(parse(s).is_err(), "{s} should fail to parse");
        }
    }

    #[test]
    fn non_object_accessors_return_none() {
        let v = parse("[1]").expect("parses");
        assert!(v.get("x").is_none());
        assert!(v.as_str().is_none());
        assert!(v.as_obj().is_none());
        assert_eq!(v.as_arr().map(|a| a.len()), Some(1));
    }
}
